#!/usr/bin/env bash
# Runs redopt-analyze (module layering, FP-order authority, parallel
# capture safety, header self-containment) over the tree.  Self-contained:
# compiles the analyzer directly (five translation units, no
# dependencies), so it works before the first cmake configure and in
# minimal CI images.
#
#   scripts/check_analyze.sh [extra redopt-analyze args...]
#
# Exits nonzero on any finding not covered by the committed baseline
# (tools/redopt-analyze/baseline.txt).  Prefers an already-built
# build/tools/redopt-analyze/redopt-analyze when present and newer than
# the sources.
set -eu
cd "$(dirname "$0")/.."

BIN=build/tools/redopt-analyze/redopt-analyze
SOURCES="tools/analysis-common/finding.cpp tools/analysis-common/scan.cpp \
  tools/analysis-common/walker.cpp tools/redopt-analyze/model.cpp \
  tools/redopt-analyze/analyze.cpp tools/redopt-analyze/main.cpp"
STALE=0
for src in $SOURCES; do
  if [ ! -x "$BIN" ] || [ "$src" -nt "$BIN" ]; then STALE=1; fi
done
if [ "$STALE" = 1 ]; then
  BIN=$(mktemp -t redopt-analyze.XXXXXX)
  trap 'rm -f "$BIN"' EXIT
  "${CXX:-c++}" -std=c++20 -O1 -Wall -Wextra -I tools $SOURCES -o "$BIN"
fi

"$BIN" --root "$(pwd)" "$@"
