#!/usr/bin/env bash
# End-to-end serving gate: a live redoptd on a Unix-domain socket,
# synthetic clients, a kill -9 mid-job, and a restart over the same
# state directory.  The crash-recovery contract under test is byte
# equality: the resumed daemon's final manifests must be identical to an
# uninterrupted reference run's (checkpoints and manifests are
# deterministic, so `cmp` is the whole assertion).  The daemon's
# --trace-out file must also pass redopt-trace --validate.
#
#   scripts/check_serving.sh [BUILD]
#
# Uses build/ by default.  Exit 0 on success, 1 on any divergence.
set -eu
cd "$(dirname "$0")/.."

BUILD=${1:-build}

cmake --build "$BUILD" --target redoptd redopt-trace -j "$(nproc)"
REDOPTD=$(pwd)/$BUILD/tools/redoptd/redoptd
REDOPT_TRACE=$(pwd)/$BUILD/tools/redopt-trace/redopt-trace

OUT=$(mktemp -d -t redopt-serving.XXXXXX)
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$OUT"
}
trap cleanup EXIT

# A deterministic job batch; job-big gets enough rounds (the full
# default per-job budget) that the kill below lands mid-job even on a
# fast machine (~40K rounds/s measured -> ~2.5 s of slicing).
"$REDOPTD" --generate 2 --seed 7 > "$OUT/jobs.jsonl"
head -1 "$OUT/jobs.jsonl" | sed 's/"job":"job-0"/"job":"job-a"/' > "$OUT/job-a.json"
sed -n 2p "$OUT/jobs.jsonl" | sed 's/"job":"job-1"/"job":"job-b"/' > "$OUT/job-b.json"
sed 's/"job":"job-a"/"job":"job-big"/; s/"rounds":[0-9]*/"rounds":100000/' \
  "$OUT/job-a.json" > "$OUT/job-big.json"

# wait_for_socket DIR SOCKET: redoptd prints its status line after
# binding; the client retries connects, so a short settle is enough.
start_daemon() { # socket state_dir [extra flags...]
  local socket=$1 state=$2
  shift 2
  "$REDOPTD" --serve --socket "$socket" --state-dir "$state" "$@" \
    > "$state.log" 2>&1 &
  DAEMON_PID=$!
  sleep 0.3
}

submit_all() { # socket
  for job in job-a job-b job-big; do
    "$REDOPTD" --submit "$OUT/$job.json" --socket "$1" > /dev/null
  done
}

wait_done() { # socket state_dir
  for _ in $(seq 1 600); do
    if [ -f "$2/job-a.manifest.json" ] && [ -f "$2/job-b.manifest.json" ] \
       && [ -f "$2/job-big.manifest.json" ]; then
      return 0
    fi
    sleep 0.2
  done
  echo "check_serving.sh: jobs did not finish (see $2.log)" >&2
  return 1
}

echo "=== reference run (uninterrupted) ==="
start_daemon "$OUT/ref.sock" "$OUT/ref" --trace-out "$OUT/ref-trace.json"
submit_all "$OUT/ref.sock"
wait_done "$OUT/ref.sock" "$OUT/ref"
"$REDOPTD" --shutdown --socket "$OUT/ref.sock" > /dev/null
wait "$DAEMON_PID" || true
DAEMON_PID=""

echo "=== crash run (kill -9 mid-job, restart over the same state dir) ==="
start_daemon "$OUT/cr.sock" "$OUT/cr"
submit_all "$OUT/cr.sock"
sleep 1
kill -9 "$DAEMON_PID"
DAEMON_PID=""
if [ ! -f "$OUT/cr/job-big.ckpt.json" ]; then
  echo "check_serving.sh: kill landed after completion — no checkpoint to resume" >&2
  exit 1
fi

start_daemon "$OUT/cr.sock" "$OUT/cr"
grep -q "resumed" "$OUT/cr.log"
wait_done "$OUT/cr.sock" "$OUT/cr"
"$REDOPTD" --status job-big --socket "$OUT/cr.sock"
"$REDOPTD" --shutdown --socket "$OUT/cr.sock" > /dev/null
wait "$DAEMON_PID" || true
DAEMON_PID=""

echo "=== manifests must be byte-identical ==="
for job in job-a job-b job-big; do
  cmp "$OUT/ref/$job.manifest.json" "$OUT/cr/$job.manifest.json"
  echo "  $job: OK"
done
# No checkpoint may survive a completed run.
if ls "$OUT/cr"/*.ckpt.json 2>/dev/null; then
  echo "check_serving.sh: stale checkpoint left behind" >&2
  exit 1
fi

echo "=== trace file must pass redopt-trace --validate ==="
"$REDOPT_TRACE" --validate "$OUT/ref-trace.json"

echo "check_serving.sh: OK"
