#!/usr/bin/env bash
# Collects the machine-readable BENCH_JSON summary lines that every bench
# harness prints into one JSONL file per day.
#
#   scripts/collect_bench.sh log1.txt [log2.txt ...]   # from saved logs
#   some_bench --threads 4 | scripts/collect_bench.sh  # from a pipe
#
# Each matching line has its "BENCH_JSON " prefix stripped and is appended
# to BENCH_<YYYYMMDD>.json in the current directory, so repeated runs
# accumulate and the file is directly loadable as JSON lines.
set -eu

OUT="BENCH_$(date +%Y%m%d).json"

collect() {
  # `|| true`: grep exits 1 when a log contains no BENCH_JSON lines, which
  # is not an error for this script.
  grep -h '^BENCH_JSON ' "$@" | sed 's/^BENCH_JSON //' || true
}

if [ "$#" -gt 0 ]; then
  for f in "$@"; do
    [ -r "$f" ] || { echo "collect_bench.sh: cannot read $f" >&2; exit 1; }
  done
  collect "$@" >> "$OUT"
else
  collect - >> "$OUT"
fi

echo "appended $(grep -c . "$OUT" || true) total line(s) in $OUT"
