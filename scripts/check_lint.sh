#!/usr/bin/env bash
# Runs redopt-lint over the tree.  Self-contained: compiles the scanner
# directly (two translation units, no dependencies), so it works before
# the first cmake configure and in minimal CI images.
#
#   scripts/check_lint.sh [extra redopt-lint args...]
#
# Exits nonzero on any unsuppressed finding.  Prefers an already-built
# build/tools/redopt-lint/redopt-lint when present and newer than the
# sources.
set -eu
cd "$(dirname "$0")/.."

BIN=build/tools/redopt-lint/redopt-lint
SOURCES="tools/analysis-common/finding.cpp tools/analysis-common/scan.cpp \
  tools/analysis-common/walker.cpp tools/redopt-lint/lint.cpp tools/redopt-lint/main.cpp"
STALE=0
for src in $SOURCES; do
  if [ ! -x "$BIN" ] || [ "$src" -nt "$BIN" ]; then STALE=1; fi
done
if [ "$STALE" = 1 ]; then
  BIN=$(mktemp -t redopt-lint.XXXXXX)
  trap 'rm -f "$BIN"' EXIT
  "${CXX:-c++}" -std=c++20 -O1 -Wall -Wextra -I tools $SOURCES -o "$BIN"
fi

"$BIN" --root "$(pwd)" "$@"
