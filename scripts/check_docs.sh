#!/usr/bin/env bash
# Docs-coverage gate: every top-level directory under src/ and tools/
# must have a row in DESIGN.md §2 ("System inventory") that names it by
# path (`src/<dir>/` or `tools/<dir>/`).  A subsystem that ships without
# an inventory row is invisible to readers — this check fails the build
# instead of letting the table drift behind the tree (it caught exactly
# that drift for PRs 6-9; see docs/PERFORMANCE.md / OBSERVABILITY.md).
#
#   scripts/check_docs.sh
#
# Exit 0 when every directory is documented, 1 otherwise.
set -eu
cd "$(dirname "$0")/.."

# The inventory section: between "## 2." and the next "## " heading.
SECTION=$(awk '/^## 2\./{flag=1; next} /^## /{flag=0} flag' DESIGN.md)
[ -n "$SECTION" ] || { echo "check_docs.sh: DESIGN.md has no '## 2.' section" >&2; exit 1; }

missing=0
for parent in src tools; do
  for dir in "$parent"/*/; do
    dir=${dir%/}
    # Build trees or editor droppings are not subsystems.
    ls "$dir"/*.cpp "$dir"/*.h >/dev/null 2>&1 || continue
    if ! printf '%s' "$SECTION" | grep -q "$dir/"; then
      echo "check_docs.sh: $dir/ has no DESIGN.md §2 inventory row" >&2
      missing=1
    fi
  done
done

if [ "$missing" -ne 0 ]; then
  echo "check_docs.sh: add a row to the '## 2. System inventory' table for each" >&2
  echo "directory above (Subsystem | Directory | Contents)." >&2
  exit 1
fi
echo "check_docs.sh: OK (every src/ and tools/ directory has an inventory row)"
