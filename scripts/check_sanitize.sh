#!/usr/bin/env bash
# Builds the concurrency-sensitive tests under a sanitizer and runs them
# with the runtime fanned out (REDOPT_THREADS > 1), so data races in the
# thread pool or the wired hot paths surface as hard failures.
#
#   scripts/check_sanitize.sh [thread|address,undefined] [threads]
#
# Default is ThreadSanitizer with 4 runtime threads; pass a second
# argument to stress a different thread count.
set -eu
SANITIZE=${1:-thread}
THREADS=${2:-4}
BUILD="build-sanitize-${SANITIZE//,/-}"
TESTS="test_runtime test_trainer test_async_trainer test_sgd test_telemetry test_chaos test_fuzz_io test_transport test_elastic test_analyze"

cmake -B "$BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DREDOPT_SANITIZE="$SANITIZE"
for t in $TESTS; do
  cmake --build "$BUILD" --target "$t" -j "$(nproc)"
done
for t in $TESTS; do
  echo "=== $t (REDOPT_THREADS=$THREADS, -fsanitize=$SANITIZE) ==="
  REDOPT_THREADS=$THREADS "$BUILD/tests/$t"
done
echo "sanitize check passed: $TESTS"
