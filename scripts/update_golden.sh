#!/usr/bin/env bash
# Regenerates the golden trace files under tests/golden/ after an
# intentional numerical-behaviour change.  Review the resulting diff like
# any other code change before committing.
#
# usage: scripts/update_golden.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -x "$BUILD_DIR/tests/test_golden_traces" ]]; then
  echo "error: $BUILD_DIR/tests/test_golden_traces not built" >&2
  echo "build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

REDOPT_UPDATE_GOLDEN=1 "$BUILD_DIR/tests/test_golden_traces"
echo "golden traces regenerated; review with: git diff tests/golden/"
