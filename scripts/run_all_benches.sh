#!/usr/bin/env bash
# Regenerates every table/figure (DESIGN.md R-* index) at full scale,
# teeing the output and dumping CSV series under bench_out/.
set -u
BUILD=${1:-build}
OUT=${2:-bench_output.txt}
: > "$OUT"
for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "=== $b ===" | tee -a "$OUT"
  case "$b" in
    *_perf) "$b" 2>&1 | tee -a "$OUT" ;;
    *)      "$b" --csv 2>&1 | tee -a "$OUT" ;;
  esac
done
echo "done; full log in $OUT, CSV series in bench_out/"
