#!/usr/bin/env bash
# Regenerates every table/figure (DESIGN.md R-* index) at full scale,
# teeing the output, dumping CSV series under bench_out/, and gathering
# all BENCH_JSON records into a merged BENCH_<YYYYMMDD>.json via
# scripts/collect_bench.sh.
#
#   scripts/run_all_benches.sh [BUILD] [LOG]
#
# Fails loudly: a missing bench directory, an empty bench set, or any
# bench exiting nonzero aborts the run (pipefail keeps tee from masking
# the bench's status).
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "$0")" && pwd)"
BUILD=${1:-build}
OUT=${2:-bench_output.txt}

[ -d "$BUILD/bench" ] || {
  echo "run_all_benches.sh: no $BUILD/bench directory (configure and build first)" >&2
  exit 1
}

: > "$OUT"
found=0
for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  found=1
  echo "=== $b ===" | tee -a "$OUT"
  case "$b" in
    *_perf) "$b" 2>&1 | tee -a "$OUT" ;;
    *)      "$b" --csv 2>&1 | tee -a "$OUT" ;;
  esac
done
[ "$found" -eq 1 ] || {
  echo "run_all_benches.sh: no bench binaries under $BUILD/bench" >&2
  exit 1
}

"$SCRIPT_DIR/collect_bench.sh" "$OUT"
echo "done; full log in $OUT, CSV series in bench_out/, BENCH_JSON records merged above"
