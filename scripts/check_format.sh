#!/usr/bin/env bash
# Checks that the C++ sources are clang-format clean (dry run, no edits).
#
#   scripts/check_format.sh
#
# Skips with exit 0 when clang-format is not installed, so the script is
# safe to call unconditionally from CI recipes and pre-commit hooks on
# machines without the toolchain.
set -eu
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format.sh: clang-format not found, skipping"
  exit 0
fi

FILES=$(find src tests bench examples -name '*.h' -o -name '*.cpp' 2>/dev/null)
if [ -z "$FILES" ]; then
  echo "check_format.sh: no sources found"
  exit 0
fi

# shellcheck disable=SC2086
clang-format --dry-run --Werror $FILES
echo "format check passed ($(echo "$FILES" | wc -l) files)"
