#!/usr/bin/env bash
# End-to-end determinism gate: runs one real bench with a telemetry
# manifest at REDOPT_THREADS = 1, 2, 8, strips the "nd" (nondeterministic:
# wall-clock / lane-count) sections, and diffs the results byte for byte.
# This is the runtime counterpart of the redopt-lint static rules — it
# catches whatever the scanner's token patterns cannot see.
#
#   scripts/check_determinism.sh [bench] [iterations]
#
# Defaults: bench_fig2_traces (the paper's Figure 2 traces: DGD + CGE /
# CWTM under two attacks — it exercises trainers, filters, telemetry, and
# the parallel runtime) at 120 iterations.  Uses build/ by default; set
# BUILD=<dir> to point at another build tree.
set -eu
cd "$(dirname "$0")/.."

BENCH=${1:-bench_fig2_traces}
ITERATIONS=${2:-120}
BUILD=${BUILD:-build}

if [ ! -x "$BUILD/bench/$BENCH" ]; then
  cmake -B "$BUILD" >/dev/null
  cmake --build "$BUILD" --target "$BENCH" -j "$(nproc)"
fi

OUT=$(mktemp -d -t redopt-determinism.XXXXXX)
trap 'rm -rf "$OUT"' EXIT

# The nd sections are flat JSON objects of scalar values (see
# telemetry/events.h), so a non-greedy brace match strips them safely.
strip_nd() { sed 's/,"nd":{[^{}]*}//g' "$1" > "$2"; }

# Each run gets its own working directory and the *same relative*
# manifest path: the harness records every flag value in the manifest, so
# a per-run absolute path would itself be a (spurious) diff.
BENCH_BIN=$(pwd)/$BUILD/bench/$BENCH
for t in 1 2 8; do
  mkdir -p "$OUT/$t"
  (cd "$OUT/$t" && REDOPT_THREADS=$t "$BENCH_BIN" \
    --iterations "$ITERATIONS" --stride "$ITERATIONS" \
    --telemetry run.jsonl > stdout.txt)
  strip_nd "$OUT/$t/run.jsonl" "$OUT/stripped-$t.jsonl"
done

status=0
for t in 2 8; do
  if ! diff -q "$OUT/stripped-1.jsonl" "$OUT/stripped-$t.jsonl" >/dev/null; then
    echo "DETERMINISM FAILURE: manifest differs between REDOPT_THREADS=1 and $t:"
    diff "$OUT/stripped-1.jsonl" "$OUT/stripped-$t.jsonl" | head -20
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  lines=$(wc -l < "$OUT/stripped-1.jsonl")
  echo "determinism check passed: $BENCH manifests byte-identical at threads 1/2/8 ($lines stripped lines)"
fi
exit "$status"
