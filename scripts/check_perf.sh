#!/usr/bin/env bash
# Perf-regression gate: records a candidate run of the perf benches and
# compares it against the committed baseline with tools/perf-report.
#
#   scripts/check_perf.sh [BUILD] [perf-report flags...]
#
#   scripts/check_perf.sh                          # default 10% tolerance
#   scripts/check_perf.sh build --tolerance 0.5    # CI hard gate (>2x only)
#   scripts/check_perf.sh build \
#     --require bench_filter_perf=2.0,bench_exact_perf=1.5
#
# BUILD must come before any flags (default: build).  PERF_MIN_TIME sets
# google-benchmark's --benchmark_min_time: 0.05 by default (smoke
# quality); use 0.2 to match how bench/baselines/BENCH_baseline.json was
# recorded.  The candidate's console tables are suppressed — only the
# BENCH_JSON records and the perf-report comparison are shown.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD=build
if [ "$#" -gt 0 ] && [ "${1#-}" = "$1" ]; then
  BUILD=$1
  shift
fi
MIN_TIME=${PERF_MIN_TIME:-0.05}
BASELINE="$ROOT/bench/baselines/BENCH_baseline.json"
PERF_BENCHES=(bench_filter_perf bench_exact_perf bench_kernel_perf bench_transport bench_elastic bench_serving)

[ -r "$BASELINE" ] || { echo "check_perf.sh: missing baseline $BASELINE" >&2; exit 1; }

cmake --build "$BUILD" --target "${PERF_BENCHES[@]}" perf-report -j "$(nproc)"

CANDIDATE=$(mktemp -t BENCH_candidate.XXXXXX)
trap 'rm -f "$CANDIDATE"' EXIT
for b in "${PERF_BENCHES[@]}"; do
  echo "=== $b (--benchmark_min_time=$MIN_TIME) ===" >&2
  "$BUILD/bench/$b" --benchmark_min_time="$MIN_TIME" \
    | { grep '^BENCH_JSON ' || true; } | sed 's/^BENCH_JSON //' >> "$CANDIDATE"
done
[ -s "$CANDIDATE" ] || { echo "check_perf.sh: no BENCH_JSON records captured" >&2; exit 1; }

"$BUILD/tools/perf-report/perf-report" "$BASELINE" "$CANDIDATE" "$@"
