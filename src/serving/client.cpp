#include "serving/client.h"

#include <utility>

#include "transport/uds.h"
#include "util/error.h"
#include "util/frame.h"
#include "util/json.h"

namespace redopt::serving {

Client::Client(std::string socket_path, int connect_timeout_ms, int io_timeout_ms,
               int io_max_retries)
    : socket_path_(std::move(socket_path)),
      connect_timeout_ms_(connect_timeout_ms),
      io_timeout_ms_(io_timeout_ms),
      io_max_retries_(io_max_retries) {}

std::string Client::request(const std::string& request_json) {
  transport::UnixStream stream =
      transport::UnixStream::connect(socket_path_, connect_timeout_ms_);
  util::Frame frame;
  frame.type = util::FrameType::kTelemetry;
  frame.payload = util::pack_blob(request_json);
  REDOPT_REQUIRE(stream.write_frame(frame), "client: daemon closed the connection");
  util::Frame reply;
  const auto status = stream.read_frame(&reply, io_timeout_ms_, io_max_retries_);
  REDOPT_REQUIRE(status == transport::UdsIoStatus::kOk,
                 "client: no response from daemon at " + socket_path_);
  REDOPT_REQUIRE(reply.type == util::FrameType::kTelemetry,
                 "client: unexpected response frame type");
  return util::unpack_blob(reply.payload);
}

std::string Client::submit(const JobSpec& spec) {
  return request("{\"op\":\"submit\",\"job\":" + spec.to_json() + "}");
}

std::string Client::status(const std::string& job_id) {
  return request("{\"op\":\"status\",\"job\":\"" + util::json_escape(job_id) + "\"}");
}

std::string Client::result(const std::string& job_id) {
  return request("{\"op\":\"result\",\"job\":\"" + util::json_escape(job_id) + "\"}");
}

std::string Client::list() { return request("{\"op\":\"list\"}"); }

void Client::shutdown_daemon() {
  transport::UnixStream stream =
      transport::UnixStream::connect(socket_path_, connect_timeout_ms_);
  util::Frame frame;
  frame.type = util::FrameType::kShutdown;
  REDOPT_REQUIRE(stream.write_frame(frame), "client: daemon closed the connection");
  util::Frame reply;
  // Best-effort: the daemon acks with a kShutdown frame before exiting.
  (void)stream.read_frame(&reply, io_timeout_ms_, io_max_retries_);
}

}  // namespace redopt::serving
