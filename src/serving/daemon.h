// The redoptd daemon core: socket front-end, durable state, recovery.
//
// One single-threaded event loop alternates between accepting client
// requests on a Unix-domain socket and running scheduler slices; job
// parallelism lives inside each slice's runtime::parallel_for fan-out,
// so the daemon's observable behaviour is deterministic in the
// submission sequence.
//
// Wire protocol (docs/SERVING.md has the full layout): every request
// and response is one util::frame kTelemetry frame whose blob-packed
// payload is a JSON document ({"op":"submit",...} -> {"ok":true,...}).
// A kShutdown frame (or {"op":"shutdown"}) drains the loop.
//
// Durable state under state_dir:
//   <job>.ckpt.json      — the latest checkpoint (rewritten atomically
//                          after every slice; removed at completion)
//   <job>.manifest.json  — the stable-projected final manifest
// A daemon started over an existing state_dir adopts every *.ckpt.json
// and resumes those jobs from their checkpoints; because slices and
// checkpoints are deterministic, the recovered run's final manifest is
// byte-identical to an uninterrupted one.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "serving/scheduler.h"
#include "transport/uds.h"
#include "util/stopwatch.h"

namespace redopt::serving {

struct DaemonOptions {
  std::string socket_path;  ///< Unix-domain socket to listen on
  std::string state_dir;    ///< checkpoint + manifest directory (created)
  SchedulerOptions scheduler;
  int accept_timeout_ms = 20;  ///< accept poll quantum between slices
  int io_timeout_ms = 2000;    ///< per-frame read timeout
  int io_max_retries = 50;
  std::string trace_out;  ///< write a Chrome trace here at shutdown ("" = off)
};

class Daemon {
 public:
  /// Binds the listening socket and creates state_dir.  Throws
  /// redopt::PreconditionError when either fails.
  explicit Daemon(DaemonOptions options);

  /// Adopts every checkpoint found in state_dir; returns how many jobs
  /// resumed.  Checkpoints whose manifest already exists are complete
  /// (the crash hit between manifest write and checkpoint removal) and
  /// are cleaned up instead of re-run.
  std::size_t recover();

  /// One event-loop iteration: serve at most one client request, then
  /// run one scheduler slice.  Returns true when either happened.
  bool poll_once();

  /// Loops poll_once() until a shutdown request arrives, then writes
  /// the Chrome trace (when configured).
  void serve();

  bool shutdown_requested() const { return shutdown_; }
  const Scheduler& scheduler() const { return scheduler_; }
  const std::string& state_dir() const { return options_.state_dir; }

  /// JSON-in, JSON-out request dispatch (the daemon's entire protocol
  /// surface; exposed for tests).  Never throws: every failure becomes
  /// {"ok":false,"error":"..."}.
  std::string handle_request(const std::string& request_json);

 private:
  void persist(const JobCheckpoint& checkpoint, bool finished);
  std::string checkpoint_path(const std::string& job_id) const;
  std::string manifest_path(const std::string& job_id) const;
  void write_trace() const;

  DaemonOptions options_;
  Scheduler scheduler_;
  transport::UnixListener listener_;
  bool shutdown_ = false;
  /// Wall clock since daemon start (the one sanctioned timing source);
  /// job start offsets feed only the manifest's "nd" member.
  util::Stopwatch uptime_;
  std::map<std::string, double> started_at_;
};

/// Atomically replaces @p path with @p bytes (write to a sibling tmp
/// file, then rename) so a crash mid-write never leaves a torn file.
void atomic_write_file(const std::string& path, const std::string& bytes);

}  // namespace redopt::serving
