// Job submissions for the redoptd serving daemon.
//
// A JobSpec is one client-submitted training job: a named, fixed-
// membership chaos::Scenario the daemon will drive to completion.  The
// spec is the complete description — everything downstream (instance
// data, initial estimate, attack and channel randomness) derives from
// the scenario seed, so the daemon can checkpoint a job mid-flight and
// resume it in a different process with the same trajectory bit for
// bit (see serving/checkpoint.h and docs/SERVING.md).
#pragma once

#include <string>
#include <vector>

#include "chaos/scenario.h"

namespace redopt::serving {

/// One submitted training job.
struct JobSpec {
  /// Client-chosen identifier, unique per daemon.  Restricted to
  /// [A-Za-z0-9._-] (it names the job's checkpoint and manifest files).
  std::string job_id;

  /// The execution to run.  Must be a fixed-membership scenario:
  /// elastic (membership / stream event) scenarios run through
  /// elastic::run_elastic, not the serving scheduler.
  chaos::Scenario scenario;

  /// Structural validation: well-formed job_id, scenario.validate(),
  /// and no elastic events.  Throws redopt::PreconditionError.
  void validate() const;

  /// Canonical JSON form: {"job":"<id>","scenario":{...}}.  Round-trips
  /// through job_spec_from_json bit-exactly.
  std::string to_json() const;
};

/// Strict inverse of JobSpec::to_json(); unknown members are rejected.
/// Throws redopt::PreconditionError on malformed input.
JobSpec job_spec_from_json(const std::string& text);

/// Lifecycle states a job moves through inside the daemon:
/// queued -> running -> done, with running jobs rotating back to queued
/// at every budget-slice boundary (a checkpoint is written each time).
/// Rejected submissions never enter the table.
enum class JobState { kQueued, kRunning, kDone };

/// The state spellings, in enum order (for status reports and
/// util::parse_choice).
const std::vector<std::string>& job_state_names();

std::string to_string(JobState state);

}  // namespace redopt::serving
