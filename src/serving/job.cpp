#include "serving/job.h"

#include "util/error.h"
#include "util/json.h"

namespace redopt::serving {

namespace {

bool valid_job_id_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '.' || c == '_' || c == '-';
}

}  // namespace

void JobSpec::validate() const {
  REDOPT_REQUIRE(!job_id.empty(), "job: job_id must be non-empty");
  REDOPT_REQUIRE(job_id.size() <= 100, "job: job_id longer than 100 characters");
  // The id names checkpoint/manifest files, so the charset is a strict
  // allow-list and a leading '.' (hidden files, "..") is rejected.
  REDOPT_REQUIRE(job_id.front() != '.', "job: job_id must not start with '.'");
  for (char c : job_id) {
    REDOPT_REQUIRE(valid_job_id_char(c),
                   "job: job_id may only contain [A-Za-z0-9._-]: " + job_id);
  }
  scenario.validate();
  REDOPT_REQUIRE(!scenario.elastic(),
                 "job: elastic scenarios (membership/stream events) are not servable; "
                 "run them through elastic::run_elastic");
}

std::string JobSpec::to_json() const {
  std::string out = "{\"job\":\"" + util::json_escape(job_id) + "\",";
  out += "\"scenario\":" + scenario.to_json() + "}";
  return out;
}

JobSpec job_spec_from_json(const std::string& text) {
  const util::JsonValue doc = util::json_parse(text);
  REDOPT_REQUIRE(doc.kind == util::JsonValue::Kind::kObject, "job: expected a JSON object");
  JobSpec spec;
  bool saw_scenario = false;
  for (const auto& [key, value] : doc.members) {
    if (key == "job") {
      spec.job_id = value.as_string();
    } else if (key == "scenario") {
      REDOPT_REQUIRE(value.kind == util::JsonValue::Kind::kObject,
                     "job: scenario must be an object");
      // Re-serialize the subtree and route it through the scenario
      // parser so both layers apply the same strictness.
      spec.scenario = chaos::scenario_from_json(util::json_serialize(value));
      saw_scenario = true;
    } else {
      REDOPT_REQUIRE(false, "job: unknown member: " + key);
    }
  }
  REDOPT_REQUIRE(!spec.job_id.empty(), "job: missing member: job");
  REDOPT_REQUIRE(saw_scenario, "job: missing member: scenario");
  spec.validate();
  return spec;
}

const std::vector<std::string>& job_state_names() {
  static const std::vector<std::string> names = {"queued", "running", "done"};
  return names;
}

std::string to_string(JobState state) {
  return job_state_names()[static_cast<std::size_t>(state)];
}

}  // namespace redopt::serving
