// The serving scheduler: admission control, budget slices, fairness.
//
// Jobs run as a sequence of bounded slices over the shared deterministic
// runtime::ThreadPool (each slice's gradient fan-out is a parallel_for).
// The scheduler rotates round-robin through live jobs, runs one slice of
// at most `slice_rounds` rounds, and hands the updated checkpoint to the
// caller (the daemon persists it before the next slice — that is the
// crash-recovery contract).  Scheduling is deterministic: same
// submission order, same slice schedule, any thread count.
//
// Admission control is strict and synchronous at submit():
//   * table capacity  — at most max_jobs jobs queued + running,
//   * round budget    — scenario.rounds <= max_rounds_per_job,
//   * dimension cap   — scenario.d <= max_dimension,
//   * unique job_id   — resubmitting a live or finished id is rejected,
//   * spec validity   — JobSpec::validate() (elastic scenarios rejected).
//
// Cross-job batching: whenever the live-job set changes, the scheduler
// restacks every compatible job's least-squares population into one
// core::BatchGradientEvaluator along the group axis (submission order);
// compatible jobs' slices evaluate through it, the rest fall back to
// the virtual cost path.  Both paths are bit-identical per the
// evaluator's contract.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/executor.h"
#include "core/batch_gradient.h"
#include "serving/checkpoint.h"
#include "serving/runner.h"

namespace redopt::serving {

struct SchedulerOptions {
  std::size_t max_jobs = 8;              ///< admission: live (queued+running) cap
  std::size_t max_rounds_per_job = 100000;  ///< admission: per-job round budget
  std::size_t max_dimension = 4096;      ///< admission: per-job dimension cap
  std::size_t slice_rounds = 16;         ///< rounds per scheduling slice, >= 1
};

/// One job's public status.
struct JobStatus {
  std::string job_id;
  JobState state = JobState::kQueued;
  std::size_t rounds_done = 0;
  std::size_t rounds_total = 0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options);

  /// Admission control.  Returns the empty string on acceptance, the
  /// rejection reason otherwise (malformed specs also surface here, as
  /// a reason, not an exception — the daemon relays it to the client).
  std::string submit(const JobSpec& spec);

  /// Adopts a checkpoint recovered from disk after a daemon restart.
  /// The job resumes from exactly where the checkpoint left it.  Throws
  /// redopt::PreconditionError on a duplicate id or a full table.
  void adopt(JobCheckpoint checkpoint);

  /// Runs one slice of the next runnable job (round-robin).  Invokes
  /// @p on_checkpoint with the updated checkpoint and whether the job
  /// finished, then returns the job id stepped — empty when idle.
  std::string step(const std::function<void(const JobCheckpoint&, bool finished)>& on_checkpoint);

  /// True when no job has rounds remaining.
  bool idle() const;

  std::size_t live_jobs() const;

  /// Status of one job; std::nullopt when the id was never admitted.
  std::optional<JobStatus> status(const std::string& job_id) const;

  /// All jobs in submission order.
  std::vector<JobStatus> list() const;

  /// The current checkpoint of any admitted job; nullptr for unknown ids.
  const JobCheckpoint* checkpoint(const std::string& job_id) const;

  /// The finished checkpoint of a done job; nullptr otherwise.
  const JobCheckpoint* finished_checkpoint(const std::string& job_id) const;

  /// The materialized instance backing a job (for manifest rendering).
  const chaos::MaterializedScenario* built(const std::string& job_id) const;

  /// Test / bench hook: the current cross-job evaluator (nullptr when
  /// fewer than one compatible live job exists).
  const core::BatchGradientEvaluator* group_evaluator() const { return evaluator_.get(); }

 private:
  struct Entry {
    JobSpec spec;
    JobCheckpoint checkpoint;
    JobState state = JobState::kQueued;
    std::shared_ptr<chaos::MaterializedScenario> built;
    bool in_group = false;        ///< evaluates through the stacked evaluator
    std::size_t agent_base = 0;   ///< first global index within the evaluator
  };

  Entry* find(const std::string& job_id);
  const Entry* find(const std::string& job_id) const;
  void restack();

  SchedulerOptions options_;
  std::vector<Entry> jobs_;   ///< submission order; finished entries stay
  std::size_t next_ = 0;      ///< round-robin cursor into jobs_
  std::unique_ptr<core::BatchGradientEvaluator> evaluator_;
};

}  // namespace redopt::serving
