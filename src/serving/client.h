// Client side of the redoptd wire protocol.
//
// One request per connection: connect to the daemon's Unix-domain
// socket, send one kTelemetry frame whose blob is the JSON request,
// read the single JSON response frame, close.  docs/SERVING.md walks
// through the protocol; tools/redoptd wraps this class for the CLI.
#pragma once

#include <string>

#include "serving/job.h"

namespace redopt::serving {

class Client {
 public:
  /// @p connect_timeout_ms bounds how long connect() retries while a
  /// (re)starting daemon rebinds its socket.
  explicit Client(std::string socket_path, int connect_timeout_ms = 2000,
                  int io_timeout_ms = 5000, int io_max_retries = 50);

  /// Sends one JSON request document, returns the daemon's JSON
  /// response.  Throws redopt::PreconditionError on connection failure,
  /// frame corruption, or a daemon that closed without replying.
  std::string request(const std::string& request_json);

  /// {"op":"submit","job":<spec>} — returns the response document; the
  /// daemon's admission verdict is its "ok" member.
  std::string submit(const JobSpec& spec);

  std::string status(const std::string& job_id);
  std::string result(const std::string& job_id);
  std::string list();

  /// Sends a kShutdown frame; the daemon drains and exits its loop.
  void shutdown_daemon();

 private:
  std::string socket_path_;
  int connect_timeout_ms_;
  int io_timeout_ms_;
  int io_max_retries_;
};

}  // namespace redopt::serving
