// The slice runner: resumable, deterministic execution of one job.
//
// This is the chaos executor's round loop restructured for checkpoint/
// resume.  chaos::run_scenario draws channel and attack randomness from
// streams forked once and advanced across rounds — private xoshiro
// state a JSON checkpoint cannot carry.  The serving runner instead
// derives every draw from per-round named forks of the scenario seed
// ("channel-<t>", "attack-<agent>-<t>"), so the complete resumable
// state is the small JobCheckpoint blob: iterate, straggler history,
// in-flight delayed replies, counters.  Stop after any round, reload
// the checkpoint in a fresh process, continue — the trajectory is bit-
// identical to the uninterrupted run.
//
// On scenarios without channel faults and without rng-consuming attacks
// the per-round forks are never drawn from, and the runner's trajectory
// equals chaos::run_scenario's bit for bit (tests pin this as the
// cross-implementation oracle).
//
// Gradient emission fans out over runtime::parallel_for with per-index
// slot writes, so results are thread-count independent; when the
// scheduler supplies a (possibly cross-job) core::BatchGradientEvaluator
// the runner routes per-agent evaluation through it, bit-identical to
// the virtual cost path by the evaluator's contract.
#pragma once

#include <cstddef>

#include "chaos/executor.h"
#include "core/batch_gradient.h"
#include "serving/checkpoint.h"

namespace redopt::serving {

/// Per-slice execution context the scheduler owns across slices.
struct SliceContext {
  /// The materialized instance (pure function of the scenario; the
  /// scheduler caches it per job so slices do not re-generate data).
  const chaos::MaterializedScenario* built = nullptr;

  /// Optional batched gradient path.  When set, agent i of this job
  /// evaluates through evaluator->evaluate_agent(agent_base + i, ...)
  /// — the scheduler stacks same-dimension populations across jobs
  /// into one evaluator (the cross-job batching axis).
  const core::BatchGradientEvaluator* evaluator = nullptr;
  std::size_t agent_base = 0;
};

/// The round-0 state of a job: x0 from the scenario seed (the same
/// "x0" fork chaos::run_scenario uses), projected into the box, with
/// initial distance recorded against the honest reference.
JobCheckpoint make_initial_checkpoint(const JobSpec& spec,
                                      const chaos::MaterializedScenario& built);

/// Runs up to @p max_rounds rounds from @p ck, mutating it in place.
/// Returns the number of rounds actually run (0 when already finished).
/// Caller checks ck.finished() for completion.
std::size_t run_job_slice(JobCheckpoint& ck, std::size_t max_rounds, const SliceContext& ctx);

/// The final job manifest: spec, rounds, result block (distances,
/// estimate, fault counters) and a telemetry section built by shipping
/// a per-job telemetry island through the serialize -> parse -> render
/// pipeline (telemetry/ship.h).  Wall-clock lives under the "nd"
/// member only, so telemetry::stable_json_projection() of the manifest
/// is byte-identical across thread counts, processes, and kill/resume
/// boundaries.  Requires ck.finished().
std::string job_manifest_json(const JobCheckpoint& ck, const chaos::MaterializedScenario& built,
                              double wall_seconds);

}  // namespace redopt::serving
