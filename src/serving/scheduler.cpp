#include "serving/scheduler.h"

#include <utility>

#include "telemetry/metrics.h"
#include "util/error.h"

namespace redopt::serving {

Scheduler::Scheduler(SchedulerOptions options) : options_(std::move(options)) {
  REDOPT_REQUIRE(options_.slice_rounds >= 1, "scheduler: slice_rounds must be >= 1");
  REDOPT_REQUIRE(options_.max_jobs >= 1, "scheduler: max_jobs must be >= 1");
}

Scheduler::Entry* Scheduler::find(const std::string& job_id) {
  for (Entry& entry : jobs_) {
    if (entry.spec.job_id == job_id) return &entry;
  }
  return nullptr;
}

const Scheduler::Entry* Scheduler::find(const std::string& job_id) const {
  for (const Entry& entry : jobs_) {
    if (entry.spec.job_id == job_id) return &entry;
  }
  return nullptr;
}

std::string Scheduler::submit(const JobSpec& spec) {
  const auto metric_rejected = telemetry::registry().counter("serving.jobs_rejected");
  try {
    spec.validate();
  } catch (const PreconditionError& e) {
    metric_rejected.inc();
    return e.what();
  }
  if (find(spec.job_id) != nullptr) {
    metric_rejected.inc();
    return "job id already known: " + spec.job_id;
  }
  if (live_jobs() >= options_.max_jobs) {
    metric_rejected.inc();
    return "admission: job table full (" + std::to_string(options_.max_jobs) + " live jobs)";
  }
  if (spec.scenario.rounds > options_.max_rounds_per_job) {
    metric_rejected.inc();
    return "admission: rounds " + std::to_string(spec.scenario.rounds) +
           " exceed the per-job budget " + std::to_string(options_.max_rounds_per_job);
  }
  if (spec.scenario.d > options_.max_dimension) {
    metric_rejected.inc();
    return "admission: dimension " + std::to_string(spec.scenario.d) + " exceeds the cap " +
           std::to_string(options_.max_dimension);
  }

  Entry entry;
  entry.spec = spec;
  try {
    entry.built =
        std::make_shared<chaos::MaterializedScenario>(chaos::materialize_scenario(spec.scenario));
  } catch (const PreconditionError& e) {
    metric_rejected.inc();
    return e.what();
  }
  entry.checkpoint = make_initial_checkpoint(spec, *entry.built);
  entry.state = JobState::kQueued;
  jobs_.push_back(std::move(entry));
  telemetry::registry().counter("serving.jobs_admitted").inc();
  restack();
  return "";
}

void Scheduler::adopt(JobCheckpoint checkpoint) {
  REDOPT_REQUIRE(find(checkpoint.spec.job_id) == nullptr,
                 "scheduler: adopt of a known job id: " + checkpoint.spec.job_id);
  REDOPT_REQUIRE(live_jobs() < options_.max_jobs, "scheduler: adopt into a full table");
  Entry entry;
  entry.spec = checkpoint.spec;
  entry.built = std::make_shared<chaos::MaterializedScenario>(
      chaos::materialize_scenario(checkpoint.spec.scenario));
  entry.state = checkpoint.finished() ? JobState::kDone : JobState::kQueued;
  entry.checkpoint = std::move(checkpoint);
  jobs_.push_back(std::move(entry));
  telemetry::registry().counter("serving.jobs_resumed").inc();
  restack();
}

void Scheduler::restack() {
  // Stack every live least-squares job whose dimension matches the
  // first such job's into one grouped evaluator, submission order.
  evaluator_ = nullptr;
  for (Entry& entry : jobs_) entry.in_group = false;

  std::vector<Entry*> candidates;
  std::size_t d = 0;
  for (Entry& entry : jobs_) {
    if (entry.state == JobState::kDone) continue;
    std::size_t entry_d = 0;
    if (!core::BatchGradientEvaluator::all_least_squares(entry.built->problem.costs, &entry_d)) {
      continue;
    }
    if (candidates.empty()) d = entry_d;
    if (entry_d == d) candidates.push_back(&entry);
  }
  if (candidates.empty()) return;

  std::vector<std::vector<core::CostPtr>> groups;
  groups.reserve(candidates.size());
  for (Entry* entry : candidates) groups.push_back(entry->built->problem.costs);
  evaluator_ = core::BatchGradientEvaluator::try_create_grouped(groups);
  if (evaluator_ == nullptr) return;

  for (std::size_t g = 0; g < candidates.size(); ++g) {
    candidates[g]->in_group = true;
    candidates[g]->agent_base = evaluator_->group_offset(g);
  }
  telemetry::registry().counter("serving.restacks").inc();
}

std::string Scheduler::step(
    const std::function<void(const JobCheckpoint&, bool finished)>& on_checkpoint) {
  if (jobs_.empty()) return "";
  const std::size_t count = jobs_.size();
  for (std::size_t probe = 0; probe < count; ++probe) {
    Entry& entry = jobs_[(next_ + probe) % count];
    if (entry.state == JobState::kDone) continue;
    next_ = (next_ + probe + 1) % count;

    entry.state = JobState::kRunning;
    SliceContext ctx;
    ctx.built = entry.built.get();
    if (entry.in_group && evaluator_ != nullptr) {
      ctx.evaluator = evaluator_.get();
      ctx.agent_base = entry.agent_base;
    }
    run_job_slice(entry.checkpoint, options_.slice_rounds, ctx);

    const bool finished = entry.checkpoint.finished();
    entry.state = finished ? JobState::kDone : JobState::kQueued;
    if (on_checkpoint) on_checkpoint(entry.checkpoint, finished);
    if (finished) {
      telemetry::registry().counter("serving.jobs_completed").inc();
      restack();
    }
    return entry.spec.job_id;
  }
  return "";
}

bool Scheduler::idle() const {
  for (const Entry& entry : jobs_) {
    if (entry.state != JobState::kDone) return false;
  }
  return true;
}

std::size_t Scheduler::live_jobs() const {
  std::size_t live = 0;
  for (const Entry& entry : jobs_) {
    if (entry.state != JobState::kDone) ++live;
  }
  return live;
}

std::optional<JobStatus> Scheduler::status(const std::string& job_id) const {
  const Entry* entry = find(job_id);
  if (entry == nullptr) return std::nullopt;
  JobStatus status;
  status.job_id = entry->spec.job_id;
  status.state = entry->state;
  status.rounds_done = entry->checkpoint.next_round;
  status.rounds_total = entry->spec.scenario.rounds;
  return status;
}

std::vector<JobStatus> Scheduler::list() const {
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const Entry& entry : jobs_) {
    JobStatus status;
    status.job_id = entry.spec.job_id;
    status.state = entry.state;
    status.rounds_done = entry.checkpoint.next_round;
    status.rounds_total = entry.spec.scenario.rounds;
    out.push_back(std::move(status));
  }
  return out;
}

const JobCheckpoint* Scheduler::checkpoint(const std::string& job_id) const {
  const Entry* entry = find(job_id);
  return entry == nullptr ? nullptr : &entry->checkpoint;
}

const JobCheckpoint* Scheduler::finished_checkpoint(const std::string& job_id) const {
  const Entry* entry = find(job_id);
  if (entry == nullptr || entry->state != JobState::kDone) return nullptr;
  return &entry->checkpoint;
}

const chaos::MaterializedScenario* Scheduler::built(const std::string& job_id) const {
  const Entry* entry = find(job_id);
  return entry == nullptr ? nullptr : entry->built.get();
}

}  // namespace redopt::serving
