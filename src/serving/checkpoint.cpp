#include "serving/checkpoint.h"

#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/json.h"

namespace redopt::serving {

namespace {

std::string vector_json(const linalg::Vector& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += util::json_number(v[i]);
  }
  out += "]";
  return out;
}

linalg::Vector vector_from(const util::JsonValue& value, std::size_t d, const char* what) {
  const auto& items = value.as_array();
  REDOPT_REQUIRE(items.size() == d, std::string("checkpoint: ") + what +
                                        " has wrong dimension");
  linalg::Vector v(d);
  for (std::size_t i = 0; i < d; ++i) {
    v[i] = items[i].as_number();
  }
  return v;
}

std::uint64_t uint_from(const util::JsonValue& value, const char* what) {
  const std::int64_t raw = value.as_int(0, std::numeric_limits<std::int64_t>::max());
  (void)what;
  return static_cast<std::uint64_t>(raw);
}

}  // namespace

std::string JobCheckpoint::to_json() const {
  std::string out = "{";
  out += "\"spec\":" + spec.to_json() + ",";
  out += "\"next_round\":" + std::to_string(next_round) + ",";
  out += "\"x\":" + vector_json(x) + ",";
  out += "\"history\":[";
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (i > 0) out += ",";
    out += vector_json(history[i]);
  }
  out += "],";
  out += "\"pending\":[";
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (i > 0) out += ",";
    const PendingReply& r = pending[i];
    out += "{\"agent\":" + std::to_string(r.agent) + ",\"emitted\":" + std::to_string(r.emitted) +
           ",\"deliver_at\":" + std::to_string(r.deliver_at) +
           ",\"payload\":" + vector_json(r.payload) + "}";
  }
  out += "],";
  out += "\"counters\":{";
  out += "\"byzantine_replies\":" + std::to_string(counters.byzantine_replies) + ",";
  out += "\"crashed_absences\":" + std::to_string(counters.crashed_absences) + ",";
  out += "\"stale_replies\":" + std::to_string(counters.stale_replies) + ",";
  out += "\"dropped_replies\":" + std::to_string(counters.dropped_replies) + ",";
  out += "\"delayed_replies\":" + std::to_string(counters.delayed_replies) + ",";
  out += "\"duplicated_replies\":" + std::to_string(counters.duplicated_replies) + ",";
  out += "\"superseded_replies\":" + std::to_string(counters.superseded_replies) + ",";
  out += "\"filter_rebuilds\":" + std::to_string(counters.filter_rebuilds);
  out += "},";
  out += "\"initial_distance\":" + util::json_number(initial_distance) + ",";
  out += "\"max_distance\":" + util::json_number(max_distance) + ",";
  out += "\"nonfinite\":" + std::string(nonfinite ? "true" : "false") + ",";
  out += "\"nonfinite_round\":" + std::to_string(nonfinite_round);
  out += "}";
  return out;
}

JobCheckpoint checkpoint_from_json(const std::string& text) {
  const util::JsonValue doc = util::json_parse(text);
  REDOPT_REQUIRE(doc.kind == util::JsonValue::Kind::kObject,
                 "checkpoint: expected a JSON object");

  JobCheckpoint ck;
  bool saw_spec = false, saw_next_round = false, saw_x = false, saw_history = false;
  bool saw_pending = false, saw_counters = false, saw_initial = false, saw_max = false;
  bool saw_nonfinite = false, saw_nonfinite_round = false;

  // The spec member must parse first (vector dimensions are checked
  // against it), so pre-scan for it before walking the rest.
  const util::JsonValue* spec_value = doc.find("spec");
  REDOPT_REQUIRE(spec_value != nullptr, "checkpoint: missing member: spec");
  ck.spec = job_spec_from_json(util::json_serialize(*spec_value));
  const std::size_t d = ck.spec.scenario.d;
  const std::size_t rounds = ck.spec.scenario.rounds;

  for (const auto& [key, value] : doc.members) {
    if (key == "spec") {
      saw_spec = true;  // parsed above
    } else if (key == "next_round") {
      ck.next_round = static_cast<std::size_t>(
          value.as_int(0, static_cast<std::int64_t>(rounds)));
      saw_next_round = true;
    } else if (key == "x") {
      ck.x = vector_from(value, d, "x");
      saw_x = true;
    } else if (key == "history") {
      const auto& items = value.as_array();
      REDOPT_REQUIRE(!items.empty(), "checkpoint: history must be non-empty");
      REDOPT_REQUIRE(items.size() <= rounds + 1, "checkpoint: history longer than the run");
      for (const auto& item : items) {
        ck.history.push_back(vector_from(item, d, "history entry"));
      }
      saw_history = true;
    } else if (key == "pending") {
      for (const auto& item : value.as_array()) {
        REDOPT_REQUIRE(item.kind == util::JsonValue::Kind::kObject,
                       "checkpoint: pending entry must be an object");
        PendingReply reply;
        bool saw_agent = false, saw_emitted = false, saw_deliver = false, saw_payload = false;
        for (const auto& [rkey, rvalue] : item.members) {
          if (rkey == "agent") {
            reply.agent = static_cast<std::size_t>(
                rvalue.as_int(0, static_cast<std::int64_t>(ck.spec.scenario.n) - 1));
            saw_agent = true;
          } else if (rkey == "emitted") {
            reply.emitted = static_cast<std::size_t>(
                rvalue.as_int(0, static_cast<std::int64_t>(rounds) - 1));
            saw_emitted = true;
          } else if (rkey == "deliver_at") {
            reply.deliver_at = static_cast<std::size_t>(
                rvalue.as_int(0, std::numeric_limits<std::int64_t>::max()));
            saw_deliver = true;
          } else if (rkey == "payload") {
            reply.payload = vector_from(rvalue, d, "pending payload");
            saw_payload = true;
          } else {
            REDOPT_REQUIRE(false, "checkpoint: unknown pending member: " + rkey);
          }
        }
        REDOPT_REQUIRE(saw_agent && saw_emitted && saw_deliver && saw_payload,
                       "checkpoint: pending entry missing a member");
        REDOPT_REQUIRE(reply.deliver_at > reply.emitted,
                       "checkpoint: pending reply must deliver after emission");
        ck.pending.push_back(std::move(reply));
      }
      saw_pending = true;
    } else if (key == "counters") {
      REDOPT_REQUIRE(value.kind == util::JsonValue::Kind::kObject,
                     "checkpoint: counters must be an object");
      for (const auto& [ckey, cvalue] : value.members) {
        if (ckey == "byzantine_replies") {
          ck.counters.byzantine_replies = uint_from(cvalue, ckey.c_str());
        } else if (ckey == "crashed_absences") {
          ck.counters.crashed_absences = uint_from(cvalue, ckey.c_str());
        } else if (ckey == "stale_replies") {
          ck.counters.stale_replies = uint_from(cvalue, ckey.c_str());
        } else if (ckey == "dropped_replies") {
          ck.counters.dropped_replies = uint_from(cvalue, ckey.c_str());
        } else if (ckey == "delayed_replies") {
          ck.counters.delayed_replies = uint_from(cvalue, ckey.c_str());
        } else if (ckey == "duplicated_replies") {
          ck.counters.duplicated_replies = uint_from(cvalue, ckey.c_str());
        } else if (ckey == "superseded_replies") {
          ck.counters.superseded_replies = uint_from(cvalue, ckey.c_str());
        } else if (ckey == "filter_rebuilds") {
          ck.counters.filter_rebuilds = uint_from(cvalue, ckey.c_str());
        } else {
          REDOPT_REQUIRE(false, "checkpoint: unknown counter: " + ckey);
        }
      }
      saw_counters = true;
    } else if (key == "initial_distance") {
      ck.initial_distance = value.as_number();
      saw_initial = true;
    } else if (key == "max_distance") {
      ck.max_distance = value.as_number();
      saw_max = true;
    } else if (key == "nonfinite") {
      ck.nonfinite = value.as_bool();
      saw_nonfinite = true;
    } else if (key == "nonfinite_round") {
      ck.nonfinite_round = static_cast<std::size_t>(
          value.as_int(0, std::numeric_limits<std::int64_t>::max()));
      saw_nonfinite_round = true;
    } else {
      REDOPT_REQUIRE(false, "checkpoint: unknown member: " + key);
    }
  }

  REDOPT_REQUIRE(saw_spec && saw_next_round && saw_x && saw_history && saw_pending &&
                     saw_counters && saw_initial && saw_max && saw_nonfinite &&
                     saw_nonfinite_round,
                 "checkpoint: missing a required member");
  REDOPT_REQUIRE(ck.history.front() == ck.x,
                 "checkpoint: history front must equal the current iterate");
  for (const PendingReply& reply : ck.pending) {
    REDOPT_REQUIRE(reply.deliver_at >= ck.next_round,
                   "checkpoint: pending reply delivers in the past");
  }
  REDOPT_REQUIRE(std::isfinite(ck.initial_distance) && std::isfinite(ck.max_distance),
                 "checkpoint: distances must be finite");
  return ck;
}

}  // namespace redopt::serving
