#include "serving/runner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "attacks/registry.h"
#include "dgd/projection.h"
#include "dgd/schedule.h"
#include "filters/registry.h"
#include "rng/rng.h"
#include "runtime/runtime.h"
#include "telemetry/metrics.h"
#include "telemetry/ship.h"
#include "telemetry/span.h"
#include "util/error.h"
#include "util/json.h"

namespace redopt::serving {

namespace {

bool in_window(const chaos::FaultSpec& spec, std::size_t t) {
  if (t < spec.from) return false;
  return spec.until == 0 || t < spec.until;
}

bool all_finite(const linalg::Vector& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::string vector_json(const linalg::Vector& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += util::json_number(v[i]);
  }
  out += "]";
  return out;
}

}  // namespace

JobCheckpoint make_initial_checkpoint(const JobSpec& spec,
                                      const chaos::MaterializedScenario& built) {
  spec.validate();
  const chaos::Scenario& s = spec.scenario;
  const dgd::BoxProjection projection = dgd::BoxProjection::cube(s.d, 10.0);

  // The same "x0" fork chaos::run_scenario draws, so fault-free serving
  // trajectories coincide with the in-process executor's.
  rng::Rng x0_rng = rng::Rng(s.seed).fork("x0");
  linalg::Vector x(s.d);
  for (auto& v : x) v = x0_rng.uniform(-5.0, 5.0);
  x = projection.project(x);

  JobCheckpoint ck;
  ck.spec = spec;
  ck.x = x;
  ck.history.push_front(std::move(x));
  ck.initial_distance = linalg::distance(ck.x, built.reference);
  ck.max_distance = ck.initial_distance;
  return ck;
}

std::size_t run_job_slice(JobCheckpoint& ck, std::size_t max_rounds, const SliceContext& ctx) {
  REDOPT_REQUIRE(ctx.built != nullptr, "runner: slice context missing the materialized scenario");
  if (ck.finished() || max_rounds == 0) return 0;

  const chaos::Scenario& s = ck.spec.scenario;
  const auto& problem = ctx.built->problem;
  const std::size_t n = s.n;
  const std::size_t d = s.d;
  REDOPT_REQUIRE(ctx.evaluator == nullptr ||
                     ctx.agent_base + n <= ctx.evaluator->num_agents(),
                 "runner: evaluator group out of range");

  auto& reg = telemetry::registry();
  const auto metric_slices = reg.counter("serving.slices");
  const auto metric_rounds = reg.counter("serving.rounds");

  telemetry::ScopedSpan slice_span("serving.slice");
  slice_span.attr("job", ck.spec.job_id)
      .attr("from", static_cast<std::uint64_t>(ck.next_round));

  // Per-agent fault lookup (at most one spec per agent), stateless
  // attacks reconstructed fresh — resume-safe by construction.
  std::vector<const chaos::FaultSpec*> spec_of(n, nullptr);
  for (const chaos::FaultSpec& spec : s.faults) spec_of[spec.agent] = &spec;
  std::vector<std::unique_ptr<attacks::Attack>> attack_of(n);
  for (const chaos::FaultSpec& spec : s.faults) {
    if (spec.kind == chaos::FaultSpec::Kind::kByzantine) {
      attack_of[spec.agent] = chaos::make_scenario_attack(spec.attack, spec.attack_param);
    }
  }

  // Round-local filters cached by (reply count, fault budget), with the
  // executor's f-decrement fallback (see chaos/executor.cpp).
  std::map<std::pair<std::size_t, std::size_t>, filters::FilterPtr> filter_cache;
  auto filter_for = [&](std::size_t n_round, std::size_t* f_used) -> const filters::FilterPtr& {
    std::size_t f_try = std::min(s.f, n_round == 0 ? std::size_t{0} : n_round - 1);
    while (true) {
      const auto key = std::make_pair(n_round, f_try);
      auto it = filter_cache.find(key);
      if (it != filter_cache.end()) {
        *f_used = f_try;
        return it->second;
      }
      try {
        filters::FilterParams fp;
        fp.n = n_round;
        fp.f = f_try;
        auto made = filters::FilterPtr(filters::make_filter(s.filter, fp));
        *f_used = f_try;
        return filter_cache.emplace(key, std::move(made)).first->second;
      } catch (const PreconditionError&) {
        if (f_try == 0) break;
        --f_try;
      }
    }
    const auto key = std::make_pair(n_round, std::size_t{0});
    auto it = filter_cache.find(key);
    *f_used = 0;
    if (it != filter_cache.end()) return it->second;
    filters::FilterParams fp;
    fp.n = n_round;
    fp.f = 0;
    return filter_cache.emplace(key, filters::make_filter("mean", fp)).first->second;
  };

  const dgd::HarmonicSchedule schedule(chaos::scenario_schedule_coefficient(s.filter, n, s.f));
  const dgd::BoxProjection projection = dgd::BoxProjection::cube(d, 10.0);
  const rng::Rng root(s.seed);

  std::size_t max_staleness = 0;
  for (const chaos::FaultSpec& spec : s.faults) {
    if (spec.kind == chaos::FaultSpec::Kind::kStraggler) {
      max_staleness = std::max(max_staleness, spec.staleness);
    }
  }

  // In-flight delayed replies, keyed by delivery round; the checkpoint
  // stores them flattened in (round, emission-order) — the same order a
  // grouping rebuild produces.
  std::map<std::size_t, std::vector<PendingReply>> pending;
  for (PendingReply& reply : ck.pending) {
    pending[reply.deliver_at].push_back(std::move(reply));
  }
  ck.pending.clear();

  linalg::Vector x = ck.x;
  std::deque<linalg::Vector>& history = ck.history;

  std::vector<linalg::Vector> payloads(n);
  std::vector<linalg::Vector> residual_ws(ctx.evaluator != nullptr ? n : 0);
  std::vector<char> emits(n, 0);
  std::size_t ran = 0;

  for (std::size_t t = ck.next_round; t < s.rounds && ran < max_rounds; ++t, ++ran) {
    // --- Emission: every non-crashed agent computes its reply. ---
    for (std::size_t i = 0; i < n; ++i) {
      const chaos::FaultSpec* spec = spec_of[i];
      emits[i] =
          !(spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kCrash && in_window(*spec, t));
      if (!emits[i]) ++ck.counters.crashed_absences;
    }
    runtime::parallel_for(0, n, [&](std::size_t i) {
      if (!emits[i]) return;
      const chaos::FaultSpec* spec = spec_of[i];
      std::size_t staleness = 0;
      if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kStraggler &&
          in_window(*spec, t)) {
        staleness = std::min(spec->staleness, history.size() - 1);
      }
      if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kByzantine &&
          in_window(*spec, t)) {
        staleness = 0;  // attacks see the freshest state
      }
      if (ctx.evaluator != nullptr) {
        ctx.evaluator->evaluate_agent(ctx.agent_base + i, history[staleness], residual_ws[i],
                                      payloads[i]);
      } else {
        payloads[i] = problem.costs[i]->gradient(history[staleness]);
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      if (!emits[i]) continue;
      const chaos::FaultSpec* spec = spec_of[i];
      if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kStraggler &&
          in_window(*spec, t) && history.size() > 1) {
        ++ck.counters.stale_replies;
      }
    }

    // What the adversary observes: non-Byzantine emitted replies.
    std::vector<linalg::Vector> observed;
    observed.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const chaos::FaultSpec* spec = spec_of[i];
      if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kByzantine) continue;
      if (!emits[i]) continue;
      observed.push_back(payloads[i]);
    }

    for (std::size_t i = 0; i < n; ++i) {
      const chaos::FaultSpec* spec = spec_of[i];
      if (spec == nullptr || spec->kind != chaos::FaultSpec::Kind::kByzantine ||
          !in_window(*spec, t)) {
        continue;
      }
      const linalg::Vector true_gradient = payloads[i];
      const std::vector<linalg::Vector>* seen = observed.empty() ? nullptr : &observed;
      const std::vector<linalg::Vector> fallback{true_gradient};
      // Per-(agent, round) fork: no cross-round attack RNG state exists,
      // so the checkpoint never has to carry it.
      rng::Rng attack_rng =
          root.fork("attack-" + std::to_string(i) + "-" + std::to_string(t));
      attacks::AttackContext actx;
      actx.iteration = t;
      actx.agent_id = i;
      actx.n = n;
      actx.f = s.f;
      actx.estimate = &x;
      actx.honest_gradient = &true_gradient;
      actx.honest_gradients = seen != nullptr ? seen : &fallback;
      actx.rng = &attack_rng;
      payloads[i] = attack_of[i]->craft(actx);
      REDOPT_REQUIRE(payloads[i].size() == d, "runner: attack crafted a wrong-dimension vector");
      ++ck.counters.byzantine_replies;
    }

    // --- Channel: drop / duplicate / delay, draws in agent order from
    // this round's dedicated fork. ---
    rng::Rng channel_rng = root.fork("channel-" + std::to_string(t));
    std::vector<PendingReply> arrivals;
    if (auto it = pending.find(t); it != pending.end()) {
      arrivals = std::move(it->second);
      pending.erase(it);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!emits[i]) continue;
      PendingReply reply{i, t, t, payloads[i]};
      if (s.channel.drop_probability > 0.0 &&
          channel_rng.uniform() < s.channel.drop_probability) {
        ++ck.counters.dropped_replies;
        continue;
      }
      if (s.channel.duplicate_probability > 0.0 &&
          channel_rng.uniform() < s.channel.duplicate_probability) {
        ++ck.counters.duplicated_replies;
        arrivals.push_back(reply);  // the extra copy lands on time
      }
      if (s.channel.max_delay > 0) {
        const auto delay = static_cast<std::size_t>(
            channel_rng.uniform_int(0, static_cast<std::int64_t>(s.channel.max_delay)));
        if (delay > 0) {
          ++ck.counters.delayed_replies;
          reply.deliver_at = t + delay;
          pending[t + delay].push_back(std::move(reply));
          continue;
        }
      }
      arrivals.push_back(std::move(reply));
    }

    // --- Receive: freshest reply per agent this round. ---
    std::map<std::size_t, PendingReply> inbox;
    for (PendingReply& reply : arrivals) {
      auto [it, inserted] = inbox.try_emplace(reply.agent, std::move(reply));
      if (inserted) continue;
      if (reply.emitted > it->second.emitted) {
        it->second = std::move(reply);
      }
      ++ck.counters.superseded_replies;
    }

    // --- Aggregate and step. ---
    metric_rounds.inc();
    if (!inbox.empty()) {
      std::vector<linalg::Vector> received;
      received.reserve(inbox.size());
      for (auto& [agent, reply] : inbox) {
        (void)agent;
        received.push_back(std::move(reply.payload));
      }
      std::size_t f_used = 0;
      const filters::FilterPtr& filter = filter_for(received.size(), &f_used);
      if (received.size() != n || f_used != s.f) ++ck.counters.filter_rebuilds;
      const linalg::Vector direction = filter->apply(received);
      x = projection.project(x - direction * schedule.step(t));
    }
    history.push_front(x);
    while (history.size() > max_staleness + 1) history.pop_back();

    ck.next_round = t + 1;
    if (!all_finite(x)) {
      ck.nonfinite = true;
      ck.nonfinite_round = t;
      ++ran;
      break;
    }
    ck.max_distance = std::max(ck.max_distance, linalg::distance(x, ctx.built->reference));
  }

  ck.x = x;

  // Flatten the in-flight replies back into the checkpoint, delivery
  // round ascending (map order), emission order within a round.
  for (auto& [round, replies] : pending) {
    (void)round;
    for (PendingReply& reply : replies) ck.pending.push_back(std::move(reply));
  }

  metric_slices.inc();
  slice_span.attr("rounds", static_cast<std::uint64_t>(ran));
  return ran;
}

std::string job_manifest_json(const JobCheckpoint& ck, const chaos::MaterializedScenario& built,
                              double wall_seconds) {
  REDOPT_REQUIRE(ck.finished(), "manifest: job has rounds remaining");
  const double final_distance = ck.nonfinite ? std::numeric_limits<double>::infinity()
                                             : linalg::distance(ck.x, built.reference);

  // Ship a per-job telemetry island through the same serialize -> parse
  // -> render pipeline the transport backends use, so the manifest's
  // telemetry section canonicalizes identically everywhere.
  telemetry::AgentTelemetry island;
  island.registry.counter("serving.job.rounds").inc(ck.next_round);
  island.registry.counter("serving.job.byzantine_replies").inc(ck.counters.byzantine_replies);
  island.registry.counter("serving.job.crashed_absences").inc(ck.counters.crashed_absences);
  island.registry.counter("serving.job.stale_replies").inc(ck.counters.stale_replies);
  island.registry.counter("serving.job.dropped_replies").inc(ck.counters.dropped_replies);
  island.registry.counter("serving.job.delayed_replies").inc(ck.counters.delayed_replies);
  island.registry.counter("serving.job.duplicated_replies").inc(ck.counters.duplicated_replies);
  island.registry.counter("serving.job.superseded_replies").inc(ck.counters.superseded_replies);
  island.registry.counter("serving.job.filter_rebuilds").inc(ck.counters.filter_rebuilds);
  if (std::isfinite(final_distance)) {
    island.registry.gauge("serving.job.final_distance").set(final_distance);
  }
  island.registry.gauge("serving.job.initial_distance").set(ck.initial_distance);
  island.registry.gauge("serving.job.max_distance").set(ck.max_distance);
  const std::string blob = telemetry::serialize_agent_telemetry(0, island);
  const telemetry::AgentSnapshot snapshot = telemetry::parse_agent_snapshot(blob);
  const std::string tele = telemetry::render_merged_manifest(telemetry::Snapshot{}, {snapshot});

  std::string out = "{";
  out += "\"job\":\"" + util::json_escape(ck.spec.job_id) + "\",";
  out += "\"scenario\":" + ck.spec.scenario.to_json() + ",";
  out += "\"rounds\":" + std::to_string(ck.next_round) + ",";
  out += "\"result\":{";
  out += "\"initial_distance\":" + util::json_number(ck.initial_distance) + ",";
  out += "\"final_distance\":" + util::json_number(final_distance) + ",";
  out += "\"max_distance\":" + util::json_number(ck.max_distance) + ",";
  out += "\"nonfinite\":" + std::string(ck.nonfinite ? "true" : "false") + ",";
  out += "\"nonfinite_round\":" + std::to_string(ck.nonfinite_round) + ",";
  out += "\"estimate\":" + vector_json(ck.x) + ",";
  out += "\"counters\":{";
  out += "\"byzantine_replies\":" + std::to_string(ck.counters.byzantine_replies) + ",";
  out += "\"crashed_absences\":" + std::to_string(ck.counters.crashed_absences) + ",";
  out += "\"stale_replies\":" + std::to_string(ck.counters.stale_replies) + ",";
  out += "\"dropped_replies\":" + std::to_string(ck.counters.dropped_replies) + ",";
  out += "\"delayed_replies\":" + std::to_string(ck.counters.delayed_replies) + ",";
  out += "\"duplicated_replies\":" + std::to_string(ck.counters.duplicated_replies) + ",";
  out += "\"superseded_replies\":" + std::to_string(ck.counters.superseded_replies) + ",";
  out += "\"filter_rebuilds\":" + std::to_string(ck.counters.filter_rebuilds);
  out += "}},";
  out += "\"telemetry\":" + tele + ",";
  out += "\"nd\":{\"wall_s\":" + util::json_number(wall_seconds) + "}";
  out += "}";
  return out;
}

}  // namespace redopt::serving
