#include "serving/daemon.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/ship.h"
#include "telemetry/span.h"
#include "telemetry/trace_export.h"
#include "util/error.h"
#include "util/frame.h"
#include "util/json.h"
#include "util/stopwatch.h"

namespace redopt::serving {

namespace fs = std::filesystem;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  REDOPT_REQUIRE(in.good(), "cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  REDOPT_REQUIRE(in.good() || in.eof(), "failed reading file: " + path);
  return buffer.str();
}

std::string error_response(const std::string& message) {
  return "{\"ok\":false,\"error\":\"" + util::json_escape(message) + "\"}";
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    REDOPT_REQUIRE(out.good(), "cannot open file for writing: " + tmp);
    out << bytes;
    out.flush();
    REDOPT_REQUIRE(out.good(), "failed writing file: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  REDOPT_REQUIRE(!ec, "cannot rename " + tmp + " -> " + path + ": " + ec.message());
}

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      scheduler_(options_.scheduler),
      listener_(options_.socket_path) {
  REDOPT_REQUIRE(!options_.state_dir.empty(), "daemon: state_dir must be set");
  std::error_code ec;
  fs::create_directories(options_.state_dir, ec);
  REDOPT_REQUIRE(!ec, "daemon: cannot create state dir " + options_.state_dir);
}

std::string Daemon::checkpoint_path(const std::string& job_id) const {
  return (fs::path(options_.state_dir) / (job_id + ".ckpt.json")).string();
}

std::string Daemon::manifest_path(const std::string& job_id) const {
  return (fs::path(options_.state_dir) / (job_id + ".manifest.json")).string();
}

std::size_t Daemon::recover() {
  // Sort the checkpoint files so adoption (and hence the round-robin
  // submission order after a restart) is filesystem-independent.
  std::vector<std::string> checkpoint_files;
  for (const auto& entry : fs::directory_iterator(options_.state_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 10 && name.substr(name.size() - 10) == ".ckpt.json") {
      checkpoint_files.push_back(entry.path().string());
    }
  }
  std::sort(checkpoint_files.begin(), checkpoint_files.end());

  std::size_t resumed = 0;
  for (const std::string& path : checkpoint_files) {
    const JobCheckpoint checkpoint = checkpoint_from_json(read_file(path));
    const std::string& job_id = checkpoint.spec.job_id;
    if (fs::exists(manifest_path(job_id))) {
      // The crash landed between manifest write and checkpoint removal:
      // the job is complete, only the cleanup is owed.
      std::error_code ec;
      fs::remove(path, ec);
      continue;
    }
    started_at_[job_id] = uptime_.elapsed_seconds();
    scheduler_.adopt(checkpoint);
    ++resumed;
  }
  return resumed;
}

void Daemon::persist(const JobCheckpoint& checkpoint, bool finished) {
  const std::string& job_id = checkpoint.spec.job_id;
  if (!finished) {
    atomic_write_file(checkpoint_path(job_id), checkpoint.to_json());
    return;
  }
  const chaos::MaterializedScenario* built = scheduler_.built(job_id);
  REDOPT_ASSERT(built != nullptr, "daemon: finished job has no materialized scenario");
  const auto it = started_at_.find(job_id);
  const double wall_s = it == started_at_.end() ? 0.0 : uptime_.elapsed_seconds() - it->second;
  const std::string manifest = job_manifest_json(checkpoint, *built, wall_s);
  // The manifest file carries the stable projection: deterministic
  // bytes, so kill/resume equivalence is a plain file comparison.
  atomic_write_file(manifest_path(job_id), telemetry::stable_json_projection(manifest));
  std::error_code ec;
  fs::remove(checkpoint_path(job_id), ec);
  telemetry::span_instant("serving.manifest", {{"job", telemetry::Value(job_id)}});
}

std::string Daemon::handle_request(const std::string& request_json) {
  try {
    const util::JsonValue doc = util::json_parse(request_json);
    const std::string op = doc.at("op").as_string();

    if (op == "submit") {
      const util::JsonValue* job = doc.find("job");
      REDOPT_REQUIRE(job != nullptr, "submit: missing member: job");
      const JobSpec spec = job_spec_from_json(util::json_serialize(*job));
      const std::string reason = scheduler_.submit(spec);
      if (!reason.empty()) return error_response(reason);
      started_at_[spec.job_id] = uptime_.elapsed_seconds();
      // Persist the round-0 checkpoint immediately: a daemon killed
      // right after admission still owes the client this job.
      const JobCheckpoint* checkpoint = scheduler_.checkpoint(spec.job_id);
      REDOPT_ASSERT(checkpoint != nullptr, "daemon: admitted job has no checkpoint");
      persist(*checkpoint, false);
      const auto status = scheduler_.status(spec.job_id);
      return "{\"ok\":true,\"job\":\"" + util::json_escape(spec.job_id) + "\",\"state\":\"" +
             to_string(status->state) + "\"}";
    }

    if (op == "status") {
      const std::string job_id = doc.at("job").as_string();
      const auto status = scheduler_.status(job_id);
      if (!status.has_value()) {
        if (fs::exists(manifest_path(job_id))) {
          return "{\"ok\":true,\"job\":\"" + util::json_escape(job_id) +
                 "\",\"state\":\"done\"}";
        }
        return error_response("unknown job: " + job_id);
      }
      return "{\"ok\":true,\"job\":\"" + util::json_escape(job_id) + "\",\"state\":\"" +
             to_string(status->state) +
             "\",\"rounds_done\":" + std::to_string(status->rounds_done) +
             ",\"rounds_total\":" + std::to_string(status->rounds_total) + "}";
    }

    if (op == "result") {
      const std::string job_id = doc.at("job").as_string();
      const std::string path = manifest_path(job_id);
      if (!fs::exists(path)) {
        if (scheduler_.status(job_id).has_value()) {
          return error_response("job not finished: " + job_id);
        }
        return error_response("unknown job: " + job_id);
      }
      return "{\"ok\":true,\"job\":\"" + util::json_escape(job_id) +
             "\",\"manifest\":" + read_file(path) + "}";
    }

    if (op == "list") {
      std::string out = "{\"ok\":true,\"jobs\":[";
      bool first = true;
      for (const JobStatus& status : scheduler_.list()) {
        if (!first) out += ",";
        first = false;
        out += "{\"job\":\"" + util::json_escape(status.job_id) + "\",\"state\":\"" +
               to_string(status.state) +
               "\",\"rounds_done\":" + std::to_string(status.rounds_done) +
               ",\"rounds_total\":" + std::to_string(status.rounds_total) + "}";
      }
      out += "]}";
      return out;
    }

    if (op == "shutdown") {
      shutdown_ = true;
      return "{\"ok\":true,\"shutting_down\":true}";
    }

    return error_response("unknown op: " + op);
  } catch (const PreconditionError& e) {
    return error_response(e.what());
  }
}

bool Daemon::poll_once() {
  bool worked = false;

  // Only block in accept() when there is no job to run: with work
  // pending, a zero-timeout poll keeps the loop CPU-bound on slices
  // instead of sleeping the accept quantum between every slice.
  const int accept_timeout = scheduler_.idle() ? options_.accept_timeout_ms : 0;
  if (auto stream = listener_.accept(accept_timeout); stream.has_value()) {
    telemetry::ScopedSpan request_span("serving.request");
    util::Frame request;
    const auto status =
        stream->read_frame(&request, options_.io_timeout_ms, options_.io_max_retries);
    if (status == transport::UdsIoStatus::kOk) {
      if (request.type == util::FrameType::kShutdown) {
        shutdown_ = true;
        util::Frame reply;
        reply.type = util::FrameType::kShutdown;
        reply.agent = util::kCoordinatorAgent;
        stream->write_frame(reply);
      } else if (request.type == util::FrameType::kTelemetry) {
        std::string response;
        try {
          response = handle_request(util::unpack_blob(request.payload));
        } catch (const PreconditionError& e) {
          response = error_response(e.what());
        }
        util::Frame reply;
        reply.type = util::FrameType::kTelemetry;
        reply.agent = util::kCoordinatorAgent;
        reply.payload = util::pack_blob(response);
        stream->write_frame(reply);
      } else {
        telemetry::registry().counter("serving.bad_frames").inc();
      }
      worked = true;
    } else {
      telemetry::registry().counter("serving.bad_frames").inc();
    }
  }

  if (!shutdown_) {
    const std::string stepped = scheduler_.step(
        [this](const JobCheckpoint& checkpoint, bool finished) { persist(checkpoint, finished); });
    worked = worked || !stepped.empty();
  }
  return worked;
}

void Daemon::serve() {
  telemetry::ScopedSpan serve_span("serving.daemon");
  while (!shutdown_) {
    poll_once();
  }
  if (!options_.trace_out.empty()) write_trace();
}

void Daemon::write_trace() const {
  const auto& log = telemetry::span_log();
  telemetry::TraceTrack track;
  track.pid = 0;
  track.name = "redoptd";
  track.spans = &log.spans();
  track.instants = &log.instants();
  atomic_write_file(options_.trace_out, telemetry::render_chrome_trace({track}));
}

}  // namespace redopt::serving
