// Deterministic job checkpoints: the resumable state of a serving job.
//
// A checkpoint is everything the slice runner (serving/runner.h) needs
// to continue a job from round `next_round` exactly as if it had never
// stopped: the embedded spec, the current iterate, the straggler
// history window, the channel's in-flight delayed replies, and the
// accumulated fault counters.  Nothing else is needed because all
// per-round randomness derives from per-round named forks of the
// scenario seed — there is no cross-round RNG stream to serialize.
//
// The JSON form is canonical and bit-exact: doubles serialize through
// util::json_number (17 significant digits, enough to round-trip any
// IEEE-754 double), members emit in a fixed order, and the strict
// parser rejects unknown members.  serialize(parse(serialize(ck))) ==
// serialize(ck) byte for byte, which is what makes a killed-and-
// restarted daemon's final manifest byte-identical to an uninterrupted
// run's (tests/test_serving.cpp pins exactly that).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "linalg/vector.h"
#include "serving/job.h"

namespace redopt::serving {

/// One delayed reply still in the channel when the checkpoint was cut.
struct PendingReply {
  std::size_t agent = 0;
  std::size_t emitted = 0;     ///< round the payload was computed in
  std::size_t deliver_at = 0;  ///< round it will reach the coordinator
  linalg::Vector payload;
};

/// Fault / channel counters accumulated so far (executor semantics).
struct JobCounters {
  std::uint64_t byzantine_replies = 0;
  std::uint64_t crashed_absences = 0;
  std::uint64_t stale_replies = 0;
  std::uint64_t dropped_replies = 0;
  std::uint64_t delayed_replies = 0;
  std::uint64_t duplicated_replies = 0;
  std::uint64_t superseded_replies = 0;
  std::uint64_t filter_rebuilds = 0;

  friend bool operator==(const JobCounters& a, const JobCounters& b) = default;
};

/// The resumable state of one job.
struct JobCheckpoint {
  JobSpec spec;

  std::size_t next_round = 0;  ///< rounds completed so far
  linalg::Vector x;            ///< current iterate x^{next_round}

  /// Straggler window, newest first: history[s] is x^{next_round - s},
  /// clamped to the scenario's maximum staleness plus one entries.
  std::deque<linalg::Vector> history;

  /// Channel-delayed replies not yet delivered, in emission order.
  std::vector<PendingReply> pending;

  JobCounters counters;

  double initial_distance = 0.0;  ///< ||x^0 - reference||
  double max_distance = 0.0;      ///< max over completed rounds
  bool nonfinite = false;         ///< a NaN/Inf coordinate ended the run
  std::size_t nonfinite_round = 0;

  /// True when no rounds remain: next_round reached the scenario's
  /// schedule or a non-finite iterate ended the run early.
  bool finished() const { return nonfinite || next_round >= spec.scenario.rounds; }

  /// Canonical JSON blob (fixed member order, bit-exact doubles).
  std::string to_json() const;
};

/// Strict inverse of JobCheckpoint::to_json(): unknown members, missing
/// members, wrong-dimension vectors and inconsistent round indices are
/// all rejected with redopt::PreconditionError (the daemon feeds this
/// bytes read back from disk after a crash — they are untrusted).
JobCheckpoint checkpoint_from_json(const std::string& text);

}  // namespace redopt::serving
