#include "transport/attribution.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace redopt::transport {

namespace {

/// Value of counter @p name in a (name-sorted) snapshot; 0 if absent.
std::uint64_t counter_value(const telemetry::Snapshot& metrics, const std::string& name) {
  for (const telemetry::MetricValue& m : metrics) {
    if (m.name == name && m.kind == telemetry::MetricValue::Kind::kCounter) return m.counter;
  }
  return 0;
}

std::string bool_json(bool b) { return b ? "true" : "false"; }

}  // namespace

AttributionBuilder::AttributionBuilder(Topology topology, std::size_t n, std::size_t estimate_dim)
    : topology_(topology), n_(n), estimate_dim_(estimate_dim) {
  REDOPT_REQUIRE(n >= 1, "attribution: need at least one agent");
  agents_.resize(n);
  links_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    agents_[i].agent = static_cast<std::uint32_t>(i);
    links_[i].child = i;
    links_[i].parent = parent_of(topology, i, n);
  }
}

void AttributionBuilder::on_exchange(const std::vector<util::Frame>& frames) {
  ++exchanges_;
  for (const util::Frame& frame : frames) {
    REDOPT_REQUIRE(frame.agent < n_, "attribution: frame from unknown agent");
    AgentAttribution& row = agents_[frame.agent];
    const std::uint64_t wire = util::frame_wire_size(frame);
    ++row.frames_delivered;
    row.bytes_up += wire * frame.hops;
    hops_total_ += frame.hops;
    // Walk the ancestor chain: the frame crossed its emitter's parent
    // edge, then that node's parent edge, ... — frame.hops edges total.
    std::size_t node = frame.agent;
    for (std::uint64_t h = 0; h < frame.hops && node != kCoordinatorNode; ++h) {
      ++links_[node].frames_up;
      links_[node].bytes_up += wire;
      node = parent_of(topology_, node, n_);
    }
  }
}

void AttributionBuilder::on_fate(std::size_t agent, const AgentReplica::RoundFate& fate) {
  REDOPT_REQUIRE(agent < n_, "attribution: fate for unknown agent");
  AgentAttribution& row = agents_[agent];
  const std::uint64_t round = row.rounds;  // fates arrive in round order
  ++row.rounds;
  if (!fate.emits) {
    ++row.crashed;
    return;
  }
  if (fate.byzantine) ++row.byzantine;
  if (fate.stale) ++row.stale;
  if (fate.dropped) {
    ++row.dropped;
    return;
  }
  if (fate.duplicated) {
    ++row.duplicated;
    ++row.expected_frames;  // the extra copy lands on time
  }
  if (fate.delay > 0) {
    ++row.delayed;
    delayed_due_[agent].push_back(round + fate.delay);
  } else {
    ++row.expected_frames;
  }
}

void AttributionBuilder::on_superseded(std::uint32_t agent) {
  REDOPT_REQUIRE(agent < n_, "attribution: superseded reply from unknown agent");
  ++agents_[agent].superseded;
}

AttributionReport AttributionBuilder::build(
    const chaos::ScenarioResult& result, const TransportStats& stats,
    const std::vector<telemetry::AgentSnapshot>& shipped) const {
  AttributionReport report;
  report.agents = agents_;
  report.links = links_;
  report.exchanges = exchanges_;
  report.network_messages = exchanges_ * n_ + hops_total_;
  report.stats = stats;

  // A delayed reply only lands if its due round was actually exchanged.
  for (const auto& [agent, dues] : delayed_due_) {
    for (std::uint64_t due : dues) {
      if (due < exchanges_) ++report.agents[agent].expected_frames;
    }
  }

  const std::uint64_t estimate_wire = util::frame_wire_size_for(estimate_dim_);
  std::uint64_t frames_total = 0;
  std::uint64_t bytes_up_total = 0;
  for (const AgentAttribution& row : report.agents) {
    frames_total += row.frames_delivered;
    bytes_up_total += row.bytes_up;
  }
  std::uint64_t link_frames = 0;
  std::uint64_t link_bytes = 0;
  for (LinkAttribution& link : report.links) {
    link.bytes_down = exchanges_ * estimate_wire;
    link_frames += link.frames_up;
    link_bytes += link.bytes_up + link.bytes_down;
  }
  const std::uint64_t bytes_down_total = exchanges_ * n_ * estimate_wire;

  report.frames_reconcile = exchanges_ == stats.exchanges &&
                            frames_total == stats.frames_delivered && link_frames == hops_total_;
  report.bytes_reconcile = bytes_up_total + bytes_down_total == stats.bytes_on_wire &&
                           link_bytes == stats.bytes_on_wire;

  std::uint64_t byz = 0, crash = 0, stale = 0, drop = 0, delay = 0, dup = 0, superseded = 0;
  for (const AgentAttribution& row : report.agents) {
    byz += row.byzantine;
    crash += row.crashed;
    stale += row.stale;
    drop += row.dropped;
    delay += row.delayed;
    dup += row.duplicated;
    superseded += row.superseded;
  }
  report.fates_reconcile =
      byz == result.byzantine_replies && crash == result.crashed_absences &&
      stale == result.stale_replies && drop == result.dropped_replies &&
      delay == result.delayed_replies && dup == result.duplicated_replies &&
      superseded == result.superseded_replies;

  // Reconcile every shipped island against the coordinator's replay: the
  // agent recorded its own fates; the coordinator recomputed them from
  // the schedule; they must agree counter for counter.
  report.agents_reconcile = true;
  for (const telemetry::AgentSnapshot& snapshot : shipped) {
    if (snapshot.agent >= n_) {
      report.agents_reconcile = false;
      continue;
    }
    AgentAttribution& row = report.agents[snapshot.agent];
    row.shipped = true;
    row.shipped_frames_emitted = counter_value(snapshot.metrics, "replica.frames_emitted");
    row.counters_match =
        counter_value(snapshot.metrics, "replica.rounds") == row.rounds &&
        counter_value(snapshot.metrics, "replica.byzantine_replies") == row.byzantine &&
        counter_value(snapshot.metrics, "replica.crashed_absences") == row.crashed &&
        counter_value(snapshot.metrics, "replica.stale_replies") == row.stale &&
        counter_value(snapshot.metrics, "replica.dropped_replies") == row.dropped &&
        counter_value(snapshot.metrics, "replica.delayed_replies") == row.delayed &&
        counter_value(snapshot.metrics, "replica.duplicated_replies") == row.duplicated;
    if (!row.counters_match) report.agents_reconcile = false;
  }
  return report;
}

std::string AttributionReport::to_text() const {
  std::ostringstream out;
  out << "fault attribution: " << agents.size() << " agents, " << exchanges << " exchanges, "
      << network_messages << " modeled network messages\n";
  out << "agent  delivered  expected  bytes_up  superseded  byz  crash  stale  drop  delay  dup"
         "  shipped  match\n";
  for (const AgentAttribution& a : agents) {
    out << a.agent << "  " << a.frames_delivered << "  " << a.expected_frames << "  " << a.bytes_up
        << "  " << a.superseded << "  " << a.byzantine << "  " << a.crashed << "  " << a.stale
        << "  " << a.dropped << "  " << a.delayed << "  " << a.duplicated << "  "
        << (a.shipped ? "yes" : "no") << "  "
        << (a.shipped ? (a.counters_match ? "yes" : "NO") : "-") << "\n";
  }
  out << "link  frames_up  bytes_up  bytes_down\n";
  for (const LinkAttribution& l : links) {
    if (l.parent == kCoordinatorNode) {
      out << "coord";
    } else {
      out << l.parent;
    }
    out << "->" << l.child << "  " << l.frames_up << "  " << l.bytes_up << "  " << l.bytes_down
        << "\n";
  }
  out << "totals: frames_delivered=" << stats.frames_delivered
      << " bytes_on_wire=" << stats.bytes_on_wire << " reduce_rounds=" << stats.reduce_rounds
      << "\n";
  out << "reconcile: frames=" << (frames_reconcile ? "ok" : "MISMATCH")
      << " bytes=" << (bytes_reconcile ? "ok" : "MISMATCH")
      << " fates=" << (fates_reconcile ? "ok" : "MISMATCH")
      << " agents=" << (agents_reconcile ? "ok" : "MISMATCH") << " -> "
      << (ok() ? "ok" : "MISMATCH") << "\n";
  return out.str();
}

std::string AttributionReport::to_json() const {
  std::ostringstream out;
  out << "{\"v\":1,\"exchanges\":" << exchanges << ",\"network_messages\":" << network_messages;
  out << ",\"stats\":{\"exchanges\":" << stats.exchanges
      << ",\"frames_delivered\":" << stats.frames_delivered
      << ",\"bytes_on_wire\":" << stats.bytes_on_wire
      << ",\"reduce_rounds\":" << stats.reduce_rounds << "}";
  out << ",\"agents\":[";
  for (std::size_t i = 0; i < agents.size(); ++i) {
    const AgentAttribution& a = agents[i];
    if (i > 0) out << ",";
    out << "{\"agent\":" << a.agent << ",\"frames_delivered\":" << a.frames_delivered
        << ",\"expected_frames\":" << a.expected_frames << ",\"bytes_up\":" << a.bytes_up
        << ",\"superseded\":" << a.superseded << ",\"rounds\":" << a.rounds
        << ",\"byzantine\":" << a.byzantine << ",\"crashed\":" << a.crashed
        << ",\"stale\":" << a.stale << ",\"dropped\":" << a.dropped << ",\"delayed\":" << a.delayed
        << ",\"duplicated\":" << a.duplicated << ",\"shipped\":" << bool_json(a.shipped)
        << ",\"shipped_frames_emitted\":" << a.shipped_frames_emitted
        << ",\"counters_match\":" << bool_json(a.counters_match) << "}";
  }
  out << "],\"links\":[";
  for (std::size_t i = 0; i < links.size(); ++i) {
    const LinkAttribution& l = links[i];
    if (i > 0) out << ",";
    out << "{\"parent\":";
    if (l.parent == kCoordinatorNode) {
      out << -1;
    } else {
      out << l.parent;
    }
    out << ",\"child\":" << l.child << ",\"frames_up\":" << l.frames_up
        << ",\"bytes_up\":" << l.bytes_up << ",\"bytes_down\":" << l.bytes_down << "}";
  }
  out << "],\"reconcile\":{\"frames\":" << bool_json(frames_reconcile)
      << ",\"bytes\":" << bool_json(bytes_reconcile) << ",\"fates\":" << bool_json(fates_reconcile)
      << ",\"agents\":" << bool_json(agents_reconcile) << ",\"ok\":" << bool_json(ok()) << "}}";
  return out.str();
}

}  // namespace redopt::transport
