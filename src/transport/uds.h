// Unix-domain stream sockets with poll-bounded, checksummed frame I/O.
//
// This is the transport layer's home for *named* (filesystem-path)
// sockets, as SocketTransport is for anonymous socketpair() links.  The
// serving daemon (src/serving/) listens and accepts through these
// wrappers so raw socket and byte-order calls stay confined to
// src/transport/ (lint rule N1).  The wire format is the util::Frame
// checksummed codec: every message is one length-prefixed frame, and a
// corrupted body (bad magic, checksum, length) surfaces as kError — the
// link is no longer trustworthy.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "util/frame.h"

namespace redopt::transport {

/// Outcome of a bounded read: distinguishes "peer closed cleanly" from
/// "peer is slow" from "the bytes are garbage".
enum class UdsIoStatus { kOk, kEof, kTimeout, kError };

/// A connected Unix-domain stream.  Owns the descriptor; move-only.
class UnixStream {
 public:
  UnixStream() = default;
  /// Adopts an already-connected descriptor (from UnixListener::accept).
  explicit UnixStream(int fd) : fd_(fd) {}
  ~UnixStream();
  UnixStream(UnixStream&& other) noexcept;
  UnixStream& operator=(UnixStream&& other) noexcept;
  UnixStream(const UnixStream&) = delete;
  UnixStream& operator=(const UnixStream&) = delete;

  /// Connects to the listening socket at @p path.  Each poll() wait is
  /// bounded by @p timeout_ms.  Throws redopt::PreconditionError when
  /// the path does not name a live listener.
  static UnixStream connect(const std::string& path, int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  void close();

  /// Reads one length-prefixed frame.  Each wait is a poll() bounded by
  /// @p timeout_ms, retried up to @p max_retries times.
  UdsIoStatus read_frame(util::Frame* frame, int timeout_ms, int max_retries) const;

  /// Writes one encoded frame; false when the peer is gone (no SIGPIPE).
  bool write_frame(const util::Frame& frame) const;

 private:
  int fd_ = -1;
};

/// A listening Unix-domain socket bound to a filesystem path.  The
/// listener owns the name: construction unlinks any stale socket file
/// left by a crashed predecessor, destruction unlinks its own.
class UnixListener {
 public:
  /// Binds and listens at @p path.  Throws redopt::PreconditionError on
  /// bind failure or when @p path exceeds the sockaddr_un limit.
  explicit UnixListener(const std::string& path, int backlog = 16);
  ~UnixListener();
  UnixListener(UnixListener&& other) noexcept;
  UnixListener& operator=(UnixListener&& other) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  void close();

  /// Accepts one pending connection; std::nullopt when @p timeout_ms
  /// elapses with nobody knocking.
  std::optional<UnixStream> accept(int timeout_ms) const;

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace redopt::transport
