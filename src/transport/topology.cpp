#include "transport/topology.h"

#include <algorithm>

#include "util/cli.h"
#include "util/error.h"

namespace redopt::transport {

const std::vector<std::string>& topology_names() {
  static const std::vector<std::string> names = {"star", "chain", "tree"};
  return names;
}

std::string to_string(Topology topology) {
  switch (topology) {
    case Topology::kStar:
      return "star";
    case Topology::kChain:
      return "chain";
    case Topology::kTree:
      return "tree";
  }
  return "star";  // unreachable
}

Topology topology_from_string(const std::string& name) {
  // topology_names() lists the spellings in enum order, so the choice
  // index is the enum value.
  return static_cast<Topology>(util::parse_choice("topology", name, topology_names()));
}

std::size_t parent_of(Topology topology, std::size_t agent, std::size_t n) {
  REDOPT_REQUIRE(agent < n, "topology: agent id out of range");
  switch (topology) {
    case Topology::kStar:
      return kCoordinatorNode;
    case Topology::kChain:
      return agent == 0 ? kCoordinatorNode : agent - 1;
    case Topology::kTree:
      return agent == 0 ? kCoordinatorNode : (agent - 1) / 2;
  }
  return kCoordinatorNode;  // unreachable
}

std::vector<std::size_t> children_of(Topology topology, std::size_t node, std::size_t n) {
  std::vector<std::size_t> children;
  if (node == kCoordinatorNode) {
    switch (topology) {
      case Topology::kStar:
        for (std::size_t i = 0; i < n; ++i) children.push_back(i);
        break;
      case Topology::kChain:
      case Topology::kTree:
        if (n > 0) children.push_back(0);
        break;
    }
    return children;
  }
  REDOPT_REQUIRE(node < n, "topology: agent id out of range");
  switch (topology) {
    case Topology::kStar:
      break;
    case Topology::kChain:
      if (node + 1 < n) children.push_back(node + 1);
      break;
    case Topology::kTree:
      if (2 * node + 1 < n) children.push_back(2 * node + 1);
      if (2 * node + 2 < n) children.push_back(2 * node + 2);
      break;
  }
  return children;
}

std::size_t depth_of(Topology topology, std::size_t agent, std::size_t n) {
  std::size_t depth = 1;
  std::size_t node = agent;
  for (std::size_t parent = parent_of(topology, node, n); parent != kCoordinatorNode;
       parent = parent_of(topology, node, n)) {
    node = parent;
    ++depth;
  }
  return depth;
}

std::size_t max_depth(Topology topology, std::size_t n) {
  std::size_t deepest = 0;
  for (std::size_t i = 0; i < n; ++i) {
    deepest = std::max(deepest, depth_of(topology, i, n));
  }
  return deepest;
}

}  // namespace redopt::transport
