// Deterministic per-agent emission engine for chaos scenarios.
//
// An AgentReplica is the "agent program" both transport backends run:
// given the round's broadcast estimate it computes the frames this agent
// puts on the wire — applying its own fault spec (crash windows,
// Byzantine attacks, straggler staleness) and its own channel faults
// (drop / duplicate / delay, from the pure per-(agent, round) streams in
// channel.h).  All state is per-agent: estimate history, the delayed-
// frame buffer, the attack's named RNG stream.  The inproc backend runs
// n replicas in one process; the socket backend runs each replica inside
// its own forked agent process — and because nothing here reads shared
// mutable state or unshared randomness, both executions emit
// bit-identical frames.
//
// Byzantine omniscience survives the process split the same way: an
// attacking replica *recomputes* the honest agents' gradients locally
// from its (fork-copied) problem instance instead of observing them over
// the network — deterministic, and exactly the adversary model the
// in-process chaos executor implements.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "attacks/attack.h"
#include "chaos/scenario.h"
#include "core/problem.h"
#include "linalg/vector.h"
#include "rng/rng.h"
#include "telemetry/ship.h"
#include "util/frame.h"

namespace redopt::transport {

class AgentReplica {
 public:
  /// @p scenario and @p problem must outlive the replica (the session
  /// owns both; fork() gives agent processes their own copies).
  AgentReplica(const chaos::Scenario& scenario, const core::MultiAgentProblem& problem,
               std::size_t agent);

  /// The frames this agent sends during round @p round: previously
  /// delayed frames falling due first, then the round's own emission
  /// after fault-spec and channel treatment (possibly nothing, possibly
  /// an extra duplicate).  Must be called once per round, rounds
  /// ascending from 0.
  std::vector<util::Frame> on_round(std::size_t round, const linalg::Vector& estimate);

  std::size_t agent() const { return agent_; }

  /// This replica's private telemetry island (see telemetry/ship.h):
  /// replica.* counters mirroring fate() exactly, a gradient-norm
  /// histogram, and a replica.round span per on_round call.  Recorded
  /// unconditionally — the global telemetry switch is fork-inherited
  /// state, so gating on it would let the backends diverge.
  const telemetry::AgentTelemetry& telemetry() const { return *telemetry_; }

  /// What the fault schedule does to @p agent in @p round — a pure
  /// function of the scenario, replayed coordinator-side to fill the
  /// ScenarioResult fault counters without any backchannel from the
  /// agents.
  struct RoundFate {
    bool emits = true;       ///< false during a crash window
    bool byzantine = false;  ///< reply is attack-crafted
    bool stale = false;      ///< straggler reply computed on an old estimate
    bool dropped = false;
    bool duplicated = false;
    std::size_t delay = 0;  ///< rounds the original reply is late
  };
  static RoundFate fate(const chaos::Scenario& scenario, std::size_t agent, std::size_t round);

 private:
  /// Gradient agent @p who would submit this round (staleness-adjusted);
  /// used for the own payload and for Byzantine recomputation of the
  /// honest agents' replies.
  linalg::Vector honest_payload(std::size_t who, std::size_t round) const;

  const chaos::Scenario& scenario_;
  const core::MultiAgentProblem& problem_;
  std::size_t agent_;
  std::size_t max_staleness_ = 0;  ///< scenario-wide, so history depth matches the executor
  std::vector<const chaos::FaultSpec*> spec_of_;
  std::unique_ptr<attacks::Attack> attack_;
  rng::Rng attack_rng_;
  std::deque<linalg::Vector> history_;  ///< history_[s] is the estimate of round - s
  std::map<std::size_t, std::vector<util::Frame>> delayed_;

  // Telemetry island + pre-registered handles (unique_ptr keeps the
  // replica movable; the registry itself is pinned).
  std::unique_ptr<telemetry::AgentTelemetry> telemetry_;
  telemetry::Counter m_rounds_;
  telemetry::Counter m_frames_emitted_;
  telemetry::Counter m_byzantine_;
  telemetry::Counter m_crashed_;
  telemetry::Counter m_stale_;
  telemetry::Counter m_dropped_;
  telemetry::Counter m_delayed_;
  telemetry::Counter m_duplicated_;
  telemetry::Histogram m_gradient_norm_;
};

}  // namespace redopt::transport
