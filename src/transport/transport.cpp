#include "transport/transport.h"

#include <algorithm>

#include "telemetry/span.h"

namespace redopt::transport {

Transport::Transport(Topology topology, std::size_t n)
    : topology_(topology),
      n_(n),
      metric_exchanges_(telemetry::registry().counter("transport.exchanges")),
      metric_delivered_(telemetry::registry().counter("transport.frames_delivered")),
      metric_bytes_(telemetry::registry().counter("transport.bytes_on_wire")),
      metric_reduce_rounds_(telemetry::registry().counter("transport.reduce_rounds")),
      metric_retried_(telemetry::registry().counter("transport.messages_retried",
                                                    telemetry::Determinism::kUnstable)),
      metric_deaths_(telemetry::registry().counter("transport.agent_deaths",
                                                   telemetry::Determinism::kUnstable)) {}

void Transport::finish_exchange(std::vector<util::Frame>& frames, std::size_t estimate_dim) {
  std::stable_sort(frames.begin(), frames.end(),
                   [](const util::Frame& a, const util::Frame& b) {
                     if (a.agent != b.agent) return a.agent < b.agent;
                     return a.emitted < b.emitted;
                   });
  ++stats_.exchanges;
  metric_exchanges_.inc();
  const std::size_t depth = max_depth(topology_, n_);
  stats_.reduce_rounds += depth;
  metric_reduce_rounds_.inc(depth);

  // Estimate broadcast: one frame per tree edge (n edges — every agent
  // has exactly one parent link).
  std::uint64_t bytes = static_cast<std::uint64_t>(n_) * util::frame_wire_size_for(estimate_dim);
  for (const util::Frame& frame : frames) {
    bytes += static_cast<std::uint64_t>(util::frame_wire_size(frame)) * frame.hops;
  }
  stats_.frames_delivered += frames.size();
  metric_delivered_.inc(frames.size());
  stats_.bytes_on_wire += bytes;
  metric_bytes_.inc(bytes);
}

void Transport::note_retry() {
  ++stats_.messages_retried;
  metric_retried_.inc();
  // Whether a read needed a retry is timing, not computation: the
  // instant is flagged kUnstable so stable projections drop the record.
  telemetry::span_instant("transport.retry", {}, telemetry::Determinism::kUnstable);
}

void Transport::note_death() {
  ++stats_.agent_deaths;
  metric_deaths_.inc();
  telemetry::span_instant("transport.agent_death", {}, telemetry::Determinism::kUnstable);
}

}  // namespace redopt::transport
