// Per-reply channel-fault decisions for the transport backends.
//
// The chaos executor draws channel faults from one sequential stream in
// agent order, which is fine for a single-process loop but would make a
// multi-process execution depend on arrival order.  The transport
// instead derives every decision from a *pure* function of
// (seed, agent, round): each reply gets its own named fork of the
// scenario seed, so agents can draw their own faults in their own
// processes and the coordinator can replay the exact same decisions for
// accounting — no stream is shared, no ordering matters, and both
// backends see bit-identical fault schedules.
#pragma once

#include <cstdint>

#include "chaos/scenario.h"

namespace redopt::transport {

/// What the channel does to one emitted reply.
struct ChannelDecision {
  bool drop = false;       ///< reply never arrives
  bool duplicate = false;  ///< one extra on-time copy arrives
  std::size_t delay = 0;   ///< extra rounds before the original arrives
};

/// The (deterministic) channel decision for agent @p agent's reply
/// emitted in round @p round.  A zeroed ChannelFaults consumes no
/// randomness and always returns the identity decision.
ChannelDecision channel_decision(const chaos::ChannelFaults& faults, std::uint64_t seed,
                                 std::size_t agent, std::size_t round);

}  // namespace redopt::transport
