#include "transport/agent_replica.h"

#include <algorithm>
#include <string>
#include <utility>

#include "chaos/executor.h"
#include "transport/channel.h"
#include "util/error.h"

namespace redopt::transport {

namespace {

bool in_window(const chaos::FaultSpec& spec, std::size_t t) {
  if (t < spec.from) return false;
  return spec.until == 0 || t < spec.until;
}

std::size_t scenario_max_staleness(const chaos::Scenario& s) {
  std::size_t max_staleness = 0;
  for (const chaos::FaultSpec& spec : s.faults) {
    if (spec.kind == chaos::FaultSpec::Kind::kStraggler) {
      max_staleness = std::max(max_staleness, spec.staleness);
    }
  }
  return max_staleness;
}

}  // namespace

AgentReplica::AgentReplica(const chaos::Scenario& scenario,
                           const core::MultiAgentProblem& problem, std::size_t agent)
    : scenario_(scenario),
      problem_(problem),
      agent_(agent),
      max_staleness_(scenario_max_staleness(scenario)),
      spec_of_(scenario.n, nullptr),
      attack_rng_(rng::Rng(scenario.seed).fork("byzantine-agent-" + std::to_string(agent))),
      telemetry_(std::make_unique<telemetry::AgentTelemetry>()) {
  REDOPT_REQUIRE(agent < scenario.n, "agent replica: agent id out of range");
  for (const chaos::FaultSpec& spec : scenario_.faults) spec_of_[spec.agent] = &spec;
  const chaos::FaultSpec* own = spec_of_[agent_];
  if (own != nullptr && own->kind == chaos::FaultSpec::Kind::kByzantine) {
    attack_ = chaos::make_scenario_attack(own->attack, own->attack_param);
  }
  telemetry::Registry& reg = telemetry_->registry;
  m_rounds_ = reg.counter("replica.rounds");
  m_frames_emitted_ = reg.counter("replica.frames_emitted");
  m_byzantine_ = reg.counter("replica.byzantine_replies");
  m_crashed_ = reg.counter("replica.crashed_absences");
  m_stale_ = reg.counter("replica.stale_replies");
  m_dropped_ = reg.counter("replica.dropped_replies");
  m_delayed_ = reg.counter("replica.delayed_replies");
  m_duplicated_ = reg.counter("replica.duplicated_replies");
  m_gradient_norm_ =
      reg.histogram("replica.gradient_norm", telemetry::BucketLayout::exponential(1e-3, 4.0, 12));
}

linalg::Vector AgentReplica::honest_payload(std::size_t who, std::size_t round) const {
  const chaos::FaultSpec* spec = spec_of_[who];
  std::size_t staleness = 0;
  if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kStraggler &&
      in_window(*spec, round)) {
    staleness = std::min(spec->staleness, history_.size() - 1);
  }
  return problem_.costs[who]->gradient(history_[staleness]);
}

std::vector<util::Frame> AgentReplica::on_round(std::size_t round, const linalg::Vector& estimate) {
  // Every branch below books into the island with exactly the semantics
  // of the coordinator's fate() replay (session.cpp) — that one-to-one
  // mirror is what the attribution report reconciles against.
  const std::uint64_t t = static_cast<std::uint64_t>(round);
  telemetry::ScopedSpan span(telemetry_->spans, "replica.round");
  span.attr("t", t);
  m_rounds_.inc();
  auto note = [&](const char* name) {
    telemetry_->spans.instant(name, {{"t", telemetry::Value(t)}});
  };

  history_.push_front(estimate);
  while (history_.size() > max_staleness_ + 1) history_.pop_back();

  // Frames the channel delayed into this round are in flight regardless
  // of what the fault schedule does to the agent now (even crashed
  // agents' earlier replies still arrive).
  std::vector<util::Frame> out;
  if (auto it = delayed_.find(round); it != delayed_.end()) {
    out = std::move(it->second);
    delayed_.erase(it);
  }

  const RoundFate what = fate(scenario_, agent_, round);
  if (!what.emits) {
    m_crashed_.inc();
    note("replica.crashed");
    m_frames_emitted_.inc(out.size());
    return out;
  }
  if (what.byzantine) {
    m_byzantine_.inc();
    note("replica.byzantine");
  }
  if (what.stale) {
    m_stale_.inc();
    note("replica.stale");
  }

  // Byzantine agents are never stale: the attack sees the freshest state
  // (worst case for the server).
  linalg::Vector payload =
      what.byzantine ? problem_.costs[agent_]->gradient(history_[0]) : honest_payload(agent_, round);

  if (what.byzantine) {
    const linalg::Vector true_gradient = payload;
    // What the adversary observes: the replies of the agents that are
    // not Byzantine this execution (stale where straggling) — recomputed
    // locally, so the observation needs no extra communication.
    std::vector<linalg::Vector> observed;
    observed.reserve(scenario_.n);
    for (std::size_t j = 0; j < scenario_.n; ++j) {
      const chaos::FaultSpec* spec = spec_of_[j];
      if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kByzantine) continue;
      if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kCrash &&
          in_window(*spec, round)) {
        continue;
      }
      observed.push_back(honest_payload(j, round));
    }
    const std::vector<linalg::Vector> fallback{true_gradient};
    attacks::AttackContext ctx;
    ctx.iteration = round;
    ctx.agent_id = agent_;
    ctx.n = scenario_.n;
    ctx.f = scenario_.f;
    ctx.estimate = &history_[0];
    ctx.honest_gradient = &true_gradient;
    ctx.honest_gradients = observed.empty() ? &fallback : &observed;
    ctx.rng = &attack_rng_;
    payload = attack_->craft(ctx);
    REDOPT_REQUIRE(payload.size() == scenario_.d, "attack crafted a wrong-dimension vector");
  }
  m_gradient_norm_.observe(payload.norm());

  if (what.dropped) {
    m_dropped_.inc();
    note("replica.dropped");
    m_frames_emitted_.inc(out.size());
    return out;
  }

  util::Frame frame;
  frame.type = util::FrameType::kGradient;
  frame.agent = static_cast<std::uint32_t>(agent_);
  frame.round = round;
  frame.emitted = round;
  frame.hops = 1;
  frame.payload.assign(payload.begin(), payload.end());
  if (what.duplicated) {
    m_duplicated_.inc();
    note("replica.duplicated");
    out.push_back(frame);  // the extra copy lands on time
  }
  if (what.delay > 0) {
    m_delayed_.inc();
    note("replica.delayed");
    frame.round = round + what.delay;
    delayed_[round + what.delay].push_back(std::move(frame));
  } else {
    out.push_back(std::move(frame));
  }
  m_frames_emitted_.inc(out.size());
  return out;
}

AgentReplica::RoundFate AgentReplica::fate(const chaos::Scenario& scenario, std::size_t agent,
                                           std::size_t round) {
  REDOPT_REQUIRE(agent < scenario.n, "agent replica: agent id out of range");
  const chaos::FaultSpec* spec = nullptr;
  for (const chaos::FaultSpec& candidate : scenario.faults) {
    if (candidate.agent == agent) spec = &candidate;
  }

  RoundFate what;
  if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kCrash && in_window(*spec, round)) {
    what.emits = false;
    return what;
  }
  what.byzantine = spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kByzantine &&
                   in_window(*spec, round);
  // A straggler reply only counts as stale once there is an older
  // estimate to be stale against (round >= 1 — the executor's
  // history.size() > 1 condition).
  what.stale = spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kStraggler &&
               in_window(*spec, round) && round >= 1;

  const ChannelDecision decision =
      channel_decision(scenario.channel, scenario.seed, agent, round);
  what.dropped = decision.drop;
  if (!what.dropped) {
    what.duplicated = decision.duplicate;
    what.delay = decision.delay;
  }
  return what;
}

}  // namespace redopt::transport
