#include "transport/agent_replica.h"

#include <algorithm>
#include <string>
#include <utility>

#include "chaos/executor.h"
#include "transport/channel.h"
#include "util/error.h"

namespace redopt::transport {

namespace {

bool in_window(const chaos::FaultSpec& spec, std::size_t t) {
  if (t < spec.from) return false;
  return spec.until == 0 || t < spec.until;
}

std::size_t scenario_max_staleness(const chaos::Scenario& s) {
  std::size_t max_staleness = 0;
  for (const chaos::FaultSpec& spec : s.faults) {
    if (spec.kind == chaos::FaultSpec::Kind::kStraggler) {
      max_staleness = std::max(max_staleness, spec.staleness);
    }
  }
  return max_staleness;
}

}  // namespace

AgentReplica::AgentReplica(const chaos::Scenario& scenario,
                           const core::MultiAgentProblem& problem, std::size_t agent)
    : scenario_(scenario),
      problem_(problem),
      agent_(agent),
      max_staleness_(scenario_max_staleness(scenario)),
      spec_of_(scenario.n, nullptr),
      attack_rng_(rng::Rng(scenario.seed).fork("byzantine-agent-" + std::to_string(agent))) {
  REDOPT_REQUIRE(agent < scenario.n, "agent replica: agent id out of range");
  for (const chaos::FaultSpec& spec : scenario_.faults) spec_of_[spec.agent] = &spec;
  const chaos::FaultSpec* own = spec_of_[agent_];
  if (own != nullptr && own->kind == chaos::FaultSpec::Kind::kByzantine) {
    attack_ = chaos::make_scenario_attack(own->attack, own->attack_param);
  }
}

linalg::Vector AgentReplica::honest_payload(std::size_t who, std::size_t round) const {
  const chaos::FaultSpec* spec = spec_of_[who];
  std::size_t staleness = 0;
  if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kStraggler &&
      in_window(*spec, round)) {
    staleness = std::min(spec->staleness, history_.size() - 1);
  }
  return problem_.costs[who]->gradient(history_[staleness]);
}

std::vector<util::Frame> AgentReplica::on_round(std::size_t round, const linalg::Vector& estimate) {
  history_.push_front(estimate);
  while (history_.size() > max_staleness_ + 1) history_.pop_back();

  // Frames the channel delayed into this round are in flight regardless
  // of what the fault schedule does to the agent now (even crashed
  // agents' earlier replies still arrive).
  std::vector<util::Frame> out;
  if (auto it = delayed_.find(round); it != delayed_.end()) {
    out = std::move(it->second);
    delayed_.erase(it);
  }

  const RoundFate what = fate(scenario_, agent_, round);
  if (!what.emits) return out;

  // Byzantine agents are never stale: the attack sees the freshest state
  // (worst case for the server).
  linalg::Vector payload =
      what.byzantine ? problem_.costs[agent_]->gradient(history_[0]) : honest_payload(agent_, round);

  if (what.byzantine) {
    const linalg::Vector true_gradient = payload;
    // What the adversary observes: the replies of the agents that are
    // not Byzantine this execution (stale where straggling) — recomputed
    // locally, so the observation needs no extra communication.
    std::vector<linalg::Vector> observed;
    observed.reserve(scenario_.n);
    for (std::size_t j = 0; j < scenario_.n; ++j) {
      const chaos::FaultSpec* spec = spec_of_[j];
      if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kByzantine) continue;
      if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kCrash &&
          in_window(*spec, round)) {
        continue;
      }
      observed.push_back(honest_payload(j, round));
    }
    const std::vector<linalg::Vector> fallback{true_gradient};
    attacks::AttackContext ctx;
    ctx.iteration = round;
    ctx.agent_id = agent_;
    ctx.n = scenario_.n;
    ctx.f = scenario_.f;
    ctx.estimate = &history_[0];
    ctx.honest_gradient = &true_gradient;
    ctx.honest_gradients = observed.empty() ? &fallback : &observed;
    ctx.rng = &attack_rng_;
    payload = attack_->craft(ctx);
    REDOPT_REQUIRE(payload.size() == scenario_.d, "attack crafted a wrong-dimension vector");
  }

  if (what.dropped) return out;

  util::Frame frame;
  frame.type = util::FrameType::kGradient;
  frame.agent = static_cast<std::uint32_t>(agent_);
  frame.round = round;
  frame.emitted = round;
  frame.hops = 1;
  frame.payload.assign(payload.begin(), payload.end());
  if (what.duplicated) out.push_back(frame);  // the extra copy lands on time
  if (what.delay > 0) {
    frame.round = round + what.delay;
    delayed_[round + what.delay].push_back(std::move(frame));
  } else {
    out.push_back(std::move(frame));
  }
  return out;
}

AgentReplica::RoundFate AgentReplica::fate(const chaos::Scenario& scenario, std::size_t agent,
                                           std::size_t round) {
  REDOPT_REQUIRE(agent < scenario.n, "agent replica: agent id out of range");
  const chaos::FaultSpec* spec = nullptr;
  for (const chaos::FaultSpec& candidate : scenario.faults) {
    if (candidate.agent == agent) spec = &candidate;
  }

  RoundFate what;
  if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kCrash && in_window(*spec, round)) {
    what.emits = false;
    return what;
  }
  what.byzantine = spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kByzantine &&
                   in_window(*spec, round);
  // A straggler reply only counts as stale once there is an older
  // estimate to be stale against (round >= 1 — the executor's
  // history.size() > 1 condition).
  what.stale = spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kStraggler &&
               in_window(*spec, round) && round >= 1;

  const ChannelDecision decision =
      channel_decision(scenario.channel, scenario.seed, agent, round);
  what.dropped = decision.drop;
  if (!what.dropped) {
    what.duplicated = decision.duplicate;
    what.delay = decision.delay;
  }
  return what;
}

}  // namespace redopt::transport
