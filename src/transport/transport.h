// Transport: moves gradient frames between the coordinator and the n
// agents of a round-based distributed optimization, over a pluggable
// reduction topology.
//
// The interface is deliberately dumb: exchange(round, estimate) ships
// the estimate down the topology, runs every agent's emission callback,
// and gathers whatever gradient frames survive back at the root, in a
// canonical (agent, emitted) order.  All *protocol* behaviour — crash
// windows, Byzantine attacks, stragglers, channel drop/duplicate/delay —
// lives in the AgentFn callback (see agent_replica.h), which is shared
// verbatim by both backends.  That split is what makes the cross-backend
// contract testable: the in-process backend (inproc_transport.h, over
// net::SyncNetwork) is the oracle, the socket backend
// (socket_transport.h, fork + socketpair) must match it frame for frame.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "linalg/vector.h"
#include "telemetry/metrics.h"
#include "transport/topology.h"
#include "util/frame.h"

namespace redopt::transport {

/// Computes one agent's outgoing frames for a round.  Runs in-process on
/// the inproc backend and inside agent processes on the socket backend,
/// so it must be deterministic in (agent, round, estimate) plus its own
/// per-agent state — never in cross-agent shared state.
using AgentFn = std::function<std::vector<util::Frame>(std::size_t agent, std::size_t round,
                                                       const linalg::Vector& estimate)>;

/// Serializes one agent's telemetry island (telemetry/ship.h) at
/// collection time.  Runs agent-side: in-process on the inproc backend,
/// inside the forked agent process on the socket backend — so, like
/// AgentFn, it must be deterministic in the agent's own state.
using TelemetryFn = std::function<std::string(std::size_t agent)>;

/// One shipped telemetry blob, tagged by the agent that produced it.
struct AgentBlob {
  std::uint32_t agent = 0;
  std::string blob;
};

/// Traffic observables of one transport.  Everything except the two
/// kUnstable-flagged counters is a pure function of the execution, equal
/// across backends and thread counts.
struct TransportStats {
  std::uint64_t exchanges = 0;         ///< rounds driven through exchange()
  std::uint64_t frames_delivered = 0;  ///< gradient frames gathered at the root
  std::uint64_t bytes_on_wire = 0;     ///< protocol cost model (see below)
  std::uint64_t reduce_rounds = 0;     ///< accumulated gather depth (max topology depth / exchange)
  std::uint64_t messages_retried = 0;  ///< socket reads retried (timing-dependent; kUnstable)
  std::uint64_t agent_deaths = 0;      ///< dead agent links detected (kUnstable)
};

class Transport {
 public:
  Transport(Topology topology, std::size_t n);
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Ships @p estimate down the topology, gathers the agents' gradient
  /// frames back at the root, canonically ordered by (agent, emitted).
  virtual std::vector<util::Frame> exchange(std::size_t round, const linalg::Vector& estimate) = 0;

  virtual std::string name() const = 0;

  /// Gathers every live agent's serialized telemetry island, ascending
  /// by agent id.  Call at most once, after the last exchange; backends
  /// without a TelemetryFn return nothing.  On the socket backend this
  /// runs a dedicated kTelemetry collection sweep over the topology, and
  /// agents whose link died are simply absent from the result.
  virtual std::vector<AgentBlob> collect_telemetry() { return {}; }

  Topology topology() const { return topology_; }
  std::size_t num_agents() const { return n_; }
  const TransportStats& stats() const { return stats_; }

 protected:
  /// Canonicalizes @p frames and books the exchange into the stats and
  /// telemetry.  bytes_on_wire follows a backend-independent cost model:
  /// one estimate frame per tree edge going down, plus each delivered
  /// gradient frame's wire size times the edges it traversed (its hops
  /// field).  Flow-control frames (round-done, shutdown) are socket
  /// bookkeeping and deliberately excluded, so both backends account the
  /// same bytes for the same execution.
  void finish_exchange(std::vector<util::Frame>& frames, std::size_t estimate_dim);

  void note_retry();
  void note_death();

 private:
  Topology topology_;
  std::size_t n_;
  TransportStats stats_;
  telemetry::Counter metric_exchanges_;
  telemetry::Counter metric_delivered_;
  telemetry::Counter metric_bytes_;
  telemetry::Counter metric_reduce_rounds_;
  telemetry::Counter metric_retried_;
  telemetry::Counter metric_deaths_;
};

}  // namespace redopt::transport
