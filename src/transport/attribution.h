// Fault-attribution reporting: reconciles what a scenario session
// *observed* (frames at the coordinator, transport byte counters) with
// what the fault schedule *says happened* (the pure fate() replay) and
// with what the agents themselves *shipped* (their replica.* telemetry
// islands, see telemetry/ship.h).
//
// The report answers "which agent / which link is responsible for the
// traffic and the missing replies" with per-agent and per-link tables
// whose totals equal the TransportStats of the execution exactly — not
// approximately: bytes_on_wire follows the same backend-independent cost
// model finish_exchange() books (one estimate frame per tree edge down,
// each delivered gradient frame's wire size times its hops up), so any
// disagreement is a bug, and ok() says so.
//
// Everything here is a pure function of coordinator-side observations
// plus the scenario, so the report is byte-identical across backends and
// thread counts for the same execution.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/executor.h"
#include "telemetry/ship.h"
#include "transport/agent_replica.h"
#include "transport/topology.h"
#include "transport/transport.h"
#include "util/frame.h"

namespace redopt::transport {

/// One agent's reconciled ledger.
struct AgentAttribution {
  std::uint32_t agent = 0;

  // Observed at the coordinator.
  std::uint64_t frames_delivered = 0;  ///< gradient frames that arrived
  std::uint64_t bytes_up = 0;          ///< wire size x hops, summed over its frames
  std::uint64_t superseded = 0;        ///< arrivals replaced by a fresher reply

  // Replayed from the fault schedule (pure fate() per round).
  std::uint64_t rounds = 0;
  std::uint64_t byzantine = 0;
  std::uint64_t crashed = 0;
  std::uint64_t stale = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t expected_frames = 0;  ///< deliveries the schedule predicts (all links live)

  // Shipped by the agent's telemetry island (absent if its link died).
  bool shipped = false;
  std::uint64_t shipped_frames_emitted = 0;
  /// Every shipped replica.* fault counter equals the replayed value.
  bool counters_match = false;
};

/// One topology edge's traffic ledger.  parent == kCoordinatorNode for
/// root links.
struct LinkAttribution {
  std::size_t parent = 0;
  std::size_t child = 0;
  std::uint64_t frames_up = 0;  ///< gradient frames that crossed this edge
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;  ///< estimate broadcasts (exchanges x wire(d))
};

/// The reconciled report.  ok() is the acceptance gate: per-agent and
/// per-link totals equal the TransportStats exactly, the replayed fates
/// equal the session's fault counters, and every shipped island agrees
/// with its replay.
struct AttributionReport {
  std::vector<AgentAttribution> agents;  ///< ascending by agent id
  std::vector<LinkAttribution> links;    ///< ascending by child id
  std::uint64_t exchanges = 0;
  /// Modeled sync-network message count: one estimate delivery per agent
  /// per exchange plus one delivery per gradient-frame hop — equals the
  /// inproc backend's NetworkStats::messages_delivered.
  std::uint64_t network_messages = 0;
  TransportStats stats;

  bool frames_reconcile = false;  ///< per-agent and per-link frame totals == stats
  bool bytes_reconcile = false;   ///< per-agent + per-link byte totals == stats
  bool fates_reconcile = false;   ///< replayed fate totals == ScenarioResult counters
  bool agents_reconcile = false;  ///< every shipped island matches its replay

  bool ok() const {
    return frames_reconcile && bytes_reconcile && fates_reconcile && agents_reconcile;
  }

  /// Human-readable tables (fixed-width, deterministic).
  std::string to_text() const;
  /// Deterministic JSON document (util::json_parse-able).
  std::string to_json() const;
};

/// Accumulates coordinator-side observations round by round, then
/// reconciles them in build().  Feed every exchange's canonical frame
/// vector, every agent's replayed fate, and every superseded arrival —
/// exactly what run_scenario_transport already computes.
class AttributionBuilder {
 public:
  AttributionBuilder(Topology topology, std::size_t n, std::size_t estimate_dim);

  /// Books one exchange's delivered frames (post-canonicalization).
  void on_exchange(const std::vector<util::Frame>& frames);
  /// Books agent @p agent's replayed fate for the current round.
  void on_fate(std::size_t agent, const AgentReplica::RoundFate& fate);
  /// Books one superseded arrival from @p agent.
  void on_superseded(std::uint32_t agent);

  AttributionReport build(const chaos::ScenarioResult& result, const TransportStats& stats,
                          const std::vector<telemetry::AgentSnapshot>& shipped) const;

 private:
  Topology topology_;
  std::size_t n_;
  std::size_t estimate_dim_;
  std::uint64_t exchanges_ = 0;
  std::uint64_t hops_total_ = 0;
  std::vector<AgentAttribution> agents_;
  std::vector<LinkAttribution> links_;  ///< links_[child] is child's parent edge
  /// Due rounds of delayed replies, per agent — a delayed reply counts
  /// as expected only when its due round was actually exchanged.
  std::map<std::size_t, std::vector<std::uint64_t>> delayed_due_;
};

}  // namespace redopt::transport
