#include "transport/session.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "core/aggregate_cost.h"
#include "dgd/projection.h"
#include "dgd/schedule.h"
#include "filters/registry.h"
#include "rng/rng.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/trace_export.h"
#include "transport/agent_replica.h"
#include "transport/inproc_transport.h"
#include "util/cli.h"
#include "util/error.h"

namespace redopt::transport {

namespace {

bool all_finite(const linalg::Vector& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// Everything a scenario session's agents need, owned by shared_ptr so
/// the AgentFn closure (copied into the transport, and into forked agent
/// processes) keeps it alive wherever it runs.
struct ScenarioWorld {
  chaos::Scenario scenario;
  chaos::MaterializedScenario built;
  std::vector<AgentReplica> replicas;
};

}  // namespace

const std::vector<std::string>& backend_names() {
  static const std::vector<std::string> names = {"inproc", "socket"};
  return names;
}

std::string to_string(BackendKind backend) {
  switch (backend) {
    case BackendKind::kInproc:
      return "inproc";
    case BackendKind::kSocket:
      return "socket";
  }
  return "inproc";  // unreachable
}

BackendKind backend_from_string(const std::string& name) {
  // backend_names() lists the spellings in enum order, so the choice
  // index is the enum value.
  return static_cast<BackendKind>(util::parse_choice("backend", name, backend_names()));
}

std::unique_ptr<Transport> make_transport(const SessionOptions& options, std::size_t n,
                                          AgentFn agent_fn, TelemetryFn telemetry_fn) {
  if (options.backend == BackendKind::kSocket) {
    return std::make_unique<SocketTransport>(options.topology, n, std::move(agent_fn),
                                             options.socket, std::move(telemetry_fn));
  }
  return std::make_unique<InprocTransport>(options.topology, n, std::move(agent_fn),
                                           std::move(telemetry_fn));
}

ScenarioSession run_scenario_transport(const chaos::Scenario& scenario,
                                       const SessionOptions& options) {
  scenario.validate();
  REDOPT_REQUIRE(!scenario.elastic(),
                 "scenario carries membership/stream events; run it through "
                 "elastic::run_elastic_transport (chaos-replay routes there automatically)");

  // Telemetry handles first: registration must happen in a serial
  // context.  The session books the same chaos.* fault counters the
  // in-process executor does — it is the same fault schedule, observed
  // from the coordinator's side of the transport.
  auto& reg = telemetry::registry();
  const auto metric_scenarios = reg.counter("chaos.scenarios");
  const auto metric_rounds = reg.counter("chaos.rounds");
  const auto metric_byzantine = reg.counter("chaos.byzantine_replies");
  const auto metric_crashed = reg.counter("chaos.crashed_absences");
  const auto metric_stale = reg.counter("chaos.stale_replies");
  const auto metric_dropped = reg.counter("chaos.dropped_replies");
  const auto metric_delayed = reg.counter("chaos.delayed_replies");
  const auto metric_duplicated = reg.counter("chaos.duplicated_replies");

  const std::size_t n = scenario.n;
  const std::size_t d = scenario.d;

  auto world = std::make_shared<ScenarioWorld>();
  world->scenario = scenario;
  world->built = chaos::materialize_scenario(scenario);
  world->replicas.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    world->replicas.emplace_back(world->scenario, world->built.problem, i);
  }
  AgentFn agent_fn = [world](std::size_t agent, std::size_t round,
                             const linalg::Vector& estimate) {
    return world->replicas[agent].on_round(round, estimate);
  };
  // Telemetry shipping runs agent-side too: on the socket backend this
  // closure executes inside the forked agent process, serializing the
  // fork-local replica's island.
  TelemetryFn telemetry_fn = [world](std::size_t agent) {
    return telemetry::serialize_agent_telemetry(static_cast<std::uint32_t>(agent),
                                                world->replicas[agent].telemetry());
  };
  // The transport must be built (and, for the socket backend, forked)
  // only after the world is fully constructed, so every agent process
  // inherits identical replica state.
  const std::unique_ptr<Transport> transport =
      make_transport(options, n, std::move(agent_fn), std::move(telemetry_fn));

  // Round-local filters, cached by the (reply count, fault budget) they
  // were built for — the same (n, f) fallback chain as the executor.
  std::map<std::pair<std::size_t, std::size_t>, filters::FilterPtr> filter_cache;
  auto filter_for = [&](std::size_t n_round, std::size_t* f_used) -> const filters::FilterPtr& {
    std::size_t f_try = std::min(scenario.f, n_round == 0 ? std::size_t{0} : n_round - 1);
    while (true) {
      const auto key = std::make_pair(n_round, f_try);
      auto it = filter_cache.find(key);
      if (it != filter_cache.end()) {
        *f_used = f_try;
        return it->second;
      }
      try {
        filters::FilterParams fp;
        fp.n = n_round;
        fp.f = f_try;
        auto made = filters::FilterPtr(filters::make_filter(scenario.filter, fp));
        *f_used = f_try;
        return filter_cache.emplace(key, std::move(made)).first->second;
      } catch (const PreconditionError&) {
        if (f_try == 0) break;
        --f_try;
      }
    }
    // Even f = 0 failed (e.g. krum with too few replies): degrade to the
    // plain average so the execution stays total.
    const auto key = std::make_pair(n_round, std::size_t{0});
    auto it = filter_cache.find(key);
    *f_used = 0;
    if (it != filter_cache.end()) return it->second;
    filters::FilterParams fp;
    fp.n = n_round;
    fp.f = 0;
    return filter_cache.emplace(key, filters::make_filter("mean", fp)).first->second;
  };

  const dgd::HarmonicSchedule schedule(
      chaos::scenario_schedule_coefficient(scenario.filter, n, scenario.f));
  const dgd::BoxProjection projection = dgd::BoxProjection::cube(d, 10.0);

  rng::Rng x0_rng = rng::Rng(scenario.seed).fork("x0");
  linalg::Vector x(d);
  for (auto& v : x) v = x0_rng.uniform(-5.0, 5.0);
  x = projection.project(x);

  ScenarioSession session;
  chaos::ScenarioResult& result = session.result;
  result.reference = world->built.reference;
  result.initial_distance = linalg::distance(x, world->built.reference);
  result.max_distance = result.initial_distance;
  session.estimates.push_back(x);

  // Attribution observes exactly what this loop already computes: the
  // canonical frames of every exchange, the replayed fates, and the
  // superseded arrivals.
  AttributionBuilder attribution(options.topology, n, d);
  telemetry::ScopedSpan scenario_span("session.scenario");
  scenario_span.attr("n", static_cast<std::uint64_t>(n))
      .attr("f", static_cast<std::uint64_t>(scenario.f))
      .attr("rounds", static_cast<std::uint64_t>(scenario.rounds));

  for (std::size_t t = 0; t < scenario.rounds; ++t) {
    telemetry::ScopedSpan round_span("session.round");
    round_span.attr("t", static_cast<std::uint64_t>(t));
    const std::vector<util::Frame> frames = transport->exchange(t, x);
    metric_rounds.inc();
    attribution.on_exchange(frames);

    // Fault accounting: replay every agent's (pure) round fate instead
    // of trusting counters from the other side of the wire — identical
    // on both backends by construction.
    for (std::size_t i = 0; i < n; ++i) {
      const AgentReplica::RoundFate fate = AgentReplica::fate(scenario, i, t);
      attribution.on_fate(i, fate);
      if (!fate.emits) {
        ++result.crashed_absences;
        metric_crashed.inc();
        continue;
      }
      if (fate.byzantine) {
        ++result.byzantine_replies;
        metric_byzantine.inc();
      }
      if (fate.stale) {
        ++result.stale_replies;
        metric_stale.inc();
      }
      if (fate.dropped) {
        ++result.dropped_replies;
        metric_dropped.inc();
        continue;
      }
      if (fate.duplicated) {
        ++result.duplicated_replies;
        metric_duplicated.inc();
      }
      if (fate.delay > 0) {
        ++result.delayed_replies;
        metric_delayed.inc();
      }
    }

    // Receive: keep the freshest reply per agent (sequence-number dedup,
    // same as the executor's inbox).
    struct Reply {
      std::uint64_t emitted = 0;
      const util::Frame* frame = nullptr;
    };
    std::map<std::uint32_t, Reply> inbox;
    for (const util::Frame& frame : frames) {
      auto [it, inserted] = inbox.try_emplace(frame.agent, Reply{frame.emitted, &frame});
      if (inserted) continue;
      if (frame.emitted > it->second.emitted) it->second = Reply{frame.emitted, &frame};
      ++result.superseded_replies;
      attribution.on_superseded(frame.agent);
    }

    // Aggregate and step.
    if (!inbox.empty()) {
      std::vector<linalg::Vector> received;
      received.reserve(inbox.size());
      for (const auto& [agent, reply] : inbox) {
        (void)agent;
        received.push_back(linalg::Vector(reply.frame->payload));
      }
      std::size_t f_used = 0;
      const filters::FilterPtr& filter = filter_for(received.size(), &f_used);
      if (received.size() != n || f_used != scenario.f) {
        ++result.filter_rebuilds;
        telemetry::span_instant("session.filter_rebuild",
                                {{"t", telemetry::Value(static_cast<std::uint64_t>(t))}});
      }
      const linalg::Vector direction = filter->apply(received);
      x = projection.project(x - direction * schedule.step(t));
    }
    session.estimates.push_back(x);

    if (!all_finite(x)) {
      result.nonfinite = true;
      result.nonfinite_round = t;
      break;
    }
    result.max_distance =
        std::max(result.max_distance, linalg::distance(x, world->built.reference));
  }

  metric_scenarios.inc();
  result.estimate = x;
  result.final_distance = result.nonfinite
                              ? std::numeric_limits<double>::infinity()
                              : linalg::distance(x, world->built.reference);

  // Ship every surviving agent's telemetry island back to the
  // coordinator (a dedicated kTelemetry sweep on the socket backend, a
  // direct call on the inproc one — both through the same serialize →
  // parse round trip) and reconcile the attribution ledger against it.
  for (const AgentBlob& blob : transport->collect_telemetry()) {
    session.agents.push_back(telemetry::parse_agent_snapshot(blob.blob));
  }
  session.transport = transport->stats();
  session.attribution = attribution.build(result, session.transport, session.agents);
  if (const auto* inproc = dynamic_cast<const InprocTransport*>(transport.get())) {
    session.network = inproc->network_stats();
    session.has_network = true;
  }
  return session;
}

std::string session_manifest_json(const ScenarioSession& session) {
  // net.* belongs to the inproc backend's internal SyncNetwork substrate,
  // which the socket backend replaces wholesale; the session-level
  // manifest is the document both backends must agree on byte for byte,
  // so the substrate's private counters stay out of it.
  telemetry::Snapshot coordinator;
  for (telemetry::MetricValue& m : telemetry::registry().snapshot()) {
    if (m.name.rfind("net.", 0) == 0) continue;
    coordinator.push_back(std::move(m));
  }
  return telemetry::render_merged_manifest(coordinator, session.agents);
}

std::string session_trace_json(const ScenarioSession& session) {
  std::vector<telemetry::TraceTrack> tracks;
  tracks.reserve(session.agents.size() + 1);
  telemetry::TraceTrack coordinator;
  coordinator.pid = 0;
  coordinator.name = "coordinator";
  coordinator.spans = &telemetry::span_log().spans();
  coordinator.instants = &telemetry::span_log().instants();
  tracks.push_back(coordinator);
  for (const telemetry::AgentSnapshot& agent : session.agents) {
    telemetry::TraceTrack track;
    track.pid = agent.agent + 1;
    track.name = "agent " + std::to_string(agent.agent);
    track.spans = &agent.spans;
    track.instants = &agent.instants;
    tracks.push_back(track);
  }
  return telemetry::render_chrome_trace(tracks);
}

namespace {

/// Per-process state of the dgd agents (copied into forked children by
/// the socket backend, like ScenarioWorld).
struct DgdWorld {
  const core::MultiAgentProblem* problem = nullptr;
  const attacks::Attack* attack = nullptr;
  std::vector<char> is_byzantine;
  std::vector<std::size_t> honest;
  std::vector<rng::Rng> agent_rngs;
};

}  // namespace

DgdTransportResult run_dgd(const core::MultiAgentProblem& problem,
                           const std::vector<std::size_t>& byzantine_ids,
                           const attacks::Attack* attack, const dgd::TrainerConfig& config,
                           const SessionOptions& options,
                           const std::optional<linalg::Vector>& reference) {
  problem.validate();
  REDOPT_REQUIRE(config.filter != nullptr, "config needs a gradient filter");
  REDOPT_REQUIRE(config.schedule != nullptr, "config needs a step schedule");
  REDOPT_REQUIRE(config.projection != nullptr, "config needs a projection set");
  REDOPT_REQUIRE(byzantine_ids.size() <= problem.f, "more byzantine agents than fault budget");
  REDOPT_REQUIRE(byzantine_ids.empty() || attack != nullptr,
                 "byzantine agents present but no attack supplied");

  const std::size_t n = problem.num_agents();
  const std::size_t d = problem.dimension();
  if (reference) REDOPT_REQUIRE(reference->size() == d, "reference dimension mismatch");

  auto world = std::make_shared<DgdWorld>();
  world->problem = &problem;
  world->attack = attack;
  world->honest = dgd::honest_ids(n, byzantine_ids);
  world->is_byzantine.assign(n, 0);
  for (std::size_t id : byzantine_ids) world->is_byzantine[id] = 1;
  const rng::Rng root(config.seed);
  world->agent_rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    world->agent_rngs.push_back(root.fork("byzantine-agent-" + std::to_string(i)));
  }

  AgentFn agent_fn = [world](std::size_t agent, std::size_t round,
                             const linalg::Vector& x) -> std::vector<util::Frame> {
    const core::MultiAgentProblem& prob = *world->problem;
    linalg::Vector payload;
    if (!world->is_byzantine[agent]) {
      payload = prob.costs[agent]->gradient(x);
    } else {
      // Omniscient adversary, same model as net::run_server_protocol:
      // the attack sees every honest gradient at the fresh estimate.
      const linalg::Vector true_gradient = prob.costs[agent]->gradient(x);
      std::vector<linalg::Vector> honest_gradients;
      honest_gradients.reserve(world->honest.size());
      for (std::size_t id : world->honest) {
        honest_gradients.push_back(prob.costs[id]->gradient(x));
      }
      attacks::AttackContext ctx;
      ctx.iteration = round;
      ctx.agent_id = agent;
      ctx.n = prob.num_agents();
      ctx.f = prob.f;
      ctx.estimate = &x;
      ctx.honest_gradient = &true_gradient;
      ctx.honest_gradients = &honest_gradients;
      ctx.rng = &world->agent_rngs[agent];
      // Omission faults simply do not reply; the coordinator's
      // synchronous collection detects the gap and eliminates the agent.
      if (!world->attack->responds(ctx)) return {};
      payload = world->attack->craft(ctx);
    }
    util::Frame frame;
    frame.type = util::FrameType::kGradient;
    frame.agent = static_cast<std::uint32_t>(agent);
    frame.round = round;
    frame.emitted = round;
    frame.hops = 1;
    frame.payload.assign(payload.begin(), payload.end());
    std::vector<util::Frame> out;
    out.push_back(std::move(frame));
    return out;
  };
  const std::unique_ptr<Transport> transport = make_transport(options, n, std::move(agent_fn));

  linalg::Vector x = config.x0.empty() ? linalg::Vector(d) : config.x0;
  REDOPT_REQUIRE(x.size() == d, "x0 dimension mismatch");
  x = config.projection->project(x);

  std::vector<bool> active(n, true);
  std::size_t n_active = n;
  std::size_t f_active = problem.f;
  filters::FilterPtr filter = config.filter;
  std::vector<std::size_t> eliminated_agents;

  auto honest_loss = [&](const linalg::Vector& at) {
    return core::subset_value(problem.costs, world->honest, at);
  };

  DgdTransportResult result;
  auto record = [&](std::size_t t) {
    if (config.trace_stride == 0) return;
    if (t % config.trace_stride != 0 && t != config.iterations) return;
    result.train.trace.iteration.push_back(t);
    result.train.trace.loss.push_back(honest_loss(x));
    result.train.trace.distance.push_back(reference
                                              ? linalg::distance(x, *reference)
                                              : std::numeric_limits<double>::quiet_NaN());
    if (config.trace_estimates) result.train.trace.estimates.push_back(x);
  };

  record(0);
  for (std::size_t t = 0; t < config.iterations; ++t) {
    const std::vector<util::Frame> frames = transport->exchange(t, x);

    std::vector<linalg::Vector> replies(n);
    std::vector<bool> seen(n, false);
    for (const util::Frame& frame : frames) {
      REDOPT_REQUIRE(frame.agent < n, "gradient from unknown agent");
      if (!active[frame.agent]) continue;  // eliminated agents are ignored
      REDOPT_REQUIRE(!seen[frame.agent], "duplicate gradient from one agent");
      seen[frame.agent] = true;
      replies[frame.agent] = linalg::Vector(frame.payload);
    }
    // A missing reply in the synchronous model identifies the sender as
    // faulty: eliminate it and update (n, f) — the paper's step S1.
    bool eliminated_this_round = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i] && !seen[i]) {
        active[i] = false;
        --n_active;
        if (f_active > 0) --f_active;
        eliminated_agents.push_back(i);
        eliminated_this_round = true;
        telemetry::span_instant("session.elimination",
                                {{"agent", telemetry::Value(static_cast<std::uint64_t>(i))},
                                 {"t", telemetry::Value(static_cast<std::uint64_t>(t))}});
      }
    }
    if (eliminated_this_round) {
      REDOPT_REQUIRE(config.filter_factory != nullptr,
                     "agent eliminated but no filter_factory configured");
      filter = config.filter_factory(n_active, f_active);
      REDOPT_REQUIRE(filter != nullptr && filter->expected_inputs() == n_active,
                     "filter_factory produced an unusable filter");
    }

    std::vector<linalg::Vector> gradients;
    gradients.reserve(n_active);
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i]) gradients.push_back(replies[i]);
    }
    const linalg::Vector direction = filter->apply(gradients);
    x = config.projection->project(x - direction * config.schedule->step(t));
    record(t + 1);
  }

  result.train.estimate = x;
  result.train.eliminated_agents = eliminated_agents;
  result.train.final_loss = honest_loss(x);
  if (reference) result.train.final_distance = linalg::distance(x, *reference);
  result.stats = transport->stats();
  return result;
}

}  // namespace redopt::transport
