// Transport sessions: end-to-end executions of the paper's server-based
// DGD over a Transport backend.
//
// Two entry points:
//
//   run_scenario_transport — executes a chaos::Scenario round loop with
//     the agents behind a Transport (in-process or multi-process socket
//     backend, any reduction topology).  Mirrors chaos::run_scenario's
//     aggregation semantics (freshest-reply dedup, filter (n, f)
//     fallback, harmonic schedule, box projection) with the fault
//     schedule evaluated inside AgentReplica; channel faults come from
//     the pure per-(agent, round) streams of channel.h, so the two
//     backends produce byte-identical estimate traces — the pinned
//     cross-backend suite in tests/test_transport.cpp enforces exactly
//     that.
//
//   run_dgd — the message-passing dgd trainer over a Transport, same
//     contract as net::run_server_protocol (and hence bit-identical to
//     dgd::train in the fault-free synchronous regime).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "chaos/executor.h"
#include "chaos/scenario.h"
#include "dgd/trainer.h"
#include "net/sync_network.h"
#include "telemetry/ship.h"
#include "transport/attribution.h"
#include "transport/socket_transport.h"
#include "transport/transport.h"

namespace redopt::transport {

enum class BackendKind { kInproc, kSocket };

/// The valid --backend spellings, in display order.
const std::vector<std::string>& backend_names();

std::string to_string(BackendKind backend);

/// Strict parse; the error message lists the valid values.
BackendKind backend_from_string(const std::string& name);

/// How a session moves its frames.
struct SessionOptions {
  BackendKind backend = BackendKind::kInproc;
  Topology topology = Topology::kStar;
  SocketOptions socket;  ///< socket-backend knobs (timeouts, test hooks)
};

/// Builds a backend for @p n agents running @p agent_fn (and shipping
/// @p telemetry_fn's islands, when set).  The socket backend forks its
/// agent processes immediately, so both callbacks must be ready before
/// the call.
std::unique_ptr<Transport> make_transport(const SessionOptions& options, std::size_t n,
                                          AgentFn agent_fn, TelemetryFn telemetry_fn = {});

/// Outcome of a scenario session.
struct ScenarioSession {
  chaos::ScenarioResult result;           ///< same observables as chaos::run_scenario
  std::vector<linalg::Vector> estimates;  ///< the full estimate trace x^0 .. x^T
  TransportStats transport;               ///< traffic of the execution

  /// Every live agent's shipped telemetry island, ascending by agent id
  /// (an agent whose socket link died is absent).
  std::vector<telemetry::AgentSnapshot> agents;
  /// The reconciled fault-attribution report (attribution.h).
  AttributionReport attribution;
  /// Wrapped sync-network counters — inproc backend only.
  net::NetworkStats network;
  bool has_network = false;
};

/// The unified telemetry manifest of a finished session: the process-wide
/// registry snapshot plus every shipped agent island, one deterministic
/// JSON document (byte-identical across backends and thread counts after
/// telemetry::stable_json_projection).
std::string session_manifest_json(const ScenarioSession& session);

/// Chrome trace-event JSON (Perfetto-loadable): the coordinator's global
/// span log as pid 0 plus one track per shipped agent as pid agent+1.
std::string session_trace_json(const ScenarioSession& session);

ScenarioSession run_scenario_transport(const chaos::Scenario& scenario,
                                       const SessionOptions& options = {});

/// Outcome of a dgd execution over a transport.
struct DgdTransportResult {
  dgd::TrainResult train;  ///< same observables as dgd::train
  TransportStats stats;    ///< traffic of the execution
};

/// Same contract as net::run_server_protocol: fault-free (or
/// always-responding-attack) executions are bit-identical to dgd::train
/// with the same config and seed, on either backend and any topology.
DgdTransportResult run_dgd(const core::MultiAgentProblem& problem,
                           const std::vector<std::size_t>& byzantine_ids,
                           const attacks::Attack* attack, const dgd::TrainerConfig& config,
                           const SessionOptions& options = {},
                           const std::optional<linalg::Vector>& reference = std::nullopt);

}  // namespace redopt::transport
