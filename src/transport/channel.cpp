#include "transport/channel.h"

#include <string>

#include "rng/rng.h"

namespace redopt::transport {

ChannelDecision channel_decision(const chaos::ChannelFaults& faults, std::uint64_t seed,
                                 std::size_t agent, std::size_t round) {
  ChannelDecision decision;
  if (faults.drop_probability <= 0.0 && faults.duplicate_probability <= 0.0 &&
      faults.max_delay == 0) {
    return decision;
  }
  rng::Rng stream = rng::Rng(seed).fork("transport-channel-a" + std::to_string(agent) + "-r" +
                                        std::to_string(round));
  // Draw all three knobs unconditionally so the decision is a pure
  // function of the label, not of which probabilities are non-zero.
  const double drop_draw = stream.uniform();
  const double duplicate_draw = stream.uniform();
  const std::size_t delay_draw =
      faults.max_delay == 0
          ? 0
          : static_cast<std::size_t>(
                stream.uniform_int(0, static_cast<std::int64_t>(faults.max_delay)));
  decision.drop = faults.drop_probability > 0.0 && drop_draw < faults.drop_probability;
  if (decision.drop) return decision;
  decision.duplicate =
      faults.duplicate_probability > 0.0 && duplicate_draw < faults.duplicate_probability;
  decision.delay = delay_draw;
  return decision;
}

}  // namespace redopt::transport
