// In-process deterministic transport backend — the test oracle.
//
// Wraps net::SyncNetwork: the coordinator and the n agents are plain
// net::Node participants, encoded frames ride inside Message payloads,
// and one exchange() runs exactly 2 * max_depth + 1 lock-step network
// rounds (the estimate walks down the tree one edge per round, gradient
// frames walk back up one edge per round).  Everything is synchronous
// and single-process, so this backend is bit-reproducible by
// construction; the socket backend must match it frame for frame.
#pragma once

#include <memory>
#include <vector>

#include "net/sync_network.h"
#include "transport/transport.h"

namespace redopt::transport {

class InprocTransport : public Transport {
 public:
  InprocTransport(Topology topology, std::size_t n, AgentFn agent_fn,
                  TelemetryFn telemetry_fn = {});
  ~InprocTransport() override;

  std::vector<util::Frame> exchange(std::size_t round, const linalg::Vector& estimate) override;
  std::string name() const override { return "inproc"; }

  /// Every agent is in-process and always reachable, so collection is a
  /// direct call per agent — but through the same serialize → parse blob
  /// round trip the socket backend ships over the wire.
  std::vector<AgentBlob> collect_telemetry() override;

  /// The wrapped network's traffic counters.
  const net::NetworkStats& network_stats() const;

 private:
  class AgentNode;
  class RootNode;

  AgentFn agent_fn_;
  TelemetryFn telemetry_fn_;
  std::vector<std::unique_ptr<AgentNode>> agents_;
  std::unique_ptr<RootNode> root_;
  std::unique_ptr<net::SyncNetwork> network_;
};

}  // namespace redopt::transport
