// Multi-process socket transport backend.
//
// Spawns one coordinator (the calling process) plus n agent processes
// connected by Unix-domain stream socket pairs, one per topology edge.
// Frames cross the wire in the length-prefixed, CRC-checksummed binary
// format of util/frame.h; every read is guarded by a poll() timeout with
// bounded retries, and a closed or timed-out link is handled gracefully
// by marking the edge dead and carrying on with the surviving agents —
// an agent's death costs its subtree's replies, never the round.
//
// Determinism: the processes only *move* frames; every decision that
// shapes the byte stream (who emits, attacks, channel faults) is made by
// the AgentFn from per-agent named RNG streams, and the coordinator
// canonicalizes arrivals by (agent, emitted).  So a healthy run is
// bit-identical to the in-process backend — the cross-backend oracle the
// transport tests enforce.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "transport/transport.h"

namespace redopt::transport {

/// Socket-backend knobs.  The defaults are generous: timeouts exist to
/// survive real faults (a hung or dead agent), not to race healthy runs.
struct SocketOptions {
  int timeout_ms = 10000;  ///< per poll() wait on a frame read
  int max_retries = 3;     ///< extra poll attempts before a link counts as dead
  /// Test hook: agent i exits silently at the start of round
  /// die_at_round[i] (kNeverDies or an empty vector = never).
  std::vector<std::size_t> die_at_round;
};

inline constexpr std::size_t kNeverDies = std::numeric_limits<std::size_t>::max();

class SocketTransport : public Transport {
 public:
  /// Forks the n agent processes immediately.  @p agent_fn (and
  /// @p telemetry_fn, when set) run inside the forked children, one
  /// agent each; they must not touch threads or global mutable state
  /// (see agent_replica.h).
  SocketTransport(Topology topology, std::size_t n, AgentFn agent_fn, SocketOptions options = {},
                  TelemetryFn telemetry_fn = {});
  ~SocketTransport() override;

  std::vector<util::Frame> exchange(std::size_t round, const linalg::Vector& estimate) override;
  std::string name() const override { return "socket"; }

  /// Runs one kTelemetry collection sweep: the request walks down the
  /// tree, every live agent ships its serialized island back up (relays
  /// forward their subtree's blobs like gradient frames).  Dead links
  /// cost their subtree's blobs, never the sweep.
  std::vector<AgentBlob> collect_telemetry() override;

  /// Agents whose coordinator-side link is still alive.
  std::size_t live_root_links() const;

 private:
  [[noreturn]] void agent_main(std::size_t agent);
  void shutdown_agents();

  AgentFn agent_fn_;
  TelemetryFn telemetry_fn_;
  SocketOptions options_;
  std::vector<int> up_fd_;    ///< parent-of-i side of agent i's edge
  std::vector<int> down_fd_;  ///< agent-i side of its edge (children only)
  std::vector<pid_t> pids_;
  std::vector<std::size_t> root_children_;
  std::vector<char> link_alive_;  ///< per root child, coordinator's view
};

}  // namespace redopt::transport
