// Reduction topologies for the gradient transport.
//
// A topology arranges the n agents into a gather tree rooted at the
// coordinator (Hoplite-style switchable reduce trees): the estimate
// flows root -> leaves along tree edges, gradient frames flow back up,
// relayed by interior agents.  Because the Byzantine-robust filters need
// every individual gradient (a relay must not sum its subtree, unlike a
// plain all-reduce), relays forward frames verbatim and only the hop
// count grows — so topology choice trades rounds-to-reduce against
// per-link fan-in without changing the aggregate.
//
//   star   every agent is a direct child of the coordinator
//          (depth 1, coordinator fan-in n)
//   chain  agent 0 under the coordinator, agent i under agent i-1
//          (depth n, fan-in 1 everywhere)
//   tree   binary heap order: agent 0 under the coordinator, agent i
//          under agent (i-1)/2 (depth ~log2 n, fan-in <= 2)
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace redopt::transport {

enum class Topology { kStar, kChain, kTree };

/// Node id meaning "the coordinator" in parent/children queries.
inline constexpr std::size_t kCoordinatorNode = std::numeric_limits<std::size_t>::max();

/// The valid --topology spellings, in display order.
const std::vector<std::string>& topology_names();

std::string to_string(Topology topology);

/// Strict parse; the error message lists the valid values.
Topology topology_from_string(const std::string& name);

/// Parent of @p agent (< n), or kCoordinatorNode for a root child.
std::size_t parent_of(Topology topology, std::size_t agent, std::size_t n);

/// Children of @p node (an agent id, or kCoordinatorNode), ascending.
std::vector<std::size_t> children_of(Topology topology, std::size_t node, std::size_t n);

/// Tree edges between @p agent and the coordinator (>= 1).
std::size_t depth_of(Topology topology, std::size_t agent, std::size_t n);

/// Depth of the deepest agent; 0 when n == 0.
std::size_t max_depth(Topology topology, std::size_t n);

}  // namespace redopt::transport
