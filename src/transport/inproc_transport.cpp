#include "transport/inproc_transport.h"

#include <cstring>
#include <utility>

#include "telemetry/span.h"
#include "util/error.h"

namespace redopt::transport {

namespace {

constexpr const char* kFrameTag = "frame";

/// The frame-in-message envelope rides util::pack_blob: encoded frame
/// bytes become a Message payload whose doubles are never used
/// arithmetically — the payload is just a byte carrier.
std::string unpack_bytes(const linalg::Vector& payload) {
  return util::unpack_blob(payload.data());
}

net::Message make_frame_message(std::size_t to, const std::string& bytes) {
  net::Message message;
  message.to = to;
  message.tag = kFrameTag;
  message.payload = linalg::Vector(util::pack_blob(bytes));
  return message;
}

}  // namespace

/// One agent: relays the estimate down and gradient frames up its tree
/// edges, and runs the emission callback when the estimate arrives.
class InprocTransport::AgentNode : public net::Node {
 public:
  AgentNode(InprocTransport* owner, std::size_t agent, std::size_t n)
      : owner_(owner), agent_(agent) {
    const std::size_t parent = parent_of(owner->topology(), agent, n);
    parent_node_ = parent == kCoordinatorNode ? n : parent;
    children_ = children_of(owner->topology(), agent, n);
  }

  std::vector<net::Message> on_round(std::size_t /*round*/,
                                     const std::vector<net::Message>& inbox) override {
    std::vector<net::Message> out;
    for (const net::Message& message : inbox) {
      const std::string bytes = unpack_bytes(message.payload);
      util::Frame frame = util::decode_frame(bytes);
      if (frame.type == util::FrameType::kEstimate) {
        for (std::size_t child : children_) out.push_back(make_frame_message(child, bytes));
        const linalg::Vector estimate(frame.payload);
        for (const util::Frame& emitted : owner_->agent_fn_(agent_, frame.round, estimate)) {
          out.push_back(make_frame_message(parent_node_, util::encode_frame(emitted)));
        }
      } else if (frame.type == util::FrameType::kGradient) {
        ++frame.hops;  // one more edge on the way up
        out.push_back(make_frame_message(parent_node_, util::encode_frame(frame)));
      }
    }
    return out;
  }

 private:
  InprocTransport* owner_;
  std::size_t agent_;
  std::size_t parent_node_;
  std::vector<std::size_t> children_;
};

/// The coordinator endpoint: emits the queued estimate frames at the
/// start of an exchange and collects the gradient frames that bubble up.
class InprocTransport::RootNode : public net::Node {
 public:
  void queue(std::vector<net::Message> messages) { queued_ = std::move(messages); }

  std::vector<net::Message> on_round(std::size_t /*round*/,
                                     const std::vector<net::Message>& inbox) override {
    for (const net::Message& message : inbox) {
      util::Frame frame = util::decode_frame(unpack_bytes(message.payload));
      if (frame.type == util::FrameType::kGradient) collected_.push_back(std::move(frame));
    }
    return std::exchange(queued_, {});
  }

  std::vector<util::Frame> take() { return std::exchange(collected_, {}); }

 private:
  std::vector<net::Message> queued_;
  std::vector<util::Frame> collected_;
};

InprocTransport::InprocTransport(Topology topology, std::size_t n, AgentFn agent_fn,
                                 TelemetryFn telemetry_fn)
    : Transport(topology, n),
      agent_fn_(std::move(agent_fn)),
      telemetry_fn_(std::move(telemetry_fn)) {
  REDOPT_REQUIRE(n >= 1, "inproc transport: need at least one agent");
  std::vector<net::Node*> nodes;
  nodes.reserve(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    agents_.push_back(std::make_unique<AgentNode>(this, i, n));
    nodes.push_back(agents_.back().get());
  }
  root_ = std::make_unique<RootNode>();
  nodes.push_back(root_.get());
  network_ = std::make_unique<net::SyncNetwork>(std::move(nodes));
}

InprocTransport::~InprocTransport() = default;

const net::NetworkStats& InprocTransport::network_stats() const { return network_->stats(); }

std::vector<AgentBlob> InprocTransport::collect_telemetry() {
  telemetry::ScopedSpan span("transport.collect_telemetry");
  std::vector<AgentBlob> blobs;
  if (!telemetry_fn_) return blobs;
  blobs.reserve(num_agents());
  for (std::size_t i = 0; i < num_agents(); ++i) {
    blobs.push_back(AgentBlob{static_cast<std::uint32_t>(i), telemetry_fn_(i)});
  }
  return blobs;
}

std::vector<util::Frame> InprocTransport::exchange(std::size_t round,
                                                   const linalg::Vector& estimate) {
  telemetry::ScopedSpan span("transport.exchange");
  span.attr("round", static_cast<std::uint64_t>(round));
  util::Frame down;
  down.type = util::FrameType::kEstimate;
  down.agent = util::kCoordinatorAgent;
  down.round = round;
  down.emitted = round;
  down.payload = estimate.data();
  const std::string bytes = util::encode_frame(down);

  std::vector<net::Message> messages;
  for (std::size_t child : children_of(topology(), kCoordinatorNode, num_agents())) {
    messages.push_back(make_frame_message(child, bytes));
  }
  root_->queue(std::move(messages));

  const std::size_t network_rounds = 2 * max_depth(topology(), num_agents()) + 1;
  for (std::size_t k = 0; k < network_rounds; ++k) network_->run_round();

  std::vector<util::Frame> frames = root_->take();
  finish_exchange(frames, estimate.size());
  return frames;
}

}  // namespace redopt::transport
