#include "transport/uds.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "util/error.h"

namespace redopt::transport {

namespace {

/// Caps a received length prefix; a corrupted prefix must not make the
/// reader wait for gigabytes that will never come.
constexpr std::uint32_t kMaxBodyBytes = 64u << 20;

/// Reads exactly @p size bytes.  Each wait is a poll() bounded by
/// @p timeout_ms, retried up to @p max_retries times (EINTR included).
UdsIoStatus read_exact(int fd, unsigned char* out, std::size_t size, int timeout_ms,
                       int max_retries) {
  std::size_t have = 0;
  int retries_left = max_retries;
  auto retry = [&]() -> bool {
    if (retries_left == 0) return false;
    --retries_left;
    return true;
  };
  while (have < size) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      if (!retry()) return UdsIoStatus::kTimeout;
      continue;
    }
    if (ready < 0) {
      if (errno == EINTR && retry()) continue;
      return UdsIoStatus::kError;
    }
    const ssize_t got = ::recv(fd, out + have, size - have, 0);
    if (got == 0) return UdsIoStatus::kEof;
    if (got < 0) {
      if ((errno == EINTR || errno == EAGAIN) && retry()) continue;
      return UdsIoStatus::kError;
    }
    have += static_cast<std::size_t>(got);
  }
  return UdsIoStatus::kOk;
}

/// Writes all of @p bytes; MSG_NOSIGNAL turns a dead peer into an error
/// return instead of SIGPIPE.
bool write_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t wrote = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

sockaddr_un address_for(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  REDOPT_REQUIRE(path.size() + 1 <= sizeof(addr.sun_path),
                 "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

// ---------------------------------------------------------------- UnixStream

UnixStream::~UnixStream() { close(); }

UnixStream::UnixStream(UnixStream&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

UnixStream& UnixStream::operator=(UnixStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void UnixStream::close() { close_fd(fd_); }

UnixStream UnixStream::connect(const std::string& path, int timeout_ms) {
  const sockaddr_un addr = address_for(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  REDOPT_REQUIRE(fd >= 0, "unix stream: socket() failed");
  UnixStream stream(fd);
  // A Unix-domain connect() either succeeds immediately or fails with
  // the listener's state; poll-based retry covers the window where a
  // restarting daemon has unlinked but not yet rebound its socket.
  int waited_ms = 0;
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      return stream;
    }
    if (errno == EINTR) continue;
    constexpr int kRetrySliceMs = 20;
    REDOPT_REQUIRE(waited_ms < timeout_ms,
                   "unix stream: cannot connect to " + path + ": " + std::strerror(errno));
    ::poll(nullptr, 0, kRetrySliceMs);  // sleep one slice, EINTR-tolerant
    waited_ms += kRetrySliceMs;
  }
}

UdsIoStatus UnixStream::read_frame(util::Frame* frame, int timeout_ms, int max_retries) const {
  unsigned char prefix[4];
  UdsIoStatus status = read_exact(fd_, prefix, sizeof(prefix), timeout_ms, max_retries);
  if (status != UdsIoStatus::kOk) return status;
  const std::uint32_t body_length = static_cast<std::uint32_t>(prefix[0]) |
                                    (static_cast<std::uint32_t>(prefix[1]) << 8) |
                                    (static_cast<std::uint32_t>(prefix[2]) << 16) |
                                    (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (body_length > kMaxBodyBytes) return UdsIoStatus::kError;
  std::vector<unsigned char> body(body_length);
  status = read_exact(fd_, body.data(), body.size(), timeout_ms, max_retries);
  if (status != UdsIoStatus::kOk) return status;
  try {
    *frame = util::decode_frame_body(body.data(), body.size());
  } catch (const PreconditionError&) {
    return UdsIoStatus::kError;
  }
  return UdsIoStatus::kOk;
}

bool UnixStream::write_frame(const util::Frame& frame) const {
  return write_all(fd_, util::encode_frame(frame));
}

// -------------------------------------------------------------- UnixListener

UnixListener::UnixListener(const std::string& path, int backlog) : path_(path) {
  const sockaddr_un addr = address_for(path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  REDOPT_REQUIRE(fd_ >= 0, "unix listener: socket() failed");
  // A crashed predecessor leaves its socket file behind; the name
  // belongs to whoever listens next.
  ::unlink(path.c_str());
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    close_fd(fd_);
    REDOPT_REQUIRE(false, "unix listener: cannot bind " + path + ": " + reason);
  }
  if (::listen(fd_, backlog) != 0) {
    const std::string reason = std::strerror(errno);
    close();
    REDOPT_REQUIRE(false, "unix listener: cannot listen on " + path + ": " + reason);
  }
}

UnixListener::~UnixListener() { close(); }

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

void UnixListener::close() {
  if (fd_ >= 0) {
    close_fd(fd_);
    ::unlink(path_.c_str());
  }
}

std::optional<UnixStream> UnixListener::accept(int timeout_ms) const {
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return std::nullopt;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) continue;
      return std::nullopt;
    }
    return UnixStream(client);
  }
}

}  // namespace redopt::transport
