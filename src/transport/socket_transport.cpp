#include "transport/socket_transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>
#include <utility>

#include "telemetry/span.h"
#include "util/error.h"

namespace redopt::transport {

namespace {

/// Caps a received length prefix; a corrupted prefix must not make the
/// reader wait for gigabytes that will never come.
constexpr std::uint32_t kMaxBodyBytes = 64u << 20;

enum class IoStatus { kOk, kEof, kTimeout, kError };

/// Reads exactly @p size bytes.  Each wait is a poll() bounded by
/// @p timeout_ms, retried up to @p max_retries times; @p on_retry (when
/// non-null) observes every extra attempt, EINTR included.
IoStatus read_exact(int fd, unsigned char* out, std::size_t size, int timeout_ms, int max_retries,
                    const std::function<void()>& on_retry) {
  std::size_t have = 0;
  int retries_left = max_retries;
  auto retry = [&]() -> bool {
    if (retries_left == 0) return false;
    --retries_left;
    if (on_retry) on_retry();
    return true;
  };
  while (have < size) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      if (!retry()) return IoStatus::kTimeout;
      continue;
    }
    if (ready < 0) {
      if (errno == EINTR && retry()) continue;
      return IoStatus::kError;
    }
    const ssize_t got = ::recv(fd, out + have, size - have, 0);
    if (got == 0) return IoStatus::kEof;
    if (got < 0) {
      if ((errno == EINTR || errno == EAGAIN) && retry()) continue;
      return IoStatus::kError;
    }
    have += static_cast<std::size_t>(got);
  }
  return IoStatus::kOk;
}

/// Reads one length-prefixed frame.  A corrupted body (checksum, magic,
/// length mismatch) maps to kError: the link is no longer trustworthy.
IoStatus read_frame(int fd, util::Frame* frame, int timeout_ms, int max_retries,
                    const std::function<void()>& on_retry) {
  unsigned char prefix[4];
  IoStatus status = read_exact(fd, prefix, sizeof(prefix), timeout_ms, max_retries, on_retry);
  if (status != IoStatus::kOk) return status;
  const std::uint32_t body_length = static_cast<std::uint32_t>(prefix[0]) |
                                    (static_cast<std::uint32_t>(prefix[1]) << 8) |
                                    (static_cast<std::uint32_t>(prefix[2]) << 16) |
                                    (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (body_length > kMaxBodyBytes) return IoStatus::kError;
  std::vector<unsigned char> body(body_length);
  status = read_exact(fd, body.data(), body.size(), timeout_ms, max_retries, on_retry);
  if (status != IoStatus::kOk) return status;
  try {
    *frame = util::decode_frame_body(body.data(), body.size());
  } catch (const PreconditionError&) {
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

/// Writes all of @p bytes; MSG_NOSIGNAL turns a dead peer into an error
/// return instead of SIGPIPE.
bool write_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t wrote =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

bool write_frame(int fd, const util::Frame& frame) {
  return write_all(fd, util::encode_frame(frame));
}

util::Frame control_frame(util::FrameType type, std::uint32_t agent, std::size_t round) {
  util::Frame frame;
  frame.type = type;
  frame.agent = agent;
  frame.round = round;
  frame.emitted = round;
  return frame;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

SocketTransport::SocketTransport(Topology topology, std::size_t n, AgentFn agent_fn,
                                 SocketOptions options, TelemetryFn telemetry_fn)
    : Transport(topology, n),
      agent_fn_(std::move(agent_fn)),
      telemetry_fn_(std::move(telemetry_fn)),
      options_(std::move(options)),
      root_children_(children_of(topology, kCoordinatorNode, n)) {
  REDOPT_REQUIRE(n >= 1, "socket transport: need at least one agent");
  REDOPT_REQUIRE(options_.die_at_round.empty() || options_.die_at_round.size() == n,
                 "socket transport: die_at_round must be empty or size n");
  REDOPT_REQUIRE(options_.timeout_ms > 0 && options_.max_retries >= 0,
                 "socket transport: timeout must be positive, retries non-negative");

  up_fd_.assign(n, -1);
  down_fd_.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    int sv[2];
    REDOPT_REQUIRE(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                   "socket transport: socketpair failed");
    up_fd_[i] = sv[0];
    down_fd_[i] = sv[1];
  }

  pids_.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const pid_t pid = ::fork();
    REDOPT_REQUIRE(pid >= 0, "socket transport: fork failed");
    if (pid == 0) {
      // Agent process: keep only this agent's uplink and its children's
      // edges, then run the agent loop.  Never returns.
      for (std::size_t j = 0; j < num_agents(); ++j) {
        if (j != i) close_fd(down_fd_[j]);
        if (parent_of(this->topology(), j, num_agents()) != i) close_fd(up_fd_[j]);
      }
      agent_main(i);
    }
    pids_[i] = pid;
  }
  // Coordinator keeps only the root children's uplinks.
  for (std::size_t j = 0; j < n; ++j) {
    close_fd(down_fd_[j]);
    if (parent_of(topology, j, n) != kCoordinatorNode) close_fd(up_fd_[j]);
  }
  link_alive_.assign(root_children_.size(), 1);
}

void SocketTransport::agent_main(std::size_t agent) {
  const int parent_fd = down_fd_[agent];
  const std::vector<std::size_t> children = children_of(topology(), agent, num_agents());
  std::vector<char> child_alive(children.size(), 1);
  const std::size_t dies_at = options_.die_at_round.empty() ? kNeverDies
                                                            : options_.die_at_round[agent];
  try {
    for (;;) {
      util::Frame in;
      if (read_frame(parent_fd, &in, options_.timeout_ms, options_.max_retries, nullptr) !=
          IoStatus::kOk) {
        ::_exit(0);  // coordinator side went away
      }
      if (in.type == util::FrameType::kShutdown) {
        for (std::size_t c = 0; c < children.size(); ++c) {
          if (child_alive[c]) write_frame(up_fd_[children[c]], in);
        }
        ::_exit(0);
      }
      if (in.type == util::FrameType::kTelemetry) {
        // Telemetry collection sweep: relay the request down, ship this
        // agent's own island, then forward the subtree's blobs upward
        // exactly like gradient frames — and keep serving rounds after.
        const std::string request_bytes = util::encode_frame(in);
        for (std::size_t c = 0; c < children.size(); ++c) {
          if (child_alive[c] && !write_all(up_fd_[children[c]], request_bytes)) {
            child_alive[c] = 0;
          }
        }
        if (telemetry_fn_) {
          util::Frame blob;
          blob.type = util::FrameType::kTelemetry;
          blob.agent = static_cast<std::uint32_t>(agent);
          blob.round = in.round;
          blob.emitted = in.round;
          blob.hops = 1;
          blob.payload = util::pack_blob(telemetry_fn_(agent));
          if (!write_frame(parent_fd, blob)) ::_exit(0);
        }
        for (std::size_t c = 0; c < children.size(); ++c) {
          if (!child_alive[c]) continue;
          for (;;) {
            util::Frame frame;
            if (read_frame(up_fd_[children[c]], &frame, options_.timeout_ms, options_.max_retries,
                           nullptr) != IoStatus::kOk) {
              child_alive[c] = 0;
              break;
            }
            if (frame.type == util::FrameType::kRoundDone) break;
            if (frame.type != util::FrameType::kTelemetry) continue;
            ++frame.hops;  // one more edge on the way up
            if (!write_frame(parent_fd, frame)) ::_exit(0);
          }
        }
        if (!write_frame(parent_fd, control_frame(util::FrameType::kRoundDone,
                                                  static_cast<std::uint32_t>(agent), in.round))) {
          ::_exit(0);
        }
        continue;
      }
      if (in.type != util::FrameType::kEstimate) continue;

      // Relay the estimate down before anything else, so a die_at_round
      // exit here still leaves the subtree informed (though its replies
      // die with this relay's uplink).
      const std::string estimate_bytes = util::encode_frame(in);
      for (std::size_t c = 0; c < children.size(); ++c) {
        if (child_alive[c] && !write_all(up_fd_[children[c]], estimate_bytes)) {
          child_alive[c] = 0;
        }
      }
      if (in.round >= dies_at) ::_exit(0);

      const linalg::Vector estimate(in.payload);
      for (const util::Frame& emitted : agent_fn_(agent, in.round, estimate)) {
        if (!write_frame(parent_fd, emitted)) ::_exit(0);
      }
      for (std::size_t c = 0; c < children.size(); ++c) {
        if (!child_alive[c]) continue;
        for (;;) {
          util::Frame frame;
          if (read_frame(up_fd_[children[c]], &frame, options_.timeout_ms, options_.max_retries,
                         nullptr) != IoStatus::kOk) {
            child_alive[c] = 0;
            break;
          }
          if (frame.type == util::FrameType::kRoundDone) break;
          if (frame.type != util::FrameType::kGradient) continue;
          ++frame.hops;  // one more edge on the way up
          if (!write_frame(parent_fd, frame)) ::_exit(0);
        }
      }
      if (!write_frame(parent_fd, control_frame(util::FrameType::kRoundDone,
                                                static_cast<std::uint32_t>(agent), in.round))) {
        ::_exit(0);
      }
    }
  } catch (...) {
    ::_exit(1);  // never let an exception unwind into the test harness
  }
}

std::vector<AgentBlob> SocketTransport::collect_telemetry() {
  telemetry::ScopedSpan span("transport.collect_telemetry");
  std::vector<AgentBlob> blobs;
  if (!telemetry_fn_) return blobs;
  const std::string request_bytes =
      util::encode_frame(control_frame(util::FrameType::kTelemetry, util::kCoordinatorAgent, 0));
  for (std::size_t c = 0; c < root_children_.size(); ++c) {
    if (link_alive_[c] && !write_all(up_fd_[root_children_[c]], request_bytes)) {
      link_alive_[c] = 0;
      note_death();
    }
  }
  const std::function<void()> on_retry = [this] { note_retry(); };
  for (std::size_t c = 0; c < root_children_.size(); ++c) {
    if (!link_alive_[c]) continue;
    for (;;) {
      util::Frame frame;
      const IoStatus status = read_frame(up_fd_[root_children_[c]], &frame, options_.timeout_ms,
                                         options_.max_retries, on_retry);
      if (status != IoStatus::kOk) {
        link_alive_[c] = 0;
        note_death();
        break;
      }
      if (frame.type == util::FrameType::kRoundDone) break;
      if (frame.type != util::FrameType::kTelemetry) continue;
      blobs.push_back(AgentBlob{frame.agent, util::unpack_blob(frame.payload)});
    }
  }
  std::sort(blobs.begin(), blobs.end(),
            [](const AgentBlob& a, const AgentBlob& b) { return a.agent < b.agent; });
  return blobs;
}

std::vector<util::Frame> SocketTransport::exchange(std::size_t round,
                                                   const linalg::Vector& estimate) {
  telemetry::ScopedSpan span("transport.exchange");
  span.attr("round", static_cast<std::uint64_t>(round));
  util::Frame down;
  down.type = util::FrameType::kEstimate;
  down.agent = util::kCoordinatorAgent;
  down.round = round;
  down.emitted = round;
  down.payload = estimate.data();
  const std::string estimate_bytes = util::encode_frame(down);

  for (std::size_t c = 0; c < root_children_.size(); ++c) {
    if (link_alive_[c] && !write_all(up_fd_[root_children_[c]], estimate_bytes)) {
      link_alive_[c] = 0;
      note_death();
    }
  }

  std::vector<util::Frame> frames;
  const std::function<void()> on_retry = [this] { note_retry(); };
  for (std::size_t c = 0; c < root_children_.size(); ++c) {
    if (!link_alive_[c]) continue;
    for (;;) {
      util::Frame frame;
      const IoStatus status = read_frame(up_fd_[root_children_[c]], &frame, options_.timeout_ms,
                                         options_.max_retries, on_retry);
      if (status != IoStatus::kOk) {
        link_alive_[c] = 0;
        note_death();
        break;
      }
      if (frame.type == util::FrameType::kRoundDone) break;
      if (frame.type == util::FrameType::kGradient) frames.push_back(std::move(frame));
    }
  }
  finish_exchange(frames, estimate.size());
  return frames;
}

std::size_t SocketTransport::live_root_links() const {
  std::size_t live = 0;
  for (char alive : link_alive_) live += alive != 0;
  return live;
}

void SocketTransport::shutdown_agents() {
  for (std::size_t c = 0; c < root_children_.size(); ++c) {
    if (link_alive_[c]) {
      write_frame(up_fd_[root_children_[c]],
                  control_frame(util::FrameType::kShutdown, util::kCoordinatorAgent, 0));
    }
  }
  // Closing every coordinator-held fd unblocks any agent still reading
  // (EOF), including subtrees whose relay died before forwarding the
  // shutdown.
  for (std::size_t j = 0; j < num_agents(); ++j) close_fd(up_fd_[j]);

  for (std::size_t i = 0; i < num_agents(); ++i) {
    if (pids_[i] <= 0) continue;
    // Bounded patience, then force: ~5 s of 1 ms naps per straggler.
    int status = 0;
    bool reaped = false;
    for (int attempt = 0; attempt < 5000; ++attempt) {
      const pid_t got = ::waitpid(pids_[i], &status, WNOHANG);
      if (got == pids_[i] || got < 0) {
        reaped = true;
        break;
      }
      ::usleep(1000);
    }
    if (!reaped) {
      ::kill(pids_[i], SIGKILL);
      ::waitpid(pids_[i], &status, 0);
    }
    pids_[i] = -1;
  }
}

SocketTransport::~SocketTransport() { shutdown_agents(); }

}  // namespace redopt::transport
