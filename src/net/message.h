// Message type for the simulated synchronous network.
//
// The paper assumes a synchronous system (Section 1.4): computation
// proceeds in rounds, and a message sent in round r is delivered at the
// start of round r + 1.  Payloads are real vectors (estimates, gradients);
// the tag distinguishes protocol phases.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "linalg/vector.h"

namespace redopt::net {

using NodeId = std::size_t;

/// Destination value meaning "deliver to every other node".
inline constexpr NodeId kBroadcast = std::numeric_limits<NodeId>::max();

/// One network message.
struct Message {
  NodeId from = 0;
  NodeId to = 0;           ///< a node id, or kBroadcast
  std::size_t round = 0;   ///< round in which the message was sent
  std::string tag;         ///< protocol phase, e.g. "estimate", "gradient"
  linalg::Vector payload;  ///< message body
};

}  // namespace redopt::net
