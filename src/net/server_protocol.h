// The server-based DGD algorithm executed over the simulated synchronous
// network (message-passing version of dgd::train).
//
// Topology (Figure 1a): node ids 0..n-1 are agents, node id n is the
// trusted server.  Each DGD iteration takes two network rounds:
//   round 2t   : server broadcasts the estimate x^t        (tag "estimate")
//   round 2t+1 : each agent replies with its gradient      (tag "gradient")
// after which the server filters and updates.
//
// Given the same TrainerConfig and seed, this produces bit-identical
// iterates to the in-process dgd::train (verified by the integration
// tests) — the point being that the fast path used by benches is a
// faithful execution of the distributed protocol.
#pragma once

#include <optional>

#include "dgd/trainer.h"
#include "net/sync_network.h"

namespace redopt::net {

/// Outcome of a message-passing DGD execution.
struct ServerProtocolResult {
  dgd::TrainResult train;  ///< same observables as dgd::train
  NetworkStats stats;      ///< network traffic of the execution
};

/// Runs the protocol.  Same contract as dgd::train.
ServerProtocolResult run_server_protocol(
    const core::MultiAgentProblem& problem, const std::vector<std::size_t>& byzantine_ids,
    const attacks::Attack* attack, const dgd::TrainerConfig& config,
    const std::optional<linalg::Vector>& reference = std::nullopt);

}  // namespace redopt::net
