// Lossless synchronous round-based network simulation.
//
// Drives a fixed set of Nodes: each round, every node receives the messages
// addressed to it (or broadcast) in the previous round and emits messages
// for the next round.  Delivery order within a round is deterministic
// (sorted by sender id, then emission order), so protocol executions are
// bit-reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "net/node.h"

namespace redopt::net {

/// Traffic counters, for the message-complexity benches.
struct NetworkStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t scalars_transferred = 0;  ///< total payload entries delivered
};

class SyncNetwork {
 public:
  /// The network does not own the nodes; node i has id i.
  explicit SyncNetwork(std::vector<Node*> nodes);

  /// Executes one synchronous round; returns the number of messages
  /// delivered in it.
  std::size_t run_round();

  /// Executes @p rounds rounds.
  void run(std::size_t rounds);

  std::size_t num_nodes() const { return nodes_.size(); }
  const NetworkStats& stats() const { return stats_; }
  std::size_t current_round() const { return round_; }

 private:
  std::vector<Node*> nodes_;
  std::vector<Message> in_flight_;  ///< sent last round, delivered next
  std::size_t round_ = 0;
  NetworkStats stats_;
};

}  // namespace redopt::net
