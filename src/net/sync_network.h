// Synchronous round-based network simulation, lossless by default.
//
// Drives a fixed set of Nodes: each round, every node receives the messages
// addressed to it (or broadcast) in the previous round and emits messages
// for the next round.  Delivery order within a round is deterministic
// (sorted by sender id, then emission order), so protocol executions are
// bit-reproducible.
//
// An optional LinkFaults model makes links lossy: each per-recipient
// delivery is independently dropped, duplicated, or delayed, with draws
// taken from a dedicated deterministic stream in delivery-expansion order
// (message emission order, recipients ascending for broadcasts) — so a
// faulty execution is just as reproducible as a lossless one.
#pragma once

#include <cstdint>
#include <vector>

#include "net/node.h"
#include "rng/rng.h"
#include "telemetry/metrics.h"

namespace redopt::net {

/// Traffic counters, for the message-complexity benches.
struct NetworkStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages_sent = 0;  ///< per-recipient deliveries attempted
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t messages_duplicated = 0;  ///< extra copies injected by the fault model
  std::uint64_t scalars_transferred = 0;  ///< total payload entries delivered
  std::uint64_t bytes_on_wire = 0;        ///< payload bytes delivered (8 per scalar)
  /// Deliveries re-attempted after a timeout.  The simulated network never
  /// times out, so the field only moves via record_retry(); it exists so
  /// NetworkStats and transport::TransportStats expose one traffic shape
  /// to the message-complexity reports.
  std::uint64_t messages_retried = 0;
};

/// Opt-in lossy-link model.  The default (both fields zero) consumes no
/// randomness and reproduces the lossless network exactly.
struct LinkFaults {
  double drop_probability = 0.0;       ///< in [0, 1]; per per-recipient delivery
  double duplicate_probability = 0.0;  ///< in [0, 1]; injects one extra on-time copy
  std::size_t max_delay = 0;           ///< extra rounds, drawn uniformly from [0, max_delay]
  std::uint64_t seed = 1;              ///< seeds the fault stream
};

class SyncNetwork {
 public:
  /// The network does not own the nodes; node i has id i.
  explicit SyncNetwork(std::vector<Node*> nodes, LinkFaults faults = {});

  /// Executes one synchronous round; returns the number of messages
  /// delivered in it.
  std::size_t run_round();

  /// Executes @p rounds rounds.
  void run(std::size_t rounds);

  std::size_t num_nodes() const { return nodes_.size(); }
  const NetworkStats& stats() const { return stats_; }
  std::size_t current_round() const { return round_; }

  /// Books @p count retried deliveries (see NetworkStats::messages_retried).
  void record_retry(std::uint64_t count = 1);

 private:
  struct Delayed {
    Message message;
    std::size_t deliver_round;
  };

  std::vector<Node*> nodes_;
  std::vector<Message> in_flight_;  ///< sent last round, delivered next
  std::vector<Delayed> pending_;   ///< delayed by the fault model
  std::size_t round_ = 0;
  NetworkStats stats_;
  LinkFaults faults_;
  rng::Rng fault_rng_;

  // Telemetry handles (registered at construction).
  telemetry::Counter metric_rounds_;
  telemetry::Counter metric_sent_;
  telemetry::Counter metric_delivered_;
  telemetry::Counter metric_dropped_;
  telemetry::Counter metric_delayed_;
  telemetry::Counter metric_duplicated_;
  telemetry::Counter metric_scalars_;
  telemetry::Counter metric_bytes_;
  telemetry::Counter metric_retried_;
};

}  // namespace redopt::net
