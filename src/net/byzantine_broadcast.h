// Byzantine broadcast via the Oral Messages algorithm OM(f)
// (Lamport, Shostak, Pease 1982).
//
// The paper's peer-to-peer architecture (Figure 1) simulates the
// server-based algorithm using Byzantine broadcast, which is possible when
// f < n/3.  This module implements OM(f) over deterministic simulated
// nodes: a commander broadcasts a vector value; despite up to f Byzantine
// participants (who may equivocate arbitrarily, including the commander),
// all honest participants decide the same value (agreement), and if the
// commander is honest they decide its value (validity).
//
// OM(f) costs O(n^f) messages — that exponential is intrinsic to the
// oral-messages model and is measured by bench_p2p.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "linalg/vector.h"
#include "net/message.h"

namespace redopt::net {

using Value = linalg::Vector;

/// What a Byzantine participant sends in place of honest relaying.
///
/// @p path   the relay chain so far, ending with this Byzantine node;
/// @p dest   the destination node;
/// @p value  the value an honest node would have relayed.
/// Returning different values for different destinations models
/// equivocation.
using ByzantineRelay =
    std::function<Value(const std::vector<NodeId>& path, NodeId dest, const Value& value)>;

/// Outcome of one OM(f) broadcast.
struct BroadcastResult {
  /// Decided value per node id.  The commander's entry is its own input.
  std::vector<Value> decided;
  /// Total messages exchanged (for the complexity bench).
  std::uint64_t messages = 0;
};

/// Runs OM(f) with nodes {0..n-1}, the given commander, and input @p value.
///
/// Requires n > 3f (the classical bound) and commander < n.  The relay
/// function is consulted whenever a Byzantine node (commander or
/// lieutenant) sends; pass nullptr to make Byzantine nodes follow the
/// protocol honestly.
BroadcastResult byzantine_broadcast(const Value& value, NodeId commander, std::size_t n,
                                    std::size_t f, const std::vector<bool>& is_byzantine,
                                    const ByzantineRelay& relay = nullptr);

/// Majority value among @p values under exact equality; returns the
/// all-zero "default" vector of dimension @p dim when no strict majority
/// exists (the classical ⊥ default).
Value majority_value(const std::vector<Value>& values, std::size_t dim);

}  // namespace redopt::net
