// Node interface for the simulated synchronous network.
#pragma once

#include <vector>

#include "net/message.h"

namespace redopt::net {

/// A protocol participant driven by the SyncNetwork in rounds.
class Node {
 public:
  virtual ~Node() = default;

  /// Called once per round with all messages delivered this round (those
  /// sent to this node, or broadcast, in the previous round).  Returns the
  /// messages to send; they are delivered at the start of the next round.
  virtual std::vector<Message> on_round(std::size_t round, const std::vector<Message>& inbox) = 0;
};

}  // namespace redopt::net
