#include "net/byzantine_broadcast.h"

#include <map>

#include "util/error.h"

namespace redopt::net {

Value majority_value(const std::vector<Value>& values, std::size_t dim) {
  std::map<std::vector<double>, std::size_t> counts;
  for (const auto& v : values) ++counts[v.data()];
  for (const auto& [data, count] : counts) {
    if (2 * count > values.size()) return Value(std::vector<double>(data));
  }
  return Value(dim);  // ⊥: the all-zero default
}

namespace {

struct OmContext {
  std::size_t n = 0;
  std::size_t dim = 0;
  const std::vector<bool>* is_byzantine = nullptr;
  const ByzantineRelay* relay = nullptr;
  std::uint64_t messages = 0;
};

/// What @p sender actually transmits to @p dest when an honest node would
/// transmit @p value.
Value transmitted(OmContext& ctx, std::vector<NodeId>& path, NodeId sender, NodeId dest,
                  const Value& value) {
  ++ctx.messages;
  if ((*ctx.is_byzantine)[sender] && *ctx.relay != nullptr) {
    path.push_back(sender);
    Value v = (*ctx.relay)(path, dest, value);
    path.pop_back();
    REDOPT_REQUIRE(v.size() == ctx.dim, "byzantine relay produced wrong-dimension value");
    return v;
  }
  return value;
}

/// OM(m) with the given commander and lieutenant set; returns the value
/// each lieutenant decides for this (sub-)broadcast, indexed by position in
/// @p lieutenants.
std::vector<Value> om(OmContext& ctx, std::size_t m, NodeId commander,
                      const std::vector<NodeId>& lieutenants, const Value& commander_value,
                      std::vector<NodeId>& path) {
  const std::size_t k = lieutenants.size();
  // The value each lieutenant receives from the commander.
  std::vector<Value> received(k);
  for (std::size_t i = 0; i < k; ++i) {
    received[i] = transmitted(ctx, path, commander, lieutenants[i], commander_value);
  }
  if (m == 0 || k <= 1) return received;

  // Each lieutenant j relays its received value to the others via OM(m-1);
  // sub[j] holds, for each position i != j, the value lieutenant i decided
  // for j's relay.
  std::vector<std::vector<Value>> sub(k);
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<NodeId> others;
    others.reserve(k - 1);
    for (std::size_t i = 0; i < k; ++i) {
      if (i != j) others.push_back(lieutenants[i]);
    }
    path.push_back(commander);
    sub[j] = om(ctx, m - 1, lieutenants[j], others, received[j], path);
    path.pop_back();
  }

  // Each lieutenant i decides the majority of its own received value and
  // the relayed values it decided for the other lieutenants.
  std::vector<Value> decided(k);
  std::vector<Value> votes;
  for (std::size_t i = 0; i < k; ++i) {
    votes.clear();
    votes.push_back(received[i]);
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      // Position of i within "others" of j: i's index shifts down by one
      // when i > j.
      const std::size_t pos = i > j ? i - 1 : i;
      votes.push_back(sub[j][pos]);
    }
    decided[i] = majority_value(votes, ctx.dim);
  }
  return decided;
}

}  // namespace

BroadcastResult byzantine_broadcast(const Value& value, NodeId commander, std::size_t n,
                                    std::size_t f, const std::vector<bool>& is_byzantine,
                                    const ByzantineRelay& relay) {
  REDOPT_REQUIRE(n > 3 * f, "byzantine broadcast requires n > 3f");
  REDOPT_REQUIRE(commander < n, "commander id out of range");
  REDOPT_REQUIRE(is_byzantine.size() == n, "is_byzantine size mismatch");
  REDOPT_REQUIRE(!value.empty(), "broadcast value must be non-empty");

  OmContext ctx;
  ctx.n = n;
  ctx.dim = value.size();
  ctx.is_byzantine = &is_byzantine;
  ctx.relay = &relay;

  std::vector<NodeId> lieutenants;
  lieutenants.reserve(n - 1);
  for (NodeId i = 0; i < n; ++i) {
    if (i != commander) lieutenants.push_back(i);
  }

  std::vector<NodeId> path;
  const auto decided_lts = om(ctx, f, commander, lieutenants, value, path);

  BroadcastResult result;
  result.decided.assign(n, Value(ctx.dim));
  result.decided[commander] = value;
  for (std::size_t i = 0; i < lieutenants.size(); ++i) {
    result.decided[lieutenants[i]] = decided_lts[i];
  }
  result.messages = ctx.messages;
  return result;
}

}  // namespace redopt::net
