// OM(f) Byzantine broadcast as an actual message-passing protocol.
//
// net/byzantine_broadcast.h computes the oral-messages recursion
// *centrally* (a faithful but shortcut simulation).  This module runs the
// real protocol over the SyncNetwork substrate: each node only ever acts
// on messages it received, maintaining its own EIG (exponential
// information gathering) tree of relayed values keyed by the relay path,
// and decides by recursive majority after f + 1 delivery rounds.
//
// The test suite checks this protocol decides exactly the same values as
// the functional recursion for every fault pattern — the standard
// cross-validation between a model and its distributed implementation.
#pragma once

#include <map>
#include <vector>

#include "net/byzantine_broadcast.h"
#include "net/node.h"
#include "net/sync_network.h"

namespace redopt::net {

/// One OM(f) participant.  Node ids 0..n-1; the commander is one of them.
class OmNode final : public Node {
 public:
  /// @p relay is consulted when this node is Byzantine and about to send
  /// (empty relay = follow the protocol honestly despite being marked).
  OmNode(NodeId id, std::size_t n, std::size_t f, NodeId commander, bool byzantine,
         ByzantineRelay relay);

  /// Sets the commander's input value (only meaningful on the commander).
  void set_input(Value value);

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>& inbox) override;

  /// The decision, valid after f + 2 network rounds.  The commander
  /// decides its own input.
  Value decision() const;

  /// Number of protocol rounds needed: one send round plus f + 1 delivery
  /// rounds.
  std::size_t rounds_needed() const { return f_ + 2; }

 private:
  /// Recursive EIG majority over the stored value tree.
  Value decide(const std::vector<NodeId>& path) const;

  /// The value this node transmits for chain @p path_with_self (applies
  /// the Byzantine relay when marked).
  Value transmitted(const std::vector<NodeId>& path_with_self, NodeId dest,
                    const Value& honest_value) const;

  NodeId id_;
  std::size_t n_;
  std::size_t f_;
  NodeId commander_;
  bool byzantine_;
  ByzantineRelay relay_;
  Value input_;  // commander only
  std::size_t dim_ = 0;
  /// Received values keyed by relay path (path[0] == commander, last
  /// element == the node that sent it to us).
  std::map<std::vector<NodeId>, Value> tree_;
};

/// Outcome of a full protocol execution.
struct OmProtocolResult {
  std::vector<Value> decided;  ///< per node (commander: its input)
  NetworkStats stats;          ///< network traffic of the execution
};

/// Convenience driver: builds the nodes, runs f + 2 rounds, collects
/// decisions.  Same contract as byzantine_broadcast().
OmProtocolResult run_om_protocol(const Value& value, NodeId commander, std::size_t n,
                                 std::size_t f, const std::vector<bool>& is_byzantine,
                                 const ByzantineRelay& relay = nullptr);

}  // namespace redopt::net
