#include "net/sync_network.h"

#include <algorithm>

#include "telemetry/events.h"
#include "util/error.h"

namespace redopt::net {

SyncNetwork::SyncNetwork(std::vector<Node*> nodes, LinkFaults faults)
    : nodes_(std::move(nodes)), faults_(faults), fault_rng_(faults.seed) {
  REDOPT_REQUIRE(!nodes_.empty(), "network needs at least one node");
  for (const Node* n : nodes_) REDOPT_REQUIRE(n != nullptr, "network node is null");
  REDOPT_REQUIRE(faults_.drop_probability >= 0.0 && faults_.drop_probability <= 1.0,
                 "drop probability must lie in [0, 1]");
  REDOPT_REQUIRE(faults_.duplicate_probability >= 0.0 && faults_.duplicate_probability <= 1.0,
                 "duplicate probability must lie in [0, 1]");

  auto& reg = telemetry::registry();
  metric_rounds_ = reg.counter("net.rounds");
  metric_sent_ = reg.counter("net.messages_sent");
  metric_delivered_ = reg.counter("net.messages_delivered");
  metric_dropped_ = reg.counter("net.messages_dropped");
  metric_delayed_ = reg.counter("net.messages_delayed");
  metric_duplicated_ = reg.counter("net.messages_duplicated");
  metric_scalars_ = reg.counter("net.scalars_transferred");
  metric_bytes_ = reg.counter("net.bytes_on_wire");
  // Retries happen when a wall-clock timeout fires, so the count is
  // timing-dependent by nature: masked from bit-identity checks.
  metric_retried_ = reg.counter("net.messages_retried", telemetry::Determinism::kUnstable);
}

void SyncNetwork::record_retry(std::uint64_t count) {
  stats_.messages_retried += count;
  metric_retried_.inc(count);
}

std::size_t SyncNetwork::run_round() {
  const std::size_t n = nodes_.size();

  std::vector<std::vector<Message>> inboxes(n);
  std::size_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  auto deliver = [&](Message m) {
    stats_.scalars_transferred += m.payload.size();
    metric_scalars_.inc(m.payload.size());
    stats_.bytes_on_wire += sizeof(double) * m.payload.size();
    metric_bytes_.inc(sizeof(double) * m.payload.size());
    inboxes[m.to].push_back(std::move(m));
    ++delivered;
  };

  // Delayed messages whose round has come are delivered first; they carry
  // their original sender id, so the per-inbox stable sort below still
  // yields a deterministic delivery order.
  if (!pending_.empty()) {
    std::vector<Delayed> still_pending;
    still_pending.reserve(pending_.size());
    for (auto& p : pending_) {
      if (p.deliver_round <= round_) {
        deliver(std::move(p.message));
      } else {
        still_pending.push_back(std::move(p));
      }
    }
    pending_ = std::move(still_pending);
  }

  // Expand in-flight messages into per-recipient deliveries (broadcasts
  // fan out to every node except the sender) and apply the fault model to
  // each delivery independently, in expansion order.
  auto route = [&](Message m) {
    REDOPT_REQUIRE(m.to < n, "message addressed to unknown node");
    ++stats_.messages_sent;
    metric_sent_.inc();
    if (faults_.drop_probability > 0.0 && fault_rng_.uniform() < faults_.drop_probability) {
      ++stats_.messages_dropped;
      ++dropped;
      return;
    }
    if (faults_.duplicate_probability > 0.0 &&
        fault_rng_.uniform() < faults_.duplicate_probability) {
      // One extra copy arrives on time; the original still runs the delay
      // gauntlet below, so a duplicate can land before its original.
      ++stats_.messages_duplicated;
      ++duplicated;
      deliver(m);
    }
    if (faults_.max_delay > 0) {
      const auto delay = static_cast<std::size_t>(
          fault_rng_.uniform_int(0, static_cast<std::int64_t>(faults_.max_delay)));
      if (delay > 0) {
        ++stats_.messages_delayed;
        ++delayed;
        pending_.push_back(Delayed{std::move(m), round_ + delay});
        return;
      }
    }
    deliver(std::move(m));
  };
  for (Message& m : in_flight_) {
    if (m.to == kBroadcast) {
      for (std::size_t i = 0; i < n; ++i) {
        if (i == m.from) continue;
        Message copy = m;
        copy.to = i;
        route(std::move(copy));
      }
    } else {
      route(std::move(m));
    }
  }
  in_flight_.clear();

  // Deterministic delivery order: by sender id (stable sort keeps each
  // sender's emission order).
  for (auto& inbox : inboxes) {
    std::stable_sort(inbox.begin(), inbox.end(),
                     [](const Message& a, const Message& b) { return a.from < b.from; });
  }

  for (std::size_t i = 0; i < n; ++i) {
    auto outgoing = nodes_[i]->on_round(round_, inboxes[i]);
    for (auto& m : outgoing) {
      m.from = i;
      m.round = round_;
      in_flight_.push_back(std::move(m));
    }
  }

  ++round_;
  ++stats_.rounds;
  stats_.messages_delivered += delivered;
  metric_rounds_.inc();
  metric_delivered_.inc(delivered);
  metric_dropped_.inc(dropped);
  metric_delayed_.inc(delayed);
  metric_duplicated_.inc(duplicated);
  if (telemetry::tracing_enabled()) {
    telemetry::emit(telemetry::Event("net.round")
                        .with("round", static_cast<std::uint64_t>(round_ - 1))
                        .with("delivered", static_cast<std::uint64_t>(delivered))
                        .with("dropped", dropped)
                        .with("delayed", delayed)
                        .with("duplicated", duplicated));
  }
  return delivered;
}

void SyncNetwork::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) run_round();
}

}  // namespace redopt::net
