#include "net/sync_network.h"

#include <algorithm>

#include "util/error.h"

namespace redopt::net {

SyncNetwork::SyncNetwork(std::vector<Node*> nodes) : nodes_(std::move(nodes)) {
  REDOPT_REQUIRE(!nodes_.empty(), "network needs at least one node");
  for (const Node* n : nodes_) REDOPT_REQUIRE(n != nullptr, "network node is null");
}

std::size_t SyncNetwork::run_round() {
  const std::size_t n = nodes_.size();

  // Partition in-flight messages into per-node inboxes; broadcasts fan out
  // to every node except the sender.
  std::vector<std::vector<Message>> inboxes(n);
  std::size_t delivered = 0;
  for (const Message& m : in_flight_) {
    if (m.to == kBroadcast) {
      for (std::size_t i = 0; i < n; ++i) {
        if (i == m.from) continue;
        Message copy = m;
        copy.to = i;
        inboxes[i].push_back(std::move(copy));
        ++delivered;
        stats_.scalars_transferred += m.payload.size();
      }
    } else {
      REDOPT_REQUIRE(m.to < n, "message addressed to unknown node");
      stats_.scalars_transferred += m.payload.size();
      inboxes[m.to].push_back(m);
      ++delivered;
    }
  }
  in_flight_.clear();

  // Deterministic delivery order: by sender id (stable sort keeps each
  // sender's emission order).
  for (auto& inbox : inboxes) {
    std::stable_sort(inbox.begin(), inbox.end(),
                     [](const Message& a, const Message& b) { return a.from < b.from; });
  }

  for (std::size_t i = 0; i < n; ++i) {
    auto outgoing = nodes_[i]->on_round(round_, inboxes[i]);
    for (auto& m : outgoing) {
      m.from = i;
      m.round = round_;
      in_flight_.push_back(std::move(m));
    }
  }

  ++round_;
  ++stats_.rounds;
  stats_.messages_delivered += delivered;
  return delivered;
}

void SyncNetwork::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) run_round();
}

}  // namespace redopt::net
