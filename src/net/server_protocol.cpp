#include "net/server_protocol.h"

#include <limits>

#include "core/aggregate_cost.h"
#include "util/error.h"

namespace redopt::net {

namespace {

using dgd::TrainerConfig;
using linalg::Vector;

/// The trusted server: broadcasts the estimate, filters replies, updates.
class ServerNode final : public Node {
 public:
  ServerNode(std::size_t n, std::size_t f, std::size_t d, const TrainerConfig& config)
      : n_(n), d_(d), config_(config), active_(n, true), n_active_(n), f_active_(f),
        filter_(config.filter) {
    x_ = config.x0.empty() ? Vector(d) : config.x0;
    REDOPT_REQUIRE(x_.size() == d, "x0 dimension mismatch");
    x_ = config.projection->project(x_);
  }

  // Timing: a message sent in round r is delivered in round r + 1.  The
  // server broadcasts x^t in even round 2t; agents reply in odd round
  // 2t + 1; the replies arrive in even round 2t + 2, where the server
  // updates and immediately broadcasts x^{t+1}.
  std::vector<Message> on_round(std::size_t round, const std::vector<Message>& inbox) override {
    if (round % 2 == 1) return {};  // replies are in flight; nothing to do

    if (round > 0) {
      // Gradient-collection.  The system is synchronous, so a missing
      // reply *identifies* the sender as faulty: the server eliminates it
      // and updates (n, f) — the paper's step S1.
      std::vector<Vector> replies(n_);
      std::vector<bool> seen(n_, false);
      for (const Message& m : inbox) {
        if (m.tag != "gradient") continue;
        REDOPT_REQUIRE(m.from < n_, "gradient from unknown agent");
        if (!active_[m.from]) continue;  // eliminated agents are ignored
        REDOPT_REQUIRE(!seen[m.from], "duplicate gradient from one agent");
        seen[m.from] = true;
        replies[m.from] = m.payload;
      }
      bool eliminated_this_round = false;
      for (std::size_t i = 0; i < n_; ++i) {
        if (active_[i] && !seen[i]) {
          active_[i] = false;
          --n_active_;
          if (f_active_ > 0) --f_active_;
          eliminated_agents_.push_back(i);
          eliminated_this_round = true;
        }
      }
      if (eliminated_this_round) {
        REDOPT_REQUIRE(config_.filter_factory != nullptr,
                       "agent eliminated but no filter_factory configured");
        filter_ = config_.filter_factory(n_active_, f_active_);
        REDOPT_REQUIRE(filter_ != nullptr && filter_->expected_inputs() == n_active_,
                       "filter_factory produced an unusable filter");
      }

      std::vector<Vector> gradients;
      gradients.reserve(n_active_);
      for (std::size_t i = 0; i < n_; ++i) {
        if (active_[i]) gradients.push_back(replies[i]);
      }
      const Vector direction = filter_->apply(gradients);
      x_ = config_.projection->project(x_ - direction * config_.schedule->step(iteration_));
      ++iteration_;
    }

    Message m;
    m.to = kBroadcast;
    m.tag = "estimate";
    m.payload = x_;
    return {m};
  }

  const Vector& estimate() const { return x_; }
  const std::vector<std::size_t>& eliminated_agents() const { return eliminated_agents_; }
  std::size_t iterations_done() const { return iteration_; }

 private:
  std::size_t n_;
  std::size_t d_;
  TrainerConfig config_;
  Vector x_;
  std::size_t iteration_ = 0;
  std::vector<bool> active_;
  std::size_t n_active_;
  std::size_t f_active_;
  filters::FilterPtr filter_;
  std::vector<std::size_t> eliminated_agents_;
};

/// An honest agent: replies to "estimate" with its gradient.
class HonestAgentNode final : public Node {
 public:
  HonestAgentNode(core::CostPtr cost, NodeId server) : cost_(std::move(cost)), server_(server) {}

  std::vector<Message> on_round(std::size_t, const std::vector<Message>& inbox) override {
    std::vector<Message> out;
    for (const Message& m : inbox) {
      if (m.tag != "estimate") continue;
      Message reply;
      reply.to = server_;
      reply.tag = "gradient";
      reply.payload = cost_->gradient(m.payload);
      out.push_back(std::move(reply));
    }
    return out;
  }

 private:
  core::CostPtr cost_;
  NodeId server_;
};

/// A Byzantine agent: crafts its reply with the configured attack.  The
/// adversary is omniscient (it knows all honest costs), matching the
/// in-process trainer's worst-case model.
class ByzantineAgentNode final : public Node {
 public:
  ByzantineAgentNode(const core::MultiAgentProblem& problem, std::size_t agent_id,
                     const std::vector<std::size_t>& honest, const attacks::Attack& attack,
                     rng::Rng rng, NodeId server)
      : problem_(problem),
        agent_id_(agent_id),
        honest_(honest),
        attack_(attack),
        rng_(std::move(rng)),
        server_(server) {}

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>& inbox) override {
    std::vector<Message> out;
    for (const Message& m : inbox) {
      if (m.tag != "estimate") continue;
      const Vector& x = m.payload;
      const Vector true_gradient = problem_.costs[agent_id_]->gradient(x);
      std::vector<Vector> honest_gradients;
      honest_gradients.reserve(honest_.size());
      for (std::size_t id : honest_) honest_gradients.push_back(problem_.costs[id]->gradient(x));

      attacks::AttackContext ctx;
      ctx.iteration = round / 2;
      ctx.agent_id = agent_id_;
      ctx.n = problem_.num_agents();
      ctx.f = problem_.f;
      ctx.estimate = &x;
      ctx.honest_gradient = &true_gradient;
      ctx.honest_gradients = &honest_gradients;
      ctx.rng = &rng_;

      // Omission faults simply do not reply; the server's synchronous
      // collection round detects the gap and eliminates the agent.
      if (!attack_.responds(ctx)) continue;

      Message reply;
      reply.to = server_;
      reply.tag = "gradient";
      reply.payload = attack_.craft(ctx);
      out.push_back(std::move(reply));
    }
    return out;
  }

 private:
  const core::MultiAgentProblem& problem_;
  std::size_t agent_id_;
  std::vector<std::size_t> honest_;
  const attacks::Attack& attack_;
  rng::Rng rng_;
  NodeId server_;
};

}  // namespace

ServerProtocolResult run_server_protocol(const core::MultiAgentProblem& problem,
                                         const std::vector<std::size_t>& byzantine_ids,
                                         const attacks::Attack* attack,
                                         const dgd::TrainerConfig& config,
                                         const std::optional<linalg::Vector>& reference) {
  problem.validate();
  REDOPT_REQUIRE(config.filter != nullptr, "config needs a gradient filter");
  REDOPT_REQUIRE(config.schedule != nullptr, "config needs a step schedule");
  REDOPT_REQUIRE(config.projection != nullptr, "config needs a projection set");
  REDOPT_REQUIRE(byzantine_ids.size() <= problem.f, "more byzantine agents than fault budget");
  REDOPT_REQUIRE(byzantine_ids.empty() || attack != nullptr,
                 "byzantine agents present but no attack supplied");

  const std::size_t n = problem.num_agents();
  const std::size_t d = problem.dimension();
  const NodeId server_id = n;
  const auto honest = dgd::honest_ids(n, byzantine_ids);
  if (reference) REDOPT_REQUIRE(reference->size() == d, "reference dimension mismatch");

  std::vector<bool> is_byzantine(n, false);
  for (std::size_t id : byzantine_ids) is_byzantine[id] = true;

  const rng::Rng root(config.seed);
  std::vector<std::unique_ptr<Node>> agents;
  agents.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (is_byzantine[i]) {
      agents.push_back(std::make_unique<ByzantineAgentNode>(
          problem, i, honest, *attack, root.fork("byzantine-agent-" + std::to_string(i)),
          server_id));
    } else {
      agents.push_back(std::make_unique<HonestAgentNode>(problem.costs[i], server_id));
    }
  }
  ServerNode server(n, problem.f, d, config);

  std::vector<Node*> nodes;
  nodes.reserve(n + 1);
  for (auto& a : agents) nodes.push_back(a.get());
  nodes.push_back(&server);
  SyncNetwork network(std::move(nodes));

  auto honest_loss = [&](const Vector& at) {
    return core::subset_value(problem.costs, honest, at);
  };

  ServerProtocolResult result;
  auto record = [&](std::size_t t) {
    if (config.trace_stride == 0) return;
    if (t % config.trace_stride != 0 && t != config.iterations) return;
    result.train.trace.iteration.push_back(t);
    result.train.trace.loss.push_back(honest_loss(server.estimate()));
    result.train.trace.distance.push_back(reference
                                              ? linalg::distance(server.estimate(), *reference)
                                              : std::numeric_limits<double>::quiet_NaN());
    if (config.trace_estimates) result.train.trace.estimates.push_back(server.estimate());
  };

  record(0);
  network.run_round();  // round 0: server broadcasts x^0
  for (std::size_t t = 0; t < config.iterations; ++t) {
    network.run_round();  // round 2t+1: agents reply with gradients
    network.run_round();  // round 2t+2: server updates to x^{t+1}, broadcasts
    record(t + 1);
  }
  REDOPT_ASSERT(server.iterations_done() == config.iterations,
                "server did not complete all iterations");

  result.train.estimate = server.estimate();
  result.train.eliminated_agents = server.eliminated_agents();
  result.train.final_loss = honest_loss(server.estimate());
  if (reference) result.train.final_distance = linalg::distance(server.estimate(), *reference);
  result.stats = network.stats();
  return result;
}

}  // namespace redopt::net
