#include "net/p2p.h"

#include <limits>

#include "core/aggregate_cost.h"
#include "net/byzantine_broadcast.h"
#include "net/om_protocol.h"
#include "util/error.h"

namespace redopt::net {

P2pResult run_p2p_protocol(const core::MultiAgentProblem& problem,
                           const std::vector<std::size_t>& byzantine_ids,
                           const attacks::Attack* attack, const dgd::TrainerConfig& config,
                           const std::optional<linalg::Vector>& reference, bool equivocate,
                           bool use_message_protocol) {
  problem.validate();
  const std::size_t n = problem.num_agents();
  const std::size_t d = problem.dimension();
  REDOPT_REQUIRE(n > 3 * problem.f, "peer-to-peer simulation requires n > 3f");
  REDOPT_REQUIRE(config.filter != nullptr, "config needs a gradient filter");
  REDOPT_REQUIRE(config.schedule != nullptr, "config needs a step schedule");
  REDOPT_REQUIRE(config.projection != nullptr, "config needs a projection set");
  REDOPT_REQUIRE(byzantine_ids.size() <= problem.f, "more byzantine agents than fault budget");
  REDOPT_REQUIRE(byzantine_ids.empty() || attack != nullptr,
                 "byzantine agents present but no attack supplied");

  const auto honest = dgd::honest_ids(n, byzantine_ids);
  std::vector<bool> is_byzantine(n, false);
  for (std::size_t id : byzantine_ids) is_byzantine[id] = true;
  if (reference) REDOPT_REQUIRE(reference->size() == d, "reference dimension mismatch");

  const rng::Rng root(config.seed);
  std::vector<rng::Rng> agent_rngs;
  agent_rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    agent_rngs.push_back(root.fork("byzantine-agent-" + std::to_string(i)));
  rng::Rng equivocation_rng = root.fork("equivocation");

  // Every honest agent's estimate; kept per-agent to *check* lockstep
  // rather than assume it.
  std::vector<linalg::Vector> estimates(n);
  for (std::size_t i = 0; i < n; ++i) {
    linalg::Vector x0 = config.x0.empty() ? linalg::Vector(d) : config.x0;
    REDOPT_REQUIRE(x0.size() == d, "x0 dimension mismatch");
    estimates[i] = config.projection->project(x0);
  }

  auto honest_loss = [&](const linalg::Vector& at) {
    return core::subset_value(problem.costs, honest, at);
  };

  P2pResult result;
  const std::size_t lead = honest.front();  // representative honest agent
  auto record = [&](std::size_t t) {
    if (config.trace_stride == 0) return;
    if (t % config.trace_stride != 0 && t != config.iterations) return;
    result.train.trace.iteration.push_back(t);
    result.train.trace.loss.push_back(honest_loss(estimates[lead]));
    result.train.trace.distance.push_back(
        reference ? linalg::distance(estimates[lead], *reference)
                  : std::numeric_limits<double>::quiet_NaN());
    if (config.trace_estimates) result.train.trace.estimates.push_back(estimates[lead]);
  };

  record(0);
  for (std::size_t t = 0; t < config.iterations; ++t) {
    const linalg::Vector& x = estimates[lead];

    // Honest gradients at the common estimate (the attack context's
    // omniscient view).
    std::vector<linalg::Vector> honest_gradients;
    honest_gradients.reserve(honest.size());
    for (std::size_t id : honest) honest_gradients.push_back(problem.costs[id]->gradient(x));

    // Each agent broadcasts its value via OM(f); honest agents decide one
    // consistent vector per sender.
    std::vector<std::vector<linalg::Vector>> decided_by(n);  // [receiver][sender]
    for (std::size_t i = 0; i < n; ++i) decided_by[i].resize(n);

    for (std::size_t sender = 0; sender < n; ++sender) {
      linalg::Vector value;
      if (is_byzantine[sender]) {
        const linalg::Vector true_gradient = problem.costs[sender]->gradient(x);
        attacks::AttackContext ctx;
        ctx.iteration = t;
        ctx.agent_id = sender;
        ctx.n = n;
        ctx.f = problem.f;
        ctx.estimate = &x;
        ctx.honest_gradient = &true_gradient;
        ctx.honest_gradients = &honest_gradients;
        ctx.rng = &agent_rngs[sender];
        value = attack->craft(ctx);
      } else {
        value = problem.costs[sender]->gradient(x);
      }

      ByzantineRelay relay = nullptr;
      if (equivocate) {
        // A Byzantine relayer perturbs the value differently per
        // destination: the strongest consistency challenge for OM(f).
        relay = [&](const std::vector<NodeId>& /*path*/, NodeId dest,
                    const Value& v) -> Value {
          Value perturbed = v;
          for (auto& c : perturbed) {
            c += equivocation_rng.gaussian(0.0, 1.0) + static_cast<double>(dest);
          }
          return perturbed;
        };
      }

      std::vector<linalg::Vector> decided;
      if (use_message_protocol) {
        const auto broadcast =
            run_om_protocol(value, sender, n, problem.f, is_byzantine, relay);
        result.messages += broadcast.stats.messages_delivered;
        decided = broadcast.decided;
      } else {
        const auto broadcast =
            byzantine_broadcast(value, sender, n, problem.f, is_byzantine, relay);
        result.messages += broadcast.messages;
        decided = broadcast.decided;
      }
      for (std::size_t receiver = 0; receiver < n; ++receiver) {
        decided_by[receiver][sender] = decided[receiver];
      }
    }

    // Agreement check: all honest agents decided identical gradient sets.
    for (std::size_t h : honest) {
      for (std::size_t sender = 0; sender < n; ++sender) {
        if (!(decided_by[h][sender] == decided_by[lead][sender])) {
          result.honest_agreement = false;
        }
      }
    }

    // Every honest agent filters and updates locally.
    for (std::size_t h : honest) {
      const linalg::Vector direction = config.filter->apply(decided_by[h]);
      estimates[h] =
          config.projection->project(estimates[h] - direction * config.schedule->step(t));
    }
    for (std::size_t h : honest) {
      if (!(estimates[h] == estimates[lead])) result.honest_agreement = false;
    }
    record(t + 1);
  }

  result.train.estimate = estimates[lead];
  result.train.final_loss = honest_loss(estimates[lead]);
  if (reference) {
    result.train.final_distance = linalg::distance(estimates[lead], *reference);
  }
  return result;
}

}  // namespace redopt::net
