#include "net/om_protocol.h"

#include <memory>
#include <sstream>

#include "util/error.h"

namespace redopt::net {

namespace {

/// Encodes a relay path as a message tag "om:0,3,5".
std::string encode_path(const std::vector<NodeId>& path) {
  std::string tag = "om:";
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) tag += ',';
    tag += std::to_string(path[i]);
  }
  return tag;
}

/// Parses an "om:..." tag back into a path; returns false on other tags.
bool decode_path(const std::string& tag, std::vector<NodeId>& path) {
  if (tag.rfind("om:", 0) != 0) return false;
  path.clear();
  std::istringstream stream(tag.substr(3));
  std::string token;
  while (std::getline(stream, token, ',')) {
    path.push_back(static_cast<NodeId>(std::stoull(token)));
  }
  return !path.empty();
}

}  // namespace

OmNode::OmNode(NodeId id, std::size_t n, std::size_t f, NodeId commander, bool byzantine,
               ByzantineRelay relay)
    : id_(id), n_(n), f_(f), commander_(commander), byzantine_(byzantine),
      relay_(std::move(relay)) {
  REDOPT_REQUIRE(n > 3 * f, "OM protocol requires n > 3f");
  REDOPT_REQUIRE(id < n && commander < n, "node/commander id out of range");
}

void OmNode::set_input(Value value) {
  REDOPT_REQUIRE(id_ == commander_, "only the commander takes an input");
  REDOPT_REQUIRE(!value.empty(), "broadcast value must be non-empty");
  dim_ = value.size();
  input_ = std::move(value);
}

Value OmNode::transmitted(const std::vector<NodeId>& path_with_self, NodeId dest,
                          const Value& honest_value) const {
  if (byzantine_ && relay_ != nullptr) {
    Value v = relay_(path_with_self, dest, honest_value);
    REDOPT_REQUIRE(v.size() == honest_value.size(),
                   "byzantine relay produced wrong-dimension value");
    return v;
  }
  return honest_value;
}

std::vector<Message> OmNode::on_round(std::size_t round, const std::vector<Message>& inbox) {
  std::vector<Message> out;

  // Round 0: the commander initiates, sending its value to every other
  // node with the one-element path (itself).
  if (round == 0) {
    if (id_ == commander_) {
      REDOPT_REQUIRE(!input_.empty(), "commander has no input value");
      const std::vector<NodeId> path = {commander_};
      for (NodeId dest = 0; dest < n_; ++dest) {
        if (dest == id_) continue;
        Message m;
        m.to = dest;
        m.tag = encode_path(path);
        m.payload = transmitted(path, dest, input_);
        out.push_back(std::move(m));
      }
    }
    return out;
  }

  // Delivery rounds: store every OM message and relay those whose chain
  // can still grow (|path| <= f: the relayed copy has |path| + 1 <= f + 1).
  std::vector<NodeId> path;
  for (const Message& m : inbox) {
    if (!decode_path(m.tag, path)) continue;
    REDOPT_REQUIRE(!path.empty() && path.back() == m.from,
                   "OM message path does not end with its sender");
    if (dim_ == 0) dim_ = m.payload.size();
    tree_[path] = m.payload;

    if (path.size() <= f_) {
      // Relay to every node not already in the chain (and not ourselves).
      std::vector<NodeId> extended = path;
      extended.push_back(id_);
      std::vector<bool> in_chain(n_, false);
      for (NodeId p : extended) in_chain[p] = true;
      for (NodeId dest = 0; dest < n_; ++dest) {
        if (in_chain[dest]) continue;
        Message relay_msg;
        relay_msg.to = dest;
        relay_msg.tag = encode_path(extended);
        relay_msg.payload = transmitted(extended, dest, m.payload);
        out.push_back(std::move(relay_msg));
      }
    }
  }
  return out;
}

Value OmNode::decide(const std::vector<NodeId>& path) const {
  const auto it = tree_.find(path);
  const Value own = it != tree_.end() ? it->second : Value(dim_);  // ⊥ = zero default
  if (path.size() == f_ + 1) return own;

  // Participants of this sub-broadcast: everyone not already in the chain.
  std::vector<bool> in_chain(n_, false);
  for (NodeId p : path) in_chain[p] = true;
  std::vector<Value> votes;
  votes.push_back(own);
  std::vector<NodeId> child = path;
  for (NodeId j = 0; j < n_; ++j) {
    if (in_chain[j] || j == id_) continue;
    child.push_back(j);
    votes.push_back(decide(child));
    child.pop_back();
  }
  return majority_value(votes, dim_);
}

Value OmNode::decision() const {
  if (id_ == commander_) return input_;
  REDOPT_REQUIRE(dim_ > 0, "decision requested before any OM message arrived");
  return decide({commander_});
}

OmProtocolResult run_om_protocol(const Value& value, NodeId commander, std::size_t n,
                                 std::size_t f, const std::vector<bool>& is_byzantine,
                                 const ByzantineRelay& relay) {
  REDOPT_REQUIRE(n > 3 * f, "OM protocol requires n > 3f");
  REDOPT_REQUIRE(commander < n, "commander id out of range");
  REDOPT_REQUIRE(is_byzantine.size() == n, "is_byzantine size mismatch");
  REDOPT_REQUIRE(!value.empty(), "broadcast value must be non-empty");

  std::vector<std::unique_ptr<OmNode>> nodes;
  nodes.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<OmNode>(i, n, f, commander, is_byzantine[i], relay));
  }
  nodes[commander]->set_input(value);

  std::vector<Node*> raw;
  raw.reserve(n);
  for (auto& node : nodes) raw.push_back(node.get());
  SyncNetwork network(std::move(raw));
  network.run(nodes.front()->rounds_needed());

  OmProtocolResult result;
  result.decided.reserve(n);
  for (NodeId i = 0; i < n; ++i) result.decided.push_back(nodes[i]->decision());
  result.stats = network.stats();
  return result;
}

}  // namespace redopt::net
