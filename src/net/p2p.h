// Peer-to-peer DGD via Byzantine broadcast (Figure 1b).
//
// Without a trusted server, each agent maintains its own estimate and in
// every iteration broadcasts its gradient to all peers using OM(f)
// Byzantine broadcast (f < n/3).  Agreement of the broadcast guarantees
// every honest agent sees the *same* multiset of n gradients — including
// identical copies of whatever each Byzantine agent equivocated — so all
// honest agents apply the gradient-filter to identical inputs and their
// estimates stay in lockstep.  This is the standard simulation of the
// server-based algorithm in the peer-to-peer model.
#pragma once

#include <cstdint>
#include <optional>

#include "dgd/trainer.h"

namespace redopt::net {

/// Outcome of a peer-to-peer DGD execution.
struct P2pResult {
  dgd::TrainResult train;        ///< observables of the (common) honest estimate
  std::uint64_t messages = 0;    ///< total OM(f) messages over the execution
  bool honest_agreement = true;  ///< honest estimates identical every iteration
};

/// Runs peer-to-peer DGD.  Same contract as dgd::train, plus n > 3f.
///
/// If @p equivocate is true, each Byzantine agent sends *different* values
/// to different peers when acting as broadcast commander (the hardest
/// behaviour for agreement); OM(f) still forces a consistent decided value.
///
/// If @p use_message_protocol is true, each broadcast runs as the real
/// message-passing OM protocol over the network substrate
/// (net/om_protocol.h) instead of the functional recursion; the two are
/// decision-equivalent (cross-validated by the test suite), so results
/// are identical — this flag exists to exercise the full distributed
/// stack end to end.
P2pResult run_p2p_protocol(const core::MultiAgentProblem& problem,
                           const std::vector<std::size_t>& byzantine_ids,
                           const attacks::Attack* attack, const dgd::TrainerConfig& config,
                           const std::optional<linalg::Vector>& reference = std::nullopt,
                           bool equivocate = false, bool use_message_protocol = false);

}  // namespace redopt::net
