// Empirical (f, eps)-resilience certification.
//
// Definition 2 quantifies over every Byzantine set and every honest
// (n - f)-subset.  For a *full-information* algorithm (one that maps the n
// received cost functions to an output point), this module enumerates the
// quantifiers directly: every Byzantine placement of size 0..f, every
// adversarial cost substitution, every honest (n - f)-subset — and reports
// the tight empirical eps the algorithm achieved.  Used by the tests to
// certify the exhaustive exact algorithm against its 2*eps bound, and
// usable by downstream users to stress their own aggregation rules.
#pragma once

#include <functional>
#include <vector>

#include "core/argmin.h"
#include "core/cost_function.h"

namespace redopt::redundancy {

/// Algorithm under test: receives the n cost functions (some possibly
/// adversarial) and the fault budget, returns its output point.
using AlgorithmFn =
    std::function<core::Vector(const std::vector<core::CostPtr>& received, std::size_t f)>;

/// Result of a certification sweep.
struct ResilienceReport {
  /// Tight empirical eps: the worst dist(output, argmin of an honest
  /// (n - f)-subset aggregate) over all scenarios.
  double epsilon = 0.0;
  std::size_t scenarios_run = 0;            ///< (byzantine set x adversarial cost) pairs
  std::vector<std::size_t> worst_byzantine; ///< the Byzantine set achieving epsilon
  std::vector<std::size_t> worst_subset;    ///< the honest subset achieving epsilon
};

/// Certifies @p algorithm on @p honest_costs: for every Byzantine set B
/// with |B| <= f and every cost in @p adversarial_costs (substituted at
/// all agents of B), runs the algorithm and measures the distance from its
/// output to the argmin set of every honest (n - f)-subset aggregate.
/// Exhaustive — intended for the small n of design-time validation.
///
/// The sweep fans out over the runtime (see runtime/runtime.h): with
/// runtime::threads() > 1, @p algorithm is invoked concurrently and must
/// be safe to call from multiple threads (the library's own algorithms
/// are).  The report is bit-identical for every thread count.
ResilienceReport measure_resilience(const std::vector<core::CostPtr>& honest_costs,
                                    std::size_t f, const AlgorithmFn& algorithm,
                                    const std::vector<core::CostPtr>& adversarial_costs,
                                    const core::ArgminOptions& options = {});

}  // namespace redopt::redundancy
