#include "redundancy/redundancy.h"

#include <limits>
#include <map>

#include "core/aggregate_cost.h"
#include "core/minimizer_set.h"
#include "data/regression.h"
#include "util/error.h"
#include "util/subsets.h"

namespace redopt::redundancy {

RedundancyReport measure_redundancy(const std::vector<core::CostPtr>& costs, std::size_t f,
                                    const core::ArgminOptions& options) {
  const std::size_t n = costs.size();
  REDOPT_REQUIRE(n > 2 * f, "redundancy measurement requires n > 2f");
  for (const auto& c : costs) REDOPT_REQUIRE(c != nullptr, "cost function is null");

  if (f == 0) return {};  // every admissible pair is (S, S): trivially exact

  // Argmin sets are shared across many pairs; memoize by subset.
  std::map<std::vector<std::size_t>, core::MinimizerSet> cache;
  auto set_of = [&](const std::vector<std::size_t>& subset) -> const core::MinimizerSet& {
    auto it = cache.find(subset);
    if (it == cache.end()) {
      it = cache.emplace(subset, core::argmin_set(core::aggregate_subset(costs, subset), options))
               .first;
    }
    return it->second;
  };

  RedundancyReport report;
  util::for_each_subset(n, n - f, [&](const std::vector<std::size_t>& s) {
    const core::MinimizerSet& xs = set_of(s);
    // All proper subsets S-hat of S with n - 2f <= |S-hat| < |S|.
    for (std::size_t k = n - 2 * f; k < n - f; ++k) {
      util::for_each_subset_of(s, k, [&](const std::vector<std::size_t>& s_hat) {
        const double dist = core::hausdorff_distance(xs, set_of(s_hat));
        ++report.pairs_checked;
        if (dist > report.epsilon) {
          report.epsilon = dist;
          report.worst_superset = s;
          report.worst_subset = s_hat;
        }
        return true;
      });
    }
    return true;
  });
  return report;
}

bool has_2f_redundancy(const std::vector<core::CostPtr>& costs, std::size_t f, double tol,
                       const core::ArgminOptions& options) {
  return measure_redundancy(costs, f, options).epsilon <= tol;
}

bool regression_rank_condition(const linalg::Matrix& a, std::size_t f, double rel_tol) {
  // The check itself lives with the instance generators (data/regression):
  // it is the constructive side of redundancy, and keeping it there keeps
  // the module layering acyclic (data never reaches up into redundancy).
  return data::regression_rank_condition(a, f, rel_tol);
}

}  // namespace redopt::redundancy
