// Measurement and verification of the redundancy properties.
//
// 2f-redundancy (Definition 1): for every pair of subsets S-hat ⊆ S with
// |S| = n - f and |S-hat| >= n - 2f, the aggregate costs over S and S-hat
// have identical argmin sets.  This is the paper's necessary-and-sufficient
// condition for exact fault-tolerance.
//
// (2f, eps)-redundancy (Definition 3) relaxes equality to Hausdorff
// distance <= eps.  measure_redundancy() returns the *smallest* eps for
// which a problem instance satisfies the property — i.e. the maximum
// Hausdorff distance over all admissible subset pairs — which is the
// quantity every approximate-resilience bound is stated in.
#pragma once

#include <cstddef>
#include <vector>

#include "core/argmin.h"
#include "core/cost_function.h"
#include "linalg/matrix.h"

namespace redopt::redundancy {

/// Result of scanning all admissible subset pairs.
struct RedundancyReport {
  /// Smallest eps such that (2f, eps)-redundancy holds; 0 means exact
  /// 2f-redundancy, +infinity means some pair has argmin sets whose
  /// Hausdorff distance diverges (different affine direction spaces).
  double epsilon = 0.0;

  /// The pair realizing epsilon (sorted agent-id lists).
  std::vector<std::size_t> worst_superset;
  std::vector<std::size_t> worst_subset;

  /// Number of (S, S-hat) pairs examined.
  std::size_t pairs_checked = 0;
};

/// Measures the tight (2f, eps)-redundancy constant of the cost family.
/// Requires n > 2f.  Exponential in n — intended for the small instances
/// used in evaluation (see DESIGN.md).
RedundancyReport measure_redundancy(const std::vector<core::CostPtr>& costs, std::size_t f,
                                    const core::ArgminOptions& options = {});

/// True iff the costs have exact 2f-redundancy up to tolerance @p tol.
bool has_2f_redundancy(const std::vector<core::CostPtr>& costs, std::size_t f,
                       double tol = 1e-7, const core::ArgminOptions& options = {});

/// Specialization for distributed linear regression where agent i holds
/// observation row i of @p a: 2f-redundancy (with noiseless observations)
/// holds iff every (n - 2f)-row submatrix has full column rank d.
/// Delegates to data::regression_rank_condition (the constructive check
/// the instance generators enforce).
bool regression_rank_condition(const linalg::Matrix& a, std::size_t f, double rel_tol = 1e-10);

}  // namespace redopt::redundancy
