#include "redundancy/resilience.h"

#include <map>

#include "core/aggregate_cost.h"
#include "core/minimizer_set.h"
#include "util/error.h"
#include "util/subsets.h"

namespace redopt::redundancy {

ResilienceReport measure_resilience(const std::vector<core::CostPtr>& honest_costs,
                                    std::size_t f, const AlgorithmFn& algorithm,
                                    const std::vector<core::CostPtr>& adversarial_costs,
                                    const core::ArgminOptions& options) {
  const std::size_t n = honest_costs.size();
  REDOPT_REQUIRE(n > 2 * f, "resilience certification requires n > 2f");
  REDOPT_REQUIRE(algorithm != nullptr, "no algorithm under test");
  REDOPT_REQUIRE(!adversarial_costs.empty(), "need at least one adversarial cost");
  for (const auto& c : honest_costs) REDOPT_REQUIRE(c != nullptr, "honest cost is null");
  for (const auto& c : adversarial_costs)
    REDOPT_REQUIRE(c != nullptr && c->dimension() == honest_costs.front()->dimension(),
                   "adversarial cost missing or dimension mismatch");

  // Honest-subset argmin sets are scenario-independent; memoize them.
  std::map<std::vector<std::size_t>, core::MinimizerSet> cache;
  auto argmin_of = [&](const std::vector<std::size_t>& subset) -> const core::MinimizerSet& {
    auto it = cache.find(subset);
    if (it == cache.end()) {
      it = cache
               .emplace(subset,
                        core::argmin_set(core::aggregate_subset(honest_costs, subset), options))
               .first;
    }
    return it->second;
  };

  ResilienceReport report;
  // Byzantine sets of every size 0..f (fewer-than-budget faults are legal
  // executions and must satisfy the same guarantee).
  for (std::size_t b = 0; b <= f; ++b) {
    util::for_each_subset(n, b, [&](const std::vector<std::size_t>& byzantine) {
      for (const auto& bad_cost : adversarial_costs) {
        auto received = honest_costs;
        for (std::size_t id : byzantine) received[id] = bad_cost;
        const core::Vector output = algorithm(received, f);
        ++report.scenarios_run;

        // Every (n - f)-subset of the non-faulty agents.
        const auto honest = util::complement(n, byzantine);
        util::for_each_subset_of(honest, n - f, [&](const std::vector<std::size_t>& subset) {
          const double dist = argmin_of(subset).distance_to(output);
          if (dist > report.epsilon) {
            report.epsilon = dist;
            report.worst_byzantine = byzantine;
            report.worst_subset = subset;
          }
          return true;
        });
        if (b == 0) break;  // with no Byzantine agents all costs are equal; one run suffices
      }
      return true;
    });
  }
  return report;
}

}  // namespace redopt::redundancy
