#include "redundancy/resilience.h"

#include <limits>
#include <map>
#include <optional>

#include "core/aggregate_cost.h"
#include "core/minimizer_set.h"
#include "runtime/runtime.h"
#include "util/error.h"
#include "util/subsets.h"

namespace redopt::redundancy {

namespace {

/// Worst scenario observed in a block of Byzantine placements, plus the
/// number of (byzantine set x adversarial cost) scenarios it ran.
struct SweepResult {
  double epsilon = 0.0;
  std::size_t placement_index = std::numeric_limits<std::size_t>::max();
  std::size_t scenarios = 0;
  std::vector<std::size_t> byzantine;
  std::vector<std::size_t> subset;
};

/// Deterministic merge: scenario counts add; the worst case follows strict
/// `>` on epsilon with ties resolved to the earlier placement — exactly
/// the sequential sweep's strict update rule.
SweepResult merge(const SweepResult& a, const SweepResult& b) {
  const SweepResult& pick =
      b.epsilon > a.epsilon ? b : (a.epsilon > b.epsilon ? a
                                   : (a.placement_index <= b.placement_index ? a : b));
  SweepResult out = pick;
  out.scenarios = a.scenarios + b.scenarios;
  return out;
}

}  // namespace

ResilienceReport measure_resilience(const std::vector<core::CostPtr>& honest_costs,
                                    std::size_t f, const AlgorithmFn& algorithm,
                                    const std::vector<core::CostPtr>& adversarial_costs,
                                    const core::ArgminOptions& options) {
  const std::size_t n = honest_costs.size();
  REDOPT_REQUIRE(n > 2 * f, "resilience certification requires n > 2f");
  REDOPT_REQUIRE(algorithm != nullptr, "no algorithm under test");
  REDOPT_REQUIRE(!adversarial_costs.empty(), "need at least one adversarial cost");
  for (const auto& c : honest_costs) REDOPT_REQUIRE(c != nullptr, "honest cost is null");
  for (const auto& c : adversarial_costs)
    REDOPT_REQUIRE(c != nullptr && c->dimension() == honest_costs.front()->dimension(),
                   "adversarial cost missing or dimension mismatch");

  // Argmin sets of every honest (n - f)-subset: the b = 0 scenario alone
  // consults all of them, so precomputing the full table (in parallel,
  // each entry an independent argmin) does no extra work and removes the
  // shared lazy cache from the sweep.
  const auto honest_subsets = util::all_subsets(n, n - f);
  std::vector<std::optional<core::MinimizerSet>> table(honest_subsets.size());
  runtime::parallel_for(0, honest_subsets.size(), [&](std::size_t i) {
    table[i] = core::argmin_set(core::aggregate_subset(honest_costs, honest_subsets[i]), options);
  });
  std::map<std::vector<std::size_t>, std::size_t> rank;
  for (std::size_t i = 0; i < honest_subsets.size(); ++i) rank.emplace(honest_subsets[i], i);

  // Byzantine sets of every size 0..f (fewer-than-budget faults are legal
  // executions and must satisfy the same guarantee), flattened into one
  // placement list so the certification sweep fans out over it.  With
  // runtime::threads() > 1 the algorithm under test is invoked
  // concurrently and must be safe to call from multiple threads.
  std::vector<std::vector<std::size_t>> placements;
  for (std::size_t b = 0; b <= f; ++b) {
    util::for_each_subset(n, b, [&](const std::vector<std::size_t>& byzantine) {
      placements.push_back(byzantine);
      return true;
    });
  }

  const SweepResult worst = runtime::parallel_reduce(
      std::size_t{0}, placements.size(), SweepResult{},
      [&](std::size_t p) {
        const auto& byzantine = placements[p];
        SweepResult local;
        for (const auto& bad_cost : adversarial_costs) {
          auto received = honest_costs;
          for (std::size_t id : byzantine) received[id] = bad_cost;
          const core::Vector output = algorithm(received, f);
          ++local.scenarios;

          // Every (n - f)-subset of the non-faulty agents.
          const auto honest = util::complement(n, byzantine);
          util::for_each_subset_of(honest, n - f, [&](const std::vector<std::size_t>& subset) {
            const double dist = table[rank.at(subset)]->distance_to(output);
            if (dist > local.epsilon) {
              local.epsilon = dist;
              local.placement_index = p;
              local.byzantine = byzantine;
              local.subset = subset;
            }
            return true;
          });
          // With no Byzantine agents all costs are equal; one run suffices.
          if (byzantine.empty()) break;
        }
        return local;
      },
      merge);

  ResilienceReport report;
  report.epsilon = worst.epsilon;
  report.scenarios_run = worst.scenarios;
  report.worst_byzantine = worst.byzantine;
  report.worst_subset = worst.subset;
  return report;
}

}  // namespace redopt::redundancy
