#include "dgd/projection.h"

#include <algorithm>

#include "util/error.h"

namespace redopt::dgd {

BoxProjection::BoxProjection(Vector lo, Vector hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  REDOPT_REQUIRE(lo_.size() == hi_.size(), "box bounds dimension mismatch");
  REDOPT_REQUIRE(!lo_.empty(), "box must have dimension >= 1");
  for (std::size_t k = 0; k < lo_.size(); ++k)
    REDOPT_REQUIRE(lo_[k] <= hi_[k], "box requires lo <= hi in every coordinate");
}

BoxProjection BoxProjection::cube(std::size_t d, double half_width) {
  REDOPT_REQUIRE(half_width >= 0.0, "cube half-width must be non-negative");
  return BoxProjection(Vector(d, -half_width), Vector(d, half_width));
}

Vector BoxProjection::project(const Vector& x) const {
  REDOPT_REQUIRE(x.size() == lo_.size(), "box projection dimension mismatch");
  Vector out(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) out[k] = std::clamp(x[k], lo_[k], hi_[k]);
  return out;
}

bool BoxProjection::contains(const Vector& x, double tol) const {
  if (x.size() != lo_.size()) return false;
  for (std::size_t k = 0; k < x.size(); ++k) {
    if (x[k] < lo_[k] - tol || x[k] > hi_[k] + tol) return false;
  }
  return true;
}

BallProjection::BallProjection(Vector center, double radius)
    : center_(std::move(center)), radius_(radius) {
  REDOPT_REQUIRE(!center_.empty(), "ball must have dimension >= 1");
  REDOPT_REQUIRE(radius >= 0.0, "ball radius must be non-negative");
}

Vector BallProjection::project(const Vector& x) const {
  REDOPT_REQUIRE(x.size() == center_.size(), "ball projection dimension mismatch");
  const Vector delta = x - center_;
  const double dist = delta.norm();
  if (dist <= radius_) return x;
  return center_ + delta * (radius_ / dist);
}

bool BallProjection::contains(const Vector& x, double tol) const {
  if (x.size() != center_.size()) return false;
  return linalg::distance(x, center_) <= radius_ + tol;
}

}  // namespace redopt::dgd
