#include "dgd/async_trainer.h"

#include <deque>
#include <limits>

#include "core/aggregate_cost.h"
#include "core/batch_gradient.h"
#include "filters/instrumented.h"
#include "filters/norm_cache.h"
#include "runtime/runtime.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/error.h"

namespace redopt::dgd {

TrainResult train_async(const core::MultiAgentProblem& problem,
                        const std::vector<std::size_t>& byzantine_ids,
                        const attacks::Attack* attack, const AsyncConfig& config,
                        const std::optional<linalg::Vector>& reference) {
  problem.validate();
  const auto& base = config.base;
  REDOPT_REQUIRE(base.filter != nullptr, "async config needs a gradient filter");
  REDOPT_REQUIRE(base.schedule != nullptr, "async config needs a step schedule");
  REDOPT_REQUIRE(base.projection != nullptr, "async config needs a projection set");
  REDOPT_REQUIRE(byzantine_ids.size() <= problem.f, "more byzantine agents than fault budget");
  REDOPT_REQUIRE(byzantine_ids.empty() || attack != nullptr,
                 "byzantine agents present but no attack supplied");
  REDOPT_REQUIRE(base.filter->expected_inputs() == problem.num_agents(),
                 "filter was constructed for a different number of agents");
  REDOPT_REQUIRE(config.straggler_probability >= 0.0 && config.straggler_probability <= 1.0,
                 "straggler probability must lie in [0, 1]");
  REDOPT_REQUIRE(config.max_staleness >= 1 || config.straggler_probability == 0.0,
                 "max_staleness must be >= 1 when stragglers are enabled");

  const std::size_t n = problem.num_agents();
  const std::size_t d = problem.dimension();
  const auto honest = honest_ids(n, byzantine_ids);
  if (reference) REDOPT_REQUIRE(reference->size() == d, "reference dimension mismatch");

  std::vector<bool> is_byzantine(n, false);
  for (std::size_t id : byzantine_ids) is_byzantine[id] = true;

  for (const CrashWindow& w : config.crashes) {
    REDOPT_REQUIRE(w.agent < n, "crash window names an unknown agent");
    REDOPT_REQUIRE(!is_byzantine[w.agent], "crash windows apply to honest agents only");
    REDOPT_REQUIRE(w.begin >= 1, "crash windows must begin at iteration >= 1");
    REDOPT_REQUIRE(w.begin < w.end, "crash window must be non-empty (begin < end)");
  }
  auto crashed_at = [&](std::size_t agent, std::size_t t) {
    for (const CrashWindow& w : config.crashes) {
      if (w.agent == agent && t >= w.begin && t < w.end) return true;
    }
    return false;
  };

  linalg::Vector x = base.x0.empty() ? linalg::Vector(d) : base.x0;
  REDOPT_REQUIRE(x.size() == d, "x0 dimension mismatch");
  x = base.projection->project(x);

  const rng::Rng root(base.seed);
  std::vector<rng::Rng> attack_rngs;
  std::vector<rng::Rng> staleness_rngs;
  attack_rngs.reserve(n);
  staleness_rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    attack_rngs.push_back(root.fork("byzantine-agent-" + std::to_string(i)));
    staleness_rngs.push_back(root.fork("staleness-agent-" + std::to_string(i)));
  }

  auto honest_loss = [&](const linalg::Vector& at) {
    return core::subset_value(problem.costs, honest, at);
  };

  filters::FilterPtr filter = base.filter;
  if (telemetry::enabled()) filter = filters::instrument(filter, "async");
  auto& reg = telemetry::registry();
  const auto metric_iterations = reg.counter("async.iterations");
  const auto norm_layout = telemetry::BucketLayout::exponential(1e-6, 10.0, 12);
  const auto metric_direction_norm = reg.histogram("async.direction_norm", norm_layout);
  const auto metric_step_norm = reg.histogram("async.step_norm", norm_layout);
  // Staleness values are small integers, so the histogram's double sum is
  // exact in any recording order — safe to observe inside the fan-out.
  const auto metric_staleness = reg.histogram(
      "async.staleness", telemetry::BucketLayout::linear(0.0, 1.0, 16));
  const auto metric_crashed = reg.counter("async.crashed_replies");

  TrainResult result;
  auto record = [&](std::size_t t) {
    if (base.trace_stride == 0) return;
    if (t % base.trace_stride != 0 && t != base.iterations) return;
    result.trace.iteration.push_back(t);
    result.trace.loss.push_back(honest_loss(x));
    result.trace.distance.push_back(
        reference ? linalg::distance(x, *reference) : std::numeric_limits<double>::quiet_NaN());
    if (base.trace_estimates) result.trace.estimates.push_back(x);
  };

  // Estimate history for staleness: history.front() is x^t, history[s] is
  // x^{t-s} (clamped at the oldest available).
  std::deque<linalg::Vector> history;
  history.push_front(x);

  record(0);
  std::vector<linalg::Vector> gradients(n);
  std::vector<linalg::Vector> honest_gradients;
  filters::NormCache round_cache;
  // Batched least-squares path (bit-identical to the virtual gradient());
  // per-agent residual workspaces keep the parallel fan-out allocation-free.
  const auto batch_gradients = core::BatchGradientEvaluator::try_create(problem.costs);
  std::vector<linalg::Vector> residual_ws(batch_gradients != nullptr ? n : 0);
  linalg::Vector byz_gradient_ws;
  for (std::size_t t = 0; t < base.iterations; ++t) {
    // Serial open/close; the fan-out below never touches the span log.
    telemetry::ScopedSpan span("async.iteration");
    span.attr("t", static_cast<std::uint64_t>(t));
    // Honest fan-out: each agent draws staleness from its own stream and
    // writes its own gradient slot, so the parallel evaluation is
    // bit-identical at any runtime::threads() setting.
    runtime::parallel_for(0, honest.size(), [&](std::size_t j) {
      const std::size_t i = honest[j];
      // A crashed agent computes nothing; the server keeps seeing its
      // last-sent gradient (gradients[i] holds the previous round's value
      // across iterations).  No staleness draw is consumed while crashed.
      if (crashed_at(i, t)) {
        metric_crashed.inc();
        return;
      }
      // Straggler draw: consume randomness only when stragglers are
      // enabled, so probability 0 replays the synchronous execution.
      std::size_t staleness = 0;
      if (config.straggler_probability > 0.0) {
        if (staleness_rngs[i].uniform() < config.straggler_probability) {
          staleness = static_cast<std::size_t>(staleness_rngs[i].uniform_int(
              1, static_cast<std::int64_t>(config.max_staleness)));
        }
      }
      const std::size_t available = history.size() - 1;
      staleness = std::min(staleness, available);
      metric_staleness.observe(static_cast<double>(staleness));
      if (batch_gradients != nullptr) {
        batch_gradients->evaluate_agent(i, history[staleness], residual_ws[i], gradients[i]);
      } else {
        gradients[i] = problem.costs[i]->gradient(history[staleness]);
      }
    });
    honest_gradients.clear();
    honest_gradients.reserve(honest.size());
    for (std::size_t id : honest) honest_gradients.push_back(gradients[id]);
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_byzantine[i]) continue;
      // Byzantine agents are never stale (the worst case for the server).
      if (batch_gradients != nullptr) {
        batch_gradients->evaluate_agent(i, x, residual_ws[i], byz_gradient_ws);
      } else {
        byz_gradient_ws = problem.costs[i]->gradient(x);
      }
      const linalg::Vector& true_gradient = byz_gradient_ws;
      attacks::AttackContext ctx;
      ctx.iteration = t;
      ctx.agent_id = i;
      ctx.n = n;
      ctx.f = problem.f;
      ctx.estimate = &x;
      ctx.honest_gradient = &true_gradient;
      ctx.honest_gradients = &honest_gradients;
      ctx.rng = &attack_rngs[i];
      gradients[i] = attack->craft(ctx);
      REDOPT_REQUIRE(gradients[i].size() == d, "attack crafted a wrong-dimension vector");
    }

    round_cache.reset(gradients);
    const linalg::Vector direction = filter->apply_with_cache(gradients, round_cache);
    const linalg::Vector previous = x;
    x = base.projection->project(x - direction * base.schedule->step(t));
    history.push_front(x);
    while (history.size() > config.max_staleness + 1) history.pop_back();

    metric_iterations.inc();
    const double direction_norm = direction.norm();
    const double step_norm = linalg::distance(x, previous);
    metric_direction_norm.observe(direction_norm);
    metric_step_norm.observe(step_norm);
    if (telemetry::tracing_enabled()) {
      telemetry::emit(telemetry::Event("async.iteration")
                          .with("t", static_cast<std::int64_t>(t))
                          .with("loss", honest_loss(x))
                          .with("direction_norm", direction_norm)
                          .with("step_norm", step_norm));
    }
    record(t + 1);
  }

  result.estimate = x;
  result.final_loss = honest_loss(x);
  if (reference) result.final_distance = linalg::distance(x, *reference);
  return result;
}

}  // namespace redopt::dgd
