// Empirical probe of Theorem 3's generic convergence condition.
//
// Theorem 3: DGD with any gradient-filter converges to within D* of x* if
// the filtered direction satisfies the descent condition
//
//     phi(x) = < x - x*, GradFilter(g_1(x), ..., g_n(x)) >  >=  xi > 0
//
// whenever ||x - x*|| >= D*.  This module measures phi directly: it
// samples points on spheres of increasing radius around the reference
// point, evaluates the filtered direction under a chosen attack, and
// reports the minimum phi per radius.  The smallest radius whose shell has
// min phi > 0 is an empirical D* — the radius at which the filter's
// guarantee "switches on".  bench_descent_condition uses this to show
// CGE's D* tracking D*eps while plain averaging never turns positive
// under attack.
#pragma once

#include <vector>

#include "attacks/attack.h"
#include "core/problem.h"
#include "filters/gradient_filter.h"
#include "rng/rng.h"

namespace redopt::dgd {

/// Probe configuration.
struct DescentProbeConfig {
  std::vector<double> radii;          ///< shell radii to probe (ascending)
  std::size_t samples_per_radius = 64;  ///< random directions per shell
  std::uint64_t seed = 1;             ///< sampling + attack randomness
};

/// Per-radius results.
struct DescentShell {
  double radius = 0.0;
  double min_phi = 0.0;    ///< worst inner product on the shell
  double mean_phi = 0.0;   ///< average inner product on the shell
};

/// Full probe result.
struct DescentProbeResult {
  std::vector<DescentShell> shells;
  /// Smallest probed radius from which every (probed) larger shell has
  /// min_phi > 0; +infinity if none.
  double empirical_d_star = 0.0;
};

/// Runs the probe around @p reference with the given Byzantine agents and
/// attack (may be empty/null for the fault-free condition).
DescentProbeResult probe_descent_condition(const core::MultiAgentProblem& problem,
                                           const std::vector<std::size_t>& byzantine_ids,
                                           const attacks::Attack* attack,
                                           const filters::GradientFilter& filter,
                                           const linalg::Vector& reference,
                                           const DescentProbeConfig& config);

}  // namespace redopt::dgd
