#include "dgd/descent_probe.h"

#include <limits>

#include "dgd/trainer.h"
#include "linalg/kernels.h"
#include "util/error.h"

namespace redopt::dgd {

DescentProbeResult probe_descent_condition(const core::MultiAgentProblem& problem,
                                           const std::vector<std::size_t>& byzantine_ids,
                                           const attacks::Attack* attack,
                                           const filters::GradientFilter& filter,
                                           const linalg::Vector& reference,
                                           const DescentProbeConfig& config) {
  problem.validate();
  REDOPT_REQUIRE(!config.radii.empty(), "probe needs at least one radius");
  for (double r : config.radii) REDOPT_REQUIRE(r > 0.0, "probe radii must be positive");
  REDOPT_REQUIRE(config.samples_per_radius >= 1, "probe needs at least one sample per radius");
  REDOPT_REQUIRE(byzantine_ids.empty() || attack != nullptr,
                 "byzantine agents present but no attack supplied");
  REDOPT_REQUIRE(filter.expected_inputs() == problem.num_agents(),
                 "filter was constructed for a different number of agents");
  const std::size_t n = problem.num_agents();
  const std::size_t d = problem.dimension();
  REDOPT_REQUIRE(reference.size() == d, "reference dimension mismatch");

  std::vector<bool> is_byzantine(n, false);
  for (std::size_t id : byzantine_ids) {
    REDOPT_REQUIRE(id < n, "byzantine id out of range");
    is_byzantine[id] = true;
  }
  const auto honest = honest_ids(n, byzantine_ids);

  rng::Rng direction_rng = rng::Rng(config.seed).fork("probe-directions");
  std::vector<rng::Rng> agent_rngs;
  agent_rngs.reserve(n);
  const rng::Rng root(config.seed);
  for (std::size_t i = 0; i < n; ++i) {
    agent_rngs.push_back(root.fork("byzantine-agent-" + std::to_string(i)));
  }

  DescentProbeResult result;
  result.empirical_d_star = std::numeric_limits<double>::infinity();

  std::vector<linalg::Vector> gradients(n);
  std::vector<linalg::Vector> honest_gradients;
  for (double radius : config.radii) {
    DescentShell shell;
    shell.radius = radius;
    shell.min_phi = std::numeric_limits<double>::infinity();
    linalg::kernels::Sum phi_sum;

    for (std::size_t s = 0; s < config.samples_per_radius; ++s) {
      const linalg::Vector x =
          reference + linalg::Vector(direction_rng.unit_sphere(d)) * radius;

      honest_gradients.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (!is_byzantine[i]) {
          gradients[i] = problem.costs[i]->gradient(x);
          honest_gradients.push_back(gradients[i]);
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (!is_byzantine[i]) continue;
        const linalg::Vector true_gradient = problem.costs[i]->gradient(x);
        attacks::AttackContext ctx;
        ctx.iteration = s;
        ctx.agent_id = i;
        ctx.n = n;
        ctx.f = problem.f;
        ctx.estimate = &x;
        ctx.honest_gradient = &true_gradient;
        ctx.honest_gradients = &honest_gradients;
        ctx.rng = &agent_rngs[i];
        gradients[i] = attack->craft(ctx);
      }

      const double phi = linalg::dot(x - reference, filter.apply(gradients));
      shell.min_phi = std::min(shell.min_phi, phi);
      phi_sum.add(phi);
    }
    shell.mean_phi = phi_sum.value() / static_cast<double>(config.samples_per_radius);
    result.shells.push_back(shell);
  }

  // Empirical D*: the smallest radius such that every probed shell at or
  // beyond it has strictly positive min phi.
  for (std::size_t k = result.shells.size(); k > 0; --k) {
    const auto& shell = result.shells[k - 1];
    if (shell.min_phi > 0.0) {
      result.empirical_d_star = shell.radius;
    } else {
      break;
    }
  }
  return result;
}

}  // namespace redopt::dgd
