// Step-size schedules for the DGD method.
//
// Theorem 3 requires diminishing steps with sum eta_t = infinity and
// sum eta_t^2 < infinity; HarmonicSchedule (c / (t + 1)) satisfies both.
// SqrtSchedule (c / sqrt(t + 1)) has divergent square-sum and ConstantSchedule
// diverges on both counts — they are included for the schedule ablation,
// which shows empirically why the theorem asks for what it asks.
#pragma once

#include <memory>
#include <string>

namespace redopt::dgd {

/// Maps the iteration index t (0-based) to the step size eta_t > 0.
class StepSchedule {
 public:
  virtual ~StepSchedule() = default;
  virtual double step(std::size_t t) const = 0;
  virtual std::string name() const = 0;
};

using SchedulePtr = std::shared_ptr<const StepSchedule>;

/// eta_t = c.
class ConstantSchedule final : public StepSchedule {
 public:
  explicit ConstantSchedule(double c);
  double step(std::size_t t) const override;
  std::string name() const override { return "constant"; }

 private:
  double c_;
};

/// eta_t = c / (t + 1 + offset) — satisfies Theorem 3's conditions.
class HarmonicSchedule final : public StepSchedule {
 public:
  explicit HarmonicSchedule(double c, double offset = 0.0);
  double step(std::size_t t) const override;
  std::string name() const override { return "harmonic"; }

 private:
  double c_;
  double offset_;
};

/// eta_t = c / sqrt(t + 1).
class SqrtSchedule final : public StepSchedule {
 public:
  explicit SqrtSchedule(double c);
  double step(std::size_t t) const override;
  std::string name() const override { return "sqrt"; }

 private:
  double c_;
};

/// Constructs a schedule by name ("constant", "harmonic", "sqrt") with
/// coefficient @p c.  Throws PreconditionError for unknown names.
SchedulePtr make_schedule(const std::string& name, double c);

}  // namespace redopt::dgd
