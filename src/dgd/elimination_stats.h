// Elimination diagnostics for CGE executions.
//
// CGE's output each iteration is the sum over the n - f surviving agents —
// i.e. a 0/1-weighted aggregate of the received gradients.  Su & Vaidya's
// alternative approximation notion (discussed in the paper family's
// related work) measures fault-tolerance by exactly such effective
// coefficients: how many honest agents keep positive weight, and how
// small the weights get.  This module runs a DGD+CGE execution and records
// the survivor sets, yielding those metrics: how often each Byzantine
// agent sneaks past elimination, and how many honest gradients are
// retained per iteration.
#pragma once

#include <vector>

#include "attacks/attack.h"
#include "core/problem.h"
#include "dgd/trainer.h"

namespace redopt::dgd {

/// Aggregated survivor-set statistics of one DGD+CGE execution.
struct EliminationStats {
  std::size_t iterations = 0;

  /// Per original agent id: number of iterations the agent's gradient
  /// survived elimination (was part of the CGE sum).
  std::vector<std::size_t> survival_counts;

  /// Fraction of iterations in which EVERY Byzantine gradient was
  /// eliminated (the rounds where CGE behaves exactly like fault-free
  /// aggregation over a subset of honest agents).
  double all_byzantine_eliminated_fraction = 0.0;

  /// Mean number of honest gradients retained per iteration (out of
  /// n - |byzantine|); the "number of positive coefficients" metric.
  double mean_honest_retained = 0.0;

  /// Smallest per-iteration honest retention observed.
  std::size_t min_honest_retained = 0;
};

/// Runs DGD with the CGE filter (constructed internally from the
/// problem's (n, f)) under the given faults and records survivor sets.
/// Same execution semantics as dgd::train with a "cge" filter.
EliminationStats analyze_cge_elimination(const core::MultiAgentProblem& problem,
                                         const std::vector<std::size_t>& byzantine_ids,
                                         const attacks::Attack* attack,
                                         const TrainerConfig& config);

}  // namespace redopt::dgd
