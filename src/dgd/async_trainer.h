// Asynchrony tolerance: DGD with stale honest gradients.
//
// The paper assumes a synchronous system; real deployments have
// stragglers.  The standard bridge (cf. the asynchronous Byzantine-ML line
// of work the paper cites, Damaskinos et al.) is the *stale gradient*
// model: every agent replies every round, but a straggling honest agent's
// reply was computed at an earlier estimate x^{t-s}.  Byzantine agents are
// assumed fast (staleness only ever helps them, so the worst case is
// none).  This module runs DGD under that model, with per-agent random
// staleness, so the bench can map how much asynchrony the gradient-filters
// tolerate before the resilience guarantees visibly degrade.
#pragma once

#include <optional>

#include "dgd/trainer.h"

namespace redopt::dgd {

/// A crash-and-recover window for one honest agent: during iterations
/// [begin, end) the agent computes nothing and the server keeps seeing its
/// last-sent gradient (the stale-reply analogue of a frozen process);
/// from iteration end onward the agent participates normally again.
/// begin must be >= 1 so a last-sent gradient exists.
struct CrashWindow {
  std::size_t agent = 0;
  std::size_t begin = 1;  ///< first crashed iteration
  std::size_t end = 1;    ///< first recovered iteration (exclusive bound)
};

/// Staleness model parameters.
struct AsyncConfig {
  TrainerConfig base;             ///< filter, schedule, projection, iterations, seed
  double straggler_probability = 0.2;  ///< chance an honest reply is stale
  std::size_t max_staleness = 5;  ///< stale replies use x^{t-s}, s uniform in [1, max]
  std::vector<CrashWindow> crashes;  ///< crash/recover schedule for honest agents
};

/// Runs DGD under the stale-gradient model.  With straggler_probability = 0
/// and no crash windows the execution is bit-identical to dgd::train
/// (checked by tests).
TrainResult train_async(const core::MultiAgentProblem& problem,
                        const std::vector<std::size_t>& byzantine_ids,
                        const attacks::Attack* attack, const AsyncConfig& config,
                        const std::optional<linalg::Vector>& reference = std::nullopt);

}  // namespace redopt::dgd
