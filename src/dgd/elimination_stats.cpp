#include "dgd/elimination_stats.h"

#include "filters/cge.h"
#include "util/error.h"

namespace redopt::dgd {

EliminationStats analyze_cge_elimination(const core::MultiAgentProblem& problem,
                                         const std::vector<std::size_t>& byzantine_ids,
                                         const attacks::Attack* attack,
                                         const TrainerConfig& config) {
  problem.validate();
  REDOPT_REQUIRE(config.schedule != nullptr, "config needs a step schedule");
  REDOPT_REQUIRE(config.projection != nullptr, "config needs a projection set");
  REDOPT_REQUIRE(byzantine_ids.size() <= problem.f, "more byzantine agents than fault budget");
  REDOPT_REQUIRE(byzantine_ids.empty() || attack != nullptr,
                 "byzantine agents present but no attack supplied");

  const std::size_t n = problem.num_agents();
  const std::size_t d = problem.dimension();
  const filters::CgeFilter cge(n, problem.f);

  std::vector<bool> is_byzantine(n, false);
  for (std::size_t id : byzantine_ids) {
    REDOPT_REQUIRE(id < n, "byzantine id out of range");
    is_byzantine[id] = true;
  }
  const auto honest = honest_ids(n, byzantine_ids);

  const rng::Rng root(config.seed);
  std::vector<rng::Rng> agent_rngs;
  agent_rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    agent_rngs.push_back(root.fork("byzantine-agent-" + std::to_string(i)));
  }

  linalg::Vector x = config.x0.empty() ? linalg::Vector(d) : config.x0;
  REDOPT_REQUIRE(x.size() == d, "x0 dimension mismatch");
  x = config.projection->project(x);

  EliminationStats stats;
  stats.iterations = config.iterations;
  stats.survival_counts.assign(n, 0);
  stats.min_honest_retained = honest.size();
  std::size_t rounds_all_byzantine_out = 0;
  std::size_t honest_retained_total = 0;

  std::vector<linalg::Vector> gradients(n);
  std::vector<linalg::Vector> honest_gradients;
  for (std::size_t t = 0; t < config.iterations; ++t) {
    honest_gradients.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_byzantine[i]) {
        gradients[i] = problem.costs[i]->gradient(x);
        honest_gradients.push_back(gradients[i]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_byzantine[i]) continue;
      const linalg::Vector true_gradient = problem.costs[i]->gradient(x);
      attacks::AttackContext ctx;
      ctx.iteration = t;
      ctx.agent_id = i;
      ctx.n = n;
      ctx.f = problem.f;
      ctx.estimate = &x;
      ctx.honest_gradient = &true_gradient;
      ctx.honest_gradients = &honest_gradients;
      ctx.rng = &agent_rngs[i];
      gradients[i] = attack->craft(ctx);
    }

    const auto survivors = cge.surviving_indices(gradients);
    std::size_t byzantine_in = 0;
    std::size_t honest_in = 0;
    linalg::Vector direction(d);
    for (std::size_t idx : survivors) {
      ++stats.survival_counts[idx];
      direction += gradients[idx];
      if (is_byzantine[idx]) {
        ++byzantine_in;
      } else {
        ++honest_in;
      }
    }
    if (byzantine_in == 0) ++rounds_all_byzantine_out;
    honest_retained_total += honest_in;
    stats.min_honest_retained = std::min(stats.min_honest_retained, honest_in);

    x = config.projection->project(x - direction * config.schedule->step(t));
  }

  if (config.iterations > 0) {
    stats.all_byzantine_eliminated_fraction =
        static_cast<double>(rounds_all_byzantine_out) / static_cast<double>(config.iterations);
    stats.mean_honest_retained =
        static_cast<double>(honest_retained_total) / static_cast<double>(config.iterations);
  }
  return stats;
}

}  // namespace redopt::dgd
