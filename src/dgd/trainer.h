// The distributed gradient-descent (DGD) method with a gradient-filter —
// the server-based algorithm of Section 4.
//
// Each iteration t (steps S1/S2 of the paper):
//   S1  the server broadcasts x^t; every honest agent replies with
//       grad Q_i(x^t); every Byzantine agent replies with whatever its
//       Attack crafts (with omniscient knowledge);
//   S2  the server aggregates the n replies with the configured
//       GradientFilter and updates
//           x^{t+1} = Proj_W( x^t - eta_t * GradFilter(g_1..g_n) ).
//
// This trainer is the in-process fast path; net/p2p.h runs the same
// algorithm over the simulated message-passing substrate (and the test
// suite checks the two produce identical iterates).
#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "attacks/attack.h"
#include "core/batch_gradient.h"
#include "core/problem.h"
#include "dgd/projection.h"
#include "dgd/schedule.h"
#include "filters/gradient_filter.h"
#include "filters/norm_cache.h"
#include "rng/rng.h"
#include "telemetry/metrics.h"

namespace redopt::dgd {

/// Everything that defines one DGD execution apart from the problem itself.
struct TrainerConfig {
  filters::FilterPtr filter;      ///< required
  SchedulePtr schedule;           ///< required
  ProjectionPtr projection;       ///< required (use IdentityProjection for W = R^d)
  std::size_t iterations = 500;   ///< number of update steps
  linalg::Vector x0;              ///< initial estimate; empty = origin
  std::size_t trace_stride = 1;   ///< record every k-th iterate (0 = no trace)
  /// Keep the traced iterates x^t in Trace::estimates.  Loss/distance
  /// traces cost O(T) doubles, but estimates cost O(T * d) — sweeps over
  /// many configurations should switch this off and keep only the scalars.
  bool trace_estimates = true;
  std::uint64_t seed = 1;         ///< seeds the attack randomness

  /// Rebuilds the gradient-filter after an agent is eliminated (paper step
  /// S1: a missing reply identifies the agent as faulty; the server drops
  /// it and updates n and f).  Required only when the attack can stop
  /// responding (e.g. DropoutAttack); an elimination without a factory
  /// throws PreconditionError.
  std::function<filters::FilterPtr(std::size_t n, std::size_t f)> filter_factory;
};

/// Per-iteration observables of one execution.
struct Trace {
  std::vector<std::size_t> iteration;  ///< recorded iteration indices
  std::vector<double> loss;            ///< honest aggregate loss sum_{i in H} Q_i(x^t)
  std::vector<double> distance;        ///< ||x^t - reference|| (NaN if no reference)
  std::vector<linalg::Vector> estimates;  ///< recorded iterates x^t
};

/// Outcome of one DGD execution.
struct TrainResult {
  linalg::Vector estimate;  ///< final iterate x^T
  Trace trace;              ///< recorded observables (includes t = 0 and t = T)
  double final_loss = 0.0;  ///< honest aggregate loss at the final iterate
  double final_distance = std::numeric_limits<double>::quiet_NaN();  ///< to reference
  /// Agents eliminated for not replying, in elimination order (original ids).
  std::vector<std::size_t> eliminated_agents;
};

/// Step-wise DGD driver, for embedding the algorithm in a caller's own
/// loop (adaptive stopping, live monitoring, interleaving with other
/// work).  Each step() performs one S1 + S2 iteration — identical
/// semantics (and bit-identical iterates) to dgd::train, which is built
/// on this class.
class OnlineTrainer {
 public:
  /// Validates the configuration (same contract as dgd::train) and
  /// prepares the execution; no iteration is run yet.
  OnlineTrainer(const core::MultiAgentProblem& problem, std::vector<std::size_t> byzantine_ids,
                const attacks::Attack* attack, TrainerConfig config);

  /// Executes one iteration; returns the filtered direction that was
  /// applied (before the step-size scaling and projection).
  linalg::Vector step();

  /// Runs @p steps iterations.
  void run(std::size_t steps);

  /// The current estimate x^t.
  const linalg::Vector& estimate() const { return x_; }

  /// Iterations executed so far.
  std::size_t iteration() const { return iteration_; }

  /// Honest aggregate loss at the current estimate.
  double honest_loss() const;

  /// Agents eliminated for not replying (original ids, elimination order).
  const std::vector<std::size_t>& eliminated_agents() const { return eliminated_agents_; }

 private:
  const core::MultiAgentProblem& problem_;
  TrainerConfig config_;
  std::vector<std::size_t> byzantine_ids_;
  const attacks::Attack* attack_;
  std::vector<bool> is_byzantine_;
  std::vector<std::size_t> honest_;
  std::vector<rng::Rng> agent_rngs_;

  linalg::Vector x_;
  std::size_t iteration_ = 0;

  // Elimination state (paper step S1).
  std::vector<bool> active_;
  std::size_t n_active_;
  std::size_t f_active_;
  filters::FilterPtr filter_;
  std::vector<std::size_t> eliminated_agents_;
  // Reused across rounds (reset per round) so steady-state iterations stop
  // allocating norm/distance scratch.
  filters::NormCache round_cache_;

  // Batched least-squares gradient path; nullptr when any cost is not a
  // LeastSquaresCost, in which case step() uses the virtual gradient().
  std::unique_ptr<core::BatchGradientEvaluator> batch_gradients_;
  // Round buffers reused across step() calls.  Slots are overwritten by
  // copy-assignment each round, so the steady state allocates nothing.
  std::vector<std::size_t> responders_;
  std::vector<linalg::Vector> honest_gradients_;
  std::vector<linalg::Vector> gradients_;
  std::vector<linalg::Vector> residual_ws_;  ///< per-agent evaluate_agent scratch
  linalg::Vector byz_gradient_ws_;           ///< true-gradient scratch (serial loops)

  // Telemetry handles (registered at construction — serial context — so
  // step() only performs record operations).
  telemetry::Counter metric_iterations_;
  telemetry::Counter metric_eliminations_;
  telemetry::Histogram metric_direction_norm_;
  telemetry::Histogram metric_step_norm_;
};

/// Runs DGD on @p problem with the given Byzantine agents and fault
/// behaviour.
///
/// @p byzantine_ids  agents that misbehave this execution (sorted or not;
///                   must be distinct, within range, and at most problem.f).
/// @p attack         behaviour of the Byzantine agents; may be null iff
///                   byzantine_ids is empty.
/// @p reference      point against which trace.distance is measured
///                   (typically x_H, the honest aggregate's minimum).
TrainResult train(const core::MultiAgentProblem& problem,
                  const std::vector<std::size_t>& byzantine_ids, const attacks::Attack* attack,
                  const TrainerConfig& config,
                  const std::optional<linalg::Vector>& reference = std::nullopt);

/// The honest complement of @p byzantine_ids in {0..n-1}, ascending.
std::vector<std::size_t> honest_ids(std::size_t n, const std::vector<std::size_t>& byzantine_ids);

}  // namespace redopt::dgd
