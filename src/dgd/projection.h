// Projection onto the compact convex constraint set W.
//
// The DGD method constrains its estimates to a compact convex W (eq. 20/21);
// compactness is what makes the GradFilter output bounded in the theorems.
// Box and ball projections cover the experiments; IdentityProjection (W =
// R^d) is available for fault-free sanity checks where compactness is not
// needed.
#pragma once

#include <memory>
#include <string>

#include "linalg/vector.h"

namespace redopt::dgd {

using linalg::Vector;

/// Projects points onto a closed convex set W.
class ProjectionSet {
 public:
  virtual ~ProjectionSet() = default;

  /// argmin_{y in W} ||x - y||  (unique for convex W).
  virtual Vector project(const Vector& x) const = 0;

  /// Membership test with absolute tolerance.
  virtual bool contains(const Vector& x, double tol = 1e-12) const = 0;

  virtual std::string name() const = 0;
};

using ProjectionPtr = std::shared_ptr<const ProjectionSet>;

/// W = R^d (no projection).  Not compact; use only where boundedness is
/// otherwise guaranteed.
class IdentityProjection final : public ProjectionSet {
 public:
  Vector project(const Vector& x) const override { return x; }
  bool contains(const Vector&, double) const override { return true; }
  std::string name() const override { return "identity"; }
};

/// Axis-aligned box [lo_1, hi_1] x ... x [lo_d, hi_d].
class BoxProjection final : public ProjectionSet {
 public:
  /// Per-coordinate bounds; requires lo[k] <= hi[k] for all k.
  BoxProjection(Vector lo, Vector hi);

  /// Symmetric cube [-half_width, half_width]^d.
  static BoxProjection cube(std::size_t d, double half_width);

  Vector project(const Vector& x) const override;
  bool contains(const Vector& x, double tol) const override;
  std::string name() const override { return "box"; }

 private:
  Vector lo_;
  Vector hi_;
};

/// Euclidean ball of the given center and radius.
class BallProjection final : public ProjectionSet {
 public:
  BallProjection(Vector center, double radius);

  Vector project(const Vector& x) const override;
  bool contains(const Vector& x, double tol) const override;
  std::string name() const override { return "ball"; }

 private:
  Vector center_;
  double radius_;
};

}  // namespace redopt::dgd
