#include "dgd/trainer.h"

#include <algorithm>
#include <cmath>

#include "core/aggregate_cost.h"
#include "filters/instrumented.h"
#include "runtime/runtime.h"
#include "telemetry/events.h"
#include "telemetry/span.h"
#include "util/error.h"

namespace redopt::dgd {

std::vector<std::size_t> honest_ids(std::size_t n, const std::vector<std::size_t>& byzantine_ids) {
  std::vector<bool> bad(n, false);
  for (std::size_t id : byzantine_ids) {
    REDOPT_REQUIRE(id < n, "byzantine id out of range");
    REDOPT_REQUIRE(!bad[id], "duplicate byzantine id");
    bad[id] = true;
  }
  std::vector<std::size_t> honest;
  honest.reserve(n - byzantine_ids.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!bad[i]) honest.push_back(i);
  }
  return honest;
}

OnlineTrainer::OnlineTrainer(const core::MultiAgentProblem& problem,
                             std::vector<std::size_t> byzantine_ids,
                             const attacks::Attack* attack, TrainerConfig config)
    : problem_(problem),
      config_(std::move(config)),
      byzantine_ids_(std::move(byzantine_ids)),
      attack_(attack) {
  problem_.validate();
  REDOPT_REQUIRE(config_.filter != nullptr, "trainer config needs a gradient filter");
  REDOPT_REQUIRE(config_.schedule != nullptr, "trainer config needs a step schedule");
  REDOPT_REQUIRE(config_.projection != nullptr, "trainer config needs a projection set");
  REDOPT_REQUIRE(byzantine_ids_.size() <= problem_.f,
                 "more byzantine agents than the problem's fault budget f");
  REDOPT_REQUIRE(byzantine_ids_.empty() || attack_ != nullptr,
                 "byzantine agents present but no attack supplied");
  REDOPT_REQUIRE(config_.filter->expected_inputs() == problem_.num_agents(),
                 "filter was constructed for a different number of agents");

  const std::size_t n = problem_.num_agents();
  const std::size_t d = problem_.dimension();
  honest_ = honest_ids(n, byzantine_ids_);
  is_byzantine_.assign(n, false);
  for (std::size_t id : byzantine_ids_) is_byzantine_[id] = true;

  x_ = config_.x0.empty() ? linalg::Vector(d) : config_.x0;
  REDOPT_REQUIRE(x_.size() == d, "x0 dimension mismatch");
  x_ = config_.projection->project(x_);

  // Each Byzantine agent draws from its own named stream so executions are
  // reproducible and independent of iteration order — and so the
  // message-passing implementation (net/server_protocol.h), where each
  // faulty node owns its stream, produces bit-identical runs.
  const rng::Rng root(config_.seed);
  agent_rngs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    agent_rngs_.push_back(root.fork("byzantine-agent-" + std::to_string(i)));
  }

  active_.assign(n, true);
  n_active_ = n;
  f_active_ = problem_.f;
  // Batched gradient fast path for all-least-squares populations: stacks
  // every agent's rows once so the per-round fan-out reuses workspaces
  // (bit-identical to the virtual gradient() — see core/batch_gradient.h).
  batch_gradients_ = core::BatchGradientEvaluator::try_create(problem_.costs);
  if (batch_gradients_ != nullptr) residual_ws_.resize(n);
  responders_.reserve(n);
  honest_gradients_.reserve(honest_.size());
  gradients_.reserve(n);
  filter_ = config_.filter;
  // The instrumentation shim re-derives each call's accept set, which for
  // selection filters repeats the selection work — only pay for it when
  // telemetry is switched on.
  if (telemetry::enabled()) filter_ = filters::instrument(filter_, "dgd");

  auto& reg = telemetry::registry();
  metric_iterations_ = reg.counter("dgd.iterations");
  metric_eliminations_ = reg.counter("dgd.eliminations");
  const auto norm_layout = telemetry::BucketLayout::exponential(1e-6, 10.0, 12);
  metric_direction_norm_ = reg.histogram("dgd.direction_norm", norm_layout);
  metric_step_norm_ = reg.histogram("dgd.step_norm", norm_layout);
}

double OnlineTrainer::honest_loss() const {
  return core::subset_value(problem_.costs, honest_, x_);
}

linalg::Vector OnlineTrainer::step() {
  const std::size_t n = problem_.num_agents();
  const std::size_t d = problem_.dimension();
  const std::size_t t = iteration_;
  // Opened and closed in this serial context; the gradient fan-out below
  // never records into the span log.
  telemetry::ScopedSpan span("dgd.iteration");
  span.attr("t", static_cast<std::uint64_t>(t));

  // S1: honest replies (honest agents always reply in a synchronous
  // fault-free link model).  Each agent's gradient is an independent
  // evaluation written to its own slot, so the fan-out is bit-identical
  // at any runtime::threads() setting.
  responders_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (active_[i] && !is_byzantine_[i]) responders_.push_back(i);
  }
  honest_gradients_.resize(responders_.size());
  runtime::parallel_for(0, responders_.size(), [&](std::size_t j) {
    const std::size_t i = responders_[j];
    if (batch_gradients_ != nullptr) {
      batch_gradients_->evaluate_agent(i, x_, residual_ws_[i], honest_gradients_[j]);
    } else {
      honest_gradients_[j] = problem_.costs[i]->gradient(x_);
    }
  });

  // Byzantine replies: first decide who responds at all, then craft.
  bool eliminated_this_round = false;
  std::uint64_t eliminated_round_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!active_[i] || !is_byzantine_[i]) continue;
    if (batch_gradients_ != nullptr) {
      batch_gradients_->evaluate_agent(i, x_, residual_ws_[i], byz_gradient_ws_);
    } else {
      byz_gradient_ws_ = problem_.costs[i]->gradient(x_);
    }
    attacks::AttackContext ctx;
    ctx.iteration = t;
    ctx.agent_id = i;
    ctx.n = n_active_;
    ctx.f = f_active_;
    ctx.estimate = &x_;
    ctx.honest_gradient = &byz_gradient_ws_;
    ctx.honest_gradients = &honest_gradients_;
    ctx.rng = &agent_rngs_[i];
    if (!attack_->responds(ctx)) {
      // Missing reply in a synchronous system: the agent is provably
      // faulty.  Eliminate it and update (n, f) — the paper's step S1.
      active_[i] = false;
      --n_active_;
      if (f_active_ > 0) --f_active_;
      eliminated_agents_.push_back(i);
      eliminated_this_round = true;
      ++eliminated_round_count;
      telemetry::span_instant("dgd.elimination",
                              {{"agent", telemetry::Value(static_cast<std::uint64_t>(i))},
                               {"t", telemetry::Value(static_cast<std::uint64_t>(t))}});
    }
  }
  if (eliminated_this_round) {
    REDOPT_REQUIRE(config_.filter_factory != nullptr,
                   "agent eliminated but no filter_factory configured to rebuild the "
                   "gradient filter for the reduced (n, f)");
    filter_ = config_.filter_factory(n_active_, f_active_);
    REDOPT_REQUIRE(filter_ != nullptr && filter_->expected_inputs() == n_active_,
                   "filter_factory produced an unusable filter");
    if (telemetry::enabled()) filter_ = filters::instrument(filter_, "dgd");
  }

  // Collect the round's gradients from the still-active agents, in
  // ascending agent-id order (honest replies were already computed).
  // Slots are copy-assigned, so equal-size rounds reuse every buffer.
  gradients_.resize(n_active_);
  std::size_t slot = 0;
  std::size_t honest_index = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!active_[i]) continue;
    if (!is_byzantine_[i]) {
      gradients_[slot++] = honest_gradients_[honest_index++];
      continue;
    }
    if (batch_gradients_ != nullptr) {
      batch_gradients_->evaluate_agent(i, x_, residual_ws_[i], byz_gradient_ws_);
    } else {
      byz_gradient_ws_ = problem_.costs[i]->gradient(x_);
    }
    attacks::AttackContext ctx;
    ctx.iteration = t;
    ctx.agent_id = i;
    ctx.n = n_active_;
    ctx.f = f_active_;
    ctx.estimate = &x_;
    ctx.honest_gradient = &byz_gradient_ws_;
    ctx.honest_gradients = &honest_gradients_;
    ctx.rng = &agent_rngs_[i];
    gradients_[slot] = attack_->craft(ctx);
    REDOPT_REQUIRE(gradients_[slot].size() == d, "attack crafted a wrong-dimension vector");
    ++slot;
  }

  // S2: filter and projected update.  The round cache shares norms and
  // pairwise distances between the telemetry shim and the filter itself.
  round_cache_.reset(gradients_);
  linalg::Vector direction = filter_->apply_with_cache(gradients_, round_cache_);
  const linalg::Vector previous = x_;
  x_ = config_.projection->project(x_ - direction * config_.schedule->step(t));
  ++iteration_;

  metric_iterations_.inc();
  if (eliminated_this_round) {
    metric_eliminations_.inc(eliminated_round_count);
  }
  const double direction_norm = direction.norm();
  const double step_norm = linalg::distance(x_, previous);
  metric_direction_norm_.observe(direction_norm);
  metric_step_norm_.observe(step_norm);
  if (telemetry::tracing_enabled()) {
    telemetry::emit(telemetry::Event("dgd.iteration")
                        .with("t", static_cast<std::int64_t>(t))
                        .with("loss", honest_loss())
                        .with("direction_norm", direction_norm)
                        .with("step_norm", step_norm)
                        .with("eliminated", static_cast<std::int64_t>(eliminated_round_count)));
  }
  return direction;
}

void OnlineTrainer::run(std::size_t steps) {
  for (std::size_t s = 0; s < steps; ++s) step();
}

TrainResult train(const core::MultiAgentProblem& problem,
                  const std::vector<std::size_t>& byzantine_ids, const attacks::Attack* attack,
                  const TrainerConfig& config,
                  const std::optional<linalg::Vector>& reference) {
  if (reference) {
    REDOPT_REQUIRE(reference->size() == problem.dimension(), "reference point dimension mismatch");
  }
  OnlineTrainer trainer(problem, byzantine_ids, attack, config);

  telemetry::ScopedSpan train_span("dgd.train");
  train_span.attr("iterations", static_cast<std::uint64_t>(config.iterations))
      .attr("n", static_cast<std::uint64_t>(problem.num_agents()))
      .attr("f", static_cast<std::uint64_t>(problem.f));

  TrainResult result;
  auto record = [&](std::size_t t) {
    if (config.trace_stride == 0) return;
    if (t % config.trace_stride != 0 && t != config.iterations) return;
    result.trace.iteration.push_back(t);
    result.trace.loss.push_back(trainer.honest_loss());
    result.trace.distance.push_back(reference
                                        ? linalg::distance(trainer.estimate(), *reference)
                                        : std::numeric_limits<double>::quiet_NaN());
    if (config.trace_estimates) result.trace.estimates.push_back(trainer.estimate());
  };

  record(0);
  for (std::size_t t = 0; t < config.iterations; ++t) {
    trainer.step();
    record(t + 1);
  }

  result.estimate = trainer.estimate();
  result.final_loss = trainer.honest_loss();
  if (reference) result.final_distance = linalg::distance(trainer.estimate(), *reference);
  result.eliminated_agents = trainer.eliminated_agents();
  return result;
}

}  // namespace redopt::dgd
