#include "dgd/schedule.h"

#include <cmath>

#include "util/error.h"

namespace redopt::dgd {

ConstantSchedule::ConstantSchedule(double c) : c_(c) {
  REDOPT_REQUIRE(c > 0.0, "step size must be positive");
}

double ConstantSchedule::step(std::size_t) const { return c_; }

HarmonicSchedule::HarmonicSchedule(double c, double offset) : c_(c), offset_(offset) {
  REDOPT_REQUIRE(c > 0.0, "step size must be positive");
  REDOPT_REQUIRE(offset >= 0.0, "harmonic offset must be non-negative");
}

double HarmonicSchedule::step(std::size_t t) const {
  return c_ / (static_cast<double>(t) + 1.0 + offset_);
}

SqrtSchedule::SqrtSchedule(double c) : c_(c) {
  REDOPT_REQUIRE(c > 0.0, "step size must be positive");
}

double SqrtSchedule::step(std::size_t t) const {
  return c_ / std::sqrt(static_cast<double>(t) + 1.0);
}

SchedulePtr make_schedule(const std::string& name, double c) {
  if (name == "constant") return std::make_shared<ConstantSchedule>(c);
  if (name == "harmonic") return std::make_shared<HarmonicSchedule>(c);
  if (name == "sqrt") return std::make_shared<SqrtSchedule>(c);
  REDOPT_REQUIRE(false, "unknown step schedule: " + name);
  return nullptr;  // unreachable
}

}  // namespace redopt::dgd
