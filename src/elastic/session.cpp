#include "elastic/session.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "chaos/properties.h"
#include "dgd/projection.h"
#include "dgd/schedule.h"
#include "elastic/membership.h"
#include "elastic/replica.h"
#include "filters/registry.h"
#include "rng/rng.h"
#include "runtime/runtime.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/trace_export.h"
#include "util/error.h"

namespace redopt::elastic {

namespace {

bool all_finite(const linalg::Vector& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool bits_equal(const linalg::Vector& a, const linalg::Vector& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!bits_equal(a[i], b[i])) return false;
  }
  return true;
}

/// Everything an elastic session's agents need, owned by shared_ptr so
/// the AgentFn closure (copied into the transport, and into forked agent
/// processes) keeps it alive wherever it runs.
struct ElasticWorld {
  chaos::Scenario scenario;
  chaos::MaterializedScenario built;
  std::vector<ElasticReplica> replicas;
};

std::shared_ptr<ElasticWorld> make_world(const chaos::Scenario& scenario) {
  auto world = std::make_shared<ElasticWorld>();
  world->scenario = scenario;
  world->built = chaos::materialize_scenario(scenario);
  world->replicas.reserve(scenario.n);
  for (std::size_t i = 0; i < scenario.n; ++i) {
    world->replicas.emplace_back(world->scenario, world->built, i);
  }
  return world;
}

using ExchangeFn =
    std::function<std::vector<util::Frame>(std::size_t round, const linalg::Vector& estimate)>;
using CollectFn = std::function<std::vector<telemetry::AgentSnapshot>()>;

/// The shared coordinator core: both entry points run exactly this loop,
/// differing only in how frames move (@p exchange) and how islands come
/// home (@p collect).  Everything deterministic lives here.
ElasticSession run_rounds(const chaos::Scenario& scenario, const ElasticOptions& options,
                          const chaos::MaterializedScenario& built, const ExchangeFn& exchange,
                          const CollectFn& collect) {
  // Telemetry handles first: registration must happen in a serial
  // context.  The chaos.* fault counters keep executor semantics (the
  // same schedule observed coordinator-side); the elastic.* counters add
  // the membership / streaming / serving observables.
  auto& reg = telemetry::registry();
  const auto metric_sessions = reg.counter("elastic.sessions");
  const auto metric_rounds = reg.counter("chaos.rounds");
  const auto metric_byzantine = reg.counter("chaos.byzantine_replies");
  const auto metric_crashed = reg.counter("chaos.crashed_absences");
  const auto metric_stale = reg.counter("chaos.stale_replies");
  const auto metric_dropped = reg.counter("chaos.dropped_replies");
  const auto metric_delayed = reg.counter("chaos.delayed_replies");
  const auto metric_duplicated = reg.counter("chaos.duplicated_replies");
  const auto metric_joins = reg.counter("elastic.joins");
  const auto metric_leaves = reg.counter("elastic.leaves");
  const auto metric_member = reg.counter("elastic.member_agent_rounds");
  const auto metric_absent = reg.counter("elastic.absent_agent_rounds");
  const auto metric_stream_rows = reg.counter("elastic.stream_rows");
  const auto metric_rederived = reg.counter("elastic.f_rederivations");
  const auto metric_below = reg.counter("elastic.rounds_below_redundancy");
  const auto metric_published = reg.counter("elastic.snapshots_published");
  const auto metric_queries = reg.counter("elastic.queries_served");

  const std::size_t n = scenario.n;
  const std::size_t d = scenario.d;
  const MembershipSchedule membership(scenario);

  // Round-local filters, cached by the (reply count, fault budget) they
  // were built for.  The elastic twist on the session layer's fallback
  // chain: the search starts at the round's DERIVED budget f_t — churn
  // that shrinks the live set below 2f + 1 forces a defensible filter
  // before any reply is even missing.
  std::map<std::pair<std::size_t, std::size_t>, filters::FilterPtr> filter_cache;
  auto make_filter = [&](std::size_t n_round, std::size_t f_try) -> filters::FilterPtr {
    if (options.filter_factory) return options.filter_factory(scenario.filter, n_round, f_try);
    filters::FilterParams fp;
    fp.n = n_round;
    fp.f = f_try;
    return filters::FilterPtr(filters::make_filter(scenario.filter, fp));
  };
  auto filter_for = [&](std::size_t n_round, std::size_t f_cap,
                        std::size_t* f_used) -> const filters::FilterPtr& {
    std::size_t f_try = std::min(f_cap, n_round == 0 ? std::size_t{0} : n_round - 1);
    while (true) {
      const auto key = std::make_pair(n_round, f_try);
      auto it = filter_cache.find(key);
      if (it != filter_cache.end()) {
        *f_used = f_try;
        return it->second;
      }
      try {
        auto made = make_filter(n_round, f_try);
        *f_used = f_try;
        return filter_cache.emplace(key, std::move(made)).first->second;
      } catch (const PreconditionError&) {
        if (f_try == 0) break;
        --f_try;
      }
    }
    // Even f = 0 failed (e.g. krum with too few replies): degrade to the
    // plain average so the execution stays total.
    const auto key = std::make_pair(n_round, std::size_t{0});
    auto it = filter_cache.find(key);
    *f_used = 0;
    if (it != filter_cache.end()) return it->second;
    filters::FilterParams fp;
    fp.n = n_round;
    fp.f = 0;
    return filter_cache.emplace(key, filters::make_filter("mean", fp)).first->second;
  };

  // Schedule and projection keyed to the nominal (n, f): the step sizes
  // must not depend on the membership replay, or a counterfactual churn
  // would perturb every round after it even when the live sets agree.
  const dgd::HarmonicSchedule schedule(
      chaos::scenario_schedule_coefficient(scenario.filter, n, scenario.f));
  const dgd::BoxProjection projection = dgd::BoxProjection::cube(d, 10.0);

  rng::Rng x0_rng = rng::Rng(scenario.seed).fork("x0");
  linalg::Vector x(d);
  for (auto& v : x) v = x0_rng.uniform(-5.0, 5.0);
  x = projection.project(x);

  ElasticSession session;
  chaos::ScenarioResult& result = session.result;
  result.reference = built.reference;
  result.initial_distance = linalg::distance(x, built.reference);
  result.max_distance = result.initial_distance;
  session.estimates.push_back(x);

  EstimateService internal_service;

  telemetry::ScopedSpan scenario_span("elastic.scenario");
  scenario_span.attr("n", static_cast<std::uint64_t>(n))
      .attr("f", static_cast<std::uint64_t>(scenario.f))
      .attr("rounds", static_cast<std::uint64_t>(scenario.rounds))
      .attr("membership_events", static_cast<std::uint64_t>(scenario.membership.size()))
      .attr("stream_events", static_cast<std::uint64_t>(scenario.stream.size()));

  std::size_t stream_cursor = 0;
  for (std::size_t t = 0; t < scenario.rounds; ++t) {
    const std::size_t m_t = membership.count(t);
    const std::size_t f_t = membership.derived_f(t);
    telemetry::ScopedSpan round_span("elastic.round");
    round_span.attr("t", static_cast<std::uint64_t>(t))
        .attr("members", static_cast<std::uint64_t>(m_t))
        .attr("derived_f", static_cast<std::uint64_t>(f_t));

    const std::vector<util::Frame> frames = exchange(t, x);
    metric_rounds.inc();

    // Membership bookkeeping, replayed from the pure schedule — the
    // coordinator never trusts counters from the other side of the wire.
    const std::size_t joins = membership.joins_at(t);
    const std::size_t leaves = membership.leaves_at(t);
    session.joins += joins;
    session.leaves += leaves;
    metric_joins.inc(joins);
    metric_leaves.inc(leaves);
    if (f_t < scenario.f) {
      ++session.f_rederivations;
      metric_rederived.inc();
      telemetry::span_instant("elastic.f_rederived",
                              {{"t", telemetry::Value(static_cast<std::uint64_t>(t))},
                               {"derived_f", telemetry::Value(static_cast<std::uint64_t>(f_t))}});
    }
    if (!membership.redundant(t)) {
      ++session.rounds_below_redundancy;
      metric_below.inc();
    }
    while (stream_cursor < scenario.stream.size() &&
           scenario.stream[stream_cursor].round <= t) {
      session.stream_rows += scenario.stream[stream_cursor].rows;
      metric_stream_rows.inc(scenario.stream[stream_cursor].rows);
      ++stream_cursor;
    }

    // Fault accounting: replay every live agent's (pure) round fate —
    // identical on every backend by construction.  Departed agents have
    // no fate: their specs sleep until they rejoin.
    for (std::size_t i = 0; i < n; ++i) {
      if (!membership.member(i, t)) {
        ++session.absent_agent_rounds;
        metric_absent.inc();
        continue;
      }
      ++session.member_agent_rounds;
      metric_member.inc();
      const transport::AgentReplica::RoundFate fate = transport::AgentReplica::fate(scenario, i, t);
      if (!fate.emits) {
        ++result.crashed_absences;
        metric_crashed.inc();
        continue;
      }
      if (fate.byzantine) {
        ++result.byzantine_replies;
        metric_byzantine.inc();
      }
      if (fate.stale) {
        ++result.stale_replies;
        metric_stale.inc();
      }
      if (fate.dropped) {
        ++result.dropped_replies;
        metric_dropped.inc();
        continue;
      }
      if (fate.duplicated) {
        ++result.duplicated_replies;
        metric_duplicated.inc();
      }
      if (fate.delay > 0) {
        ++result.delayed_replies;
        metric_delayed.inc();
      }
    }

    // Receive: keep the freshest reply per agent (sequence-number dedup,
    // same as the fixed-membership paths).
    struct Reply {
      std::uint64_t emitted = 0;
      const util::Frame* frame = nullptr;
    };
    std::map<std::uint32_t, Reply> inbox;
    for (const util::Frame& frame : frames) {
      auto [it, inserted] = inbox.try_emplace(frame.agent, Reply{frame.emitted, &frame});
      if (inserted) continue;
      if (frame.emitted > it->second.emitted) it->second = Reply{frame.emitted, &frame};
      ++result.superseded_replies;
    }

    // Aggregate and step.
    if (!inbox.empty()) {
      std::vector<linalg::Vector> received;
      received.reserve(inbox.size());
      for (const auto& [agent, reply] : inbox) {
        (void)agent;
        received.push_back(linalg::Vector(reply.frame->payload));
      }
      std::size_t f_used = 0;
      const filters::FilterPtr& filter = filter_for(received.size(), f_t, &f_used);
      if (received.size() != m_t || f_used != scenario.f) {
        ++result.filter_rebuilds;
        telemetry::span_instant(
            "elastic.filter_rebuild",
            {{"t", telemetry::Value(static_cast<std::uint64_t>(t))},
             {"replies", telemetry::Value(static_cast<std::uint64_t>(received.size()))},
             {"f_used", telemetry::Value(static_cast<std::uint64_t>(f_used))}});
      }
      const linalg::Vector direction = filter->apply(received);
      x = projection.project(x - direction * schedule.step(t));
    }
    session.estimates.push_back(x);

    // Serving path: one snapshot per round, published between rounds.
    internal_service.publish(t, x);
    if (options.service != nullptr) options.service->publish(t, x);
    metric_published.inc();
    if (options.query_stride != 0 && t % options.query_stride == 0) {
      const EstimateService::Snapshot snap = internal_service.query();
      metric_queries.inc();
      session.query_rounds.push_back(t);
      session.query_distances.push_back(linalg::distance(snap.estimate, built.reference));
    }

    if (!all_finite(x)) {
      result.nonfinite = true;
      result.nonfinite_round = t;
      break;
    }
    result.max_distance = std::max(result.max_distance, linalg::distance(x, built.reference));
  }

  metric_sessions.inc();
  result.estimate = x;
  result.final_distance = result.nonfinite ? std::numeric_limits<double>::infinity()
                                           : linalg::distance(x, built.reference);
  session.agents = collect();
  return session;
}

}  // namespace

ElasticSession run_elastic(const chaos::Scenario& scenario, const ElasticOptions& options) {
  scenario.validate();
  const std::shared_ptr<ElasticWorld> world = make_world(scenario);
  const std::size_t n = scenario.n;

  // The in-process oracle's exchange: fan the replicas out into per-agent
  // slots, then impose the transport layer's canonical frame order so
  // every consumer of the gather sees exactly what Transport::finish_exchange
  // would deliver.  The fan-out is deliberately sequential: a replica's
  // island registry is sharded per observing thread, so a pool fan-out
  // would scatter one replica's histogram observations across shards by
  // scheduling accident and the merged float sums would wobble in the
  // last ulp — breaking the manifest byte-identity the oracle anchors.
  // Real parallelism lives in the transport backends, where each agent
  // owns a dedicated thread (or process) and its island a single shard.
  ExchangeFn exchange = [world, n](std::size_t round, const linalg::Vector& estimate) {
    std::vector<std::vector<util::Frame>> slots(n);
    for (std::size_t i = 0; i < n; ++i) {
      slots[i] = world->replicas[i].on_round(round, estimate);
    }
    std::vector<util::Frame> frames;
    for (std::vector<util::Frame>& slot : slots) {
      for (util::Frame& frame : slot) frames.push_back(std::move(frame));
    }
    std::stable_sort(frames.begin(), frames.end(), [](const util::Frame& a, const util::Frame& b) {
      if (a.agent != b.agent) return a.agent < b.agent;
      return a.emitted < b.emitted;
    });
    return frames;
  };
  // Same serialize → parse round trip the transports ship islands
  // through, so both paths surface byte-identical snapshots.
  CollectFn collect = [world, n]() {
    std::vector<telemetry::AgentSnapshot> agents;
    agents.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      agents.push_back(telemetry::parse_agent_snapshot(telemetry::serialize_agent_telemetry(
          static_cast<std::uint32_t>(i), world->replicas[i].telemetry())));
    }
    return agents;
  };
  return run_rounds(scenario, options, world->built, exchange, collect);
}

ElasticSession run_elastic_transport(const chaos::Scenario& scenario,
                                     const transport::SessionOptions& session_options,
                                     const ElasticOptions& options) {
  scenario.validate();
  const std::shared_ptr<ElasticWorld> world = make_world(scenario);

  transport::AgentFn agent_fn = [world](std::size_t agent, std::size_t round,
                                        const linalg::Vector& estimate) {
    return world->replicas[agent].on_round(round, estimate);
  };
  // Telemetry shipping runs agent-side: on the socket backend this
  // closure executes inside the forked agent process, serializing the
  // fork-local replica's island.
  transport::TelemetryFn telemetry_fn = [world](std::size_t agent) {
    return telemetry::serialize_agent_telemetry(static_cast<std::uint32_t>(agent),
                                                world->replicas[agent].telemetry());
  };
  // The transport must be built (and, for the socket backend, forked)
  // only after the world is fully constructed, so every agent process
  // inherits identical replica state — streaming clones included.
  const std::unique_ptr<transport::Transport> transport = transport::make_transport(
      session_options, scenario.n, std::move(agent_fn), std::move(telemetry_fn));

  ExchangeFn exchange = [&transport](std::size_t round, const linalg::Vector& estimate) {
    return transport->exchange(round, estimate);
  };
  CollectFn collect = [&transport]() {
    std::vector<telemetry::AgentSnapshot> agents;
    for (const transport::AgentBlob& blob : transport->collect_telemetry()) {
      agents.push_back(telemetry::parse_agent_snapshot(blob.blob));
    }
    return agents;
  };
  ElasticSession session = run_rounds(scenario, options, world->built, exchange, collect);
  session.transport = transport->stats();
  return session;
}

std::string elastic_manifest_json(const ElasticSession& session) {
  // net.* belongs to the inproc backend's internal SyncNetwork substrate,
  // which the socket backend replaces wholesale; the elastic manifest is
  // the document both backends must agree on byte for byte, so the
  // substrate's private counters stay out of it.
  telemetry::Snapshot coordinator;
  for (telemetry::MetricValue& m : telemetry::registry().snapshot()) {
    if (m.name.rfind("net.", 0) == 0) continue;
    coordinator.push_back(std::move(m));
  }
  return telemetry::render_merged_manifest(coordinator, session.agents);
}

std::string elastic_trace_json(const ElasticSession& session) {
  std::vector<telemetry::TraceTrack> tracks;
  tracks.reserve(session.agents.size() + 1);
  telemetry::TraceTrack coordinator;
  coordinator.pid = 0;
  coordinator.name = "coordinator";
  coordinator.spans = &telemetry::span_log().spans();
  coordinator.instants = &telemetry::span_log().instants();
  tracks.push_back(coordinator);
  for (const telemetry::AgentSnapshot& agent : session.agents) {
    telemetry::TraceTrack track;
    track.pid = agent.agent + 1;
    track.name = "agent " + std::to_string(agent.agent);
    track.spans = &agent.spans;
    track.instants = &agent.instants;
    tracks.push_back(track);
  }
  return telemetry::render_chrome_trace(tracks);
}

bool bit_identical(const ElasticSession& a, const ElasticSession& b) {
  if (!chaos::bit_identical(a.result, b.result)) return false;
  if (a.estimates.size() != b.estimates.size()) return false;
  for (std::size_t i = 0; i < a.estimates.size(); ++i) {
    if (!bits_equal(a.estimates[i], b.estimates[i])) return false;
  }
  if (a.joins != b.joins || a.leaves != b.leaves) return false;
  if (a.member_agent_rounds != b.member_agent_rounds) return false;
  if (a.absent_agent_rounds != b.absent_agent_rounds) return false;
  if (a.stream_rows != b.stream_rows) return false;
  if (a.f_rederivations != b.f_rederivations) return false;
  if (a.rounds_below_redundancy != b.rounds_below_redundancy) return false;
  if (a.query_rounds != b.query_rounds) return false;
  if (a.query_distances.size() != b.query_distances.size()) return false;
  for (std::size_t i = 0; i < a.query_distances.size(); ++i) {
    if (!bits_equal(a.query_distances[i], b.query_distances[i])) return false;
  }
  return true;
}

}  // namespace redopt::elastic
