// Elastic membership schedules: who is live when, and with what budget.
//
// A chaos::Scenario with membership events describes agents joining and
// leaving mid-run.  chaos::Scenario::member_at answers point queries by
// folding the event list; MembershipSchedule precomputes the fold into
// membership *epochs* (the piecewise-constant segments between events) so
// the per-round coordinator loop gets O(log epochs) lookups, a stable
// members vector to iterate, and the derived fault budget f_t — the
// largest f' <= f the live member count can still defend (m_t > 2 f').
// When churn shrinks m_t past the declared budget the coordinator
// rebuilds its gradient filter with f_t, the same degrade-don't-die
// policy as the session layer's (n, f) fallback chain.
//
// The builders at the bottom generate the seeded churn schedules the
// tests, goldens and benches share: join-heavy / leave-heavy profiles
// that stay inside the guaranteed regime, a redundancy-dip schedule that
// deliberately breaks it mid-run, and a streaming variant layering data
// arrivals on top of the churn.
#pragma once

#include <cstdint>
#include <vector>

#include "chaos/scenario.h"

namespace redopt::elastic {

class MembershipSchedule {
 public:
  /// Precomputes the epochs of @p scenario (validated by the caller).
  explicit MembershipSchedule(const chaos::Scenario& scenario);

  std::size_t rounds() const { return rounds_; }

  bool member(std::size_t agent, std::size_t round) const;

  /// Live agents during @p round, ascending (stable reference into the
  /// precomputed epoch).
  const std::vector<std::size_t>& members(std::size_t round) const;
  std::size_t count(std::size_t round) const;

  /// The defensible fault budget at @p round (see header comment).
  std::size_t derived_f(std::size_t round) const;

  /// chaos::Scenario::redundant_at, precomputed.
  bool redundant(std::size_t round) const;

  /// Agents whose membership flips at exactly @p round (relative to the
  /// previous round; both are 0 for round 0 and for event-free rounds).
  std::size_t joins_at(std::size_t round) const;
  std::size_t leaves_at(std::size_t round) const;

 private:
  struct Epoch {
    std::size_t start = 0;                ///< first round of the epoch
    std::vector<std::size_t> members;     ///< live agents, ascending
    std::vector<char> is_member;          ///< indexed by agent
    std::size_t derived_f = 0;
    bool redundant = false;
    std::size_t joins = 0;   ///< flips into the live set at `start`
    std::size_t leaves = 0;  ///< flips out of the live set at `start`
  };

  const Epoch& epoch_at(std::size_t round) const;

  std::size_t rounds_ = 0;
  std::vector<Epoch> epochs_;  ///< ascending by start; epochs_[0].start == 0
};

/// The two churn shapes the integration tests and goldens pin.
enum class ChurnProfile {
  kJoinHeavy,   ///< agents start absent and stagger in (plus one rejoin cycle)
  kLeaveHeavy,  ///< agents stagger out mid-run (one returns late)
};

/// A seeded churn scenario inside the guaranteed regime: n = 8, f = 1,
/// d = 2, 60 rounds of noiseless block_regression under cge, with
/// join/leave rounds jittered from fork("churn") of @p seed.  Every round
/// keeps the 2f-redundancy headroom (redundant_throughout()), so
/// chaos::check_properties asserts the Theorem-3 bound.
chaos::Scenario make_churn_scenario(ChurnProfile profile, std::uint64_t seed);

/// A churn scenario that deliberately dips BELOW the redundancy headroom:
/// a mass leave shrinks the live set to 2 agents mid-run (forcing the
/// derived budget to f' = 0), then the leavers rejoin and the run
/// recovers.  guaranteed() is false; the property checker holds it to
/// graceful degradation only.
chaos::Scenario make_redundancy_dip_scenario(std::uint64_t seed);

/// Streaming + churn: the streaming_regression family with per-agent
/// row arrivals every few rounds layered under a join-heavy or
/// leave-heavy membership schedule.  Stays in the guaranteed regime.
chaos::Scenario make_streaming_churn_scenario(ChurnProfile profile, std::uint64_t seed);

}  // namespace redopt::elastic
