#include "elastic/replica.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/error.h"

namespace redopt::elastic {

namespace {

bool in_window(const chaos::FaultSpec& spec, std::size_t t) {
  if (t < spec.from) return false;
  return spec.until == 0 || t < spec.until;
}

std::size_t scenario_max_staleness(const chaos::Scenario& s) {
  std::size_t max_staleness = 0;
  for (const chaos::FaultSpec& spec : s.faults) {
    if (spec.kind == chaos::FaultSpec::Kind::kStraggler) {
      max_staleness = std::max(max_staleness, spec.staleness);
    }
  }
  return max_staleness;
}

}  // namespace

ElasticReplica::ElasticReplica(const chaos::Scenario& scenario,
                               const chaos::MaterializedScenario& built, std::size_t agent)
    : scenario_(scenario),
      agent_(agent),
      max_staleness_(scenario_max_staleness(scenario)),
      spec_of_(scenario.n, nullptr),
      attack_rng_(rng::Rng(scenario.seed).fork("byzantine-agent-" + std::to_string(agent))),
      telemetry_(std::make_unique<telemetry::AgentTelemetry>()) {
  REDOPT_REQUIRE(agent < scenario.n, "elastic replica: agent id out of range");
  // Private world view: static costs are immutable and shared; streaming
  // costs are cloned so this replica's absorbs never leak into another
  // replica (or the coordinator's materialized originals).
  costs_ = built.problem.costs;
  if (!built.streams.empty()) {
    streams_.reserve(built.streams.size());
    for (std::size_t i = 0; i < built.streams.size(); ++i) {
      auto copy = std::make_shared<data::StreamingLeastSquaresCost>(*built.streams[i]);
      streams_.push_back(copy);
      costs_[i] = copy;
    }
  }
  for (const chaos::FaultSpec& spec : scenario_.faults) spec_of_[spec.agent] = &spec;
  const chaos::FaultSpec* own = spec_of_[agent_];
  if (own != nullptr && own->kind == chaos::FaultSpec::Kind::kByzantine) {
    attack_ = chaos::make_scenario_attack(own->attack, own->attack_param);
  }
  telemetry::Registry& reg = telemetry_->registry;
  m_rounds_ = reg.counter("replica.rounds");
  m_frames_emitted_ = reg.counter("replica.frames_emitted");
  m_member_rounds_ = reg.counter("elastic.member_rounds");
  m_absent_rounds_ = reg.counter("elastic.absent_rounds");
  m_joins_ = reg.counter("elastic.joins");
  m_leaves_ = reg.counter("elastic.leaves");
  m_stream_rows_ = reg.counter("elastic.stream_rows");
  m_byzantine_ = reg.counter("replica.byzantine_replies");
  m_crashed_ = reg.counter("replica.crashed_absences");
  m_stale_ = reg.counter("replica.stale_replies");
  m_dropped_ = reg.counter("replica.dropped_replies");
  m_delayed_ = reg.counter("replica.delayed_replies");
  m_duplicated_ = reg.counter("replica.duplicated_replies");
  m_gradient_norm_ =
      reg.histogram("replica.gradient_norm", telemetry::BucketLayout::exponential(1e-3, 4.0, 12));
}

linalg::Vector ElasticReplica::honest_payload(std::size_t who, std::size_t round) const {
  const chaos::FaultSpec* spec = spec_of_[who];
  std::size_t staleness = 0;
  if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kStraggler &&
      in_window(*spec, round)) {
    staleness = std::min(spec->staleness, history_.size() - 1);
  }
  return costs_[who]->gradient(history_[staleness]);
}

std::vector<util::Frame> ElasticReplica::on_round(std::size_t round,
                                                  const linalg::Vector& estimate) {
  const std::uint64_t t = static_cast<std::uint64_t>(round);
  telemetry::ScopedSpan span(telemetry_->spans, "elastic.round");
  span.attr("t", t);
  m_rounds_.inc();
  auto note = [&](const char* name) {
    telemetry_->spans.instant(name, {{"t", telemetry::Value(t)}});
  };

  // Stream arrivals due this round fold into the private world copy —
  // EVERY agent's arrivals, so Byzantine recomputation sees the same
  // post-arrival world in every process.  Arrivals fire even while this
  // agent sits out: data accumulates through a departure.
  while (stream_cursor_ < scenario_.stream.size() &&
         scenario_.stream[stream_cursor_].round <= round) {
    const chaos::StreamEvent& event = scenario_.stream[stream_cursor_];
    streams_[event.agent]->absorb(event.rows);
    if (event.agent == agent_) {
      m_stream_rows_.inc(event.rows);
      note("elastic.stream_arrival");
    }
    ++stream_cursor_;
  }

  // History advances every round, member or not, so straggler staleness
  // depths match the coordinator's round clock.
  history_.push_front(estimate);
  while (history_.size() > max_staleness_ + 1) history_.pop_back();

  // Channel-delayed frames are in flight regardless of the agent's
  // current membership or fate — a reply emitted before a departure
  // still arrives.
  std::vector<util::Frame> out;
  if (auto it = delayed_.find(round); it != delayed_.end()) {
    out = std::move(it->second);
    delayed_.erase(it);
  }

  const bool member = scenario_.member_at(agent_, round);
  if (has_prev_ && member && !prev_member_) {
    m_joins_.inc();
    note("elastic.join");
  }
  if (has_prev_ && !member && prev_member_) {
    m_leaves_.inc();
    note("elastic.leave");
  }
  has_prev_ = true;
  prev_member_ = member;

  if (!member) {
    m_absent_rounds_.inc();
    note("elastic.absent");
    m_frames_emitted_.inc(out.size());
    return out;
  }
  m_member_rounds_.inc();

  const transport::AgentReplica::RoundFate what =
      transport::AgentReplica::fate(scenario_, agent_, round);
  if (!what.emits) {
    m_crashed_.inc();
    note("replica.crashed");
    m_frames_emitted_.inc(out.size());
    return out;
  }
  if (what.byzantine) {
    m_byzantine_.inc();
    note("replica.byzantine");
  }
  if (what.stale) {
    m_stale_.inc();
    note("replica.stale");
  }

  // Byzantine agents are never stale: the attack sees the freshest state.
  linalg::Vector payload =
      what.byzantine ? costs_[agent_]->gradient(history_[0]) : honest_payload(agent_, round);

  if (what.byzantine) {
    const linalg::Vector true_gradient = payload;
    // The adversary observes the replies actually on the wire this
    // round: live members that are neither Byzantine nor crashed.
    std::vector<linalg::Vector> observed;
    observed.reserve(scenario_.n);
    for (std::size_t j = 0; j < scenario_.n; ++j) {
      if (!scenario_.member_at(j, round)) continue;
      const chaos::FaultSpec* spec = spec_of_[j];
      if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kByzantine) continue;
      if (spec != nullptr && spec->kind == chaos::FaultSpec::Kind::kCrash &&
          in_window(*spec, round)) {
        continue;
      }
      observed.push_back(honest_payload(j, round));
    }
    const std::vector<linalg::Vector> fallback{true_gradient};
    attacks::AttackContext ctx;
    ctx.iteration = round;
    ctx.agent_id = agent_;
    // The attack context keeps the scenario's nominal (n, f): the
    // adversary plans against the declared shape, while the coordinator
    // defends with the derived budget of the live membership.
    ctx.n = scenario_.n;
    ctx.f = scenario_.f;
    ctx.estimate = &history_[0];
    ctx.honest_gradient = &true_gradient;
    ctx.honest_gradients = observed.empty() ? &fallback : &observed;
    ctx.rng = &attack_rng_;
    payload = attack_->craft(ctx);
    REDOPT_REQUIRE(payload.size() == scenario_.d, "attack crafted a wrong-dimension vector");
  }
  m_gradient_norm_.observe(payload.norm());

  if (what.dropped) {
    m_dropped_.inc();
    note("replica.dropped");
    m_frames_emitted_.inc(out.size());
    return out;
  }

  util::Frame frame;
  frame.type = util::FrameType::kGradient;
  frame.agent = static_cast<std::uint32_t>(agent_);
  frame.round = round;
  frame.emitted = round;
  frame.hops = 1;
  frame.payload.assign(payload.begin(), payload.end());
  if (what.duplicated) {
    m_duplicated_.inc();
    note("replica.duplicated");
    out.push_back(frame);  // the extra copy lands on time
  }
  if (what.delay > 0) {
    m_delayed_.inc();
    note("replica.delayed");
    frame.round = round + what.delay;
    delayed_[round + what.delay].push_back(std::move(frame));
  } else {
    out.push_back(std::move(frame));
  }
  m_frames_emitted_.inc(out.size());
  return out;
}

ElasticReplica::RoundFate ElasticReplica::fate(const chaos::Scenario& scenario,
                                               std::size_t agent, std::size_t round) {
  RoundFate what;
  what.member = scenario.member_at(agent, round);
  what.base = transport::AgentReplica::fate(scenario, agent, round);
  return what;
}

}  // namespace redopt::elastic
