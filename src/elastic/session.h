// Elastic sessions: end-to-end executions of churn + streaming scenarios.
//
// Two entry points with one coordinator core:
//
//   run_elastic — the in-process oracle.  Runs n ElasticReplicas behind a
//     canonical-order frame gather (sequential fan-out: every replica
//     island keeps a single registry shard, so histogram sums merge in
//     one deterministic order) and drives the membership-aware round loop:
//     filter (m_t, f_t) re-derivation from the live member count, the
//     session layer's f-decrement fallback below that, freshest-reply
//     dedup, harmonic schedule, box projection, and one published
//     estimate snapshot per round on the serving path.
//
//   run_elastic_transport — the same replicas behind a Transport backend
//     (inproc or socket, any topology).  The protocol state is all in
//     the replicas and the pure per-(agent, round) channel streams, so
//     both backends — and run_elastic itself — produce byte-identical
//     estimate traces, fault counters and (projected) telemetry
//     manifests; tests/test_elastic.cpp pins exactly that.
//
// The coordinator books chaos.* counters with executor semantics plus
// elastic.* membership observables, and wraps every round in an
// elastic.round span under one elastic.scenario span.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/executor.h"
#include "chaos/scenario.h"
#include "elastic/serving.h"
#include "filters/gradient_filter.h"
#include "linalg/vector.h"
#include "telemetry/ship.h"
#include "transport/session.h"

namespace redopt::elastic {

/// Execution knobs that are not part of the scenario itself.
struct ElasticOptions {
  /// Overrides gradient-filter construction (test hook, mirroring
  /// chaos::ExecutorOptions).  Default: filters registry.
  std::function<filters::FilterPtr(const std::string& name, std::size_t n, std::size_t f)>
      filter_factory;

  /// The coordinator serves (and records) one deterministic snapshot
  /// query every this many rounds; 0 disables the query trace.
  std::size_t query_stride = 1;

  /// Optional external service to publish every round's snapshot into —
  /// the hand-off point for concurrent readers on other threads.  The
  /// session always maintains its own internal service as well.
  EstimateService* service = nullptr;
};

/// Observables of one elastic execution.
struct ElasticSession {
  chaos::ScenarioResult result;           ///< the executor's observables
  std::vector<linalg::Vector> estimates;  ///< full estimate trace x^0 .. x^T

  // Membership / streaming observables (coordinator-side replay).
  std::uint64_t joins = 0;                ///< membership flips into the live set
  std::uint64_t leaves = 0;               ///< membership flips out of the live set
  std::uint64_t member_agent_rounds = 0;  ///< agent-rounds spent live
  std::uint64_t absent_agent_rounds = 0;  ///< agent-rounds spent departed
  std::uint64_t stream_rows = 0;          ///< rows absorbed across all agents
  std::uint64_t f_rederivations = 0;      ///< rounds run with derived f_t < f
  std::uint64_t rounds_below_redundancy = 0;  ///< rounds without the 2f headroom

  // The serving-path query trace (deterministic coordinator queries).
  std::vector<std::size_t> query_rounds;
  std::vector<double> query_distances;  ///< ||snapshot - reference|| per query

  transport::TransportStats transport;  ///< transport path only (zero inproc-oracle)
  std::vector<telemetry::AgentSnapshot> agents;  ///< shipped replica islands
};

/// Runs the scenario in-process (validates it first; requires elastic()
/// or a streaming problem).  Deterministic in the scenario alone: same
/// scenario, same session, any thread count.
ElasticSession run_elastic(const chaos::Scenario& scenario, const ElasticOptions& options = {});

/// Same execution behind a Transport backend.
ElasticSession run_elastic_transport(const chaos::Scenario& scenario,
                                     const transport::SessionOptions& session_options,
                                     const ElasticOptions& options = {});

/// The unified telemetry manifest of a finished elastic session —
/// registry snapshot (minus the inproc substrate's net.* counters) plus
/// every shipped island; byte-identical across backends and thread
/// counts after telemetry::stable_json_projection.
std::string elastic_manifest_json(const ElasticSession& session);

/// Chrome trace-event JSON (Perfetto-loadable): the coordinator's global
/// span log as pid 0 plus one track per shipped replica as pid agent+1.
std::string elastic_trace_json(const ElasticSession& session);

/// Bitwise equality of everything deterministic: trajectory, fault and
/// membership counters, the query trace.  Transport stats are excluded
/// (bytes_on_wire varies with topology, retries with timing).
bool bit_identical(const ElasticSession& a, const ElasticSession& b);

}  // namespace redopt::elastic
