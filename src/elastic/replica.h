// Per-agent emission engine for elastic (churn + streaming) scenarios.
//
// ElasticReplica is transport::AgentReplica's elastic sibling: the agent
// program both transport backends run for scenarios carrying membership
// or stream events.  Per round it (1) folds the round's stream arrivals
// into its private copy of the world's incremental costs, (2) flushes
// channel-delayed frames (in-flight data outlives a departure), and
// (3) emits the round's reply only while it is a live member — applying
// the same fault-spec and pure per-(agent, round) channel treatment as
// the fixed-membership replica, so a churn-free elastic scenario and its
// plain twin behave identically.
//
// Why a private world copy: streaming costs MUTATE as rows arrive.  The
// inproc backend runs n replicas in one process and the socket backend
// runs fork copies, so each replica clones every agent's streaming cost
// (the clone carries the stream rng) and absorbs the full arrival
// schedule locally.  Byzantine omniscience then recomputes honest
// replies from post-arrival state bit-identically in every process, the
// same trick AgentReplica plays for static instances.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "attacks/attack.h"
#include "chaos/executor.h"
#include "chaos/scenario.h"
#include "core/problem.h"
#include "data/streaming.h"
#include "linalg/vector.h"
#include "rng/rng.h"
#include "telemetry/ship.h"
#include "transport/agent_replica.h"
#include "util/frame.h"

namespace redopt::elastic {

class ElasticReplica {
 public:
  /// @p scenario must outlive the replica; @p built is copied from (its
  /// streaming costs are cloned, its shared static costs aliased), so it
  /// only needs to live through construction.
  ElasticReplica(const chaos::Scenario& scenario, const chaos::MaterializedScenario& built,
                 std::size_t agent);

  /// The frames this agent puts on the wire in @p round.  Must be called
  /// once per round, rounds ascending from 0 (stream arrivals fold in
  /// cursor-order).
  std::vector<util::Frame> on_round(std::size_t round, const linalg::Vector& estimate);

  std::size_t agent() const { return agent_; }

  /// The replica's private telemetry island: the replica.* counters of
  /// the fixed-membership engine plus elastic.* membership/stream
  /// counters, and an elastic.round span per call.
  const telemetry::AgentTelemetry& telemetry() const { return *telemetry_; }

  /// The membership-aware round fate, pure in the scenario: the
  /// coordinator replays it for fault accounting, exactly mirroring what
  /// on_round books into the island.
  struct RoundFate {
    bool member = true;
    transport::AgentReplica::RoundFate base;  ///< meaningful only when member
  };
  static RoundFate fate(const chaos::Scenario& scenario, std::size_t agent, std::size_t round);

 private:
  linalg::Vector honest_payload(std::size_t who, std::size_t round) const;

  const chaos::Scenario& scenario_;
  std::size_t agent_;
  std::vector<core::CostPtr> costs_;  ///< private world view (clones for streams)
  std::vector<std::shared_ptr<data::StreamingLeastSquaresCost>> streams_;
  std::size_t max_staleness_ = 0;
  std::vector<const chaos::FaultSpec*> spec_of_;
  std::unique_ptr<attacks::Attack> attack_;
  rng::Rng attack_rng_;
  std::deque<linalg::Vector> history_;  ///< history_[s] is the estimate of round - s
  std::map<std::size_t, std::vector<util::Frame>> delayed_;
  std::size_t stream_cursor_ = 0;  ///< next unabsorbed scenario stream event
  bool prev_member_ = false;       ///< membership of the previous round
  bool has_prev_ = false;

  std::unique_ptr<telemetry::AgentTelemetry> telemetry_;
  telemetry::Counter m_rounds_;
  telemetry::Counter m_frames_emitted_;
  telemetry::Counter m_member_rounds_;
  telemetry::Counter m_absent_rounds_;
  telemetry::Counter m_joins_;
  telemetry::Counter m_leaves_;
  telemetry::Counter m_stream_rows_;
  telemetry::Counter m_byzantine_;
  telemetry::Counter m_crashed_;
  telemetry::Counter m_stale_;
  telemetry::Counter m_dropped_;
  telemetry::Counter m_delayed_;
  telemetry::Counter m_duplicated_;
  telemetry::Histogram m_gradient_norm_;
};

}  // namespace redopt::elastic
