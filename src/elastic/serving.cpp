#include "elastic/serving.h"

namespace redopt::elastic {

void EstimateService::publish(std::size_t round, const linalg::Vector& estimate) {
  const std::lock_guard<std::mutex> lock(mutex_);
  current_.version += 1;
  current_.round = round;
  current_.estimate = estimate;
  current_.valid = true;
}

EstimateService::Snapshot EstimateService::query() const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

}  // namespace redopt::elastic
