#include "elastic/membership.h"

#include <algorithm>
#include <string>

#include "rng/rng.h"
#include "util/error.h"

namespace redopt::elastic {

MembershipSchedule::MembershipSchedule(const chaos::Scenario& s) : rounds_(s.rounds) {
  std::vector<char> is_member(s.n, 0);
  for (std::size_t i = 0; i < s.n; ++i) is_member[i] = s.initially_member(i) ? 1 : 0;

  auto push_epoch = [&](std::size_t start, std::size_t joins, std::size_t leaves) {
    Epoch e;
    e.start = start;
    e.is_member = is_member;
    for (std::size_t i = 0; i < s.n; ++i) {
      if (is_member[i]) e.members.push_back(i);
    }
    const std::size_t m = e.members.size();
    e.derived_f = m > 2 * s.f ? s.f : (m == 0 ? 0 : (m - 1) / 2);
    std::size_t live_crashes = 0;
    for (const chaos::FaultSpec& spec : s.faults) {
      if (spec.kind == chaos::FaultSpec::Kind::kCrash && is_member[spec.agent]) ++live_crashes;
    }
    e.redundant = e.derived_f == s.f && m > 3 * s.f + live_crashes;
    e.joins = joins;
    e.leaves = leaves;
    epochs_.push_back(std::move(e));
  };

  push_epoch(0, 0, 0);
  std::size_t k = 0;
  while (k < s.membership.size()) {
    const std::size_t round = s.membership[k].round;
    std::size_t joins = 0;
    std::size_t leaves = 0;
    while (k < s.membership.size() && s.membership[k].round == round) {
      const chaos::MembershipEvent& event = s.membership[k];
      const char next = event.kind == chaos::MembershipEvent::Kind::kJoin ? 1 : 0;
      if (next && !is_member[event.agent]) ++joins;
      if (!next && is_member[event.agent]) ++leaves;
      is_member[event.agent] = next;
      ++k;
    }
    push_epoch(round, joins, leaves);
  }
}

const MembershipSchedule::Epoch& MembershipSchedule::epoch_at(std::size_t round) const {
  // Last epoch whose start is <= round.
  std::size_t lo = 0;
  std::size_t hi = epochs_.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (epochs_[mid].start <= round) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return epochs_[lo];
}

bool MembershipSchedule::member(std::size_t agent, std::size_t round) const {
  const Epoch& e = epoch_at(round);
  REDOPT_REQUIRE(agent < e.is_member.size(), "membership schedule: agent out of range");
  return e.is_member[agent] != 0;
}

const std::vector<std::size_t>& MembershipSchedule::members(std::size_t round) const {
  return epoch_at(round).members;
}

std::size_t MembershipSchedule::count(std::size_t round) const {
  return epoch_at(round).members.size();
}

std::size_t MembershipSchedule::derived_f(std::size_t round) const {
  return epoch_at(round).derived_f;
}

bool MembershipSchedule::redundant(std::size_t round) const {
  return epoch_at(round).redundant;
}

std::size_t MembershipSchedule::joins_at(std::size_t round) const {
  const Epoch& e = epoch_at(round);
  return e.start == round ? e.joins : 0;
}

std::size_t MembershipSchedule::leaves_at(std::size_t round) const {
  const Epoch& e = epoch_at(round);
  return e.start == round ? e.leaves : 0;
}

namespace {

chaos::Scenario churn_base(const char* name, std::uint64_t seed) {
  chaos::Scenario s;
  s.name = name;
  s.seed = seed;
  s.problem = "block_regression";
  s.filter = "cge";
  s.n = 8;
  s.f = 1;
  s.d = 2;
  s.rounds = 60;
  return s;
}

chaos::MembershipEvent event(chaos::MembershipEvent::Kind kind, std::size_t agent,
                             std::size_t round) {
  chaos::MembershipEvent e;
  e.kind = kind;
  e.agent = agent;
  e.round = round;
  return e;
}

void sort_membership(std::vector<chaos::MembershipEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const chaos::MembershipEvent& a, const chaos::MembershipEvent& b) {
              return a.round != b.round ? a.round < b.round : a.agent < b.agent;
            });
}

/// The seeded churn events of one profile over the n = 8, f = 1 base
/// shape.  Jitters come from @p rng in a fixed draw order; the windows
/// are disjoint, so the live count trajectory is profile-determined
/// (join-heavy: 5,6,7,8,7,8; leave-heavy: 8,7,6,5,4,5) and never dips
/// below the m > 3f redundancy headroom.
std::vector<chaos::MembershipEvent> churn_events(ChurnProfile profile, rng::Rng& rng) {
  using Kind = chaos::MembershipEvent::Kind;
  auto jitter = [&rng] { return static_cast<std::size_t>(rng.uniform_int(0, 3)); };
  std::vector<chaos::MembershipEvent> events;
  if (profile == ChurnProfile::kJoinHeavy) {
    // Agents 5..7 start absent and stagger in; agent 4 cycles out and back.
    events.push_back(event(Kind::kJoin, 5, 5 + jitter()));
    events.push_back(event(Kind::kJoin, 6, 11 + jitter()));
    events.push_back(event(Kind::kJoin, 7, 18 + jitter()));
    events.push_back(event(Kind::kLeave, 4, 30 + jitter()));
    events.push_back(event(Kind::kJoin, 4, 40 + jitter()));
  } else {
    // Agents 2..5 stagger out mid-run; agent 2 returns late.
    events.push_back(event(Kind::kLeave, 2, 15 + jitter()));
    events.push_back(event(Kind::kLeave, 3, 22 + jitter()));
    events.push_back(event(Kind::kLeave, 4, 29 + jitter()));
    events.push_back(event(Kind::kLeave, 5, 36 + jitter()));
    events.push_back(event(Kind::kJoin, 2, 46 + jitter()));
  }
  sort_membership(events);
  return events;
}

}  // namespace

chaos::Scenario make_churn_scenario(ChurnProfile profile, std::uint64_t seed) {
  chaos::Scenario s = churn_base(
      profile == ChurnProfile::kJoinHeavy ? "churn-join-heavy" : "churn-leave-heavy", seed);
  rng::Rng rng = rng::Rng(seed).fork("churn");
  s.membership = churn_events(profile, rng);
  s.validate();
  return s;
}

chaos::Scenario make_redundancy_dip_scenario(std::uint64_t seed) {
  using Kind = chaos::MembershipEvent::Kind;
  chaos::Scenario s = churn_base("churn-redundancy-dip", seed);
  // A mass leave at round 20 shrinks the live set to agents {0, 1} — the
  // derived budget collapses to f' = 0 — until everyone rejoins at round
  // 32 and the guaranteed-regime headroom returns for the rest of the run.
  for (std::size_t agent = 2; agent < s.n; ++agent) {
    s.membership.push_back(event(Kind::kLeave, agent, 20));
  }
  for (std::size_t agent = 2; agent < s.n; ++agent) {
    s.membership.push_back(event(Kind::kJoin, agent, 32));
  }
  sort_membership(s.membership);
  s.validate();
  return s;
}

chaos::Scenario make_streaming_churn_scenario(ChurnProfile profile, std::uint64_t seed) {
  chaos::Scenario s = churn_base(
      profile == ChurnProfile::kJoinHeavy ? "stream-churn-join-heavy" : "stream-churn-leave-heavy",
      seed);
  s.problem = "streaming_regression";
  rng::Rng rng = rng::Rng(seed).fork("churn");
  s.membership = churn_events(profile, rng);
  // Fresh observations land at every agent every 6 rounds, phases spread
  // by agent id, 1..3 rows per arrival.  Arrivals fire whether or not the
  // agent is currently a member — data keeps accumulating while an agent
  // sits out, exactly the rejoin-with-more-data case.
  std::vector<chaos::StreamEvent> stream;
  for (std::size_t agent = 0; agent < s.n; ++agent) {
    for (std::size_t round = 3 + (agent % 3); round + 1 < s.rounds; round += 6) {
      chaos::StreamEvent e;
      e.agent = agent;
      e.round = round;
      e.rows = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
      stream.push_back(e);
    }
  }
  std::sort(stream.begin(), stream.end(),
            [](const chaos::StreamEvent& a, const chaos::StreamEvent& b) {
              return a.round != b.round ? a.round < b.round : a.agent < b.agent;
            });
  s.stream = std::move(stream);
  s.validate();
  return s;
}

}  // namespace redopt::elastic
