// Concurrent estimate serving: the read path of an online trainer.
//
// While the coordinator trains, clients query the current estimate.  The
// EstimateService is the hand-off point: the coordinator publishes one
// immutable snapshot per round (between rounds, never mid-aggregation),
// readers take the latest snapshot under a mutex and never observe a
// torn vector.  Versions increase monotonically with publishes, so a
// reader can prove it never travels back in time.
//
// Determinism contract: the coordinator's own deterministic per-round
// queries are booked as stable telemetry by the session loop; reads from
// foreign threads only touch the service's private atomic counter, never
// the process registry — concurrent load cannot perturb the manifests
// the cross-backend suites byte-compare.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "linalg/vector.h"

namespace redopt::elastic {

class EstimateService {
 public:
  /// One published estimate.  `valid` is false only before the first
  /// publish (the default-constructed snapshot).
  struct Snapshot {
    std::uint64_t version = 0;  ///< strictly increasing across publishes
    std::size_t round = 0;      ///< round the estimate was produced in
    linalg::Vector estimate;
    bool valid = false;
  };

  /// Publishes the estimate of @p round.  Coordinator-only, one writer.
  void publish(std::size_t round, const linalg::Vector& estimate);

  /// The latest snapshot (copy).  Safe from any thread, any time.
  Snapshot query() const;

  /// Queries served so far (all threads).  Timing-dependent under
  /// concurrent readers; never fed into deterministic observables.
  std::uint64_t queries_served() const {
    return queries_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mutex_;
  Snapshot current_;
  mutable std::atomic<std::uint64_t> queries_{0};
};

}  // namespace redopt::elastic
