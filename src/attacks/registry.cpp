#include "attacks/registry.h"

#include "attacks/attacks.h"
#include "util/error.h"

namespace redopt::attacks {

std::unique_ptr<Attack> make_attack(const std::string& name, const AttackParams& p) {
  if (name == "gradient_reverse") return std::make_unique<GradientReverseAttack>(p.scale);
  if (name == "random") return std::make_unique<RandomGaussianAttack>(p.sigma);
  if (name == "zero") return std::make_unique<ZeroAttack>();
  if (name == "large_norm") return std::make_unique<LargeNormAttack>(p.magnitude);
  if (name == "lie") return std::make_unique<LittleIsEnoughAttack>(p.z);
  if (name == "ipm") return std::make_unique<InnerProductAttack>(p.c);
  if (name == "camouflage") return std::make_unique<NormCamouflageAttack>(p.aggression);
  if (name == "orthogonal_drift") return std::make_unique<OrthogonalDriftAttack>(p.aggression);
  if (name == "poisoned_cost") return std::make_unique<PoisonedCostAttack>(p.noise);
  if (name == "mimic") return std::make_unique<MimicAttack>(p.mimic_target);
  if (name == "dropout") return std::make_unique<DropoutAttack>(p.drop_after);
  if (name == "switch") {
    REDOPT_REQUIRE(p.switch_inner != "switch", "switch attack cannot wrap itself");
    return std::make_unique<SwitchAttack>(make_attack(p.switch_inner, p), p.switch_at);
  }
  REDOPT_REQUIRE(false, "unknown attack: " + name);
  return nullptr;  // unreachable
}

std::vector<std::string> attack_names() {
  return {"gradient_reverse", "random",  "zero",    "large_norm",       "lie",
          "ipm",              "camouflage", "orthogonal_drift", "poisoned_cost",
          "mimic",            "dropout", "switch"};
}

}  // namespace redopt::attacks
