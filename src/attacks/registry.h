// Name-based attack construction for benches and examples.
#pragma once

#include <memory>
#include <string>
#include <string>
#include <vector>

#include "attacks/attack.h"

namespace redopt::attacks {

/// Hyper-parameters for the attack constructors (defaults match the paper's
/// experiment where applicable).
struct AttackParams {
  double scale = 1.0;        ///< gradient_reverse scale
  double sigma = 200.0;      ///< random-Gaussian standard deviation (paper value)
  double magnitude = 1e6;    ///< large_norm magnitude
  double z = 1.0;            ///< LIE z-score
  double c = 1.0;            ///< IPM factor
  double noise = 0.1;        ///< poisoned-cost noise
  double aggression = 1.0;   ///< camouflage / orthogonal_drift scale factor
  std::size_t drop_after = 0;  ///< dropout: last iteration with a reply
  std::size_t mimic_target = 0;  ///< mimic: honest-gradient rank to copy
  std::string switch_inner = "gradient_reverse";  ///< switch: wrapped attack
  std::size_t switch_at = 0;   ///< switch: first malicious iteration
};

/// Constructs the attack registered under @p name.
/// Known names: gradient_reverse, random, zero, large_norm, lie, ipm,
/// camouflage, orthogonal_drift, poisoned_cost, mimic, dropout, switch
/// (sleeper wrapping params.switch_inner).
/// Throws PreconditionError for unknown names.
std::unique_ptr<Attack> make_attack(const std::string& name, const AttackParams& params = {});

/// All registered attack names (deterministic order).
std::vector<std::string> attack_names();

}  // namespace redopt::attacks
