// Concrete Byzantine fault behaviours.
//
// The first two are the paper's evaluation faults; the rest are classical
// attacks from the Byzantine-ML literature used in the filter ablation.
#pragma once

#include "attacks/attack.h"

namespace redopt::attacks {

/// gradient-reverse (paper, Section 5): send -s where s is the gradient the
/// agent would have sent honestly.  Optionally scaled: -scale * s.
class GradientReverseAttack final : public Attack {
 public:
  explicit GradientReverseAttack(double scale = 1.0);
  Vector craft(const AttackContext& ctx) const override;
  std::string name() const override { return "gradient_reverse"; }

 private:
  double scale_;
};

/// random (paper, Section 5): send an iid Gaussian vector with mean 0 and
/// isotropic covariance of the given standard deviation (paper uses 200).
class RandomGaussianAttack final : public Attack {
 public:
  explicit RandomGaussianAttack(double sigma = 200.0);
  Vector craft(const AttackContext& ctx) const override;
  std::string name() const override { return "random"; }

 private:
  double sigma_;
};

/// Send the zero vector (a "mute" fault; weakest possible behaviour).
class ZeroAttack final : public Attack {
 public:
  Vector craft(const AttackContext& ctx) const override;
  std::string name() const override { return "zero"; }
};

/// Send a huge vector along a random direction (norm = magnitude).
/// Defeats plain averaging instantly; trivially filtered by CGE.
class LargeNormAttack final : public Attack {
 public:
  explicit LargeNormAttack(double magnitude = 1e6);
  Vector craft(const AttackContext& ctx) const override;
  std::string name() const override { return "large_norm"; }

 private:
  double magnitude_;
};

/// "A little is enough" (Baruch et al., 2019): send mean - z * std of the
/// honest gradients, coordinate-wise.  Stays inside the honest spread so
/// distance- and trim-based filters struggle to remove it.
class LittleIsEnoughAttack final : public Attack {
 public:
  explicit LittleIsEnoughAttack(double z = 1.0);
  Vector craft(const AttackContext& ctx) const override;
  std::string name() const override { return "lie"; }

 private:
  double z_;
};

/// Inner-product manipulation (Xie et al., 2020): send -c * mean(honest
/// gradients), trying to flip the aggregate's inner product with the true
/// descent direction while keeping a plausible norm.
class InnerProductAttack final : public Attack {
 public:
  explicit InnerProductAttack(double c = 1.0);
  Vector craft(const AttackContext& ctx) const override;
  std::string name() const override { return "ipm"; }

 private:
  double c_;
};

/// Mimic attack (Karimireddy et al., 2021 line of work): the faulty agent
/// copies one fixed honest agent's gradient verbatim.  Individually the
/// value is perfectly plausible — it IS an honest gradient — but f copies
/// over-weight that agent's data, skewing the aggregate under
/// heterogeneity.  Defeats norm- and distance-based outlier tests by
/// construction; only the redundancy of the honest data limits its damage.
class MimicAttack final : public Attack {
 public:
  /// Copies the gradient of the honest agent at @p target_rank within the
  /// honest gradient list (wrapped modulo the list size).
  explicit MimicAttack(std::size_t target_rank = 0);
  Vector craft(const AttackContext& ctx) const override;
  std::string name() const override { return "mimic"; }

 private:
  std::size_t target_rank_;
};

/// Time-varying fault: behaves honestly until iteration @p switch_at,
/// then switches to the wrapped attack.  Models sleeper agents that turn
/// malicious mid-run — a regime where any filter relying on *detecting*
/// the faulty identity once-and-for-all would fail, while per-iteration
/// robust aggregation (the paper's approach) is unaffected.
class SwitchAttack final : public Attack {
 public:
  /// @p inner must be non-null; ownership shared.
  SwitchAttack(AttackPtr inner, std::size_t switch_at);
  Vector craft(const AttackContext& ctx) const override;
  bool responds(const AttackContext& ctx) const override;
  std::string name() const override { return "switch"; }

 private:
  AttackPtr inner_;
  std::size_t switch_at_;
};

/// Crash/omission fault: behaves honestly until iteration @p drop_after,
/// then stops replying.  In the synchronous model the server detects the
/// missing reply, eliminates the agent and updates (n, f) — the paper's
/// step S1.  (Supported by the in-process trainer; the message-passing
/// protocols treat non-response as a crash and are exercised without it.)
class DropoutAttack final : public Attack {
 public:
  explicit DropoutAttack(std::size_t drop_after = 0);
  Vector craft(const AttackContext& ctx) const override;
  bool responds(const AttackContext& ctx) const override;
  std::string name() const override { return "dropout"; }

 private:
  std::size_t drop_after_;
};

/// Adaptive norm-camouflage attack: observes the round's honest gradients
/// and sends the *negated honest mean* rescaled so its norm equals the
/// median honest norm (times an aggression factor).  Direction-wise it is
/// the worst vector an adversary can pick (pure anti-descent), but its
/// norm is indistinguishable from an honest reply, so norm-ranking filters
/// such as CGE cannot prefer honest gradients over it on magnitude alone —
/// only the redundancy bound limits its damage.
class NormCamouflageAttack final : public Attack {
 public:
  /// @p aggression multiplies the camouflage norm; 1.0 blends in exactly,
  /// values < 1 hide *below* the honest norms.
  explicit NormCamouflageAttack(double aggression = 1.0);
  Vector craft(const AttackContext& ctx) const override;
  std::string name() const override { return "camouflage"; }

 private:
  double aggression_;
};

/// Adaptive orthogonal-drift attack: sends a random direction with the
/// component along the honest mean projected out, scaled to the mean
/// honest norm (times an aggression factor).  Contributes nothing to
/// descent while steering the aggregate sideways — a slow-poison drift
/// that norm tests cannot see and inner-product tests score as neutral.
/// Degenerates to the zero vector in one dimension (no orthogonal
/// complement) or when the random draw aligns with the mean.
class OrthogonalDriftAttack final : public Attack {
 public:
  explicit OrthogonalDriftAttack(double aggression = 1.0);
  Vector craft(const AttackContext& ctx) const override;
  std::string name() const override { return "orthogonal_drift"; }

 private:
  double aggression_;
};

/// Data-poisoning style fault: the agent behaves like an honest agent whose
/// local cost has been corrupted (e.g. label-flipped data).  The crafted
/// value is the *negated* honest gradient mixed with noise, modelling the
/// gradient of a poisoned mirror cost.
class PoisonedCostAttack final : public Attack {
 public:
  /// @p noise: standard deviation of additive Gaussian noise.
  explicit PoisonedCostAttack(double noise = 0.1);
  Vector craft(const AttackContext& ctx) const override;
  std::string name() const override { return "poisoned_cost"; }

 private:
  double noise_;
};

}  // namespace redopt::attacks
