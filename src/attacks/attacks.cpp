#include "attacks/attacks.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"
#include "util/error.h"

namespace redopt::attacks {

namespace detail {

void check_context(const AttackContext& ctx, bool needs_honest_gradients, const char* who) {
  REDOPT_REQUIRE(ctx.honest_gradient != nullptr,
                 std::string(who) + ": context missing the honest gradient");
  REDOPT_REQUIRE(ctx.estimate != nullptr, std::string(who) + ": context missing the estimate");
  REDOPT_REQUIRE(ctx.rng != nullptr, std::string(who) + ": context missing the rng");
  if (needs_honest_gradients) {
    REDOPT_REQUIRE(ctx.honest_gradients != nullptr && !ctx.honest_gradients->empty(),
                   std::string(who) + ": context missing honest gradients");
  }
}

}  // namespace detail

GradientReverseAttack::GradientReverseAttack(double scale) : scale_(scale) {
  REDOPT_REQUIRE(scale > 0.0, "gradient-reverse scale must be positive");
}

Vector GradientReverseAttack::craft(const AttackContext& ctx) const {
  detail::check_context(ctx, false, "gradient_reverse");
  return *ctx.honest_gradient * (-scale_);
}

RandomGaussianAttack::RandomGaussianAttack(double sigma) : sigma_(sigma) {
  REDOPT_REQUIRE(sigma >= 0.0, "random attack sigma must be non-negative");
}

Vector RandomGaussianAttack::craft(const AttackContext& ctx) const {
  detail::check_context(ctx, false, "random");
  Vector out(ctx.honest_gradient->size());
  for (auto& x : out) x = ctx.rng->gaussian(0.0, sigma_);
  return out;
}

Vector ZeroAttack::craft(const AttackContext& ctx) const {
  detail::check_context(ctx, false, "zero");
  return Vector(ctx.honest_gradient->size());
}

LargeNormAttack::LargeNormAttack(double magnitude) : magnitude_(magnitude) {
  REDOPT_REQUIRE(magnitude > 0.0, "large-norm magnitude must be positive");
}

Vector LargeNormAttack::craft(const AttackContext& ctx) const {
  detail::check_context(ctx, false, "large_norm");
  const auto dir = ctx.rng->unit_sphere(ctx.honest_gradient->size());
  return Vector(dir) * magnitude_;
}

LittleIsEnoughAttack::LittleIsEnoughAttack(double z) : z_(z) {
  REDOPT_REQUIRE(z > 0.0, "LIE z must be positive");
}

Vector LittleIsEnoughAttack::craft(const AttackContext& ctx) const {
  detail::check_context(ctx, true, "lie");
  const auto& honest = *ctx.honest_gradients;
  const Vector mu = linalg::mean(honest);
  Vector sd(mu.size());
  for (std::size_t k = 0; k < mu.size(); ++k) {
    linalg::kernels::Sum var;
    for (const auto& g : honest) {
      const double diff = g[k] - mu[k];
      var.add(diff * diff);
    }
    sd[k] = std::sqrt(var.value() / static_cast<double>(honest.size()));
  }
  return mu - sd * z_;
}

InnerProductAttack::InnerProductAttack(double c) : c_(c) {
  REDOPT_REQUIRE(c > 0.0, "IPM factor must be positive");
}

Vector InnerProductAttack::craft(const AttackContext& ctx) const {
  detail::check_context(ctx, true, "ipm");
  return linalg::mean(*ctx.honest_gradients) * (-c_);
}

NormCamouflageAttack::NormCamouflageAttack(double aggression) : aggression_(aggression) {
  REDOPT_REQUIRE(aggression > 0.0, "camouflage aggression must be positive");
}

Vector NormCamouflageAttack::craft(const AttackContext& ctx) const {
  detail::check_context(ctx, true, "camouflage");
  const auto& honest = *ctx.honest_gradients;
  std::vector<double> norms;
  norms.reserve(honest.size());
  for (const auto& g : honest) norms.push_back(g.norm());
  std::sort(norms.begin(), norms.end());
  const double median = norms[norms.size() / 2];
  const Vector mu = linalg::mean(honest);
  const double mu_norm = mu.norm();
  if (mu_norm == 0.0) return Vector(mu.size());  // honest mean is zero: nothing to reverse
  return mu * (-aggression_ * median / mu_norm);
}

OrthogonalDriftAttack::OrthogonalDriftAttack(double aggression) : aggression_(aggression) {
  REDOPT_REQUIRE(aggression > 0.0, "orthogonal-drift aggression must be positive");
}

Vector OrthogonalDriftAttack::craft(const AttackContext& ctx) const {
  detail::check_context(ctx, true, "orthogonal_drift");
  const auto& honest = *ctx.honest_gradients;
  const Vector mu = linalg::mean(honest);
  const std::size_t d = mu.size();
  if (d < 2) return Vector(d);  // no orthogonal complement in 1-D
  linalg::kernels::Sum norm_sum;
  for (const auto& g : honest) norm_sum.add(g.norm());
  const double target = aggression_ * norm_sum.value() / static_cast<double>(honest.size());
  Vector dir(ctx.rng->unit_sphere(d));
  const double mu_sq = linalg::dot(mu, mu);
  if (mu_sq > 0.0) dir = dir - mu * (linalg::dot(dir, mu) / mu_sq);
  const double dir_norm = dir.norm();
  if (dir_norm < 1e-12) return Vector(d);  // draw was (numerically) parallel to the mean
  return dir * (target / dir_norm);
}

MimicAttack::MimicAttack(std::size_t target_rank) : target_rank_(target_rank) {}

Vector MimicAttack::craft(const AttackContext& ctx) const {
  detail::check_context(ctx, true, "mimic");
  const auto& honest = *ctx.honest_gradients;
  return honest[target_rank_ % honest.size()];
}

SwitchAttack::SwitchAttack(AttackPtr inner, std::size_t switch_at)
    : inner_(std::move(inner)), switch_at_(switch_at) {
  REDOPT_REQUIRE(inner_ != nullptr, "switch attack needs an inner attack");
}

Vector SwitchAttack::craft(const AttackContext& ctx) const {
  detail::check_context(ctx, false, "switch");
  if (ctx.iteration < switch_at_) return *ctx.honest_gradient;  // sleeper phase
  return inner_->craft(ctx);
}

bool SwitchAttack::responds(const AttackContext& ctx) const {
  if (ctx.iteration < switch_at_) return true;
  return inner_->responds(ctx);
}

DropoutAttack::DropoutAttack(std::size_t drop_after) : drop_after_(drop_after) {}

Vector DropoutAttack::craft(const AttackContext& ctx) const {
  detail::check_context(ctx, false, "dropout");
  // Behaves honestly while it still replies.
  return *ctx.honest_gradient;
}

bool DropoutAttack::responds(const AttackContext& ctx) const {
  return ctx.iteration < drop_after_;
}

PoisonedCostAttack::PoisonedCostAttack(double noise) : noise_(noise) {
  REDOPT_REQUIRE(noise >= 0.0, "poisoned-cost noise must be non-negative");
}

Vector PoisonedCostAttack::craft(const AttackContext& ctx) const {
  detail::check_context(ctx, false, "poisoned_cost");
  Vector out = -*ctx.honest_gradient;
  for (auto& x : out) x += ctx.rng->gaussian(0.0, noise_);
  return out;
}

}  // namespace redopt::attacks
