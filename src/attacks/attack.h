// Byzantine fault behaviours.
//
// A Byzantine agent may send an arbitrary vector in place of its gradient.
// Attack models that arbitrariness; the trainer invokes craft() for each
// Byzantine agent each iteration.  The context deliberately gives the
// attack *omniscient* power — it sees the current estimate, the gradient
// the agent would have sent honestly, and all honest agents' gradients —
// because fault-tolerance guarantees must hold against worst-case
// adversaries with full knowledge (the paper's faults are "arbitrary").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/vector.h"
#include "rng/rng.h"

namespace redopt::attacks {

using linalg::Vector;

/// Everything an omniscient Byzantine agent can see when crafting a value.
struct AttackContext {
  std::size_t iteration = 0;  ///< DGD iteration t
  std::size_t agent_id = 0;   ///< this Byzantine agent's id
  std::size_t n = 0;          ///< total number of agents
  std::size_t f = 0;          ///< fault budget
  const Vector* estimate = nullptr;          ///< current server estimate x^t
  const Vector* honest_gradient = nullptr;   ///< gradient this agent would send honestly
  const std::vector<Vector>* honest_gradients = nullptr;  ///< all honest agents' gradients
  rng::Rng* rng = nullptr;    ///< per-execution random stream
};

/// A Byzantine fault behaviour.  Implementations are stateless; all
/// randomness flows through the context's rng so executions stay
/// reproducible.
class Attack {
 public:
  virtual ~Attack() = default;

  /// The vector the faulty agent sends instead of its gradient.
  virtual Vector craft(const AttackContext& ctx) const = 0;

  /// Whether the faulty agent replies at all this iteration.  In the
  /// synchronous model a missing reply identifies the agent as faulty: the
  /// server eliminates it and updates (n, f) — step S1 of the paper's DGD
  /// description.  Defaults to always replying; DropoutAttack overrides.
  virtual bool responds(const AttackContext& /*ctx*/) const { return true; }

  /// Canonical registry name, e.g. "gradient_reverse".
  virtual std::string name() const = 0;
};

using AttackPtr = std::shared_ptr<const Attack>;

namespace detail {
/// Validates that the context fields an attack needs are present.
void check_context(const AttackContext& ctx, bool needs_honest_gradients, const char* who);
}  // namespace detail

}  // namespace redopt::attacks
