// Declarative chaos scenarios: seedable, composable fault schedules.
//
// A Scenario is a complete, serializable description of one adversarial
// execution: the problem instance family, the gradient filter, and a set
// of per-agent fault windows (Byzantine behaviour, crash/recover,
// straggling) layered with channel faults (drop / duplicate / delay).
// Everything downstream of the scenario — instance data, initial
// estimate, attack randomness, channel draws — derives deterministically
// from its seed, so a scenario IS its execution: serialize it to JSON,
// replay it anywhere (tools/chaos-replay), get the same trajectory bit
// for bit.
//
// guaranteed() carves out the regime where the paper's theorems promise
// exact convergence; chaos::Properties asserts convergence there and only
// graceful degradation (bounded, finite) everywhere else.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace redopt::chaos {

/// One agent's fault behaviour over a window of rounds.  At most one spec
/// per agent: an agent is Byzantine, crashed, or straggling — composing
/// those on a single agent is modelled by the Byzantine spec alone, since
/// a Byzantine agent subsumes every other misbehaviour.
struct FaultSpec {
  enum class Kind {
    kByzantine,  ///< crafts attack replies during the window, honest outside
    kCrash,      ///< silent during the window (no reply), honest outside
    kStraggler,  ///< honest but replies with the gradient at x^{t - staleness}
  };

  Kind kind = Kind::kByzantine;
  std::size_t agent = 0;
  std::size_t from = 0;   ///< first faulty round
  std::size_t until = 0;  ///< first healthy round again; 0 = faulty to the end
  std::string attack = "gradient_reverse";  ///< Byzantine only: attack registry name
  double attack_param = 1.0;  ///< the attack's scalar knob (scale / z / c / aggression)
  std::size_t staleness = 1;  ///< straggler only: fixed lag s >= 1
};

/// Channel fault model applied to every reply, mirroring net::LinkFaults.
struct ChannelFaults {
  double drop_probability = 0.0;       ///< in [0, 1]
  double duplicate_probability = 0.0;  ///< in [0, 1]; extra on-time copy
  std::size_t max_delay = 0;           ///< extra rounds, uniform in [0, max_delay]
};

/// A fully specified chaos execution.
struct Scenario {
  std::string name;        ///< free-form label (shows up in failure reports)
  std::uint64_t seed = 1;  ///< root of every random stream in the execution
  std::string problem = "mean";  ///< "mean" | "regression" | "block_regression"
  std::string filter = "cge";    ///< gradient-filter registry name
  std::size_t n = 6;
  std::size_t f = 1;
  std::size_t d = 2;
  std::size_t rounds = 60;
  double noise_sigma = 0.0;  ///< observation noise of the generated instance
  std::vector<FaultSpec> faults;
  ChannelFaults channel;

  /// Structural validation: n > 2f, f >= 1, agents in range and distinct
  /// across specs, windows well-formed, attack names known, probabilities
  /// in [0, 1], regression needs n - 2f >= d.  Throws PreconditionError.
  void validate() const;

  /// Agents with a Byzantine / crash spec, ascending.
  std::vector<std::size_t> byzantine_agents() const;
  std::vector<std::size_t> crash_agents() const;

  /// Distinct agents that are Byzantine or crash at some point (stragglers
  /// stay honest and do not count).
  std::size_t faulty_agent_count() const;

  /// Whether the execution stays within the paper's fault budget f.
  bool within_budget() const { return faulty_agent_count() <= f; }

  /// True when this scenario sits in the regime where exact convergence to
  /// the honest argmin is guaranteed (and asserted by Properties):
  /// noiseless mean / block-regression instances, a paper filter (cge /
  /// cwtm), faults within budget, enough redundancy headroom for the
  /// crash absences (n > 3f + #crash agents), and only mild asynchrony
  /// (bounded delay / staleness, no drops).  Everything outside this
  /// regime is held to graceful degradation only.
  bool guaranteed() const;

  /// Canonical JSON form (deterministic member order; round-trips through
  /// scenario_from_json bit-exactly).
  std::string to_json() const;
};

/// Parses a scenario serialized by to_json().  Unknown members are
/// rejected.  Throws PreconditionError on malformed input.
Scenario scenario_from_json(const std::string& text);

/// Attack names a Byzantine FaultSpec may use (the registry minus the
/// reply-schedule attacks dropout/switch, whose behaviour FaultSpec
/// windows express directly).
const std::vector<std::string>& scenario_attack_names();

}  // namespace redopt::chaos
