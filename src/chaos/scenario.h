// Declarative chaos scenarios: seedable, composable fault schedules.
//
// A Scenario is a complete, serializable description of one adversarial
// execution: the problem instance family, the gradient filter, and a set
// of per-agent fault windows (Byzantine behaviour, crash/recover,
// straggling) layered with channel faults (drop / duplicate / delay).
// Everything downstream of the scenario — instance data, initial
// estimate, attack randomness, channel draws — derives deterministically
// from its seed, so a scenario IS its execution: serialize it to JSON,
// replay it anywhere (tools/chaos-replay), get the same trajectory bit
// for bit.
//
// guaranteed() carves out the regime where the paper's theorems promise
// exact convergence; chaos::Properties asserts convergence there and only
// graceful degradation (bounded, finite) everywhere else.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace redopt::chaos {

/// One agent's fault behaviour over a window of rounds.  At most one spec
/// per agent: an agent is Byzantine, crashed, or straggling — composing
/// those on a single agent is modelled by the Byzantine spec alone, since
/// a Byzantine agent subsumes every other misbehaviour.
struct FaultSpec {
  enum class Kind {
    kByzantine,  ///< crafts attack replies during the window, honest outside
    kCrash,      ///< silent during the window (no reply), honest outside
    kStraggler,  ///< honest but replies with the gradient at x^{t - staleness}
  };

  Kind kind = Kind::kByzantine;
  std::size_t agent = 0;
  std::size_t from = 0;   ///< first faulty round
  std::size_t until = 0;  ///< first healthy round again; 0 = faulty to the end
  std::string attack = "gradient_reverse";  ///< Byzantine only: attack registry name
  double attack_param = 1.0;  ///< the attack's scalar knob (scale / z / c / aggression)
  std::size_t staleness = 1;  ///< straggler only: fixed lag s >= 1
};

/// Channel fault model applied to every reply, mirroring net::LinkFaults.
struct ChannelFaults {
  double drop_probability = 0.0;       ///< in [0, 1]
  double duplicate_probability = 0.0;  ///< in [0, 1]; extra on-time copy
  std::size_t max_delay = 0;           ///< extra rounds, uniform in [0, max_delay]
};

/// One elastic-membership transition.  An agent whose FIRST event is a
/// kJoin starts the run absent; one whose first event is a kLeave starts
/// present.  Events for one agent must alternate kinds on strictly
/// increasing rounds, so membership at round t is the initial state
/// folded through every event with round <= t.
struct MembershipEvent {
  enum class Kind {
    kJoin,   ///< agent (re)enters the live set at the start of this round
    kLeave,  ///< agent departs at the start of this round
  };

  Kind kind = Kind::kLeave;
  std::size_t agent = 0;
  std::size_t round = 1;  ///< in [1, rounds); round 0 membership is implicit
};

/// One streaming data arrival: `rows` fresh observations land at agent
/// `agent` at the start of round `round` and fold into its incremental
/// cost (rank-1 sufficient-statistic updates).  Only meaningful for the
/// "streaming_regression" problem family.
struct StreamEvent {
  std::size_t agent = 0;
  std::size_t round = 1;  ///< in [1, rounds)
  std::size_t rows = 1;   ///< observations arriving this round, >= 1
};

/// A fully specified chaos execution.
struct Scenario {
  std::string name;        ///< free-form label (shows up in failure reports)
  std::uint64_t seed = 1;  ///< root of every random stream in the execution
  std::string problem = "mean";  ///< "mean" | "regression" | "block_regression" | "streaming_regression"
  std::string filter = "cge";    ///< gradient-filter registry name
  std::size_t n = 6;
  std::size_t f = 1;
  std::size_t d = 2;
  std::size_t rounds = 60;
  double noise_sigma = 0.0;  ///< observation noise of the generated instance
  std::vector<FaultSpec> faults;
  ChannelFaults channel;
  std::vector<MembershipEvent> membership;  ///< sorted by (round, agent)
  std::vector<StreamEvent> stream;          ///< sorted by (round, agent)

  /// Structural validation: n > 2f, f >= 1, agents in range and distinct
  /// across specs, windows well-formed, attack names known, probabilities
  /// in [0, 1], regression needs n - 2f >= d; membership/stream events
  /// canonically sorted, in [1, rounds), alternating kinds per agent, at
  /// least one live member every round; stream events only on the
  /// "streaming_regression" family.  Throws PreconditionError.
  void validate() const;

  /// True when the scenario carries membership or stream events; elastic
  /// scenarios run through elastic::run_elastic / run_elastic_transport,
  /// not the fixed-membership executors.
  bool elastic() const { return !membership.empty() || !stream.empty(); }

  /// Membership at round 0, before any event fires.
  bool initially_member(std::size_t agent) const;

  /// Membership of `agent` during round `round` (events at round t fire
  /// before round t's exchange).
  bool member_at(std::size_t agent, std::size_t round) const;

  /// Live agents during `round`, ascending; and their count.
  std::vector<std::size_t> members_at(std::size_t round) const;
  std::size_t member_count_at(std::size_t round) const;

  /// The fault budget the coordinator can actually defend at `round`:
  /// the largest f' <= f with member_count_at(round) > 2 f'.  Shrinking
  /// membership forces f down (the filter is rebuilt with the derived
  /// budget); full membership keeps the declared f.
  std::size_t derived_f_at(std::size_t round) const;

  /// Whether round `round` retains the guaranteed-regime redundancy
  /// headroom: the derived budget still equals f and the live member
  /// count exceeds 3f plus the crash-spec agents alive that round.
  bool redundant_at(std::size_t round) const;

  /// redundant_at over every round of the schedule.
  bool redundant_throughout() const;

  /// Agents with a Byzantine / crash spec, ascending.
  std::vector<std::size_t> byzantine_agents() const;
  std::vector<std::size_t> crash_agents() const;

  /// Distinct agents that are Byzantine or crash at some point (stragglers
  /// stay honest and do not count).
  std::size_t faulty_agent_count() const;

  /// Whether the execution stays within the paper's fault budget f.
  bool within_budget() const { return faulty_agent_count() <= f; }

  /// True when this scenario sits in the regime where exact convergence to
  /// the honest argmin is guaranteed (and asserted by Properties):
  /// noiseless mean / block-regression instances, a paper filter (cge /
  /// cwtm), faults within budget, enough redundancy headroom for the
  /// crash absences (n > 3f + #crash agents), and only mild asynchrony
  /// (bounded delay / staleness, no drops).  Elastic scenarios must also
  /// keep redundant_at() true through every round of churn — a dip below
  /// the 2f-redundancy headroom demotes the run to graceful degradation.
  /// Everything outside this regime is held to graceful degradation only.
  bool guaranteed() const;

  /// Canonical JSON form (deterministic member order; round-trips through
  /// scenario_from_json bit-exactly).
  std::string to_json() const;
};

/// Parses a scenario serialized by to_json().  Unknown members are
/// rejected.  Throws PreconditionError on malformed input.
Scenario scenario_from_json(const std::string& text);

/// Attack names a Byzantine FaultSpec may use (the registry minus the
/// reply-schedule attacks dropout/switch, whose behaviour FaultSpec
/// windows express directly).
const std::vector<std::string>& scenario_attack_names();

}  // namespace redopt::chaos
