// Greedy scenario minimization.
//
// When a generated scenario violates a property, the raw instance is
// usually too big to reason about (a dozen agents, a hundred rounds,
// several composed faults).  shrink() reduces it to a minimal reproducer:
// it repeatedly tries simplifying transformations — drop a fault, still
// the churn, thin the stream, calm the channel, halve the rounds, remove
// an agent, weaken the attack — and
// keeps a transformation whenever the caller's predicate says the
// simplified scenario still fails.  The search is deterministic (fixed
// transformation order, first improvement wins, restart) and bounded by a
// run budget, so a shrink is itself reproducible.
#pragma once

#include <functional>

#include "chaos/scenario.h"

namespace redopt::chaos {

/// Returns true when the scenario still exhibits the failure being
/// minimized.  The predicate must be deterministic (run_scenario is).
using ScenarioPredicate = std::function<bool(const Scenario&)>;

struct ShrinkOptions {
  std::size_t max_runs = 400;  ///< predicate-call budget
  std::size_t min_rounds = 5;  ///< never shrink below this many rounds
};

struct ShrinkOutcome {
  Scenario scenario;           ///< the minimized failing scenario
  std::size_t runs = 0;        ///< predicate calls spent
  std::size_t improvements = 0;  ///< transformations that stuck
};

/// Minimizes @p failing under @p still_fails.  Requires
/// still_fails(failing) to hold; the returned scenario fails too (it is
/// @p failing itself when nothing simpler does).
ShrinkOutcome shrink(const Scenario& failing, const ScenarioPredicate& still_fails,
                     const ShrinkOptions& options = {});

}  // namespace redopt::chaos
