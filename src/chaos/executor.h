// Deterministic scenario execution.
//
// run_scenario() materializes a Scenario into a concrete adversarial DGD
// execution: it generates the problem instance from the scenario seed,
// runs the server round loop under the scenario's fault schedule and
// channel model, and reports the trajectory observables Properties
// asserts on.  The execution is bit-identical for every REDOPT_THREADS
// value (honest gradient fan-out uses runtime::parallel_for with
// per-slot writes; every random draw comes from a named fork of the
// scenario seed).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "attacks/attack.h"
#include "chaos/scenario.h"
#include "core/problem.h"
#include "data/streaming.h"
#include "filters/gradient_filter.h"
#include "linalg/vector.h"

namespace redopt::chaos {

/// The scenario's problem instance and honest reference, both derived
/// purely from the scenario (instance data from fork("problem"), the
/// reference from the agents no fault spec ever touches as Byzantine or
/// crashed, intersected with the final round's live membership).  Public
/// so transport sessions replay the exact instance the in-process
/// executor runs.
struct MaterializedScenario {
  core::MultiAgentProblem problem;
  linalg::Vector reference;
  /// "streaming_regression" only: mutable typed handles to the per-agent
  /// incremental costs (aliasing problem.costs).  The originals stay at
  /// their initial one-cycle state; elastic replicas copy them (carrying
  /// the stream rng) and absorb privately, so sharing stays safe.
  std::vector<std::shared_ptr<data::StreamingLeastSquaresCost>> streams;
};

MaterializedScenario materialize_scenario(const Scenario& scenario);

/// Maps a scenario's scalar attack knob onto the registry parameter the
/// named attack actually reads.
std::unique_ptr<attacks::Attack> make_scenario_attack(const std::string& name, double param);

/// Filters that output on the paper's *sum* scale take a coefficient that
/// shrinks with the survivor count; average-scale filters use the fixed
/// coefficient matched to the mu = gamma = 2 instance families.
double scenario_schedule_coefficient(const std::string& filter, std::size_t n, std::size_t f);

/// Observables of one scenario execution.
struct ScenarioResult {
  linalg::Vector estimate;   ///< final iterate
  linalg::Vector reference;  ///< argmin of the never-faulty agents' aggregate
  double initial_distance = 0.0;  ///< ||x^0 - reference||
  double final_distance = 0.0;    ///< ||x^T - reference||
  double max_distance = 0.0;      ///< max over recorded rounds
  bool nonfinite = false;         ///< any NaN/Inf coordinate seen
  std::size_t nonfinite_round = 0;  ///< first offending round (when nonfinite)

  // Fault-injection counters (what the schedule actually did).
  std::uint64_t byzantine_replies = 0;  ///< attack-crafted replies sent
  std::uint64_t crashed_absences = 0;   ///< agent-rounds spent crashed
  std::uint64_t stale_replies = 0;      ///< straggler replies (stale estimate)
  std::uint64_t dropped_replies = 0;
  std::uint64_t delayed_replies = 0;
  std::uint64_t duplicated_replies = 0;
  std::uint64_t superseded_replies = 0;  ///< arrivals replaced by a fresher one
  std::uint64_t filter_rebuilds = 0;  ///< rounds aggregated with a reduced (n, f)
};

/// Execution knobs that are not part of the scenario itself.
struct ExecutorOptions {
  /// Overrides gradient-filter construction (test hook: the broken-filter
  /// self-test injects a sign-flipped CGE here).  Default: filters registry.
  std::function<filters::FilterPtr(const std::string& name, std::size_t n, std::size_t f)>
      filter_factory;
};

/// Runs the scenario (validating it first).  Deterministic in the
/// scenario alone: same scenario, same result, any thread count.
ScenarioResult run_scenario(const Scenario& scenario, const ExecutorOptions& options = {});

/// Runs the constructive exact algorithm on the scenario's instance, with
/// every Byzantine agent submitting an adversarially displaced cost, and
/// returns the distance from the algorithm's output to the honest
/// reference.  Requires a "mean" or "block_regression" scenario with
/// small n (the algorithm enumerates subsets).
double exact_algorithm_distance(const Scenario& scenario);

}  // namespace redopt::chaos
