// Seeded scenario sampling from a constraint spec.
//
// The Generator draws random-but-reproducible Scenarios: same spec + same
// seed = same scenario sequence, on every platform.  It deliberately
// samples *both* regimes — scenarios inside the guaranteed-convergence
// envelope (noiseless paper instances, faults within budget) and
// scenarios that violate it (over-budget faults, noise, lossy channels) —
// so the property suite exercises the exact-convergence claim and the
// graceful-degradation claim side by side.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/scenario.h"
#include "rng/rng.h"

namespace redopt::chaos {

/// Constraint spec the generator samples within.
struct GeneratorSpec {
  std::size_t min_n = 4;
  std::size_t max_n = 16;
  std::size_t max_f = 4;
  std::size_t min_d = 1;
  std::size_t max_d = 4;
  std::size_t min_rounds = 40;
  std::size_t max_rounds = 120;
  std::vector<std::string> filters = {"cge", "cwtm", "krum", "mean"};
  std::vector<std::string> problems = {"mean", "block_regression", "regression"};
  /// Probability of sampling a degradation-regime scenario (over-budget
  /// faults, observation noise, or a lossy channel); the rest land in the
  /// guaranteed-convergence regime.
  double violate_probability = 0.4;
  /// Probability of layering a membership-churn schedule (joins / leaves /
  /// rejoins on fault-free agents) onto the drawn scenario.  Elastic
  /// draws run through elastic::run_elastic.  The default 0.0 consumes no
  /// rng draws, so historical scenario sequences are byte-stable.
  double elastic_probability = 0.0;
};

class Generator {
 public:
  explicit Generator(GeneratorSpec spec, std::uint64_t seed);

  /// Draws the next scenario (validated before returning).
  Scenario next();

  /// Scenarios drawn so far.
  std::size_t count() const { return count_; }

 private:
  Scenario next_guaranteed();
  Scenario next_degraded();
  void add_churn(Scenario& s);

  GeneratorSpec spec_;
  rng::Rng rng_;
  std::size_t count_ = 0;
};

}  // namespace redopt::chaos
