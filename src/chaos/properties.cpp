#include "chaos/properties.h"

#include <cmath>
#include <sstream>

namespace redopt::chaos {

std::string PropertyReport::summary() const {
  if (violations.empty()) return "ok";
  std::ostringstream os;
  for (std::size_t k = 0; k < violations.size(); ++k) {
    if (k > 0) os << "; ";
    os << violations[k];
  }
  return os.str();
}

PropertyReport check_properties(const Scenario& scenario, const ScenarioResult& result,
                                const PropertyOptions& options) {
  PropertyReport report;
  auto violation = [&](const std::string& what) {
    report.ok = false;
    report.violations.push_back(what);
  };

  if (result.nonfinite) {
    violation("non-finite iterate at round " + std::to_string(result.nonfinite_round));
  }

  // Graceful degradation: the projection confines every iterate to the
  // [-10, 10]^d box, so no iterate can be farther from the reference than
  // the box diameter allows.  A larger distance means the executor let an
  // unprojected (or corrupted) iterate through.
  const double escape_bound =
      result.reference.norm() + 10.0 * std::sqrt(static_cast<double>(scenario.d)) + 1e-6;
  if (!result.nonfinite && result.max_distance > escape_bound) {
    violation("iterates escaped the constraint set (max distance " +
              std::to_string(result.max_distance) + " > bound " +
              std::to_string(escape_bound) + ")");
  }

  if (scenario.guaranteed()) {
    const double bound =
        std::max(options.rel_tolerance * result.initial_distance, options.abs_tolerance);
    if (!(result.final_distance <= bound)) {
      violation("guaranteed regime did not converge: final distance " +
                std::to_string(result.final_distance) + " > bound " + std::to_string(bound) +
                " (initial " + std::to_string(result.initial_distance) + ")");
    }
  }

  return report;
}

bool bit_identical(const ScenarioResult& a, const ScenarioResult& b) {
  auto same_double = [](double x, double y) {
    if (std::isnan(x) || std::isnan(y)) return std::isnan(x) && std::isnan(y);
    return x == y;
  };
  if (!(a.estimate == b.estimate)) return false;
  if (!same_double(a.initial_distance, b.initial_distance)) return false;
  if (!same_double(a.final_distance, b.final_distance)) return false;
  if (!same_double(a.max_distance, b.max_distance)) return false;
  if (a.nonfinite != b.nonfinite || a.nonfinite_round != b.nonfinite_round) return false;
  return a.byzantine_replies == b.byzantine_replies &&
         a.crashed_absences == b.crashed_absences && a.stale_replies == b.stale_replies &&
         a.dropped_replies == b.dropped_replies && a.delayed_replies == b.delayed_replies &&
         a.duplicated_replies == b.duplicated_replies &&
         a.superseded_replies == b.superseded_replies &&
         a.filter_rebuilds == b.filter_rebuilds;
}

}  // namespace redopt::chaos
