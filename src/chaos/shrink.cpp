#include "chaos/shrink.h"

#include <algorithm>

#include "util/error.h"

namespace redopt::chaos {

namespace {

/// Re-fits every fault window into [0, rounds) after a round reduction.
/// Elastic events past the new horizon are dropped outright: per agent
/// the events sit on increasing rounds, so removing the out-of-range
/// suffix keeps the alternation (and the canonical sort) valid.
void clamp_windows(Scenario& s) {
  for (FaultSpec& spec : s.faults) {
    const std::size_t lo = spec.kind == FaultSpec::Kind::kCrash ? 1 : 0;
    spec.from = std::max(lo, std::min(spec.from, s.rounds - 1));
    if (spec.until != 0 && (spec.until >= s.rounds || spec.until <= spec.from)) spec.until = 0;
  }
  std::erase_if(s.membership,
                [&](const MembershipEvent& event) { return event.round >= s.rounds; });
  std::erase_if(s.stream, [&](const StreamEvent& event) { return event.round >= s.rounds; });
}

bool is_valid(const Scenario& s) {
  try {
    s.validate();
  } catch (const PreconditionError&) {
    return false;
  }
  return true;
}

/// All one-step simplifications of @p s, most aggressive first.  The
/// shrink loop keeps the first one that still fails, so ordering is the
/// search heuristic: structural deletions before numeric halvings before
/// cosmetic weakenings.
std::vector<Scenario> candidates(const Scenario& s, std::size_t min_rounds) {
  std::vector<Scenario> out;

  // Drop each fault spec.
  for (std::size_t k = 0; k < s.faults.size(); ++k) {
    Scenario c = s;
    c.faults.erase(c.faults.begin() + static_cast<std::ptrdiff_t>(k));
    out.push_back(std::move(c));
  }

  // Still the churn: drop one agent's whole membership history (all of
  // its events at once — per-agent alternation can't survive a partial
  // cut), then just its trailing event (e.g. a rejoin).
  {
    std::vector<bool> churned(s.n, false);
    for (const MembershipEvent& event : s.membership) churned[event.agent] = true;
    for (std::size_t a = 0; a < s.n; ++a) {
      if (!churned[a]) continue;
      Scenario c = s;
      std::erase_if(c.membership,
                    [&](const MembershipEvent& event) { return event.agent == a; });
      out.push_back(std::move(c));
      Scenario tail = s;
      for (std::size_t k = tail.membership.size(); k-- > 0;) {
        if (tail.membership[k].agent != a) continue;
        tail.membership.erase(tail.membership.begin() + static_cast<std::ptrdiff_t>(k));
        out.push_back(std::move(tail));
        break;
      }
    }
  }

  // Thin the stream: drop each arrival, then halve its row count.
  for (std::size_t k = 0; k < s.stream.size(); ++k) {
    Scenario c = s;
    c.stream.erase(c.stream.begin() + static_cast<std::ptrdiff_t>(k));
    out.push_back(std::move(c));
    if (s.stream[k].rows > 1) {
      Scenario h = s;
      h.stream[k].rows = s.stream[k].rows / 2;
      out.push_back(std::move(h));
    }
  }

  // Calm the channel, one knob at a time.
  if (s.channel.drop_probability > 0.0) {
    Scenario c = s;
    c.channel.drop_probability = 0.0;
    out.push_back(std::move(c));
  }
  if (s.channel.duplicate_probability > 0.0) {
    Scenario c = s;
    c.channel.duplicate_probability = 0.0;
    out.push_back(std::move(c));
  }
  if (s.channel.max_delay > 0) {
    Scenario c = s;
    c.channel.max_delay = 0;
    out.push_back(std::move(c));
  }

  // Quiet the instance noise.
  if (s.noise_sigma > 0.0) {
    Scenario c = s;
    c.noise_sigma = 0.0;
    out.push_back(std::move(c));
  }

  // Shorten the run: straight to the floor, then by halving.
  if (s.rounds > min_rounds) {
    Scenario c = s;
    c.rounds = min_rounds;
    clamp_windows(c);
    out.push_back(std::move(c));
  }
  if (s.rounds / 2 >= min_rounds && s.rounds / 2 < s.rounds) {
    Scenario c = s;
    c.rounds = s.rounds / 2;
    clamp_windows(c);
    out.push_back(std::move(c));
  }

  // Remove the highest agent nothing references — no fault spec, no
  // membership event, no stream arrival — renumbering the ones above it
  // (decrementing distinct agent ids preserves the (round, agent) sort).
  {
    std::vector<bool> referenced(s.n, false);
    for (const FaultSpec& spec : s.faults) referenced[spec.agent] = true;
    for (const MembershipEvent& event : s.membership) referenced[event.agent] = true;
    for (const StreamEvent& event : s.stream) referenced[event.agent] = true;
    for (std::size_t a = s.n; a-- > 0;) {
      if (referenced[a]) continue;
      if (s.n - 1 <= 2 * s.f) break;
      Scenario c = s;
      c.n = s.n - 1;
      for (FaultSpec& spec : c.faults) {
        if (spec.agent > a) --spec.agent;
      }
      for (MembershipEvent& event : c.membership) {
        if (event.agent > a) --event.agent;
      }
      for (StreamEvent& event : c.stream) {
        if (event.agent > a) --event.agent;
      }
      out.push_back(std::move(c));
      break;
    }
  }

  // Smaller fault budget / dimension.
  if (s.f > 1) {
    Scenario c = s;
    c.f = s.f - 1;
    out.push_back(std::move(c));
  }
  if (s.d > 1) {
    Scenario c = s;
    c.d = s.d - 1;
    out.push_back(std::move(c));
  }

  // Per-spec weakenings: earlier windows, less staleness, the simplest
  // attack.
  for (std::size_t k = 0; k < s.faults.size(); ++k) {
    const FaultSpec& spec = s.faults[k];
    const std::size_t lo = spec.kind == FaultSpec::Kind::kCrash ? 1 : 0;
    if (spec.from / 2 >= lo && spec.from / 2 < spec.from) {
      Scenario c = s;
      c.faults[k].from = spec.from / 2;
      out.push_back(std::move(c));
    }
    if (spec.kind == FaultSpec::Kind::kStraggler && spec.staleness > 1) {
      Scenario c = s;
      c.faults[k].staleness = spec.staleness / 2;
      out.push_back(std::move(c));
    }
    if (spec.kind == FaultSpec::Kind::kByzantine &&
        (spec.attack != "gradient_reverse" || spec.attack_param != 1.0)) {
      Scenario c = s;
      c.faults[k].attack = "gradient_reverse";
      c.faults[k].attack_param = 1.0;
      out.push_back(std::move(c));
    }
  }

  return out;
}

}  // namespace

ShrinkOutcome shrink(const Scenario& failing, const ScenarioPredicate& still_fails,
                     const ShrinkOptions& options) {
  REDOPT_REQUIRE(still_fails != nullptr, "shrink: needs a predicate");
  REDOPT_REQUIRE(options.min_rounds >= 1, "shrink: min_rounds must be >= 1");
  REDOPT_REQUIRE(is_valid(failing), "shrink: the input scenario is invalid");
  REDOPT_REQUIRE(still_fails(failing), "shrink: the input scenario does not fail the predicate");

  ShrinkOutcome out;
  out.scenario = failing;
  out.runs = 1;  // the input check above

  bool improved = true;
  while (improved && out.runs < options.max_runs) {
    improved = false;
    for (Scenario& candidate : candidates(out.scenario, options.min_rounds)) {
      if (out.runs >= options.max_runs) break;
      if (!is_valid(candidate)) continue;
      ++out.runs;
      if (still_fails(candidate)) {
        out.scenario = std::move(candidate);
        ++out.improvements;
        improved = true;
        break;
      }
    }
  }
  return out;
}

}  // namespace redopt::chaos
