#include "chaos/executor.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <utility>

#include "attacks/registry.h"
#include "core/exact_algorithm.h"
#include "core/quadratic_cost.h"
#include "data/mean_estimation.h"
#include "data/regression.h"
#include "dgd/projection.h"
#include "dgd/schedule.h"
#include "filters/registry.h"
#include "rng/rng.h"
#include "runtime/runtime.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/error.h"

namespace redopt::chaos {

namespace {

bool in_window(const FaultSpec& spec, std::size_t t) {
  if (t < spec.from) return false;
  return spec.until == 0 || t < spec.until;
}

bool all_finite(const linalg::Vector& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// One reply in flight: the gradient an agent emitted at a given round.
struct Reply {
  std::size_t agent = 0;
  std::size_t emitted = 0;  ///< round the payload was computed in
  linalg::Vector payload;
};

}  // namespace

std::unique_ptr<attacks::Attack> make_scenario_attack(const std::string& name, double param) {
  attacks::AttackParams p;
  if (name == "gradient_reverse") p.scale = param;
  if (name == "random") p.sigma = param;
  if (name == "large_norm") p.magnitude = param;
  if (name == "lie") p.z = param;
  if (name == "ipm") p.c = param;
  if (name == "camouflage" || name == "orthogonal_drift") p.aggression = param;
  if (name == "poisoned_cost") p.noise = param;
  if (name == "mimic") p.mimic_target = static_cast<std::size_t>(param);
  return attacks::make_attack(name, p);
}

double scenario_schedule_coefficient(const std::string& filter, std::size_t n, std::size_t f) {
  if (filter == "cge" || filter == "sum") return 1.0 / (2.0 * static_cast<double>(n - f));
  return 0.5;
}

MaterializedScenario materialize_scenario(const Scenario& s) {
  rng::Rng problem_rng = rng::Rng(s.seed).fork("problem");

  std::vector<bool> faulty(s.n, false);
  for (const FaultSpec& spec : s.faults) {
    if (spec.kind != FaultSpec::Kind::kStraggler) faulty[spec.agent] = true;
  }
  std::vector<std::size_t> never_faulty;
  for (std::size_t i = 0; i < s.n; ++i) {
    if (!faulty[i]) never_faulty.push_back(i);
  }
  REDOPT_REQUIRE(!never_faulty.empty(), "scenario: every agent is faulty");

  // Elastic scenarios anchor the reference on the agents that are both
  // never faulty and still live in the final round — the cohort whose
  // aggregate the trainer can actually serve once churn settles.  An
  // empty intersection falls back to the never-faulty set.
  std::vector<std::size_t> reference_agents;
  for (std::size_t i : never_faulty) {
    if (s.member_at(i, s.rounds - 1)) reference_agents.push_back(i);
  }
  if (reference_agents.empty()) reference_agents = never_faulty;

  MaterializedScenario out;
  if (s.problem == "mean") {
    linalg::Vector mu(s.d);
    for (auto& v : mu) v = problem_rng.uniform(-3.0, 3.0);
    auto instance = data::make_mean_estimation(mu, s.noise_sigma, s.n, s.f, problem_rng);
    out.reference = data::honest_sample_mean(instance, reference_agents);
    out.problem = std::move(instance.problem);
  } else if (s.problem == "block_regression") {
    linalg::Vector x_star(s.d);
    for (auto& v : x_star) v = problem_rng.uniform(-3.0, 3.0);
    auto instance =
        data::make_orthonormal_regression(s.n, s.d, s.f, s.noise_sigma, x_star, problem_rng);
    out.reference = data::block_regression_argmin(instance, reference_agents);
    out.problem = std::move(instance.problem);
  } else if (s.problem == "streaming_regression") {
    linalg::Vector x_star(s.d);
    for (auto& v : x_star) v = problem_rng.uniform(-3.0, 3.0);
    out.problem.f = s.f;
    for (std::size_t i = 0; i < s.n; ++i) {
      auto cost = std::make_shared<data::StreamingLeastSquaresCost>(
          s.d, x_star, s.noise_sigma, problem_rng.fork("stream-agent-" + std::to_string(i)));
      out.streams.push_back(cost);
      out.problem.costs.push_back(cost);
    }
    out.problem.validate();
    // Reference: the honest aggregate argmin over the FINAL dataset —
    // clone each reference agent's stream (rng state included) and absorb
    // its entire arrival schedule, exactly as its replica will.
    std::vector<std::shared_ptr<const data::StreamingLeastSquaresCost>> final_costs;
    for (std::size_t i : reference_agents) {
      auto final_cost = std::make_shared<data::StreamingLeastSquaresCost>(*out.streams[i]);
      for (const StreamEvent& event : s.stream) {
        if (event.agent == i) final_cost->absorb(event.rows);
      }
      final_costs.push_back(std::move(final_cost));
    }
    out.reference = data::streaming_argmin(final_costs);
  } else {
    REDOPT_REQUIRE(s.problem == "regression", "scenario: unknown problem family: " + s.problem);
    linalg::Vector x_star(s.d);
    for (auto& v : x_star) v = problem_rng.uniform(-3.0, 3.0);
    const auto matrix = data::redundant_matrix(s.n, s.d, s.f, problem_rng);
    auto instance = data::make_regression(matrix, x_star, s.noise_sigma, s.f, problem_rng);
    try {
      out.reference = data::regression_argmin(instance, reference_agents);
    } catch (const PreconditionError&) {
      // Over-budget scenarios can leave fewer than n - 2f honest rows, so
      // the honest argmin need not be unique; anchor on the planted
      // solution instead (identical to x_H whenever noise_sigma == 0).
      out.reference = x_star;
    }
    out.problem = std::move(instance.problem);
  }
  return out;
}

ScenarioResult run_scenario(const Scenario& s, const ExecutorOptions& options) {
  s.validate();
  REDOPT_REQUIRE(!s.elastic(),
                 "scenario carries membership/stream events; run it through "
                 "elastic::run_elastic (chaos-replay routes there automatically)");

  // Telemetry handles first: registration must happen in a serial context.
  auto& reg = telemetry::registry();
  const auto metric_scenarios = reg.counter("chaos.scenarios");
  const auto metric_rounds = reg.counter("chaos.rounds");
  const auto metric_byzantine = reg.counter("chaos.byzantine_replies");
  const auto metric_crashed = reg.counter("chaos.crashed_absences");
  const auto metric_stale = reg.counter("chaos.stale_replies");
  const auto metric_dropped = reg.counter("chaos.dropped_replies");
  const auto metric_delayed = reg.counter("chaos.delayed_replies");
  const auto metric_duplicated = reg.counter("chaos.duplicated_replies");

  telemetry::ScopedSpan scenario_span("chaos.scenario");
  scenario_span.attr("n", static_cast<std::uint64_t>(s.n))
      .attr("f", static_cast<std::uint64_t>(s.f))
      .attr("rounds", static_cast<std::uint64_t>(s.rounds));

  const MaterializedScenario built = materialize_scenario(s);
  const auto& problem = built.problem;
  const std::size_t n = s.n;
  const std::size_t d = s.d;

  // Per-agent fault lookup (index by agent; at most one spec per agent).
  std::vector<const FaultSpec*> spec_of(n, nullptr);
  for (const FaultSpec& spec : s.faults) spec_of[spec.agent] = &spec;

  const rng::Rng root(s.seed);
  rng::Rng channel_rng = root.fork("channel");
  std::vector<rng::Rng> attack_rngs;
  attack_rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    attack_rngs.push_back(root.fork("byzantine-agent-" + std::to_string(i)));
  }
  std::vector<std::unique_ptr<attacks::Attack>> attack_of(n);
  for (const FaultSpec& spec : s.faults) {
    if (spec.kind == FaultSpec::Kind::kByzantine) {
      attack_of[spec.agent] = make_scenario_attack(spec.attack, spec.attack_param);
    }
  }

  auto factory = options.filter_factory;
  if (!factory) {
    factory = [](const std::string& name, std::size_t fn, std::size_t ff) {
      filters::FilterParams fp;
      fp.n = fn;
      fp.f = ff;
      return filters::FilterPtr(filters::make_filter(name, fp));
    };
  }
  // Round-local filters, cached by the (reply count, fault budget) they
  // were built for.  std::map keeps the cache iteration deterministic.
  std::map<std::pair<std::size_t, std::size_t>, filters::FilterPtr> filter_cache;
  auto filter_for = [&](std::size_t n_round,
                        std::size_t* f_used) -> const filters::FilterPtr& {
    std::size_t f_try = std::min(s.f, n_round == 0 ? std::size_t{0} : n_round - 1);
    while (true) {
      const auto key = std::make_pair(n_round, f_try);
      auto it = filter_cache.find(key);
      if (it != filter_cache.end()) {
        *f_used = f_try;
        return it->second;
      }
      try {
        auto made = factory(s.filter, n_round, f_try);
        *f_used = f_try;
        return filter_cache.emplace(key, std::move(made)).first->second;
      } catch (const PreconditionError&) {
        if (f_try == 0) break;
        --f_try;
      }
    }
    // Even f = 0 failed (e.g. krum with too few replies): degrade to the
    // plain average so the execution stays total.
    const auto key = std::make_pair(n_round, std::size_t{0});
    auto it = filter_cache.find(key);
    *f_used = 0;
    if (it != filter_cache.end()) return it->second;
    filters::FilterParams fp;
    fp.n = n_round;
    fp.f = 0;
    return filter_cache.emplace(key, filters::make_filter("mean", fp)).first->second;
  };

  const dgd::HarmonicSchedule schedule(scenario_schedule_coefficient(s.filter, n, s.f));
  const dgd::BoxProjection projection = dgd::BoxProjection::cube(d, 10.0);

  rng::Rng x0_rng = root.fork("x0");
  linalg::Vector x(d);
  for (auto& v : x) v = x0_rng.uniform(-5.0, 5.0);
  x = projection.project(x);

  ScenarioResult result;
  result.reference = built.reference;
  result.initial_distance = linalg::distance(x, built.reference);
  result.max_distance = result.initial_distance;

  // Estimate history for stragglers: history[s] is x^{t-s} (clamped).
  std::size_t max_staleness = 0;
  for (const FaultSpec& spec : s.faults) {
    if (spec.kind == FaultSpec::Kind::kStraggler) {
      max_staleness = std::max(max_staleness, spec.staleness);
    }
  }
  std::deque<linalg::Vector> history;
  history.push_front(x);

  // Replies delayed by the channel, keyed by their delivery round.
  std::map<std::size_t, std::vector<Reply>> pending;

  std::vector<linalg::Vector> payloads(n);
  std::vector<char> emits(n, 0);
  for (std::size_t t = 0; t < s.rounds; ++t) {
    // The span opens and closes in this serial context; the parallel
    // fan-outs inside the round never touch the span log.
    telemetry::ScopedSpan round_span("chaos.round");
    round_span.attr("t", static_cast<std::uint64_t>(t));
    auto note = [&](const char* name, std::size_t agent) {
      telemetry::span_instant(name, {{"agent", telemetry::Value(static_cast<std::uint64_t>(agent))},
                                     {"t", telemetry::Value(static_cast<std::uint64_t>(t))}});
    };
    // --- Emission: every non-crashed agent computes its reply. ---
    for (std::size_t i = 0; i < n; ++i) {
      const FaultSpec* spec = spec_of[i];
      emits[i] = !(spec != nullptr && spec->kind == FaultSpec::Kind::kCrash && in_window(*spec, t));
      if (!emits[i]) {
        ++result.crashed_absences;
        metric_crashed.inc();
        note("chaos.crashed", i);
      }
    }
    // Honest payloads (and the Byzantine agents' would-be-honest
    // gradients) fan out across the runtime; each index writes only its
    // own slot, so the result is thread-count independent.
    runtime::parallel_for(0, n, [&](std::size_t i) {
      if (!emits[i]) return;
      const FaultSpec* spec = spec_of[i];
      std::size_t staleness = 0;
      if (spec != nullptr && spec->kind == FaultSpec::Kind::kStraggler && in_window(*spec, t)) {
        staleness = std::min(spec->staleness, history.size() - 1);
      }
      // Byzantine agents are never stale: the attack sees the freshest
      // state (worst case for the server).
      if (spec != nullptr && spec->kind == FaultSpec::Kind::kByzantine && in_window(*spec, t)) {
        staleness = 0;
      }
      payloads[i] = problem.costs[i]->gradient(history[staleness]);
    });
    for (std::size_t i = 0; i < n; ++i) {
      if (!emits[i]) continue;
      const FaultSpec* spec = spec_of[i];
      if (spec != nullptr && spec->kind == FaultSpec::Kind::kStraggler && in_window(*spec, t) &&
          history.size() > 1) {
        ++result.stale_replies;
        metric_stale.inc();
      }
    }

    // What the adversary observes: the replies of the agents that are not
    // Byzantine this execution (stale where straggling).
    std::vector<linalg::Vector> observed;
    observed.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const FaultSpec* spec = spec_of[i];
      if (spec != nullptr && spec->kind == FaultSpec::Kind::kByzantine) continue;
      if (!emits[i]) continue;
      observed.push_back(payloads[i]);
    }

    for (std::size_t i = 0; i < n; ++i) {
      const FaultSpec* spec = spec_of[i];
      if (spec == nullptr || spec->kind != FaultSpec::Kind::kByzantine || !in_window(*spec, t)) {
        continue;
      }
      const linalg::Vector true_gradient = payloads[i];
      const std::vector<linalg::Vector>* seen = observed.empty() ? nullptr : &observed;
      const std::vector<linalg::Vector> fallback{true_gradient};
      attacks::AttackContext ctx;
      ctx.iteration = t;
      ctx.agent_id = i;
      ctx.n = n;
      ctx.f = s.f;
      ctx.estimate = &x;
      ctx.honest_gradient = &true_gradient;
      ctx.honest_gradients = seen != nullptr ? seen : &fallback;
      ctx.rng = &attack_rngs[i];
      payloads[i] = attack_of[i]->craft(ctx);
      REDOPT_REQUIRE(payloads[i].size() == d, "attack crafted a wrong-dimension vector");
      ++result.byzantine_replies;
      metric_byzantine.inc();
    }

    // --- Channel: drop / duplicate / delay each emitted reply, draws in
    // agent order from the dedicated channel stream. ---
    std::vector<Reply> arrivals;
    if (auto it = pending.find(t); it != pending.end()) {
      arrivals = std::move(it->second);
      pending.erase(it);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!emits[i]) continue;
      Reply reply{i, t, payloads[i]};
      if (s.channel.drop_probability > 0.0 &&
          channel_rng.uniform() < s.channel.drop_probability) {
        ++result.dropped_replies;
        metric_dropped.inc();
        note("chaos.dropped", i);
        continue;
      }
      if (s.channel.duplicate_probability > 0.0 &&
          channel_rng.uniform() < s.channel.duplicate_probability) {
        ++result.duplicated_replies;
        metric_duplicated.inc();
        note("chaos.duplicated", i);
        arrivals.push_back(reply);  // the extra copy lands on time
      }
      if (s.channel.max_delay > 0) {
        const auto delay = static_cast<std::size_t>(
            channel_rng.uniform_int(0, static_cast<std::int64_t>(s.channel.max_delay)));
        if (delay > 0) {
          ++result.delayed_replies;
          metric_delayed.inc();
          note("chaos.delayed", i);
          pending[t + delay].push_back(std::move(reply));
          continue;
        }
      }
      arrivals.push_back(std::move(reply));
    }

    // --- Receive: the server keeps the freshest reply per agent this
    // round (sequence-number dedup: a stale or duplicate arrival never
    // replaces a fresher one). ---
    std::map<std::size_t, Reply> inbox;
    for (Reply& reply : arrivals) {
      auto [it, inserted] = inbox.try_emplace(reply.agent, std::move(reply));
      if (inserted) continue;
      if (reply.emitted > it->second.emitted) {
        it->second = std::move(reply);
      }
      ++result.superseded_replies;
    }

    // --- Aggregate and step. ---
    metric_rounds.inc();
    if (!inbox.empty()) {
      std::vector<linalg::Vector> received;
      received.reserve(inbox.size());
      for (auto& [agent, reply] : inbox) {
        (void)agent;
        received.push_back(std::move(reply.payload));
      }
      std::size_t f_used = 0;
      const filters::FilterPtr& filter = filter_for(received.size(), &f_used);
      if (received.size() != n || f_used != s.f) ++result.filter_rebuilds;
      const linalg::Vector direction = filter->apply(received);
      x = projection.project(x - direction * schedule.step(t));
    }
    history.push_front(x);
    while (history.size() > max_staleness + 1) history.pop_back();

    if (!all_finite(x)) {
      result.nonfinite = true;
      result.nonfinite_round = t;
      break;
    }
    result.max_distance = std::max(result.max_distance, linalg::distance(x, built.reference));
  }

  metric_scenarios.inc();
  result.estimate = x;
  result.final_distance =
      result.nonfinite ? std::numeric_limits<double>::infinity()
                       : linalg::distance(x, built.reference);
  return result;
}

double exact_algorithm_distance(const Scenario& s) {
  s.validate();
  REDOPT_REQUIRE(s.problem == "mean" || s.problem == "block_regression",
                 "exact-algorithm check supports mean / block_regression scenarios");
  REDOPT_REQUIRE(s.n <= 12, "exact-algorithm check enumerates subsets; keep n <= 12");

  const MaterializedScenario built = materialize_scenario(s);
  const rng::Rng root(s.seed);

  // Every faulty agent (Byzantine or crashed) submits an adversarially
  // displaced quadratic in place of its true cost.
  std::vector<core::CostPtr> received = built.problem.costs;
  for (const FaultSpec& spec : s.faults) {
    if (spec.kind == FaultSpec::Kind::kStraggler) continue;
    rng::Rng agent_rng = root.fork("byzantine-agent-" + std::to_string(spec.agent));
    linalg::Vector center(s.d);
    for (auto& v : center) v = agent_rng.uniform(-8.0, 8.0);
    received[spec.agent] =
        std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(center));
  }

  const auto outcome = core::run_exact_algorithm(received, s.f);
  return linalg::distance(outcome.output, built.reference);
}

}  // namespace redopt::chaos
