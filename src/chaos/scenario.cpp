#include "chaos/scenario.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "util/error.h"
#include "util/json.h"

namespace redopt::chaos {

namespace {

const char* kind_name(FaultSpec::Kind kind) {
  switch (kind) {
    case FaultSpec::Kind::kByzantine:
      return "byzantine";
    case FaultSpec::Kind::kCrash:
      return "crash";
    case FaultSpec::Kind::kStraggler:
      return "straggler";
  }
  return "byzantine";  // unreachable
}

FaultSpec::Kind kind_from_name(const std::string& name) {
  if (name == "byzantine") return FaultSpec::Kind::kByzantine;
  if (name == "crash") return FaultSpec::Kind::kCrash;
  if (name == "straggler") return FaultSpec::Kind::kStraggler;
  REDOPT_REQUIRE(false, "scenario: unknown fault kind: " + name);
  return FaultSpec::Kind::kByzantine;  // unreachable
}

bool known_problem(const std::string& p) {
  return p == "mean" || p == "regression" || p == "block_regression" ||
         p == "streaming_regression";
}

const char* membership_kind_name(MembershipEvent::Kind kind) {
  return kind == MembershipEvent::Kind::kJoin ? "join" : "leave";
}

MembershipEvent::Kind membership_kind_from_name(const std::string& name) {
  if (name == "join") return MembershipEvent::Kind::kJoin;
  if (name == "leave") return MembershipEvent::Kind::kLeave;
  REDOPT_REQUIRE(false, "scenario: unknown membership kind: " + name);
  return MembershipEvent::Kind::kLeave;  // unreachable
}

/// Caps the total streamed rows a parsed scenario may demand, so a fuzzed
/// document cannot turn replay into an unbounded absorb loop.
constexpr std::size_t kMaxStreamRows = 1 << 16;

}  // namespace

const std::vector<std::string>& scenario_attack_names() {
  static const std::vector<std::string> names = {
      "gradient_reverse", "random",     "zero",  "large_norm",       "lie",
      "ipm",              "camouflage", "orthogonal_drift", "poisoned_cost", "mimic"};
  return names;
}

void Scenario::validate() const {
  REDOPT_REQUIRE(n >= 1 && d >= 1 && rounds >= 1, "scenario: n, d, rounds must be positive");
  REDOPT_REQUIRE(f >= 1, "scenario: fault budget f must be >= 1");
  REDOPT_REQUIRE(n > 2 * f, "scenario: needs n > 2f");
  REDOPT_REQUIRE(known_problem(problem), "scenario: unknown problem family: " + problem);
  REDOPT_REQUIRE(problem != "regression" || n - 2 * f >= d,
                 "scenario: regression instances need n - 2f >= d");
  REDOPT_REQUIRE(noise_sigma >= 0.0, "scenario: noise_sigma must be non-negative");
  REDOPT_REQUIRE(channel.drop_probability >= 0.0 && channel.drop_probability <= 1.0,
                 "scenario: drop probability must lie in [0, 1]");
  REDOPT_REQUIRE(channel.duplicate_probability >= 0.0 && channel.duplicate_probability <= 1.0,
                 "scenario: duplicate probability must lie in [0, 1]");

  std::set<std::size_t> seen;
  const auto& attacks = scenario_attack_names();
  for (const FaultSpec& spec : faults) {
    REDOPT_REQUIRE(spec.agent < n, "scenario: fault spec names an unknown agent");
    REDOPT_REQUIRE(seen.insert(spec.agent).second,
                   "scenario: at most one fault spec per agent");
    REDOPT_REQUIRE(spec.until == 0 || spec.from < spec.until,
                   "scenario: fault window must be non-empty (from < until)");
    REDOPT_REQUIRE(spec.from < rounds, "scenario: fault window starts past the last round");
    if (spec.kind == FaultSpec::Kind::kByzantine) {
      REDOPT_REQUIRE(
          std::find(attacks.begin(), attacks.end(), spec.attack) != attacks.end(),
          "scenario: unknown or unsupported attack: " + spec.attack);
      // mimic's knob is a rank, where 0 is meaningful; every other knob is
      // a positive scale factor.
      REDOPT_REQUIRE(spec.attack_param > 0.0 || (spec.attack == "mimic" && spec.attack_param >= 0.0),
                     "scenario: attack_param must be positive");
    }
    if (spec.kind == FaultSpec::Kind::kStraggler) {
      REDOPT_REQUIRE(spec.staleness >= 1, "scenario: straggler staleness must be >= 1");
    }
    if (spec.kind == FaultSpec::Kind::kCrash) {
      REDOPT_REQUIRE(spec.from >= 1, "scenario: crash windows must begin at round >= 1");
    }
  }

  // Membership events: canonically sorted by (round, agent), rounds in
  // [1, rounds), per-agent kinds alternating on strictly increasing
  // rounds, and at least one live member at every round.  Membership only
  // changes at event rounds, so the liveness sweep folds the events once
  // instead of walking every round.
  std::vector<MembershipEvent::Kind> last_kind(n, MembershipEvent::Kind::kLeave);
  std::vector<bool> has_event(n, false);
  for (std::size_t k = 0; k < membership.size(); ++k) {
    const MembershipEvent& event = membership[k];
    REDOPT_REQUIRE(event.agent < n, "scenario: membership event names an unknown agent");
    REDOPT_REQUIRE(event.round >= 1 && event.round < rounds,
                   "scenario: membership event round must lie in [1, rounds)");
    if (k > 0) {
      const MembershipEvent& prev = membership[k - 1];
      REDOPT_REQUIRE(prev.round < event.round ||
                         (prev.round == event.round && prev.agent < event.agent),
                     "scenario: membership events must be sorted by (round, agent)");
    }
    if (has_event[event.agent]) {
      REDOPT_REQUIRE(last_kind[event.agent] != event.kind,
                     "scenario: membership kinds must alternate per agent");
    }
    has_event[event.agent] = true;
    last_kind[event.agent] = event.kind;
  }
  std::size_t live = 0;
  for (std::size_t i = 0; i < n; ++i) live += initially_member(i) ? 1 : 0;
  REDOPT_REQUIRE(live >= 1, "scenario: at least one agent must be a member at round 0");
  for (const MembershipEvent& event : membership) {
    live += event.kind == MembershipEvent::Kind::kJoin ? 1 : std::size_t(-1);
    REDOPT_REQUIRE(live >= 1 && live <= n,
                   "scenario: membership schedule must keep >= 1 live member");
  }

  // Stream events: only the streaming family absorbs rows, events are
  // canonically sorted and unique per (round, agent), and the total row
  // demand stays bounded.
  REDOPT_REQUIRE(stream.empty() || problem == "streaming_regression",
                 "scenario: stream events require the streaming_regression problem");
  std::size_t total_rows = 0;
  for (std::size_t k = 0; k < stream.size(); ++k) {
    const StreamEvent& event = stream[k];
    REDOPT_REQUIRE(event.agent < n, "scenario: stream event names an unknown agent");
    REDOPT_REQUIRE(event.round >= 1 && event.round < rounds,
                   "scenario: stream event round must lie in [1, rounds)");
    REDOPT_REQUIRE(event.rows >= 1, "scenario: stream event must carry >= 1 row");
    if (k > 0) {
      const StreamEvent& prev = stream[k - 1];
      REDOPT_REQUIRE(prev.round < event.round ||
                         (prev.round == event.round && prev.agent < event.agent),
                     "scenario: stream events must be sorted by (round, agent)");
    }
    total_rows += event.rows;
    REDOPT_REQUIRE(total_rows <= kMaxStreamRows,
                   "scenario: stream events demand too many total rows");
  }
}

bool Scenario::initially_member(std::size_t agent) const {
  for (const MembershipEvent& event : membership) {
    if (event.agent != agent) continue;
    // First event in canonical order: a join means the agent starts out.
    return event.kind == MembershipEvent::Kind::kLeave;
  }
  return true;
}

bool Scenario::member_at(std::size_t agent, std::size_t round) const {
  bool member = initially_member(agent);
  for (const MembershipEvent& event : membership) {
    if (event.round > round) break;
    if (event.agent == agent) member = event.kind == MembershipEvent::Kind::kJoin;
  }
  return member;
}

std::vector<std::size_t> Scenario::members_at(std::size_t round) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (member_at(i, round)) out.push_back(i);
  }
  return out;
}

std::size_t Scenario::member_count_at(std::size_t round) const {
  return members_at(round).size();
}

std::size_t Scenario::derived_f_at(std::size_t round) const {
  const std::size_t m = member_count_at(round);
  if (m > 2 * f) return f;
  return m == 0 ? 0 : (m - 1) / 2;
}

bool Scenario::redundant_at(std::size_t round) const {
  if (derived_f_at(round) != f) return false;
  std::size_t live_crashes = 0;
  for (const FaultSpec& spec : faults) {
    if (spec.kind == FaultSpec::Kind::kCrash && member_at(spec.agent, round)) ++live_crashes;
  }
  return member_count_at(round) > 3 * f + live_crashes;
}

bool Scenario::redundant_throughout() const {
  // Membership is piecewise constant between events: checking round 0 and
  // each event round covers every regime of the schedule.
  if (!redundant_at(0)) return false;
  for (const MembershipEvent& event : membership) {
    if (!redundant_at(event.round)) return false;
  }
  return true;
}

std::vector<std::size_t> Scenario::byzantine_agents() const {
  std::vector<std::size_t> out;
  for (const FaultSpec& spec : faults) {
    if (spec.kind == FaultSpec::Kind::kByzantine) out.push_back(spec.agent);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> Scenario::crash_agents() const {
  std::vector<std::size_t> out;
  for (const FaultSpec& spec : faults) {
    if (spec.kind == FaultSpec::Kind::kCrash) out.push_back(spec.agent);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t Scenario::faulty_agent_count() const {
  return byzantine_agents().size() + crash_agents().size();
}

bool Scenario::guaranteed() const {
  if (noise_sigma != 0.0) return false;
  if (problem != "mean" && problem != "block_regression" && problem != "streaming_regression") {
    return false;
  }
  if (filter != "cge" && filter != "cwtm") return false;
  if (!within_budget()) return false;
  if (channel.drop_probability != 0.0) return false;
  if (channel.max_delay > 2) return false;
  if (rounds < 40) return false;
  const std::size_t crashes = crash_agents().size();
  if (n <= 3 * f + crashes) return false;
  if (elastic() && !redundant_throughout()) return false;
  for (const FaultSpec& spec : faults) {
    if (spec.kind == FaultSpec::Kind::kStraggler && spec.staleness > 5) return false;
  }
  return true;
}

std::string Scenario::to_json() const {
  using util::json_escape;
  using util::json_number;
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(name) << "\"";
  os << ",\"seed\":" << seed;
  os << ",\"problem\":\"" << json_escape(problem) << "\"";
  os << ",\"filter\":\"" << json_escape(filter) << "\"";
  os << ",\"n\":" << n << ",\"f\":" << f << ",\"d\":" << d << ",\"rounds\":" << rounds;
  os << ",\"noise_sigma\":" << json_number(noise_sigma);
  os << ",\"channel\":{\"drop\":" << json_number(channel.drop_probability)
     << ",\"duplicate\":" << json_number(channel.duplicate_probability)
     << ",\"max_delay\":" << channel.max_delay << "}";
  os << ",\"faults\":[";
  for (std::size_t k = 0; k < faults.size(); ++k) {
    const FaultSpec& spec = faults[k];
    if (k > 0) os << ",";
    os << "{\"kind\":\"" << kind_name(spec.kind) << "\",\"agent\":" << spec.agent
       << ",\"from\":" << spec.from << ",\"until\":" << spec.until;
    if (spec.kind == FaultSpec::Kind::kByzantine) {
      os << ",\"attack\":\"" << json_escape(spec.attack)
         << "\",\"attack_param\":" << json_number(spec.attack_param);
    }
    if (spec.kind == FaultSpec::Kind::kStraggler) os << ",\"staleness\":" << spec.staleness;
    os << "}";
  }
  os << "]";
  // Elastic members are emitted only when present, so fixed-membership
  // scenarios keep their historical byte-exact form.
  if (!membership.empty()) {
    os << ",\"membership\":[";
    for (std::size_t k = 0; k < membership.size(); ++k) {
      const MembershipEvent& event = membership[k];
      if (k > 0) os << ",";
      os << "{\"kind\":\"" << membership_kind_name(event.kind)
         << "\",\"agent\":" << event.agent << ",\"round\":" << event.round << "}";
    }
    os << "]";
  }
  if (!stream.empty()) {
    os << ",\"stream\":[";
    for (std::size_t k = 0; k < stream.size(); ++k) {
      const StreamEvent& event = stream[k];
      if (k > 0) os << ",";
      os << "{\"agent\":" << event.agent << ",\"round\":" << event.round
         << ",\"rows\":" << event.rows << "}";
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

namespace {

constexpr std::int64_t kMaxSize = 1 << 20;  ///< caps parsed sizes/rounds

std::size_t as_size(const util::JsonValue& v) {
  return static_cast<std::size_t>(v.as_int(0, kMaxSize));
}

void reject_unknown_members(const util::JsonValue& object,
                            const std::vector<std::string>& known, const std::string& where) {
  for (const auto& [key, value] : object.members) {
    (void)value;
    REDOPT_REQUIRE(std::find(known.begin(), known.end(), key) != known.end(),
                   "scenario: unknown member \"" + key + "\" in " + where);
  }
}

}  // namespace

Scenario scenario_from_json(const std::string& text) {
  const util::JsonValue doc = util::json_parse(text);
  REDOPT_REQUIRE(doc.kind == util::JsonValue::Kind::kObject,
                 "scenario: document must be a JSON object");
  reject_unknown_members(doc,
                         {"name", "seed", "problem", "filter", "n", "f", "d", "rounds",
                          "noise_sigma", "channel", "faults", "membership", "stream"},
                         "scenario");

  Scenario s;
  s.name = doc.at("name").as_string();
  s.seed = static_cast<std::uint64_t>(
      doc.at("seed").as_int(0, std::numeric_limits<std::int64_t>::max()));
  s.problem = doc.at("problem").as_string();
  s.filter = doc.at("filter").as_string();
  s.n = as_size(doc.at("n"));
  s.f = as_size(doc.at("f"));
  s.d = as_size(doc.at("d"));
  s.rounds = as_size(doc.at("rounds"));
  s.noise_sigma = doc.at("noise_sigma").as_number();
  REDOPT_REQUIRE(s.noise_sigma >= 0.0, "scenario: noise_sigma must be non-negative");

  const util::JsonValue& channel = doc.at("channel");
  REDOPT_REQUIRE(channel.kind == util::JsonValue::Kind::kObject,
                 "scenario: channel must be an object");
  reject_unknown_members(channel, {"drop", "duplicate", "max_delay"}, "channel");
  s.channel.drop_probability = channel.at("drop").as_number();
  s.channel.duplicate_probability = channel.at("duplicate").as_number();
  s.channel.max_delay = as_size(channel.at("max_delay"));

  for (const util::JsonValue& item : doc.at("faults").as_array()) {
    REDOPT_REQUIRE(item.kind == util::JsonValue::Kind::kObject,
                   "scenario: each fault must be an object");
    reject_unknown_members(
        item, {"kind", "agent", "from", "until", "attack", "attack_param", "staleness"},
        "fault");
    FaultSpec spec;
    spec.kind = kind_from_name(item.at("kind").as_string());
    spec.agent = as_size(item.at("agent"));
    spec.from = as_size(item.at("from"));
    spec.until = as_size(item.at("until"));
    if (spec.kind == FaultSpec::Kind::kByzantine) {
      spec.attack = item.at("attack").as_string();
      spec.attack_param = item.at("attack_param").as_number();
    }
    if (spec.kind == FaultSpec::Kind::kStraggler) spec.staleness = as_size(item.at("staleness"));
    s.faults.push_back(spec);
  }

  if (const util::JsonValue* membership = doc.find("membership")) {
    for (const util::JsonValue& item : membership->as_array()) {
      REDOPT_REQUIRE(item.kind == util::JsonValue::Kind::kObject,
                     "scenario: each membership event must be an object");
      reject_unknown_members(item, {"kind", "agent", "round"}, "membership event");
      MembershipEvent event;
      event.kind = membership_kind_from_name(item.at("kind").as_string());
      event.agent = as_size(item.at("agent"));
      event.round = as_size(item.at("round"));
      s.membership.push_back(event);
    }
  }

  if (const util::JsonValue* stream = doc.find("stream")) {
    for (const util::JsonValue& item : stream->as_array()) {
      REDOPT_REQUIRE(item.kind == util::JsonValue::Kind::kObject,
                     "scenario: each stream event must be an object");
      reject_unknown_members(item, {"agent", "round", "rows"}, "stream event");
      StreamEvent event;
      event.agent = as_size(item.at("agent"));
      event.round = as_size(item.at("round"));
      event.rows = as_size(item.at("rows"));
      s.stream.push_back(event);
    }
  }

  s.validate();
  return s;
}

}  // namespace redopt::chaos
