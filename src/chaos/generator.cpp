#include "chaos/generator.h"

#include <algorithm>

#include "util/error.h"

namespace redopt::chaos {

namespace {

/// Picks one element of @p pool restricted to @p allowed (falling back to
/// @p fallback when the intersection is empty).
std::string pick_restricted(rng::Rng& rng, const std::vector<std::string>& pool,
                            const std::vector<std::string>& allowed,
                            const std::string& fallback) {
  std::vector<std::string> candidates;
  for (const std::string& p : pool) {
    if (std::find(allowed.begin(), allowed.end(), p) != allowed.end()) candidates.push_back(p);
  }
  if (candidates.empty()) return fallback;
  return candidates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
}

std::size_t pick_size(rng::Rng& rng, std::size_t lo, std::size_t hi) {
  if (hi < lo) hi = lo;
  return static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
}

/// Draws the scalar knob for a named attack in its natural range.
double pick_attack_param(rng::Rng& rng, const std::string& attack, std::size_t n) {
  if (attack == "random") return rng.uniform(10.0, 400.0);
  if (attack == "large_norm") return rng.uniform(1e3, 1e6);
  if (attack == "lie") return rng.uniform(0.5, 2.0);
  if (attack == "poisoned_cost") return rng.uniform(0.1, 1.0);
  if (attack == "mimic") {
    return static_cast<double>(rng.uniform_int(0, static_cast<std::int64_t>(n)));
  }
  if (attack == "zero") return 1.0;
  return rng.uniform(0.5, 2.5);  // gradient_reverse / ipm / camouflage / orthogonal_drift
}

}  // namespace

Generator::Generator(GeneratorSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  REDOPT_REQUIRE(!spec_.filters.empty(), "generator: needs at least one filter");
  REDOPT_REQUIRE(!spec_.problems.empty(), "generator: needs at least one problem family");
  REDOPT_REQUIRE(spec_.min_n >= 4 && spec_.max_n >= spec_.min_n, "generator: bad n range");
  REDOPT_REQUIRE(spec_.max_f >= 1, "generator: needs max_f >= 1");
  REDOPT_REQUIRE(spec_.min_d >= 1 && spec_.max_d >= spec_.min_d, "generator: bad d range");
  REDOPT_REQUIRE(spec_.min_rounds >= 1 && spec_.max_rounds >= spec_.min_rounds,
                 "generator: bad round range");
  REDOPT_REQUIRE(spec_.violate_probability >= 0.0 && spec_.violate_probability <= 1.0,
                 "generator: violate_probability must lie in [0, 1]");
  REDOPT_REQUIRE(spec_.elastic_probability >= 0.0 && spec_.elastic_probability <= 1.0,
                 "generator: elastic_probability must lie in [0, 1]");
}

Scenario Generator::next() {
  ++count_;
  const bool degraded = rng_.uniform() < spec_.violate_probability;
  Scenario s = degraded ? next_degraded() : next_guaranteed();
  // The > 0.0 guard keeps the default spec's draw sequence untouched.
  const bool churned = spec_.elastic_probability > 0.0 &&
                       rng_.uniform() < spec_.elastic_probability;
  if (churned) add_churn(s);
  s.name = "gen-" + std::to_string(count_) + (degraded ? "-degraded" : "-guaranteed") +
           (s.elastic() ? "-elastic" : "");
  s.seed = rng_.next_u64() >> 1;  // keep within as_int's serialization range
  s.validate();
  return s;
}

void Generator::add_churn(Scenario& s) {
  if (s.rounds < 8) return;
  // Churn only agents no fault spec touches, and keep at least 2f + 1
  // agents member-for-life so the live set can never empty (and a dip
  // below n > 2f stays a transient, not the whole run).
  std::vector<bool> faulty(s.n, false);
  for (const FaultSpec& spec : s.faults) faulty[spec.agent] = true;
  std::vector<std::size_t> pool;
  for (std::size_t i = 0; i < s.n; ++i) {
    if (!faulty[i]) pool.push_back(i);
  }
  if (pool.size() <= 2 * s.f + 1) return;
  const std::size_t churners =
      pick_size(rng_, 1, std::min<std::size_t>(2, pool.size() - 2 * s.f - 1));
  for (std::size_t k = 0; k < churners; ++k) {
    const std::size_t agent = pool[pool.size() - 1 - k];
    if (rng_.uniform() < 0.5) {
      // Late joiner: the first event being a join means it starts absent.
      MembershipEvent join;
      join.kind = MembershipEvent::Kind::kJoin;
      join.agent = agent;
      join.round = pick_size(rng_, 1, s.rounds / 2);
      s.membership.push_back(join);
    } else {
      MembershipEvent leave;
      leave.kind = MembershipEvent::Kind::kLeave;
      leave.agent = agent;
      leave.round = pick_size(rng_, 1, s.rounds / 2);
      s.membership.push_back(leave);
      if (rng_.uniform() < 0.5) {
        MembershipEvent rejoin;
        rejoin.kind = MembershipEvent::Kind::kJoin;
        rejoin.agent = agent;
        rejoin.round = pick_size(rng_, leave.round + 1, s.rounds - 1);
        s.membership.push_back(rejoin);
      }
    }
  }
  std::sort(s.membership.begin(), s.membership.end(),
            [](const MembershipEvent& a, const MembershipEvent& b) {
              if (a.round != b.round) return a.round < b.round;
              return a.agent < b.agent;
            });
}

Scenario Generator::next_guaranteed() {
  Scenario s;
  s.problem = pick_restricted(rng_, spec_.problems, {"mean", "block_regression"}, "mean");
  s.filter = pick_restricted(rng_, spec_.filters, {"cge", "cwtm"}, "cge");
  s.d = pick_size(rng_, spec_.min_d, spec_.max_d);
  s.rounds = pick_size(rng_, std::max<std::size_t>(40, spec_.min_rounds),
                       std::max<std::size_t>(40, spec_.max_rounds));
  s.noise_sigma = 0.0;

  // Guaranteed regime needs n > 3f + crashes: pick f first, then the crash
  // count and n with that headroom.
  const std::size_t f_cap = std::min(spec_.max_f, (spec_.max_n - 2) / 3);
  const std::size_t f = pick_size(rng_, 1, std::max<std::size_t>(1, f_cap));
  const std::size_t byz = pick_size(rng_, 0, f);
  const std::size_t crash_cap = std::min(f - byz, spec_.max_n - 3 * f - 1);
  const std::size_t crashes = pick_size(rng_, 0, crash_cap);
  s.f = f;
  s.n = pick_size(rng_, std::max(spec_.min_n, 3 * f + crashes + 1), spec_.max_n);

  const std::size_t stragglers = pick_size(rng_, 0, std::min<std::size_t>(2, s.n - byz - crashes));
  const auto agents = rng_.subset(s.n, byz + crashes + stragglers);
  std::size_t next_agent = 0;

  const auto& attack_pool = scenario_attack_names();
  for (std::size_t k = 0; k < byz; ++k) {
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::kByzantine;
    spec.agent = agents[next_agent++];
    spec.from = pick_size(rng_, 0, s.rounds / 2);
    spec.until = 0;  // malicious to the end: the hardest window
    spec.attack = attack_pool[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(attack_pool.size()) - 1))];
    spec.attack_param = pick_attack_param(rng_, spec.attack, s.n);
    s.faults.push_back(spec);
  }
  for (std::size_t k = 0; k < crashes; ++k) {
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::kCrash;
    spec.agent = agents[next_agent++];
    spec.from = pick_size(rng_, 1, s.rounds - 1);
    // Half the crashes recover, half stay down.
    spec.until = rng_.uniform() < 0.5 ? 0 : pick_size(rng_, spec.from + 1, s.rounds);
    s.faults.push_back(spec);
  }
  for (std::size_t k = 0; k < stragglers; ++k) {
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::kStraggler;
    spec.agent = agents[next_agent++];
    spec.from = pick_size(rng_, 0, s.rounds / 2);
    spec.until = 0;
    spec.staleness = pick_size(rng_, 1, 5);
    s.faults.push_back(spec);
  }

  s.channel.drop_probability = 0.0;
  s.channel.duplicate_probability = rng_.uniform() < 0.3 ? rng_.uniform(0.05, 0.3) : 0.0;
  s.channel.max_delay = pick_size(rng_, 0, 2);
  return s;
}

Scenario Generator::next_degraded() {
  Scenario s;
  s.problem = spec_.problems[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(spec_.problems.size()) - 1))];
  s.filter = spec_.filters[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(spec_.filters.size()) - 1))];
  s.rounds = pick_size(rng_, spec_.min_rounds, spec_.max_rounds);

  const std::size_t f_cap = std::max<std::size_t>(1, std::min(spec_.max_f, (spec_.max_n - 1) / 2));
  s.f = pick_size(rng_, 1, f_cap);
  s.n = pick_size(rng_, std::max(spec_.min_n, 2 * s.f + 1), spec_.max_n);
  s.d = pick_size(rng_, spec_.min_d, spec_.max_d);
  if (s.problem == "regression") {
    // Regression instances need n - 2f >= d.
    s.d = std::min(s.d, s.n - 2 * s.f);
  }

  // Violate at least one guarantee precondition; often several.
  const bool over_budget = rng_.uniform() < 0.5;
  if (rng_.uniform() < 0.5) s.noise_sigma = rng_.uniform(0.01, 0.5);
  if (rng_.uniform() < 0.5) s.channel.drop_probability = rng_.uniform(0.05, 0.3);
  if (rng_.uniform() < 0.3) s.channel.duplicate_probability = rng_.uniform(0.05, 0.3);
  if (rng_.uniform() < 0.5) s.channel.max_delay = pick_size(rng_, 1, 5);

  std::size_t faulty_cap = over_budget ? std::min(s.n - 1, s.f + pick_size(rng_, 1, s.f + 1))
                                       : s.f;
  const std::size_t faulty = pick_size(rng_, over_budget ? s.f + 1 : 0,
                                       std::max(faulty_cap, over_budget ? s.f + 1 : 0));
  const std::size_t fault_count = std::min(faulty, s.n - 1);
  const std::size_t stragglers = pick_size(rng_, 0, std::min<std::size_t>(2, s.n - fault_count));
  const auto agents = rng_.subset(s.n, fault_count + stragglers);
  std::size_t next_agent = 0;

  const auto& attack_pool = scenario_attack_names();
  for (std::size_t k = 0; k < fault_count; ++k) {
    FaultSpec spec;
    spec.agent = agents[next_agent++];
    if (rng_.uniform() < 0.25) {
      spec.kind = FaultSpec::Kind::kCrash;
      spec.from = pick_size(rng_, 1, s.rounds - 1);
      spec.until = rng_.uniform() < 0.5 ? 0 : pick_size(rng_, spec.from + 1, s.rounds);
    } else {
      spec.kind = FaultSpec::Kind::kByzantine;
      spec.from = pick_size(rng_, 0, s.rounds / 2);
      spec.until = rng_.uniform() < 0.3 ? pick_size(rng_, spec.from + 1, s.rounds) : 0;
      spec.attack = attack_pool[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(attack_pool.size()) - 1))];
      spec.attack_param = pick_attack_param(rng_, spec.attack, s.n);
    }
    s.faults.push_back(spec);
  }
  for (std::size_t k = 0; k < stragglers; ++k) {
    FaultSpec spec;
    spec.kind = FaultSpec::Kind::kStraggler;
    spec.agent = agents[next_agent++];
    spec.from = pick_size(rng_, 0, s.rounds / 2);
    spec.until = 0;
    spec.staleness = pick_size(rng_, 1, 8);
    s.faults.push_back(spec);
  }
  return s;
}

}  // namespace redopt::chaos
