// Paper invariants asserted on every scenario execution.
//
// Two regimes, one checker.  Inside Scenario::guaranteed() — noiseless
// paper instances, faults within the 2f-redundancy budget — the execution
// must actually converge to the honest argmin (Theorems 2/4).  Outside
// it, the paper promises nothing about the limit point, but the machinery
// must still degrade gracefully: every iterate finite, every iterate
// inside the constraint set.  A violation of either is a library bug, and
// the chaos suite shrinks the offending scenario to a minimal reproducer.
#pragma once

#include <string>
#include <vector>

#include "chaos/executor.h"
#include "chaos/scenario.h"

namespace redopt::chaos {

/// Convergence tolerances for the guaranteed regime: the final distance
/// to the honest argmin must drop below
///   max(rel_tolerance * initial_distance, abs_tolerance).
/// The defaults are calibrated against the seeded generator suite (see
/// tests/test_chaos.cpp); harmonic-step DGD contracts the distance by
/// roughly 1/T, so 40+ rounds clear them with margin.
struct PropertyOptions {
  double rel_tolerance = 0.2;
  double abs_tolerance = 0.08;
};

/// Outcome of checking one execution.
struct PropertyReport {
  bool ok = true;
  std::vector<std::string> violations;

  /// All violations joined into one line ("ok" when none).
  std::string summary() const;
};

/// Asserts the regime-appropriate invariants on @p result.
PropertyReport check_properties(const Scenario& scenario, const ScenarioResult& result,
                                const PropertyOptions& options = {});

/// Bitwise trajectory equality: same final iterate (exact double
/// equality), same distances, same fault counters.  Used to assert
/// determinism across REDOPT_THREADS values.
bool bit_identical(const ScenarioResult& a, const ScenarioResult& b);

}  // namespace redopt::chaos
