// Process-wide deterministic metrics: counters, gauges, and fixed-layout
// histograms.
//
// Determinism contract (the reason this module exists instead of an
// off-the-shelf metrics library): metric *values* are reproducible
// functions of the computation, not of the execution schedule.
//
//   * Recording is sharded per thread: each recording thread owns a
//     private shard, so concurrent recordings from the runtime's pool
//     never contend and never race.  Snapshots fold the shards through a
//     fixed-shape merge (shard-registration order; all merge operators —
//     integer addition, bucket-wise addition, min/max — are exact), so a
//     snapshot is a pure function of the per-shard contents.
//   * Integer counters and histogram bucket/count cells are exact in any
//     recording order, so their totals are bit-identical for every
//     runtime::set_threads() value.
//   * Histogram `sum` is a double.  It is bit-identical across thread
//     counts whenever (a) observations happen outside parallel regions
//     (true for every wired hot path that observes non-integral values) or
//     (b) the observed values are integers small enough that double
//     addition is exact (e.g. staleness counts).
//   * Metrics that cannot honour the contract — wall-clock durations, and
//     values that depend on the configured lane count such as the exact
//     algorithm's pruning counters — are registered with
//     Determinism::kUnstable.  Sinks segregate them (the JSONL sink puts
//     their values under the "nd" key) so bit-identity checks can mask
//     them wholesale.
//
// Thread-safety: record operations (Counter::inc, Histogram::observe) are
// safe from any thread, including inside runtime parallel regions.
// Registration (counter()/gauge()/histogram()), snapshot(), reset(), and
// the value() conveniences must run while no recording is in flight
// (before a parallel region starts or after parallel_for/parallel_reduce
// returned — the pool join provides the necessary happens-before edge).
// Register handles up front, record through them anywhere.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace redopt::telemetry {

class Registry;

/// Whether a metric's value is covered by the bit-identity contract.
enum class Determinism {
  kStable,    ///< bit-identical across thread counts (the default)
  kUnstable,  ///< wall-clock or lane-count dependent; masked by sinks
};

/// Bucket layout of a histogram: finite ascending upper bounds plus an
/// implicit +Inf overflow bucket.  Layouts are fixed at registration, so a
/// histogram's shape never depends on the data it observed.
struct BucketLayout {
  std::vector<double> upper_bounds;  ///< ascending, strictly increasing

  /// `count` buckets of equal width starting at @p start.
  static BucketLayout linear(double start, double width, std::size_t count);

  /// `count` buckets with bounds start, start*factor, start*factor^2, ...
  /// (factor > 1).  The standard layout for norms and durations.
  static BucketLayout exponential(double start, double factor, std::size_t count);

  /// Explicit bounds (must be strictly increasing).
  static BucketLayout explicit_bounds(std::vector<double> bounds);
};

/// Lightweight handle to a registered counter (monotone uint64).
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t by = 1) const;

  /// Merged total over all shards.  Serial-context only.
  std::uint64_t value() const;

 private:
  friend class Registry;
  Counter(Registry* registry, std::size_t id) : registry_(registry), id_(id) {}
  Registry* registry_ = nullptr;
  std::size_t id_ = 0;
};

/// Lightweight handle to a registered gauge (last-set double).  Gauges are
/// not sharded: set() is serial-context only (they record run-level facts
/// like a chosen candidate's score, not hot-path events).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const;
  double value() const;

 private:
  friend class Registry;
  Gauge(Registry* registry, std::size_t id) : registry_(registry), id_(id) {}
  Registry* registry_ = nullptr;
  std::size_t id_ = 0;
};

/// Lightweight handle to a registered histogram.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const;

 private:
  friend class Registry;
  Histogram(Registry* registry, std::size_t id) : registry_(registry), id_(id) {}
  Registry* registry_ = nullptr;
  std::size_t id_ = 0;
};

/// Point-in-time merged value of one metric.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  Determinism determinism = Determinism::kStable;

  std::uint64_t counter = 0;  ///< kCounter
  double gauge = 0.0;         ///< kGauge

  // kHistogram: per-bucket counts aligned with `upper_bounds`, plus the
  // +Inf overflow bucket and the order-exact aggregates.
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t overflow_count = 0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

using Snapshot = std::vector<MetricValue>;

/// Metric registry.  Registration is idempotent by name: registering the
/// same name again returns a handle to the same metric (re-registering
/// under a different kind or layout throws PreconditionError).  Most code
/// uses the process-wide registry() below; separate instances exist for
/// isolation in tests and must outlive every thread that recorded into
/// them.
class Registry {
 public:
  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter counter(const std::string& name, Determinism det = Determinism::kStable);
  Gauge gauge(const std::string& name, Determinism det = Determinism::kStable);
  Histogram histogram(const std::string& name, const BucketLayout& layout,
                      Determinism det = Determinism::kStable);

  /// Merged values of every registered metric, sorted by metric name —
  /// a canonical order, so serialized snapshots are byte-identical no
  /// matter what order call sites registered in.  Serial-context only.
  Snapshot snapshot() const;

  /// Zeroes every metric value (registrations are kept).  Serial-context
  /// only.
  void reset();

  /// Number of registered metrics.
  std::size_t size() const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard;
  struct Impl;
  Shard& local_shard() const;

  std::unique_ptr<Impl> impl_;
};

/// The process-wide registry used by all wired hot paths.
Registry& registry();

/// Renders @p snapshot in the Prometheus text exposition format.  Metric
/// names are prefixed with "redopt_" and dots become underscores;
/// kUnstable metrics carry a "# NONDETERMINISTIC" comment line.
std::string render_prometheus(const Snapshot& snapshot);

}  // namespace redopt::telemetry
