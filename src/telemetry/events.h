// Structured event tracing with pluggable sinks, plus the global
// enable/disable switch the hot paths consult.
//
// An Event is a named record with two field sections:
//
//   * `fields` — values covered by the determinism contract: for a fixed
//     problem, config, and seed they are byte-identical in the JSONL
//     output at every runtime::set_threads() value;
//   * `nd`     — values excluded from the contract (wall-clock durations,
//     configured lane counts).  The JSONL sink writes them under a
//     separate "nd" key so bit-identity checks can strip them wholesale:
//
//       {"event":"dgd.iteration","fields":{"t":3,"loss":0.71},"nd":{...}}
//
// Emission is serialized (one mutex around the sink fan-out); hot paths
// emit from serial sections only, so the lock is uncontended.
//
// The global switch: telemetry::set_enabled(true) turns on metric
// recording and filter instrumentation in the wired hot paths (trainers,
// filters, exact algorithm, net).  Events additionally require a sink
// (tracing_enabled()); with no sink attached, emit() is a no-op.  The
// default is fully off — a library user who never touches telemetry pays
// one relaxed atomic load per hot-path branch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "telemetry/metrics.h"
#include "util/stopwatch.h"

namespace redopt::telemetry {

/// One event field value.
using Value = std::variant<std::int64_t, std::uint64_t, double, bool, std::string>;

/// A structured trace event.  Field order is preserved in the output.
struct Event {
  std::string name;
  std::vector<std::pair<std::string, Value>> fields;     ///< deterministic
  std::vector<std::pair<std::string, Value>> nd_fields;  ///< masked by bit-identity checks

  Event() = default;
  explicit Event(std::string event_name) : name(std::move(event_name)) {}

  Event& with(std::string key, Value value) {
    fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  Event& with_nd(std::string key, Value value) {
    nd_fields.emplace_back(std::move(key), std::move(value));
    return *this;
  }
};

/// Receives every emitted event.  Implementations must tolerate being
/// called from any serial context; emission is externally serialized.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const Event& event) = 0;
};

/// Test sink: records every event in memory.
class MemorySink final : public EventSink {
 public:
  void emit(const Event& event) override { events_.push_back(event); }
  const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

/// Writes one JSON object per event, one per line (JSONL).  Deterministic
/// serialization: field order is the emission order, numbers use
/// util::json_number.  Flushes on destruction.
class JsonlSink final : public EventSink {
 public:
  /// Opens @p path for writing (truncates).  Throws PreconditionError when
  /// the file cannot be opened.
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;

  void emit(const Event& event) override;

  /// Serializes @p event exactly as the sink writes it (minus newline);
  /// exposed so tests can assert the representation.
  static std::string to_json(const Event& event);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Global telemetry switch (metrics + instrumentation in wired hot paths).
bool enabled();
void set_enabled(bool on);

/// True when enabled() and at least one sink is attached.
bool tracing_enabled();

void add_sink(std::shared_ptr<EventSink> sink);
void remove_sink(const EventSink* sink);
void clear_sinks();

/// Forwards @p event to every attached sink; no-op when !tracing_enabled().
void emit(const Event& event);

/// Emits one "metric" event per entry of @p snapshot (values of kUnstable
/// metrics go into the nd section), so a JSONL file carries the final
/// metric state alongside the event stream.
void emit_metrics_snapshot(const Snapshot& snapshot);

/// RAII timer for a named operation, backed by util::Stopwatch.  On
/// destruction bumps the counter "<name>.calls" (deterministic) and
/// observes the elapsed seconds into the histogram "<name>.seconds"
/// (registered kUnstable — wall-clock).  Inert when telemetry is disabled
/// at construction.  Serial-context only (it registers metrics).
class Scope {
 public:
  explicit Scope(const std::string& name);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  /// Seconds since construction (exposed for tests).
  double elapsed_seconds() const { return watch_.elapsed_seconds(); }

 private:
  bool active_ = false;
  Counter calls_;
  Histogram seconds_;
  util::Stopwatch watch_;
};

}  // namespace redopt::telemetry
