// Chrome trace-event export: renders span logs as a JSON document the
// Perfetto UI (ui.perfetto.dev) and chrome://tracing load directly.
//
// One TraceTrack per process: the coordinator is pid 0, each agent is
// its own pid (one track per agent), named via "process_name" metadata
// events.  Spans become complete ("ph":"X") events with microsecond
// ts/dur from the log's wall-clock fields; instants become "ph":"i"
// events.  Timing members ("ts", "dur") and records flagged
// "unstable":true are exactly what stable_json_projection() strips, so
// the same canonicalization applies to traces as to manifests.
//
// The document is emitted one event per line (still strictly valid
// JSON), which keeps diffs and grep usable on large traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/span.h"

namespace redopt::telemetry {

/// One process's worth of spans and instants.
struct TraceTrack {
  std::uint32_t pid = 0;
  std::string name;  ///< shown as the process name in the trace viewer
  const std::vector<SpanRecord>* spans = nullptr;
  const std::vector<InstantRecord>* instants = nullptr;
};

/// Renders @p tracks as one Chrome trace-event JSON document.
std::string render_chrome_trace(const std::vector<TraceTrack>& tracks);

}  // namespace redopt::telemetry
