#include "telemetry/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>

#include "util/error.h"
#include "util/json.h"

namespace redopt::telemetry {

BucketLayout BucketLayout::linear(double start, double width, std::size_t count) {
  REDOPT_REQUIRE(width > 0.0, "bucket width must be positive");
  REDOPT_REQUIRE(count >= 1, "a histogram needs at least one finite bucket");
  BucketLayout layout;
  layout.upper_bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    layout.upper_bounds.push_back(start + width * static_cast<double>(i));
  }
  return layout;
}

BucketLayout BucketLayout::exponential(double start, double factor, std::size_t count) {
  REDOPT_REQUIRE(start > 0.0, "exponential buckets start above zero");
  REDOPT_REQUIRE(factor > 1.0, "bucket growth factor must exceed 1");
  REDOPT_REQUIRE(count >= 1, "a histogram needs at least one finite bucket");
  BucketLayout layout;
  layout.upper_bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    layout.upper_bounds.push_back(bound);
    bound *= factor;
  }
  return layout;
}

BucketLayout BucketLayout::explicit_bounds(std::vector<double> bounds) {
  REDOPT_REQUIRE(!bounds.empty(), "a histogram needs at least one finite bucket");
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    REDOPT_REQUIRE(bounds[i - 1] < bounds[i], "bucket bounds must be strictly increasing");
  }
  BucketLayout layout;
  layout.upper_bounds = std::move(bounds);
  return layout;
}

namespace {

/// Per-shard histogram cell.  Bucket vectors are sized lazily by the
/// owning thread on first observation.
struct HistCell {
  std::vector<std::uint64_t> buckets;
  std::uint64_t overflow = 0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

struct MetricInfo {
  std::string name;
  MetricValue::Kind kind = MetricValue::Kind::kCounter;
  Determinism determinism = Determinism::kStable;
  BucketLayout layout;  // kHistogram only
};

std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

/// One recording thread's private cells, indexed by metric id.  Only the
/// owning thread writes; snapshot()/reset() read and zero from a serial
/// context (the pool join provides the happens-before edge).
struct Registry::Shard {
  std::vector<std::uint64_t> counters;
  std::vector<HistCell> hists;

  std::uint64_t& counter_cell(std::size_t id) {
    if (counters.size() <= id) counters.resize(id + 1, 0);
    return counters[id];
  }
  HistCell& hist_cell(std::size_t id) {
    if (hists.size() <= id) hists.resize(id + 1);
    return hists[id];
  }
};

struct Registry::Impl {
  const std::uint64_t uid = next_registry_uid();
  mutable std::mutex mutex;
  std::vector<MetricInfo> metrics;
  // Name-keyed and *ordered*: snapshot() folds metrics by iterating this
  // map, so serialized output never depends on hash-table layout or on
  // the order call sites happened to register in (rule D2).
  std::map<std::string, std::size_t> by_name;
  std::vector<double> gauges;  // indexed by metric id (kGauge only)
  mutable std::vector<std::unique_ptr<Shard>> shards;  // registration order

  std::size_t register_metric(const std::string& name, MetricValue::Kind kind, Determinism det,
                              BucketLayout layout) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = by_name.find(name);
    if (it != by_name.end()) {
      const MetricInfo& existing = metrics[it->second];
      REDOPT_REQUIRE(existing.kind == kind,
                     "metric '" + name + "' already registered with a different kind");
      REDOPT_REQUIRE(existing.determinism == det,
                     "metric '" + name + "' already registered with a different determinism");
      REDOPT_REQUIRE(existing.layout.upper_bounds == layout.upper_bounds,
                     "metric '" + name + "' already registered with a different bucket layout");
      return it->second;
    }
    const std::size_t id = metrics.size();
    metrics.push_back(MetricInfo{name, kind, det, std::move(layout)});
    gauges.resize(metrics.size(), 0.0);
    by_name.emplace(name, id);
    return id;
  }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Registry::Shard& Registry::local_shard() const {
  struct CacheEntry {
    std::uint64_t uid;
    Shard* shard;
  };
  // Registries are few (the global one plus test-local instances), so a
  // linear scan beats a hash lookup.  Entries of dead registries never
  // match again (uids are never reused) and are simply skipped.
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.uid == impl_->uid) return *e.shard;
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->shards.push_back(std::make_unique<Shard>());
  Shard* shard = impl_->shards.back().get();
  cache.push_back(CacheEntry{impl_->uid, shard});
  return *shard;
}

Counter Registry::counter(const std::string& name, Determinism det) {
  return Counter(this, impl_->register_metric(name, MetricValue::Kind::kCounter, det, {}));
}

Gauge Registry::gauge(const std::string& name, Determinism det) {
  return Gauge(this, impl_->register_metric(name, MetricValue::Kind::kGauge, det, {}));
}

Histogram Registry::histogram(const std::string& name, const BucketLayout& layout,
                              Determinism det) {
  return Histogram(this, impl_->register_metric(name, MetricValue::Kind::kHistogram, det, layout));
}

void Counter::inc(std::uint64_t by) const {
  if (registry_ == nullptr) return;
  registry_->local_shard().counter_cell(id_) += by;
}

std::uint64_t Counter::value() const {
  if (registry_ == nullptr) return 0;
  auto& impl = *registry_->impl_;
  std::lock_guard<std::mutex> lock(impl.mutex);
  std::uint64_t total = 0;
  for (const auto& shard : impl.shards) {
    if (shard->counters.size() > id_) total += shard->counters[id_];
  }
  return total;
}

void Gauge::set(double v) const {
  if (registry_ == nullptr) return;
  auto& impl = *registry_->impl_;
  std::lock_guard<std::mutex> lock(impl.mutex);
  impl.gauges[id_] = v;
}

double Gauge::value() const {
  if (registry_ == nullptr) return 0.0;
  auto& impl = *registry_->impl_;
  std::lock_guard<std::mutex> lock(impl.mutex);
  return impl.gauges[id_];
}

void Histogram::observe(double v) const {
  if (registry_ == nullptr) return;
  auto& impl = *registry_->impl_;
  HistCell& cell = registry_->local_shard().hist_cell(id_);
  const std::vector<double>& bounds = impl.metrics[id_].layout.upper_bounds;
  if (cell.buckets.empty()) cell.buckets.resize(bounds.size(), 0);
  ++cell.count;
  // NaN observations land in the overflow bucket and are excluded from the
  // order-exact aggregates (sum/min/max would otherwise be poisoned).
  if (std::isnan(v)) {
    ++cell.overflow;
    return;
  }
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  if (it == bounds.end()) {
    ++cell.overflow;
  } else {
    ++cell.buckets[static_cast<std::size_t>(it - bounds.begin())];
  }
  cell.sum += v;
  cell.min = std::min(cell.min, v);
  cell.max = std::max(cell.max, v);
}

Snapshot Registry::snapshot() const {
  auto& impl = *impl_;
  std::lock_guard<std::mutex> lock(impl.mutex);
  Snapshot out;
  out.reserve(impl.metrics.size());
  // Fold in metric-name order (the map's iteration order), so two
  // registries that registered the same metrics in different orders
  // produce byte-identical serialized snapshots.
  for (const auto& entry : impl.by_name) {
    const std::size_t id = entry.second;
    const MetricInfo& info = impl.metrics[id];
    MetricValue value;
    value.name = info.name;
    value.kind = info.kind;
    value.determinism = info.determinism;
    switch (info.kind) {
      case MetricValue::Kind::kCounter:
        for (const auto& shard : impl.shards) {
          if (shard->counters.size() > id) value.counter += shard->counters[id];
        }
        break;
      case MetricValue::Kind::kGauge:
        value.gauge = impl.gauges[id];
        break;
      case MetricValue::Kind::kHistogram: {
        value.upper_bounds = info.layout.upper_bounds;
        value.bucket_counts.assign(value.upper_bounds.size(), 0);
        // Fixed-shape merge: fold shards in registration order.  Every
        // merge operator except the double sum is exact in any order; the
        // sum's guarantees are spelled out in the header contract.
        for (const auto& shard : impl.shards) {
          if (shard->hists.size() <= id) continue;
          const HistCell& cell = shard->hists[id];
          if (cell.count == 0) continue;
          for (std::size_t b = 0; b < cell.buckets.size(); ++b) {
            value.bucket_counts[b] += cell.buckets[b];
          }
          value.overflow_count += cell.overflow;
          value.count += cell.count;
          value.sum += cell.sum;
          value.min = std::min(value.min, cell.min);
          value.max = std::max(value.max, cell.max);
        }
        break;
      }
    }
    out.push_back(std::move(value));
  }
  return out;
}

void Registry::reset() {
  auto& impl = *impl_;
  std::lock_guard<std::mutex> lock(impl.mutex);
  for (auto& shard : impl.shards) {
    std::fill(shard->counters.begin(), shard->counters.end(), 0);
    for (HistCell& cell : shard->hists) cell = HistCell{};
  }
  std::fill(impl.gauges.begin(), impl.gauges.end(), 0.0);
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->metrics.size();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

namespace {

/// Prometheus-safe metric name: redopt_ prefix, [a-zA-Z0-9_] body.
std::string prom_name(const std::string& name) {
  std::string out = "redopt_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string render_prometheus(const Snapshot& snapshot) {
  std::ostringstream os;
  for (const MetricValue& m : snapshot) {
    const std::string name = prom_name(m.name);
    if (m.determinism == Determinism::kUnstable) os << "# NONDETERMINISTIC " << name << "\n";
    switch (m.kind) {
      case MetricValue::Kind::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << " " << m.counter << "\n";
        break;
      case MetricValue::Kind::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << " " << util::json_number(m.gauge) << "\n";
        break;
      case MetricValue::Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < m.upper_bounds.size(); ++b) {
          cumulative += m.bucket_counts[b];
          os << name << "_bucket{le=\"" << util::json_number(m.upper_bounds[b]) << "\"} "
             << cumulative << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << m.count << "\n";
        os << name << "_sum " << util::json_number(m.sum) << "\n";
        os << name << "_count " << m.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

}  // namespace redopt::telemetry
