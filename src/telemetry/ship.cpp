#include "telemetry/ship.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <variant>

#include "util/error.h"
#include "util/json.h"

namespace redopt::telemetry {

namespace {

void append_value(std::string& out, const Value& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    out += std::to_string(*i);
  } else if (const auto* u = std::get_if<std::uint64_t>(&value)) {
    out += std::to_string(*u);
  } else if (const auto* d = std::get_if<double>(&value)) {
    out += util::json_number(*d);
  } else if (const auto* b = std::get_if<bool>(&value)) {
    out += *b ? "true" : "false";
  } else {
    out += '"';
    out += util::json_escape(std::get<std::string>(value));
    out += '"';
  }
}

void append_attrs(std::string& out, const std::vector<std::pair<std::string, Value>>& attrs) {
  out += "\"attrs\":{";
  bool first = true;
  for (const auto& [key, value] : attrs) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += util::json_escape(key);
    out += "\":";
    append_value(out, value);
  }
  out += '}';
}

void append_number_array(std::string& out, const char* key, const std::vector<double>& values) {
  out += '"';
  out += key;
  out += "\":[";
  bool first = true;
  for (double v : values) {
    if (!first) out += ',';
    first = false;
    out += util::json_number(v);
  }
  out += ']';
}

void append_count_array(std::string& out, const char* key,
                        const std::vector<std::uint64_t>& values) {
  out += '"';
  out += key;
  out += "\":[";
  bool first = true;
  for (std::uint64_t v : values) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(v);
  }
  out += ']';
}

/// The histogram value members (everything that depends on the observed
/// data, as opposed to the registered layout).
void append_histogram_values(std::string& out, const MetricValue& m) {
  append_count_array(out, "buckets", m.bucket_counts);
  out += ",\"overflow\":" + std::to_string(m.overflow_count);
  out += ",\"count\":" + std::to_string(m.count);
  out += ",\"sum\":" + util::json_number(m.sum);
  if (m.count > 0) {
    out += ",\"min\":" + util::json_number(m.min);
    out += ",\"max\":" + util::json_number(m.max);
  }
}

void append_metric(std::string& out, const MetricValue& m) {
  const bool unstable = m.determinism == Determinism::kUnstable;
  out += "{\"name\":\"";
  out += util::json_escape(m.name);
  out += "\",\"kind\":\"";
  switch (m.kind) {
    case MetricValue::Kind::kCounter:
      out += "counter\",";
      if (unstable) {
        out += "\"nd\":{\"value\":" + std::to_string(m.counter) + '}';
      } else {
        out += "\"value\":" + std::to_string(m.counter);
      }
      break;
    case MetricValue::Kind::kGauge:
      out += "gauge\",";
      if (unstable) {
        out += "\"nd\":{\"value\":" + util::json_number(m.gauge) + '}';
      } else {
        out += "\"value\":" + util::json_number(m.gauge);
      }
      break;
    case MetricValue::Kind::kHistogram:
      out += "histogram\",";
      append_number_array(out, "bounds", m.upper_bounds);
      out += ',';
      if (unstable) {
        out += "\"nd\":{";
        append_histogram_values(out, m);
        out += '}';
      } else {
        append_histogram_values(out, m);
      }
      break;
  }
  out += '}';
}

void append_span(std::string& out, const SpanRecord& span) {
  out += "{\"id\":" + std::to_string(span.id);
  out += ",\"parent\":" + std::to_string(span.parent);
  out += ",\"name\":\"" + util::json_escape(span.name) + "\",";
  append_attrs(out, span.attributes);
  out += span.closed ? ",\"closed\":true" : ",\"closed\":false";
  out += ",\"nd\":{\"start_s\":" + util::json_number(span.start_s);
  out += ",\"dur_s\":" + util::json_number(span.duration_s) + "}}";
}

void append_instant(std::string& out, const InstantRecord& instant) {
  out += "{\"span\":" + std::to_string(instant.span);
  out += ",\"name\":\"" + util::json_escape(instant.name) + "\",";
  append_attrs(out, instant.attributes);
  if (instant.determinism == Determinism::kUnstable) out += ",\"unstable\":true";
  out += ",\"nd\":{\"at_s\":" + util::json_number(instant.at_s) + "}}";
}

// ---------------------------------------------------------------- parsing

Value parse_value(const util::JsonValue& v) {
  switch (v.kind) {
    case util::JsonValue::Kind::kBool:
      return v.boolean;
    case util::JsonValue::Kind::kString:
      return v.string;
    case util::JsonValue::Kind::kNumber:
      if (v.has_integer) return v.integer;
      return v.number;
    case util::JsonValue::Kind::kNull:
      // json_number spells non-finite doubles as null.
      return std::numeric_limits<double>::quiet_NaN();
    default:
      REDOPT_REQUIRE(false, "telemetry blob: attribute value must be a scalar");
      return false;  // unreachable
  }
}

std::vector<std::pair<std::string, Value>> parse_attrs(const util::JsonValue& entry) {
  const util::JsonValue& attrs = entry.at("attrs");
  REDOPT_REQUIRE(attrs.kind == util::JsonValue::Kind::kObject,
                 "telemetry blob: attrs must be an object");
  std::vector<std::pair<std::string, Value>> out;
  out.reserve(attrs.members.size());
  for (const auto& [key, value] : attrs.members) out.emplace_back(key, parse_value(value));
  return out;
}

std::uint64_t parse_u64(const util::JsonValue& v) {
  return static_cast<std::uint64_t>(v.as_int(0, std::numeric_limits<std::int64_t>::max()));
}

void parse_histogram_values(const util::JsonValue& holder, MetricValue& m) {
  const util::JsonValue& buckets = holder.at("buckets");
  for (const util::JsonValue& b : buckets.as_array()) m.bucket_counts.push_back(parse_u64(b));
  REDOPT_REQUIRE(m.bucket_counts.size() == m.upper_bounds.size(),
                 "telemetry blob: histogram bucket/bound count mismatch");
  m.overflow_count = parse_u64(holder.at("overflow"));
  m.count = parse_u64(holder.at("count"));
  m.sum = holder.at("sum").as_number();
  if (m.count > 0) {
    m.min = holder.at("min").as_number();
    m.max = holder.at("max").as_number();
  }
}

MetricValue parse_metric(const util::JsonValue& entry) {
  MetricValue m;
  m.name = entry.at("name").as_string();
  const std::string& kind = entry.at("kind").as_string();
  const util::JsonValue* nd = entry.find("nd");
  m.determinism = nd != nullptr ? Determinism::kUnstable : Determinism::kStable;
  if (kind == "counter") {
    m.kind = MetricValue::Kind::kCounter;
    m.counter = parse_u64(nd != nullptr ? nd->at("value") : entry.at("value"));
  } else if (kind == "gauge") {
    m.kind = MetricValue::Kind::kGauge;
    m.gauge = (nd != nullptr ? nd->at("value") : entry.at("value")).as_number();
  } else if (kind == "histogram") {
    m.kind = MetricValue::Kind::kHistogram;
    for (const util::JsonValue& b : entry.at("bounds").as_array()) {
      m.upper_bounds.push_back(b.as_number());
    }
    parse_histogram_values(nd != nullptr ? *nd : entry, m);
  } else {
    REDOPT_REQUIRE(false, "telemetry blob: unknown metric kind: " + kind);
  }
  return m;
}

SpanRecord parse_span(const util::JsonValue& entry) {
  SpanRecord span;
  span.id = parse_u64(entry.at("id"));
  span.parent = parse_u64(entry.at("parent"));
  span.name = entry.at("name").as_string();
  span.attributes = parse_attrs(entry);
  span.closed = entry.at("closed").as_bool();
  const util::JsonValue& nd = entry.at("nd");
  span.start_s = nd.at("start_s").as_number();
  span.duration_s = nd.at("dur_s").as_number();
  return span;
}

InstantRecord parse_instant(const util::JsonValue& entry) {
  InstantRecord instant;
  instant.span = parse_u64(entry.at("span"));
  instant.name = entry.at("name").as_string();
  instant.attributes = parse_attrs(entry);
  const util::JsonValue* unstable = entry.find("unstable");
  instant.determinism = unstable != nullptr && unstable->as_bool() ? Determinism::kUnstable
                                                                   : Determinism::kStable;
  instant.at_s = entry.at("nd").at("at_s").as_number();
  return instant;
}

}  // namespace

std::string serialize_agent_snapshot(const AgentSnapshot& snapshot) {
  std::string out = "{\"v\":1,\"agent\":" + std::to_string(snapshot.agent);
  out += ",\"spans_dropped\":" + std::to_string(snapshot.spans_dropped);
  out += ",\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : snapshot.metrics) {
    if (!first) out += ',';
    first = false;
    append_metric(out, m);
  }
  out += "],\"spans\":[";
  first = true;
  for (const SpanRecord& span : snapshot.spans) {
    if (!first) out += ',';
    first = false;
    append_span(out, span);
  }
  out += "],\"instants\":[";
  first = true;
  for (const InstantRecord& instant : snapshot.instants) {
    if (!first) out += ',';
    first = false;
    append_instant(out, instant);
  }
  out += "]}";
  return out;
}

std::string serialize_agent_telemetry(std::uint32_t agent, const AgentTelemetry& telemetry) {
  AgentSnapshot snapshot;
  snapshot.agent = agent;
  snapshot.metrics = telemetry.registry.snapshot();
  snapshot.spans = telemetry.spans.spans();
  snapshot.instants = telemetry.spans.instants();
  snapshot.spans_dropped = telemetry.spans.dropped();
  return serialize_agent_snapshot(snapshot);
}

AgentSnapshot parse_agent_snapshot(const std::string& json_text) {
  const util::JsonValue doc = util::json_parse(json_text);
  REDOPT_REQUIRE(doc.kind == util::JsonValue::Kind::kObject,
                 "telemetry blob: document must be an object");
  REDOPT_REQUIRE(doc.at("v").as_int(1, 1) == 1, "telemetry blob: unsupported version");

  AgentSnapshot snapshot;
  snapshot.agent =
      static_cast<std::uint32_t>(doc.at("agent").as_int(0, std::numeric_limits<std::uint32_t>::max()));
  snapshot.spans_dropped = parse_u64(doc.at("spans_dropped"));
  for (const util::JsonValue& entry : doc.at("metrics").as_array()) {
    snapshot.metrics.push_back(parse_metric(entry));
  }
  for (const util::JsonValue& entry : doc.at("spans").as_array()) {
    snapshot.spans.push_back(parse_span(entry));
  }
  for (const util::JsonValue& entry : doc.at("instants").as_array()) {
    snapshot.instants.push_back(parse_instant(entry));
  }
  return snapshot;
}

Snapshot merge_agent_snapshots(const Snapshot& coordinator,
                               const std::vector<AgentSnapshot>& agents) {
  Snapshot merged = coordinator;
  for (const AgentSnapshot& agent : agents) {
    const std::string prefix = "agent." + std::to_string(agent.agent) + ".";
    for (MetricValue m : agent.metrics) {
      m.name = prefix + m.name;
      merged.push_back(std::move(m));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return merged;
}

std::string render_merged_manifest(const Snapshot& coordinator,
                                   const std::vector<AgentSnapshot>& agents) {
  std::string out = "{\"v\":1,\"coordinator\":{\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : coordinator) {
    if (!first) out += ',';
    first = false;
    append_metric(out, m);
  }
  out += "]},\"agents\":[";
  first = true;
  for (const AgentSnapshot& agent : agents) {
    if (!first) out += ',';
    first = false;
    out += serialize_agent_snapshot(agent);
  }
  out += "]}";
  return out;
}

namespace {

bool is_unstable_element(const util::JsonValue& v) {
  if (v.kind != util::JsonValue::Kind::kObject) return false;
  const util::JsonValue* unstable = v.find("unstable");
  return unstable != nullptr && unstable->kind == util::JsonValue::Kind::kBool &&
         unstable->boolean;
}

void strip_unstable(util::JsonValue& v) {
  if (v.kind == util::JsonValue::Kind::kObject) {
    std::vector<std::pair<std::string, util::JsonValue>> kept;
    kept.reserve(v.members.size());
    for (auto& [key, member] : v.members) {
      if (key == "nd" || key == "ts" || key == "dur") continue;
      strip_unstable(member);
      kept.emplace_back(key, std::move(member));
    }
    v.members = std::move(kept);
  } else if (v.kind == util::JsonValue::Kind::kArray) {
    std::vector<util::JsonValue> kept;
    kept.reserve(v.items.size());
    for (util::JsonValue& item : v.items) {
      if (is_unstable_element(item)) continue;
      strip_unstable(item);
      kept.push_back(std::move(item));
    }
    v.items = std::move(kept);
  }
}

}  // namespace

std::string stable_json_projection(const std::string& json_text) {
  util::JsonValue doc = util::json_parse(json_text);
  strip_unstable(doc);
  return util::json_serialize(doc);
}

}  // namespace redopt::telemetry
