#include "telemetry/trace_export.h"

#include <variant>

#include "util/json.h"

namespace redopt::telemetry {

namespace {

void append_arg_value(std::string& out, const Value& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    out += std::to_string(*i);
  } else if (const auto* u = std::get_if<std::uint64_t>(&value)) {
    out += std::to_string(*u);
  } else if (const auto* d = std::get_if<double>(&value)) {
    out += util::json_number(*d);
  } else if (const auto* b = std::get_if<bool>(&value)) {
    out += *b ? "true" : "false";
  } else {
    out += '"';
    out += util::json_escape(std::get<std::string>(value));
    out += '"';
  }
}

void append_args(std::string& out, const std::vector<std::pair<std::string, Value>>& attrs,
                 std::uint64_t span_id, std::uint64_t parent) {
  out += "\"args\":{\"span\":" + std::to_string(span_id);
  out += ",\"parent\":" + std::to_string(parent);
  for (const auto& [key, value] : attrs) {
    out += ",\"";
    out += util::json_escape(key);
    out += "\":";
    append_arg_value(out, value);
  }
  out += '}';
}

/// Microseconds, the unit the trace-event format expects.
std::string us(double seconds) { return util::json_number(seconds * 1e6); }

}  // namespace

std::string render_chrome_trace(const std::vector<TraceTrack>& tracks) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto begin_event = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };
  for (const TraceTrack& track : tracks) {
    const std::string pid = std::to_string(track.pid);
    begin_event();
    out += "{\"ph\":\"M\",\"pid\":" + pid + ",\"tid\":0,\"name\":\"process_name\",";
    out += "\"args\":{\"name\":\"" + util::json_escape(track.name) + "\"}}";
    if (track.spans != nullptr) {
      for (const SpanRecord& span : *track.spans) {
        begin_event();
        out += "{\"ph\":\"X\",\"pid\":" + pid + ",\"tid\":0,\"name\":\"";
        out += util::json_escape(span.name);
        out += "\",\"cat\":\"span\",";
        append_args(out, span.attributes, span.id, span.parent);
        out += ",\"ts\":" + us(span.start_s);
        out += ",\"dur\":" + us(span.duration_s) + '}';
      }
    }
    if (track.instants != nullptr) {
      for (const InstantRecord& instant : *track.instants) {
        begin_event();
        out += "{\"ph\":\"i\",\"pid\":" + pid + ",\"tid\":0,\"name\":\"";
        out += util::json_escape(instant.name);
        out += "\",\"cat\":\"instant\",\"s\":\"t\",";
        append_args(out, instant.attributes, instant.span, 0);
        if (instant.determinism == Determinism::kUnstable) out += ",\"unstable\":true";
        out += ",\"ts\":" + us(instant.at_s) + '}';
      }
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace redopt::telemetry
