#include "telemetry/events.h"

#include <atomic>
#include <fstream>
#include <mutex>
#include <sstream>

#include "util/error.h"
#include "util/json.h"

namespace redopt::telemetry {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_has_sinks{false};
std::mutex g_sink_mutex;
std::vector<std::shared_ptr<EventSink>>& sinks() {
  static std::vector<std::shared_ptr<EventSink>> instance;
  return instance;
}

void append_value(std::ostringstream& os, const Value& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    os << *i;
  } else if (const auto* u = std::get_if<std::uint64_t>(&value)) {
    os << *u;
  } else if (const auto* d = std::get_if<double>(&value)) {
    os << util::json_number(*d);
  } else if (const auto* b = std::get_if<bool>(&value)) {
    os << (*b ? "true" : "false");
  } else {
    os << '"' << util::json_escape(std::get<std::string>(value)) << '"';
  }
}

void append_fields(std::ostringstream& os, const std::vector<std::pair<std::string, Value>>& fields) {
  os << '{';
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) os << ',';
    first = false;
    os << '"' << util::json_escape(key) << "\":";
    append_value(os, value);
  }
  os << '}';
}

}  // namespace

struct JsonlSink::Impl {
  std::ofstream out;
};

JsonlSink::JsonlSink(const std::string& path) : impl_(std::make_unique<Impl>()) {
  impl_->out.open(path, std::ios::out | std::ios::trunc);
  REDOPT_REQUIRE(impl_->out.is_open(), "cannot open telemetry JSONL file: " + path);
}

JsonlSink::~JsonlSink() = default;

std::string JsonlSink::to_json(const Event& event) {
  std::ostringstream os;
  os << "{\"event\":\"" << util::json_escape(event.name) << "\",\"fields\":";
  append_fields(os, event.fields);
  if (!event.nd_fields.empty()) {
    os << ",\"nd\":";
    append_fields(os, event.nd_fields);
  }
  os << '}';
  return os.str();
}

void JsonlSink::emit(const Event& event) { impl_->out << to_json(event) << '\n'; }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool tracing_enabled() { return enabled() && g_has_sinks.load(std::memory_order_relaxed); }

void add_sink(std::shared_ptr<EventSink> sink) {
  REDOPT_REQUIRE(sink != nullptr, "cannot attach a null telemetry sink");
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  sinks().push_back(std::move(sink));
  g_has_sinks.store(true, std::memory_order_relaxed);
}

void remove_sink(const EventSink* sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  auto& list = sinks();
  for (auto it = list.begin(); it != list.end(); ++it) {
    if (it->get() == sink) {
      list.erase(it);
      break;
    }
  }
  g_has_sinks.store(!list.empty(), std::memory_order_relaxed);
}

void clear_sinks() {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  sinks().clear();
  g_has_sinks.store(false, std::memory_order_relaxed);
}

void emit(const Event& event) {
  if (!tracing_enabled()) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  for (const auto& sink : sinks()) sink->emit(event);
}

void emit_metrics_snapshot(const Snapshot& snapshot) {
  for (const MetricValue& m : snapshot) {
    Event event("metric");
    event.with("name", m.name);
    const bool stable = m.determinism == Determinism::kStable;
    auto put = [&](std::string key, Value value) {
      if (stable) {
        event.with(std::move(key), std::move(value));
      } else {
        event.with_nd(std::move(key), std::move(value));
      }
    };
    switch (m.kind) {
      case MetricValue::Kind::kCounter:
        event.with("kind", std::string("counter"));
        put("value", m.counter);
        break;
      case MetricValue::Kind::kGauge:
        event.with("kind", std::string("gauge"));
        put("value", m.gauge);
        break;
      case MetricValue::Kind::kHistogram: {
        event.with("kind", std::string("histogram"));
        put("count", m.count);
        if (m.count > 0) {
          put("sum", m.sum);
          put("min", m.min);
          put("max", m.max);
        }
        // Buckets as parallel field lists keeps the line flat (the JSONL
        // writer has no nested-array support and does not need it).
        for (std::size_t b = 0; b < m.upper_bounds.size(); ++b) {
          if (m.bucket_counts[b] == 0) continue;
          put("le_" + util::json_number(m.upper_bounds[b]), m.bucket_counts[b]);
        }
        if (m.overflow_count > 0) put("le_inf", m.overflow_count);
        break;
      }
    }
    emit(event);
  }
}

Scope::Scope(const std::string& name) : active_(enabled()) {
  if (!active_) return;
  calls_ = registry().counter(name + ".calls");
  seconds_ = registry().histogram(name + ".seconds",
                                  BucketLayout::exponential(1e-6, 10.0, 9), Determinism::kUnstable);
}

Scope::~Scope() {
  if (!active_) return;
  calls_.inc();
  seconds_.observe(watch_.elapsed_seconds());
}

}  // namespace redopt::telemetry
