// Round-scoped spans: a hierarchical, count-deterministic record of what
// the process did, designed to survive the determinism contract that the
// metrics registry already honours.
//
// A span has a name, a parent (the span that was open when it opened),
// and stable attributes — all pure functions of the computation, so the
// *structure* of a span log (ids, parentage, names, attributes, instant
// events) is byte-identical across backends and thread counts for the
// same execution.  Wall-clock timings (start offset, duration) ride
// along but are nondeterministic by nature; they are segregated exactly
// like Determinism::kUnstable metric values: serializers put them under
// "nd" keys so bit-identity checks can strip them wholesale.
//
// Instant events mark point occurrences inside the current span (a
// dropped reply, an elimination).  Most are stable — their *count* is a
// function of the computation — but timing-dependent ones (socket read
// retries, link deaths) are flagged Determinism::kUnstable so the stable
// projection can drop the whole record, not just its timestamp.
//
// Concurrency: a SpanLog is serial-context only, like Registry
// registration — every wired call site opens spans outside parallel
// regions (trainer loops, the chaos round loop, transport exchanges).
// The capacity cap keeps a pathological caller from growing the log
// without bound; drops are counted deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/events.h"
#include "util/stopwatch.h"

namespace redopt::telemetry {

/// One completed (or still open) span.
struct SpanRecord {
  std::uint64_t id = 0;      ///< 1-based, assigned in open order
  std::uint64_t parent = 0;  ///< id of the enclosing span; 0 = root
  std::string name;
  std::vector<std::pair<std::string, Value>> attributes;  ///< deterministic

  // Wall-clock timing, relative to the owning log's epoch.  Excluded
  // from the bit-identity contract (serialized under "nd").
  double start_s = 0.0;
  double duration_s = 0.0;
  bool closed = false;
};

/// A point event inside a span.
struct InstantRecord {
  std::uint64_t span = 0;  ///< enclosing span id; 0 = outside any span
  std::string name;
  std::vector<std::pair<std::string, Value>> attributes;
  /// kUnstable when even the *occurrence count* is timing-dependent
  /// (socket retries, link deaths); such records are dropped entirely by
  /// the stable projection.
  Determinism determinism = Determinism::kStable;
  double at_s = 0.0;  ///< wall-clock offset; always nd
};

/// An append-only span + instant log with LIFO span nesting.
class SpanLog {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  explicit SpanLog(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  /// Opens a span under the currently open span and returns its id.
  /// Ids keep advancing past the capacity cap (structure stays
  /// deterministic); records beyond the cap are counted, not stored.
  std::uint64_t open(const std::string& name);

  /// Attaches a deterministic attribute to an open or closed span.
  /// No-op for ids the cap dropped.
  void attr(std::uint64_t id, const std::string& key, Value value);

  /// Closes @p id, recording its duration.  Spans close LIFO (RAII
  /// enforces this); closing out of order closes the intervening spans.
  void close(std::uint64_t id);

  /// Records a point event inside the currently open span.
  void instant(const std::string& name,
               std::vector<std::pair<std::string, Value>> attributes = {},
               Determinism determinism = Determinism::kStable);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<InstantRecord>& instants() const { return instants_; }

  /// Total spans opened, dropped ones included (== the last id handed out).
  std::uint64_t opened() const { return opened_; }
  /// Span + instant records the capacity cap refused to store.  A pure
  /// function of the computation (the cap is a constant), hence stable.
  std::uint64_t dropped() const { return dropped_; }
  std::size_t capacity() const { return capacity_; }

  /// Discards every record and resets ids; the epoch restarts too.
  void clear();

 private:
  std::size_t capacity_;
  std::vector<SpanRecord> spans_;
  std::vector<InstantRecord> instants_;
  std::vector<std::uint64_t> stack_;  ///< open span ids, innermost last
  std::uint64_t opened_ = 0;
  std::uint64_t dropped_ = 0;
  util::Stopwatch epoch_;
};

/// The process-wide span log, shared by every wired call site (each
/// AgentReplica additionally owns a private log that ships with its
/// registry snapshot — see ship.h).
SpanLog& span_log();

/// Records an instant in the global log; no-op when telemetry is
/// disabled, so hot paths can call it unconditionally.
void span_instant(const std::string& name,
                  std::vector<std::pair<std::string, Value>> attributes = {},
                  Determinism determinism = Determinism::kStable);

/// RAII span.  The single-argument form writes to the global log and is
/// inert when telemetry was disabled at construction; the two-argument
/// form writes to an explicit log unconditionally (per-agent logs record
/// regardless of the global switch — forked agent processes inherit the
/// switch state at fork time, so gating on it would diverge).
class ScopedSpan {
 public:
  explicit ScopedSpan(const std::string& name);
  ScopedSpan(SpanLog& log, const std::string& name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a deterministic attribute; returns *this for chaining.
  ScopedSpan& attr(const std::string& key, Value value);

  /// The underlying span id (0 when inert).
  std::uint64_t id() const { return id_; }

 private:
  SpanLog* log_ = nullptr;
  std::uint64_t id_ = 0;
};

}  // namespace redopt::telemetry
