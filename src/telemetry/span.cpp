#include "telemetry/span.h"

#include <algorithm>

namespace redopt::telemetry {

std::uint64_t SpanLog::open(const std::string& name) {
  const std::uint64_t id = ++opened_;
  const std::uint64_t parent = stack_.empty() ? 0 : stack_.back();
  stack_.push_back(id);
  if (spans_.size() < capacity_) {
    SpanRecord record;
    record.id = id;
    record.parent = parent;
    record.name = name;
    record.start_s = epoch_.elapsed_seconds();
    spans_.push_back(std::move(record));
  } else {
    ++dropped_;
  }
  return id;
}

void SpanLog::attr(std::uint64_t id, const std::string& key, Value value) {
  // Ids are handed out sequentially and records are stored in open
  // order, so the record for id (when it survived the cap) is spans_[id-1].
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attributes.emplace_back(key, std::move(value));
}

void SpanLog::close(std::uint64_t id) {
  const double now = epoch_.elapsed_seconds();
  auto close_one = [&](std::uint64_t victim) {
    if (victim == 0 || victim > spans_.size()) return;
    SpanRecord& record = spans_[victim - 1];
    if (!record.closed) {
      record.duration_s = now - record.start_s;
      record.closed = true;
    }
  };
  while (!stack_.empty()) {
    const std::uint64_t top = stack_.back();
    stack_.pop_back();
    close_one(top);
    if (top == id) return;
  }
  close_one(id);  // id was not on the stack (already popped defensively)
}

void SpanLog::instant(const std::string& name,
                      std::vector<std::pair<std::string, Value>> attributes,
                      Determinism determinism) {
  if (instants_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  InstantRecord record;
  record.span = stack_.empty() ? 0 : stack_.back();
  record.name = name;
  record.attributes = std::move(attributes);
  record.determinism = determinism;
  record.at_s = epoch_.elapsed_seconds();
  instants_.push_back(std::move(record));
}

void SpanLog::clear() {
  spans_.clear();
  instants_.clear();
  stack_.clear();
  opened_ = 0;
  dropped_ = 0;
  epoch_.reset();
}

SpanLog& span_log() {
  static SpanLog log;
  return log;
}

void span_instant(const std::string& name,
                  std::vector<std::pair<std::string, Value>> attributes,
                  Determinism determinism) {
  if (!enabled()) return;
  span_log().instant(name, std::move(attributes), determinism);
}

ScopedSpan::ScopedSpan(const std::string& name) {
  if (!enabled()) return;
  log_ = &span_log();
  id_ = log_->open(name);
}

ScopedSpan::ScopedSpan(SpanLog& log, const std::string& name) : log_(&log) {
  id_ = log_->open(name);
}

ScopedSpan::~ScopedSpan() {
  if (log_ != nullptr) log_->close(id_);
}

ScopedSpan& ScopedSpan::attr(const std::string& key, Value value) {
  if (log_ != nullptr) log_->attr(id_, key, std::move(value));
  return *this;
}

}  // namespace redopt::telemetry
