// Cross-process telemetry shipping: how a forked agent's metrics and
// spans reach the coordinator, and how the coordinator merges many
// per-agent islands into one manifest.
//
// Each transport agent owns an AgentTelemetry island — a private
// Registry plus a private SpanLog — recorded into unconditionally (the
// global telemetry switch is fork-inherited state, so gating on it would
// let the two backends diverge).  At collection time the island is
// serialized to a deterministic JSON blob, shipped through the
// util::frame codec as a kTelemetry frame (socket backend) or handed
// over directly (inproc backend), and parsed back into an AgentSnapshot
// on the coordinator.
//
// Both backends funnel through the same serialize → parse round trip,
// so any canonicalization (attribute value typing, number formatting)
// happens identically on both sides — that is what makes the merged
// manifest byte-identical between inproc and socket executions of the
// same scenario once nondeterministic fields are stripped.
//
// The nd segregation mirrors the JSONL sink: wall-clock values
// (span timings, kUnstable metric values) serialize under "nd" members,
// and records whose very *occurrence* is timing-dependent carry
// "unstable":true.  stable_json_projection() strips both, yielding the
// canonical byte-comparable document.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace redopt::telemetry {

/// One agent's private telemetry island.  Serial within the agent; the
/// registry must outlive any thread that recorded into it (agents are
/// single-threaded, so this is trivially true).
struct AgentTelemetry {
  Registry registry;
  SpanLog spans;
};

/// A parsed (or locally captured) point-in-time view of one agent's
/// island — what the coordinator merges.
struct AgentSnapshot {
  std::uint32_t agent = 0;
  Snapshot metrics;  ///< name-sorted, like Registry::snapshot()
  std::vector<SpanRecord> spans;
  std::vector<InstantRecord> instants;
  std::uint64_t spans_dropped = 0;
};

/// Serializes @p snapshot as one deterministic JSON object.
///
/// Attribute values canonicalize on the round trip: integer-valued
/// attributes come back as int64 (uint64 attributes must fit — span
/// attribute authors use small values: rounds, agent ids, counts).
std::string serialize_agent_snapshot(const AgentSnapshot& snapshot);

/// Captures @p telemetry (registry snapshot + span log) and serializes
/// it for @p agent.  Serial-context only.
std::string serialize_agent_telemetry(std::uint32_t agent, const AgentTelemetry& telemetry);

/// Strict inverse of serialize_agent_snapshot; any malformed document
/// raises PreconditionError (the socket backend feeds this bytes that
/// crossed a process boundary).
AgentSnapshot parse_agent_snapshot(const std::string& json_text);

/// Merges per-agent metrics into @p coordinator under per-agent labels:
/// agent i's metric "replica.rounds" becomes "agent.<i>.replica.rounds".
/// The result is name-sorted like a Registry snapshot, so
/// render_prometheus() applies directly.
Snapshot merge_agent_snapshots(const Snapshot& coordinator,
                               const std::vector<AgentSnapshot>& agents);

/// Renders the unified manifest: the coordinator's metrics plus every
/// agent's full snapshot, as one JSON document.  Byte-identical across
/// backends and thread counts after stable_json_projection().
std::string render_merged_manifest(const Snapshot& coordinator,
                                   const std::vector<AgentSnapshot>& agents);

/// The canonical stable projection of a telemetry JSON document (a
/// merged manifest, an agent blob, or a Chrome trace): parses strictly,
/// removes every object member named "nd", "ts", or "dur", drops array
/// elements flagged "unstable":true, and re-serializes compactly.
std::string stable_json_projection(const std::string& json_text);

}  // namespace redopt::telemetry
