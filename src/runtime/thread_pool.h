// Fixed-size worker pool underpinning the runtime's parallel primitives.
//
// Design constraints (see runtime.h for the user-facing primitives):
//
//   * fixed size — the lane count is set at construction and never changes;
//   * lazily started — no thread is spawned until the first multi-lane
//     run(), so a pool that is never exercised costs nothing;
//   * joinable — join() stops and reclaims the workers; a later run()
//     restarts them transparently;
//   * exception-propagating — if task invocations throw, the exception of
//     the lowest-indexed failing task is rethrown in the caller.
//
// Work distribution uses a shared atomic index counter, so *which* lane
// executes a given task index is unspecified; determinism therefore comes
// from the task decomposition (each index writes its own slot), which the
// higher-level parallel_for / parallel_reduce primitives guarantee.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace redopt::runtime {

/// A pool of N execution lanes *including the calling thread*: run() uses
/// N - 1 background workers plus the caller, so a 1-lane pool executes
/// everything inline and never spawns a thread.
class ThreadPool {
 public:
  /// Requires threads >= 1.  Does not spawn anything yet.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (>= 1), fixed at construction.
  std::size_t threads() const { return threads_; }

  /// True while background workers are alive (spawned and not joined).
  bool started() const;

  /// Invokes task(i) for every i in [0, count), distributing indices over
  /// the caller plus the workers, and blocks until all invocations have
  /// finished.  Every index is attempted even if some invocations throw;
  /// afterwards the exception raised by the lowest-indexed failing task is
  /// rethrown.  Concurrent run() calls from different threads serialize.
  /// run() must not be called from inside a task — the runtime's
  /// parallel_for degrades nested parallelism to inline execution instead.
  void run(std::size_t count, const std::function<void(std::size_t)>& task);

  /// Stops and joins the background workers.  The pool restarts lazily on
  /// the next run().  Must not be called concurrently with run().
  void join();

 private:
  /// One batch of tasks.  Heap-allocated and shared with the workers so a
  /// worker waking up late for an already-finished job can only no-op on
  /// the stale batch — it can never steal indices from a newer one.
  struct Job {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t error_index = 0;
    std::exception_ptr error;
  };

  void ensure_started_locked();
  void worker_loop(std::uint64_t seen_generation);
  void drain(Job& job);

  const std::size_t threads_;

  std::mutex run_mutex_;  // serializes run() / join() callers

  mutable std::mutex mutex_;         // guards everything below
  std::condition_variable job_cv_;   // wakes workers: new job or stop
  std::condition_variable done_cv_;  // wakes the caller: job complete
  std::vector<std::thread> workers_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  std::shared_ptr<Job> job_;
};

}  // namespace redopt::runtime
