#include "runtime/thread_pool.h"

#include <limits>

#include "util/error.h"

namespace redopt::runtime {

ThreadPool::ThreadPool(std::size_t threads) : threads_(threads) {
  REDOPT_REQUIRE(threads >= 1, "thread pool needs at least one lane");
}

ThreadPool::~ThreadPool() { join(); }

bool ThreadPool::started() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !workers_.empty();
}

void ThreadPool::run(std::size_t count, const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (threads_ == 1 || count == 1) {
    // Inline fast path: no workers, exceptions propagate naturally.
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mutex_);
  auto job = std::make_shared<Job>();
  job->task = &task;
  job->count = count;
  job->error_index = std::numeric_limits<std::size_t>::max();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ensure_started_locked();
    job_ = job;
    ++generation_;
  }
  job_cv_.notify_all();
  drain(*job);

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job->done.load(std::memory_order_acquire) >= job->count; });
    job_.reset();
    error = job->error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::drain(Job& job) {
  std::size_t i;
  while ((i = job.next.fetch_add(1, std::memory_order_relaxed)) < job.count) {
    try {
      (*job.task)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job.error == nullptr || i < job.error_index) {
        job.error = std::current_exception();
        job.error_index = i;
      }
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.count) {
      // Notify under the mutex so the caller cannot miss the wakeup
      // between its predicate check and its wait.
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop(std::uint64_t seen_generation) {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    // job_ may already be cleared if the batch finished before this worker
    // woke; a stale shared batch is exhausted, so drain() no-ops.
    if (job) drain(*job);
  }
}

void ThreadPool::ensure_started_locked() {
  if (!workers_.empty()) return;
  workers_.reserve(threads_ - 1);
  for (std::size_t w = 0; w + 1 < threads_; ++w) {
    workers_.emplace_back([this, seen = generation_] { worker_loop(seen); });
  }
}

void ThreadPool::join() {
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (workers_.empty()) return;
    stop_ = true;
    workers.swap(workers_);
  }
  job_cv_.notify_all();
  for (auto& worker : workers) worker.join();
  std::lock_guard<std::mutex> lock(mutex_);
  stop_ = false;
}

}  // namespace redopt::runtime
