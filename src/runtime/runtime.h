// Process-wide deterministic parallel execution runtime.
//
// These primitives are the sanctioned way for redopt hot paths to use
// multiple cores.  Determinism is a hard requirement, not best-effort:
// for every wired code path, results are bit-identical for every value of
// set_threads().  The primitives make that easy to uphold:
//
//   * parallel_for(begin, end, fn) — invokes fn(i) exactly once per index
//     with static chunking (contiguous blocks, one per lane).  fn must
//     write only per-index state; with that discipline the thread count
//     cannot influence results.
//   * parallel_reduce(begin, end, identity, map, combine) — evaluates
//     map(i) per index (in parallel) and folds the leaves through a
//     FIXED-SHAPE binary reduction tree whose shape depends only on the
//     element count, never on the thread count, so even non-associative
//     floating-point combines produce bit-identical results at any lane
//     count.
//
// The default pool is process-wide and lazily started.  Configure it with
// set_threads() or the REDOPT_THREADS environment variable; the default is
// 1 (fully serial, the library's historical behaviour), so nothing changes
// unless a caller opts in.  Nested parallel regions execute inline on the
// calling thread — chunk shapes still depend only on the configured lane
// count, keeping nested and top-level execution bit-identical.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"

namespace redopt::runtime {

/// Configured lane count: the last set_threads() value, else the
/// REDOPT_THREADS environment variable, else 1.
std::size_t threads();

/// Reconfigures the default pool to @p n lanes (0 = hardware concurrency).
/// Joins any existing pool first.  Must not be called from inside a
/// parallel region or concurrently with parallel work.
void set_threads(std::size_t n);

/// The process-wide pool backing parallel_for / parallel_reduce.  Lazily
/// constructed (and lazily started) on first use.
ThreadPool& default_pool();

/// Joins the default pool's workers (it restarts lazily on next use).
/// Useful for tests and for a clean process exit under sanitizers.
void shutdown();

/// True while the calling thread executes inside a parallel region; the
/// primitives degrade to inline serial execution there.
bool in_parallel_region();

/// Invokes fn(i) exactly once for every i in [begin, end), statically
/// chunked across the default pool's lanes.  fn must be safe to invoke
/// concurrently for distinct indices.  Blocks until every index finished;
/// rethrows the exception of the lowest-indexed failing invocation.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

namespace detail {

bool& region_flag();

/// Marks the enclosing scope as a parallel region on this thread.
struct RegionGuard {
  RegionGuard() : previous(region_flag()) { region_flag() = true; }
  ~RegionGuard() { region_flag() = previous; }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;
  bool previous;
};

}  // namespace detail

/// Maps every index in [begin, end) through @p map (in parallel) and folds
/// the results with @p combine through a fixed-shape binary reduction tree:
/// adjacent pairs are combined level by level, an odd trailing element is
/// carried up unchanged.  The tree shape depends only on the element
/// count, so the result is bit-identical for every thread count.  The
/// leaves are combined on the calling thread, in deterministic order;
/// @p identity is returned only for an empty range (it never enters the
/// tree).  T must be copy-constructible and movable.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, MapFn&& map,
                  CombineFn&& combine) {
  if (end <= begin) return identity;
  const std::size_t count = end - begin;
  std::vector<T> level(count, identity);
  parallel_for(begin, end, [&](std::size_t i) { level[i - begin] = map(i); });
  while (level.size() > 1) {
    std::vector<T> next;
    next.reserve(level.size() / 2 + (level.size() & 1));
    for (std::size_t p = 0; p + 1 < level.size(); p += 2) {
      next.push_back(combine(level[p], level[p + 1]));
    }
    if (level.size() & 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  return std::move(level.front());
}

}  // namespace redopt::runtime
