#include "runtime/runtime.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace redopt::runtime {

namespace {

std::mutex g_mutex;
std::unique_ptr<ThreadPool> g_pool;
std::size_t g_threads = 0;  // 0 = not yet resolved

/// REDOPT_THREADS if set to a positive integer, else 1 (serial).
std::size_t resolve_default_threads() {
  if (const char* env = std::getenv("REDOPT_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1) return static_cast<std::size_t>(value);
  }
  return 1;
}

std::size_t threads_locked() {
  if (g_threads == 0) g_threads = resolve_default_threads();
  return g_threads;
}

}  // namespace

std::size_t threads() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return threads_locked();
}

void set_threads(std::size_t n) {
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  std::unique_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (g_threads == n) return;
    old = std::move(g_pool);
    g_threads = n;
  }
  // The old pool's workers join here, outside g_mutex: its run() holds the
  // pool's own lock while tasks may call threads(), so joining under
  // g_mutex would order the two mutexes both ways (potential deadlock).
}

ThreadPool& default_pool() {
  std::lock_guard<std::mutex> lock(g_mutex);
  const std::size_t n = threads_locked();
  if (!g_pool || g_pool->threads() != n) g_pool = std::make_unique<ThreadPool>(n);
  return *g_pool;
}

void shutdown() {
  std::unique_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    old = std::move(g_pool);
  }
  // Destroyed (and therefore joined) outside g_mutex — same ordering
  // concern as set_threads; default_pool() lazily recreates on next use.
}

namespace detail {

bool& region_flag() {
  thread_local bool in_region = false;
  return in_region;
}

}  // namespace detail

bool in_parallel_region() { return detail::region_flag(); }

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  if (count == 1 || in_parallel_region()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  ThreadPool& pool = default_pool();
  if (pool.threads() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(count, pool.threads());
  const std::size_t base = count / chunks;
  const std::size_t rem = count % chunks;
  pool.run(chunks, [&](std::size_t c) {
    const detail::RegionGuard guard;
    const std::size_t lo = begin + c * base + std::min(c, rem);
    const std::size_t hi = lo + base + (c < rem ? 1 : 0);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace redopt::runtime
