#include "filters/bulyan.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "filters/krum.h"
#include "linalg/kernels.h"
#include "filters/norm_cache.h"
#include "util/error.h"

namespace redopt::filters {

BulyanFilter::BulyanFilter(std::size_t n, std::size_t f) : n_(n), f_(f) {
  REDOPT_REQUIRE(n >= 4 * f + 3, "Bulyan requires n >= 4f + 3");
}

std::vector<std::size_t> BulyanFilter::select_indices(const std::vector<Vector>& gradients,
                                                      NormCache& cache) const {
  // Stage 1: iterative Krum selection of theta gradients.  The selection
  // rule is Krum's (krum_select_iterative degrades the neighbourhood in
  // the final rounds exactly like krum_select does for small pools); the
  // pairwise distances are shared across all theta rounds, and each
  // candidate's sorted distance array is maintained incrementally instead
  // of being rebuilt per round.
  return krum_select_iterative(gradients, f_, n_ - 2 * f_, cache.pairwise_distances_squared());
}

std::vector<std::size_t> BulyanFilter::accepted_inputs(
    const std::vector<Vector>& gradients) const {
  NormCache cache(gradients);
  return accepted_inputs_with_cache(gradients, cache);
}

std::vector<std::size_t> BulyanFilter::accepted_inputs_with_cache(
    const std::vector<Vector>& gradients, NormCache& cache) const {
  detail::check_inputs(gradients, n_, "bulyan");
  std::vector<std::size_t> picks = select_indices(gradients, cache);
  std::sort(picks.begin(), picks.end());
  return picks;
}

Vector BulyanFilter::apply(const std::vector<Vector>& gradients) const {
  NormCache cache(gradients);
  return apply_with_cache(gradients, cache);
}

Vector BulyanFilter::apply_with_cache(const std::vector<Vector>& gradients,
                                      NormCache& cache) const {
  detail::check_inputs(gradients, n_, "bulyan");
  const std::size_t d = gradients.front().size();
  const std::size_t theta = n_ - 2 * f_;
  const std::size_t beta = theta - 2 * f_;

  const std::vector<std::size_t> picks = select_indices(gradients, cache);

  // Stage 2: per coordinate, average the beta values closest to the median
  // of the selected set.  The selected values are gathered once into a
  // column-major theta x d scratch (tiled, like gather_columns) so the
  // per-coordinate pass reads each column contiguously instead of striding
  // across theta heap buffers.
  std::vector<double> columns(theta * d);
  constexpr std::size_t kTile = 32;
  for (std::size_t t0 = 0; t0 < theta; t0 += kTile) {
    const std::size_t t1 = std::min(theta, t0 + kTile);
    for (std::size_t k0 = 0; k0 < d; k0 += kTile) {
      const std::size_t k1 = std::min(d, k0 + kTile);
      for (std::size_t t = t0; t < t1; ++t) {
        const double* g = gradients[picks[t]].data().data();
        for (std::size_t k = k0; k < k1; ++k) columns[k * theta + t] = g[k];
      }
    }
  }

  Vector out(d);
  for (std::size_t k = 0; k < d; ++k) {
    double* column = columns.data() + k * theta;
    std::sort(column, column + theta);
    const double median = (theta % 2 == 1)
                              ? column[theta / 2]
                              : 0.5 * (column[theta / 2 - 1] + column[theta / 2]);
    std::sort(column, column + theta, [median](double a, double b) {
      return std::abs(a - median) < std::abs(b - median);
    });
    out[k] = linalg::kernels::sum(column, beta) / static_cast<double>(beta);
  }
  return out;
}

}  // namespace redopt::filters
