#include "filters/bulyan.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "filters/krum.h"
#include "util/error.h"

namespace redopt::filters {

BulyanFilter::BulyanFilter(std::size_t n, std::size_t f) : n_(n), f_(f) {
  REDOPT_REQUIRE(n >= 4 * f + 3, "Bulyan requires n >= 4f + 3");
}

std::vector<std::size_t> BulyanFilter::select_indices(const std::vector<Vector>& gradients) const {
  // Stage 1: iterative Krum selection of theta gradients.  Reuse Krum by
  // shrinking the candidate pool; the fault budget f stays fixed.
  // krum_select tolerates pools below f + 3 in the final rounds (it
  // degrades to nearest-neighbour there).
  const std::size_t theta = n_ - 2 * f_;
  std::vector<bool> active(n_, true);
  std::vector<std::size_t> picks;
  picks.reserve(theta);
  for (std::size_t round = 0; round < theta; ++round) {
    const std::size_t pick = krum_select(gradients, active, f_);
    picks.push_back(pick);
    active[pick] = false;
  }
  return picks;
}

std::vector<std::size_t> BulyanFilter::accepted_inputs(
    const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "bulyan");
  std::vector<std::size_t> picks = select_indices(gradients);
  std::sort(picks.begin(), picks.end());
  return picks;
}

Vector BulyanFilter::apply(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "bulyan");
  const std::size_t d = gradients.front().size();
  const std::size_t theta = n_ - 2 * f_;
  const std::size_t beta = theta - 2 * f_;

  std::vector<Vector> selected;
  selected.reserve(theta);
  for (std::size_t pick : select_indices(gradients)) selected.push_back(gradients[pick]);

  // Stage 2: per coordinate, average the beta values closest to the median
  // of the selected set.
  Vector out(d);
  std::vector<double> column(theta);
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t i = 0; i < theta; ++i) column[i] = selected[i][k];
    std::sort(column.begin(), column.end());
    const double median = (theta % 2 == 1)
                              ? column[theta / 2]
                              : 0.5 * (column[theta / 2 - 1] + column[theta / 2]);
    std::sort(column.begin(), column.end(), [median](double a, double b) {
      return std::abs(a - median) < std::abs(b - median);
    });
    double acc = 0.0;
    for (std::size_t i = 0; i < beta; ++i) acc += column[i];
    out[k] = acc / static_cast<double>(beta);
  }
  return out;
}

}  // namespace redopt::filters
