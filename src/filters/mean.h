// Non-robust baselines: plain average and plain sum of all n gradients.
//
// These are the "DGD without any gradient-filter" baselines; under Byzantine
// faults they are expected to fail (that failure is part of the evaluation).
#pragma once

#include "filters/gradient_filter.h"

namespace redopt::filters {

/// Average of all n gradients.
class MeanFilter final : public GradientFilter {
 public:
  explicit MeanFilter(std::size_t n);
  Vector apply(const std::vector<Vector>& gradients) const override;
  std::string name() const override { return "mean"; }
  std::size_t expected_inputs() const override { return n_; }

 private:
  std::size_t n_;
};

/// Sum of all n gradients (the classical DGD aggregate).
class SumFilter final : public GradientFilter {
 public:
  explicit SumFilter(std::size_t n);
  Vector apply(const std::vector<Vector>& gradients) const override;
  std::string name() const override { return "sum"; }
  std::size_t expected_inputs() const override { return n_; }

 private:
  std::size_t n_;
};

}  // namespace redopt::filters
