#include "filters/trimmed_mean.h"

#include <algorithm>
#include <numeric>

#include "filters/norm_cache.h"
#include "linalg/kernels.h"
#include "util/error.h"

namespace redopt::filters {

CwtmFilter::CwtmFilter(std::size_t n, std::size_t f) : n_(n), f_(f) {
  REDOPT_REQUIRE(n > 2 * f, "CWTM requires n > 2f");
}

Vector CwtmFilter::apply(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "cwtm");
  const std::size_t d = gradients.front().size();
  Vector out(d);
  // One tiled gather into a column-major scratch, then each coordinate's
  // column is read (and sorted) contiguously.  The naive per-coordinate
  // gather strides across n heap buffers and thrashes the cache at large d.
  std::vector<double> columns;
  gather_columns(gradients, columns);
  for (std::size_t k = 0; k < d; ++k) {
    double* column = columns.data() + k * n_;
    std::sort(column, column + n_);
    out[k] = linalg::kernels::sum(column + f_, n_ - 2 * f_) / static_cast<double>(n_ - 2 * f_);
  }
  return out;
}

std::vector<std::size_t> CwtmFilter::accepted_inputs(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "cwtm");
  const std::size_t d = gradients.front().size();
  std::vector<bool> survives(n_, false);
  std::vector<std::size_t> order(n_);
  for (std::size_t k = 0; k < d; ++k) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (gradients[a][k] != gradients[b][k]) return gradients[a][k] < gradients[b][k];
      return a < b;
    });
    for (std::size_t i = f_; i < n_ - f_; ++i) survives[order[i]] = true;
  }
  std::vector<std::size_t> accepted;
  for (std::size_t i = 0; i < n_; ++i) {
    if (survives[i]) accepted.push_back(i);
  }
  return accepted;
}

CwMedianFilter::CwMedianFilter(std::size_t n) : n_(n) {
  REDOPT_REQUIRE(n >= 1, "CWMed requires n >= 1");
}

Vector CwMedianFilter::apply(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "cwmed");
  const std::size_t d = gradients.front().size();
  Vector out(d);
  std::vector<double> columns;
  gather_columns(gradients, columns);
  const std::size_t mid = n_ / 2;
  for (std::size_t k = 0; k < d; ++k) {
    double* column = columns.data() + k * n_;
    // Selection instead of a full sort: the median value(s) are the same
    // order statistics either way, so the output bytes are unchanged.
    std::nth_element(column, column + mid, column + n_);
    if (n_ % 2 == 1) {
      out[k] = column[mid];
    } else {
      const double lower = *std::max_element(column, column + mid);
      out[k] = 0.5 * (lower + column[mid]);
    }
  }
  return out;
}

}  // namespace redopt::filters
