#include "filters/trimmed_mean.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace redopt::filters {

CwtmFilter::CwtmFilter(std::size_t n, std::size_t f) : n_(n), f_(f) {
  REDOPT_REQUIRE(n > 2 * f, "CWTM requires n > 2f");
}

Vector CwtmFilter::apply(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "cwtm");
  const std::size_t d = gradients.front().size();
  Vector out(d);
  std::vector<double> column(n_);
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t i = 0; i < n_; ++i) column[i] = gradients[i][k];
    std::sort(column.begin(), column.end());
    double acc = 0.0;
    for (std::size_t i = f_; i < n_ - f_; ++i) acc += column[i];
    out[k] = acc / static_cast<double>(n_ - 2 * f_);
  }
  return out;
}

std::vector<std::size_t> CwtmFilter::accepted_inputs(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "cwtm");
  const std::size_t d = gradients.front().size();
  std::vector<bool> survives(n_, false);
  std::vector<std::size_t> order(n_);
  for (std::size_t k = 0; k < d; ++k) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (gradients[a][k] != gradients[b][k]) return gradients[a][k] < gradients[b][k];
      return a < b;
    });
    for (std::size_t i = f_; i < n_ - f_; ++i) survives[order[i]] = true;
  }
  std::vector<std::size_t> accepted;
  for (std::size_t i = 0; i < n_; ++i) {
    if (survives[i]) accepted.push_back(i);
  }
  return accepted;
}

CwMedianFilter::CwMedianFilter(std::size_t n) : n_(n) {
  REDOPT_REQUIRE(n >= 1, "CWMed requires n >= 1");
}

Vector CwMedianFilter::apply(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "cwmed");
  const std::size_t d = gradients.front().size();
  Vector out(d);
  std::vector<double> column(n_);
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t i = 0; i < n_; ++i) column[i] = gradients[i][k];
    std::sort(column.begin(), column.end());
    out[k] = (n_ % 2 == 1) ? column[n_ / 2]
                           : 0.5 * (column[n_ / 2 - 1] + column[n_ / 2]);
  }
  return out;
}

}  // namespace redopt::filters
