// Geometric median of means (GMOM) — Chen, Su, Xu 2017, one of the
// gradient-filters the paper's related work enumerates.
//
// The n gradients are partitioned into k buckets; each bucket is averaged;
// the output is the geometric median (Weiszfeld) of the k bucket means.
// Averaging first reduces variance; the median step tolerates up to
// (k-1)/2 contaminated buckets, so k is chosen with k >= 2f + 1 to ensure
// the f Byzantine gradients can spoil at most f < k/2 buckets.
#pragma once

#include "filters/gradient_filter.h"

namespace redopt::filters {

class GmomFilter final : public GradientFilter {
 public:
  /// @p buckets: number of groups k (defaults to 2f + 1 when 0 is passed).
  /// Requires 1 <= k <= n and, for a meaningful guarantee, k >= 2f + 1.
  GmomFilter(std::size_t n, std::size_t f, std::size_t buckets = 0);

  Vector apply(const std::vector<Vector>& gradients) const override;
  std::string name() const override { return "gmom"; }
  std::size_t expected_inputs() const override { return n_; }

  std::size_t buckets() const { return buckets_; }

 private:
  std::size_t n_;
  std::size_t buckets_;
};

}  // namespace redopt::filters
