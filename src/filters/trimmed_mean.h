// Coordinate-wise trimmed mean (CWTM) and coordinate-wise median (CWMed).
//
// CWTM (eq. 24): per coordinate, drop the f smallest and f largest values
// and average the remaining n - 2f.  Theorem 5 gives (f, D' eps)-resilience
// when the honest gradients are mutually close (Assumption 5's lambda is
// below gamma / (mu sqrt(d))).
//
// CWMed is the f-independent limiting variant (median per coordinate),
// included as a classical robust-aggregation baseline.
#pragma once

#include "filters/gradient_filter.h"

namespace redopt::filters {

class CwtmFilter final : public GradientFilter {
 public:
  /// Requires n > 2f so at least one value survives per coordinate.
  CwtmFilter(std::size_t n, std::size_t f);

  Vector apply(const std::vector<Vector>& gradients) const override;
  std::string name() const override { return "cwtm"; }
  std::size_t expected_inputs() const override { return n_; }

  /// Agents whose value survives trimming in at least one coordinate
  /// (ties broken by agent index, matching a stable per-coordinate sort).
  std::vector<std::size_t> accepted_inputs(const std::vector<Vector>& gradients) const override;

 private:
  std::size_t n_;
  std::size_t f_;
};

class CwMedianFilter final : public GradientFilter {
 public:
  explicit CwMedianFilter(std::size_t n);

  Vector apply(const std::vector<Vector>& gradients) const override;
  std::string name() const override { return "cwmed"; }
  std::size_t expected_inputs() const override { return n_; }

 private:
  std::size_t n_;
};

}  // namespace redopt::filters
