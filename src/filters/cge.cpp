#include "filters/cge.h"

#include <algorithm>
#include <numeric>

#include "filters/norm_cache.h"
#include "util/error.h"

namespace redopt::filters {

namespace {

/// Survivor computation over precomputed norms: sort agent indices by
/// ascending norm (ties broken by agent index) and keep the n - f smallest.
std::vector<std::size_t> survivors_from_norms(const std::vector<double>& norms, std::size_t f) {
  const std::size_t n = norms.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Stable tie-break on agent index keeps the filter deterministic.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (norms[a] != norms[b]) return norms[a] < norms[b];
    return a < b;
  });
  order.resize(n - f);
  return order;
}

}  // namespace

CgeFilter::CgeFilter(std::size_t n, std::size_t f, bool normalize)
    : n_(n), f_(f), normalize_(normalize) {
  REDOPT_REQUIRE(n >= 1, "CGE requires n >= 1");
  REDOPT_REQUIRE(f < n, "CGE requires f < n");
}

std::vector<std::size_t> CgeFilter::surviving_indices(
    const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "cge");
  std::vector<double> norms(n_);
  for (std::size_t i = 0; i < n_; ++i) norms[i] = gradients[i].norm();
  return survivors_from_norms(norms, f_);
}

std::vector<std::size_t> CgeFilter::accepted_inputs_with_cache(
    const std::vector<Vector>& gradients, NormCache& cache) const {
  detail::check_inputs(gradients, n_, "cge");
  return survivors_from_norms(cache.norms(), f_);
}

Vector CgeFilter::apply(const std::vector<Vector>& gradients) const {
  const auto survivors = surviving_indices(gradients);
  Vector out(gradients.front().size());
  for (std::size_t idx : survivors) out += gradients[idx];
  if (normalize_) out /= static_cast<double>(survivors.size());
  return out;
}

Vector CgeFilter::apply_with_cache(const std::vector<Vector>& gradients, NormCache& cache) const {
  const auto survivors = accepted_inputs_with_cache(gradients, cache);
  Vector out(gradients.front().size());
  for (std::size_t idx : survivors) out += gradients[idx];
  if (normalize_) out /= static_cast<double>(survivors.size());
  return out;
}

}  // namespace redopt::filters
