#include "filters/gmom.h"

#include "filters/geometric_median.h"
#include "util/error.h"

namespace redopt::filters {

GmomFilter::GmomFilter(std::size_t n, std::size_t f, std::size_t buckets)
    : n_(n), buckets_(buckets == 0 ? 2 * f + 1 : buckets) {
  REDOPT_REQUIRE(n >= 1, "GMOM requires n >= 1");
  REDOPT_REQUIRE(buckets_ >= 1 && buckets_ <= n, "GMOM bucket count must lie in [1, n]");
  REDOPT_REQUIRE(buckets_ >= 2 * f + 1,
                 "GMOM needs at least 2f + 1 buckets to out-vote f corrupted ones");
}

Vector GmomFilter::apply(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "gmom");
  const std::size_t d = gradients.front().size();

  // Contiguous bucketing (agent order): bucket b gets indices with
  // i % buckets == b, so bucket sizes differ by at most one.
  std::vector<Vector> means(buckets_, Vector(d));
  std::vector<std::size_t> counts(buckets_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    means[i % buckets_] += gradients[i];
    ++counts[i % buckets_];
  }
  for (std::size_t b = 0; b < buckets_; ++b) {
    REDOPT_ASSERT(counts[b] > 0, "GMOM produced an empty bucket");
    means[b] /= static_cast<double>(counts[b]);
  }
  return GeometricMedianFilter::weiszfeld(means, 1e-10, 1000, 1e-12);
}

}  // namespace redopt::filters
