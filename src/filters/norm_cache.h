// Per-round cache of derived quantities over one gradient multiset.
//
// Several filters need the same derived data — CGE needs the n gradient
// norms, Krum/Multi-Krum/Bulyan need the n x n pairwise squared distances —
// and the telemetry shim (filters/instrumented.h) additionally runs both
// accepted_inputs() and apply() on every round, doubling the work.  A
// NormCache is created once per aggregation round (by the trainer or the
// shim), handed to apply_with_cache() / accepted_inputs_with_cache(), and
// computes each derived quantity lazily, at most once per round.
//
// Determinism: every cached quantity is computed with exactly the loops the
// uncached filters used (norms in ascending agent order via Vector::norm;
// pairwise distances via linalg::distance_squared with the strict kernels),
// so caching never changes results — it only deduplicates work.
//
// Lifetime: the cache borrows the gradient vector it was bound to.  It must
// not outlive the gradients, and reset() must be called whenever the
// gradients change (the trainer reuses one cache across rounds to keep the
// hot loop allocation-free after warm-up).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector.h"

namespace redopt::filters {

using linalg::Vector;

class NormCache {
 public:
  /// Unbound cache; reset() must be called before any accessor.  Lets a
  /// trainer own one cache as a plain member and rebind it every round.
  NormCache() = default;

  /// Binds the cache to one gradient multiset.  Borrows; does not copy.
  explicit NormCache(const std::vector<Vector>& gradients);

  /// Rebinds to a (possibly new) gradient multiset and invalidates all
  /// cached quantities.  Capacity is kept, so a trainer-owned cache stops
  /// allocating once every buffer has reached its steady-state size.
  void reset(const std::vector<Vector>& gradients);

  /// Number of gradients in the bound multiset (0 when unbound).
  std::size_t size() const { return gradients_ == nullptr ? 0 : gradients_->size(); }

  /// The bound gradients (for filters that mix cached and direct access).
  const std::vector<Vector>& gradients() const { return *gradients_; }

  /// Euclidean norms ||g_i||, ascending agent order.  Computed on first use.
  const std::vector<double>& norms();

  /// Flat n x n matrix of pairwise squared distances ||g_i - g_j||^2
  /// (entry i * n + j; symmetric, zero diagonal).  Computed on first use.
  const std::vector<double>& pairwise_distances_squared();

  // Introspection for tests: whether each quantity has been materialised.
  bool norms_computed() const { return norms_ready_; }
  bool pairwise_computed() const { return dist2_ready_; }

 private:
  const std::vector<Vector>* gradients_ = nullptr;
  std::vector<double> norms_;
  std::vector<double> dist2_;
  bool norms_ready_ = false;
  bool dist2_ready_ = false;
};

/// Gathers the gradients into a column-major d x n buffer (out[k * n + i] =
/// gradients[i][k]) with cache-friendly tiling.  Coordinate-wise filters
/// (CWTM, CWMed, Bulyan stage 2) read columns sequentially afterwards
/// instead of striding across n separate heap buffers per coordinate.
void gather_columns(const std::vector<Vector>& gradients, std::vector<double>& out);

}  // namespace redopt::filters
