// Geometric median via the smoothed Weiszfeld iteration.
//
// The geometric median minimizes sum_i ||z - g_i|| and tolerates up to half
// the inputs being arbitrary; it underlies the geometric-median-of-means
// filter family (Chen, Su, Xu 2017).  We use Weiszfeld's fixed-point
// iteration with a small smoothing term so points coinciding with the
// current iterate do not produce a division by zero.
#pragma once

#include "filters/gradient_filter.h"

namespace redopt::filters {

class GeometricMedianFilter final : public GradientFilter {
 public:
  /// @p tol: stop when successive iterates move less than this;
  /// @p max_iterations: hard cap; @p smoothing: denominator floor.
  explicit GeometricMedianFilter(std::size_t n, double tol = 1e-10,
                                 std::size_t max_iterations = 1000, double smoothing = 1e-12);

  Vector apply(const std::vector<Vector>& gradients) const override;
  std::string name() const override { return "geomed"; }
  std::size_t expected_inputs() const override { return n_; }

  /// The underlying algorithm, usable on any point set (exposed for tests).
  static Vector weiszfeld(const std::vector<Vector>& points, double tol,
                          std::size_t max_iterations, double smoothing);

 private:
  std::size_t n_;
  double tol_;
  std::size_t max_iterations_;
  double smoothing_;
};

}  // namespace redopt::filters
