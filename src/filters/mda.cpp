#include "filters/mda.h"

#include <limits>

#include "util/error.h"
#include "util/subsets.h"

namespace redopt::filters {

MdaFilter::MdaFilter(std::size_t n, std::size_t f, std::uint64_t max_subsets) : n_(n), f_(f) {
  REDOPT_REQUIRE(n >= 1, "MDA requires n >= 1");
  REDOPT_REQUIRE(f < n, "MDA requires f < n");
  REDOPT_REQUIRE(util::binomial(n, f) <= max_subsets,
                 "MDA subset enumeration too large; reduce n or f");
}

std::vector<std::size_t> MdaFilter::select(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "mda");

  // Pairwise distances once; subsets then reuse them.
  std::vector<std::vector<double>> dist(n_, std::vector<double>(n_, 0.0));
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      dist[i][j] = dist[j][i] = linalg::distance(gradients[i], gradients[j]);
    }
  }

  double best_diameter = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best;
  util::for_each_subset(n_, n_ - f_, [&](const std::vector<std::size_t>& subset) {
    double diameter = 0.0;
    for (std::size_t a = 0; a < subset.size() && diameter < best_diameter; ++a) {
      for (std::size_t b = a + 1; b < subset.size(); ++b) {
        diameter = std::max(diameter, dist[subset[a]][subset[b]]);
        if (diameter >= best_diameter) break;  // already worse; prune
      }
    }
    if (diameter < best_diameter) {
      best_diameter = diameter;
      best = subset;
    }
    return true;
  });
  REDOPT_ASSERT(!best.empty(), "MDA selected no subset");
  return best;
}

Vector MdaFilter::apply(const std::vector<Vector>& gradients) const {
  const auto subset = select(gradients);
  Vector acc(gradients.front().size());
  for (std::size_t idx : subset) acc += gradients[idx];
  return acc / static_cast<double>(subset.size());
}

}  // namespace redopt::filters
