// Gradient-filter (robust gradient aggregation) interface.
//
// In the DGD method of Section 4, the server aggregates the n received
// gradients with  GradFilter : R^{d x n} -> R^d  before taking a step.  A
// filter is a pure function of the gradient multiset; all state (n, f,
// hyper-parameters) is fixed at construction, and apply() is const and
// thread-compatible.
//
// Scale conventions follow the paper exactly:
//   * CGE outputs the *sum* of the n - f smallest-norm gradients (eq. 23);
//   * CWTM outputs the coordinate-wise *average* of the surviving
//     n - 2f entries (eq. 24).
// Filters that naturally produce a sum take a `normalize` flag to divide by
// the number of survivors, so ablations can compare on one scale.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/vector.h"

namespace redopt::filters {

using linalg::Vector;

class NormCache;

/// Robust aggregation of n agent gradients into one descent direction.
class GradientFilter {
 public:
  virtual ~GradientFilter() = default;

  /// Aggregates the gradients (one per agent, equal dimensions).
  /// The expected count is fixed at construction; passing a different
  /// number of gradients throws PreconditionError.
  virtual Vector apply(const std::vector<Vector>& gradients) const = 0;

  /// Same as apply(), reading shared per-round quantities (norms, pairwise
  /// distances) from @p cache instead of recomputing them.  The cache must
  /// be bound to @p gradients.  Results are bit-identical to apply(); the
  /// default forwards to apply() for filters with nothing to share.
  virtual Vector apply_with_cache(const std::vector<Vector>& gradients, NormCache& cache) const;

  /// Cached variant of accepted_inputs(); same contract as apply_with_cache.
  virtual std::vector<std::size_t> accepted_inputs_with_cache(const std::vector<Vector>& gradients,
                                                              NormCache& cache) const;

  /// Canonical registry name, e.g. "cge".
  virtual std::string name() const = 0;

  /// Number of gradients the filter expects per call.
  virtual std::size_t expected_inputs() const = 0;

  /// Indices of the inputs that contribute to the output for this call —
  /// the accept/reject decision the telemetry shim records.  Selection
  /// filters override this (CGE: norm survivors; Krum/Bulyan/MDA: the
  /// selected set; CWTM: per-coordinate survivor union; clipping filters:
  /// the unclipped inputs).  Filters where every input keeps positive
  /// influence (mean, sum, medians, geometric median, GMoM) use this
  /// default: all indices, ascending.
  virtual std::vector<std::size_t> accepted_inputs(const std::vector<Vector>& gradients) const;
};

using FilterPtr = std::shared_ptr<const GradientFilter>;

namespace detail {

/// Shared validation for all filters.
void check_inputs(const std::vector<Vector>& gradients, std::size_t expected_n, const char* who);

}  // namespace detail
}  // namespace redopt::filters
