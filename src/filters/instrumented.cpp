#include "filters/instrumented.h"

#include <utility>

#include "filters/norm_cache.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/error.h"

namespace redopt::filters {

namespace {

class InstrumentedFilter final : public GradientFilter {
 public:
  InstrumentedFilter(FilterPtr inner, const std::string& scope) : inner_(std::move(inner)) {
    REDOPT_REQUIRE(inner_ != nullptr, "instrument: null filter");
    auto& reg = telemetry::registry();
    const std::string prefix = scope + ".filter." + inner_->name() + ".";
    gradient_norm_ = reg.histogram(prefix + "gradient_norm",
                                   telemetry::BucketLayout::exponential(1e-6, 10.0, 12));
    accepted_total_ = reg.counter(prefix + "accepted_total");
    rejected_total_ = reg.counter(prefix + "rejected_total");
    const std::size_t n = inner_->expected_inputs();
    agent_accepts_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      agent_accepts_.push_back(reg.counter(prefix + "accept.agent_" + std::to_string(i)));
    }
  }

  Vector apply(const std::vector<Vector>& gradients) const override {
    NormCache cache(gradients);
    return apply_with_cache(gradients, cache);
  }

  Vector apply_with_cache(const std::vector<Vector>& gradients, NormCache& cache) const override {
    telemetry::ScopedSpan span("filter.apply");
    span.attr("filter", inner_->name())
        .attr("n", static_cast<std::uint64_t>(gradients.size()));
    // One cache serves the norm histogram, the accept-set pass, and the
    // aggregation itself — without it every round pays for the inner
    // filter's selection work twice (accepted_inputs + apply) plus a third
    // norm pass for the histogram.
    for (double norm : cache.norms()) gradient_norm_.observe(norm);
    const std::vector<std::size_t> accepted =
        inner_->accepted_inputs_with_cache(gradients, cache);
    accepted_total_.inc(accepted.size());
    rejected_total_.inc(gradients.size() - accepted.size());
    span.attr("accepted", static_cast<std::uint64_t>(accepted.size()));
    for (std::size_t i : accepted) {
      if (i < agent_accepts_.size()) agent_accepts_[i].inc();
    }
    return inner_->apply_with_cache(gradients, cache);
  }

  std::string name() const override { return inner_->name(); }
  std::size_t expected_inputs() const override { return inner_->expected_inputs(); }
  std::vector<std::size_t> accepted_inputs(const std::vector<Vector>& gradients) const override {
    return inner_->accepted_inputs(gradients);
  }
  std::vector<std::size_t> accepted_inputs_with_cache(const std::vector<Vector>& gradients,
                                                      NormCache& cache) const override {
    return inner_->accepted_inputs_with_cache(gradients, cache);
  }

 private:
  FilterPtr inner_;
  telemetry::Histogram gradient_norm_;
  telemetry::Counter accepted_total_;
  telemetry::Counter rejected_total_;
  std::vector<telemetry::Counter> agent_accepts_;
};

}  // namespace

FilterPtr instrument(FilterPtr inner, const std::string& scope) {
  return std::make_shared<const InstrumentedFilter>(std::move(inner), scope);
}

}  // namespace redopt::filters
