#include "filters/norm_clip.h"

#include <algorithm>

#include "util/error.h"

namespace redopt::filters {

NormClipFilter::NormClipFilter(std::size_t n, std::size_t f, double tau, bool adaptive)
    : n_(n), f_(f), tau_(tau), adaptive_(adaptive) {
  REDOPT_REQUIRE(n >= 1, "norm clip requires n >= 1");
  REDOPT_REQUIRE(f < n, "norm clip requires f < n");
  REDOPT_REQUIRE(adaptive || tau > 0.0, "clipping radius must be positive");
}

double NormClipFilter::effective_tau(const std::vector<Vector>& gradients) const {
  if (!adaptive_) return tau_;
  // Clip at the (n - f)-th smallest norm: Byzantine gradients cannot
  // raise the threshold above the largest honest norm.
  std::vector<double> norms(n_);
  for (std::size_t i = 0; i < n_; ++i) norms[i] = gradients[i].norm();
  std::nth_element(norms.begin(), norms.begin() + static_cast<std::ptrdiff_t>(n_ - f_ - 1),
                   norms.end());
  return norms[n_ - f_ - 1];
}

Vector NormClipFilter::apply(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "normclip");
  const double tau = effective_tau(gradients);
  Vector acc(gradients.front().size());
  for (const auto& g : gradients) {
    const double norm = g.norm();
    if (norm > tau && norm > 0.0) {
      acc += g * (tau / norm);
    } else {
      acc += g;
    }
  }
  return acc / static_cast<double>(n_);
}

std::vector<std::size_t> NormClipFilter::accepted_inputs(
    const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "normclip");
  const double tau = effective_tau(gradients);
  std::vector<std::size_t> accepted;
  for (std::size_t i = 0; i < n_; ++i) {
    if (gradients[i].norm() <= tau) accepted.push_back(i);
  }
  return accepted;
}

}  // namespace redopt::filters
