// Name-based filter construction, used by benches and examples so a filter
// can be chosen with a --filter=cge style flag.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "filters/gradient_filter.h"

namespace redopt::filters {

/// Parameters shared by all filter constructors.
struct FilterParams {
  std::size_t n = 0;            ///< total number of agents (required)
  std::size_t f = 0;            ///< fault budget
  std::size_t multikrum_m = 1;  ///< selection count for "multikrum"
  double clip_tau = 1.0;        ///< radius for "normclip" and "cclip"
  std::size_t gmom_buckets = 0; ///< bucket count for "gmom" (0 = 2f + 1)
};

/// Constructs the filter registered under @p name.
/// Known names: mean, sum, cge, cge_avg, cwtm, cwmed, krum, multikrum,
/// geomed, gmom, bulyan, cclip, mda, normclip, normclip_adaptive.
/// Throws PreconditionError for unknown names or invalid parameters.
std::unique_ptr<GradientFilter> make_filter(const std::string& name, const FilterParams& params);

/// All registered filter names (in deterministic order).
std::vector<std::string> filter_names();

/// The subset of filter_names() whose (n, f) requirements are satisfied.
std::vector<std::string> applicable_filter_names(std::size_t n, std::size_t f);

}  // namespace redopt::filters
