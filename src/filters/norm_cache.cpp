#include "filters/norm_cache.h"

#include <algorithm>

#include "util/error.h"

namespace redopt::filters {

NormCache::NormCache(const std::vector<Vector>& gradients) : gradients_(&gradients) {}

void NormCache::reset(const std::vector<Vector>& gradients) {
  gradients_ = &gradients;
  norms_ready_ = false;
  dist2_ready_ = false;
}

const std::vector<double>& NormCache::norms() {
  REDOPT_REQUIRE(gradients_ != nullptr, "NormCache used before being bound to gradients");
  if (!norms_ready_) {
    const auto& g = *gradients_;
    norms_.resize(g.size());
    for (std::size_t i = 0; i < g.size(); ++i) norms_[i] = g[i].norm();
    norms_ready_ = true;
  }
  return norms_;
}

const std::vector<double>& NormCache::pairwise_distances_squared() {
  REDOPT_REQUIRE(gradients_ != nullptr, "NormCache used before being bound to gradients");
  if (!dist2_ready_) {
    const auto& g = *gradients_;
    const std::size_t n = g.size();
    dist2_.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double d2 = linalg::distance_squared(g[i], g[j]);
        dist2_[i * n + j] = d2;
        dist2_[j * n + i] = d2;
      }
    }
    dist2_ready_ = true;
  }
  return dist2_;
}

void gather_columns(const std::vector<Vector>& gradients, std::vector<double>& out) {
  REDOPT_REQUIRE(!gradients.empty(), "gather_columns on empty gradient set");
  const std::size_t n = gradients.size();
  const std::size_t d = gradients.front().size();
  out.resize(n * d);
  // Tile both dimensions so one tile of sources and destinations fits in
  // cache; the naive k-outer loop touches n distinct heap buffers per
  // coordinate, which thrashes at large d.
  constexpr std::size_t kTile = 32;
  for (std::size_t i0 = 0; i0 < n; i0 += kTile) {
    const std::size_t i1 = std::min(n, i0 + kTile);
    for (std::size_t k0 = 0; k0 < d; k0 += kTile) {
      const std::size_t k1 = std::min(d, k0 + kTile);
      for (std::size_t i = i0; i < i1; ++i) {
        const double* gi = gradients[i].data().data();
        for (std::size_t k = k0; k < k1; ++k) out[k * n + i] = gi[k];
      }
    }
  }
}

}  // namespace redopt::filters
