// Comparative Gradient Elimination (CGE) — the paper's headline filter.
//
// The server sorts the n received gradients by Euclidean norm and outputs
// the vector sum of the n - f smallest (eq. 23).  The intuition: a Byzantine
// gradient can only survive elimination by having a norm no larger than some
// honest gradient's, which bounds the damage it can do; Theorem 4 turns this
// into (f, (4 mu f / alpha gamma) eps)-resilience under (2f, eps)-redundancy
// whenever alpha = 1 - (f/n)(1 + 2 mu/gamma) > 0.
#pragma once

#include "filters/gradient_filter.h"

namespace redopt::filters {

class CgeFilter final : public GradientFilter {
 public:
  /// @p n total agents, @p f fault budget (f < n).  If @p normalize is true
  /// the sum is divided by n - f (scale-matched variant for ablations; the
  /// paper's definition is the plain sum).
  CgeFilter(std::size_t n, std::size_t f, bool normalize = false);

  Vector apply(const std::vector<Vector>& gradients) const override;
  Vector apply_with_cache(const std::vector<Vector>& gradients, NormCache& cache) const override;
  std::string name() const override { return normalize_ ? "cge_avg" : "cge"; }
  std::size_t expected_inputs() const override { return n_; }

  /// Indices of the n - f gradients that survive elimination, sorted by
  /// ascending norm (ties broken by agent index).  Exposed for tests and
  /// for the elimination-trace diagnostics.
  std::vector<std::size_t> surviving_indices(const std::vector<Vector>& gradients) const;

  /// The CGE survivors — the set the telemetry shim counts.
  std::vector<std::size_t> accepted_inputs(const std::vector<Vector>& gradients) const override {
    return surviving_indices(gradients);
  }
  std::vector<std::size_t> accepted_inputs_with_cache(const std::vector<Vector>& gradients,
                                                      NormCache& cache) const override;

 private:
  std::size_t n_;
  std::size_t f_;
  bool normalize_;
};

}  // namespace redopt::filters
