#include "filters/centered_clip.h"

#include <algorithm>

#include "util/error.h"

namespace redopt::filters {

CenteredClipFilter::CenteredClipFilter(std::size_t n, double tau, std::size_t inner_iterations)
    : n_(n), tau_(tau), inner_iterations_(inner_iterations) {
  REDOPT_REQUIRE(n >= 1, "centered clipping requires n >= 1");
  REDOPT_REQUIRE(tau > 0.0, "clipping radius must be positive");
  REDOPT_REQUIRE(inner_iterations >= 1, "need at least one re-centering iteration");
}

Vector CenteredClipFilter::apply(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "cclip");
  const std::size_t d = gradients.front().size();

  // Robust, order-invariant starting center: the coordinate-wise median.
  Vector v(d);
  std::vector<double> column(n_);
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t i = 0; i < n_; ++i) column[i] = gradients[i][k];
    std::sort(column.begin(), column.end());
    v[k] = (n_ % 2 == 1) ? column[n_ / 2] : 0.5 * (column[n_ / 2 - 1] + column[n_ / 2]);
  }

  for (std::size_t it = 0; it < inner_iterations_; ++it) {
    Vector correction(d);
    for (const auto& g : gradients) {
      Vector deviation = g - v;
      const double norm = deviation.norm();
      if (norm > tau_) deviation *= tau_ / norm;
      correction += deviation;
    }
    v += correction / static_cast<double>(n_);
  }
  return v;
}

std::vector<std::size_t> CenteredClipFilter::accepted_inputs(
    const std::vector<Vector>& gradients) const {
  const Vector v = apply(gradients);
  std::vector<std::size_t> accepted;
  for (std::size_t i = 0; i < n_; ++i) {
    if ((gradients[i] - v).norm() <= tau_) accepted.push_back(i);
  }
  return accepted;
}

}  // namespace redopt::filters
