// Norm clipping: rescale every gradient to norm <= tau, then average.
//
// A simple robustification baseline (related to CGE in spirit: both act on
// gradient norms); it bounds a Byzantine gradient's magnitude but not its
// direction, so it is expected to sit between plain averaging and CGE in
// the ablation.
#pragma once

#include "filters/gradient_filter.h"

namespace redopt::filters {

class NormClipFilter final : public GradientFilter {
 public:
  /// @p tau > 0: the clipping radius.  If @p adaptive is true, tau is
  /// ignored and each call clips at the (n - f)-th smallest input norm,
  /// which needs no tuning and mirrors CGE's elimination threshold.
  NormClipFilter(std::size_t n, std::size_t f, double tau, bool adaptive = false);

  Vector apply(const std::vector<Vector>& gradients) const override;
  std::string name() const override { return adaptive_ ? "normclip_adaptive" : "normclip"; }
  std::size_t expected_inputs() const override { return n_; }

  /// Inputs whose norm is within the (possibly adaptive) clipping radius;
  /// the rest are rescaled, not dropped.
  std::vector<std::size_t> accepted_inputs(const std::vector<Vector>& gradients) const override;

 private:
  /// The effective radius for this call (tau_, or the (n - f)-th smallest
  /// input norm in adaptive mode).
  double effective_tau(const std::vector<Vector>& gradients) const;

  std::size_t n_;
  std::size_t f_;
  double tau_;
  bool adaptive_;
};

}  // namespace redopt::filters
