// Centered clipping (Karimireddy, He, Jaggi, 2021 — the paper's reference
// [26] line of work).
//
// Iteratively re-centers: starting from a robust reference point v (the
// coordinate-wise median of the inputs), each gradient's deviation from v
// is clipped to radius tau and the clipped deviations are averaged back
// into v:
//
//   v <- v + (1/n) sum_i clip(g_i - v, tau),   repeated L times.
//
// Unlike norm-based elimination, clipping never discards honest gradients
// entirely.  This implementation is stateless (a pure function of the
// gradient multiset, like every redopt filter): the original paper's
// variant re-centers on the *previous aggregate*; cold-starting from the
// coordinate-wise median gives the same contraction guarantee per call
// without cross-iteration state.
#pragma once

#include "filters/gradient_filter.h"

namespace redopt::filters {

class CenteredClipFilter final : public GradientFilter {
 public:
  /// @p tau: clipping radius; @p inner_iterations: re-centering steps L.
  CenteredClipFilter(std::size_t n, double tau = 1.0, std::size_t inner_iterations = 3);

  Vector apply(const std::vector<Vector>& gradients) const override;
  std::string name() const override { return "cclip"; }
  std::size_t expected_inputs() const override { return n_; }

  /// Inputs whose deviation from the final center lies within the clipping
  /// radius (they enter the last averaging step unclipped).  Clipping never
  /// discards a gradient outright, so "rejected" here means "attenuated".
  std::vector<std::size_t> accepted_inputs(const std::vector<Vector>& gradients) const override;

 private:
  std::size_t n_;
  double tau_;
  std::size_t inner_iterations_;
};

}  // namespace redopt::filters
