// Bulyan (El Mhamdi, Guerraoui, Rouault, ICML 2018).
//
// Two stages: (1) iteratively select theta = n - 2f gradients with the Krum
// rule; (2) per coordinate, average the beta = theta - 2f selected values
// closest to the selected set's coordinate median.  Requires n >= 4f + 3.
// Included as the strongest classical baseline in the filter ablation.
#pragma once

#include "filters/gradient_filter.h"

namespace redopt::filters {

class BulyanFilter final : public GradientFilter {
 public:
  /// Requires n >= 4f + 3.
  BulyanFilter(std::size_t n, std::size_t f);

  Vector apply(const std::vector<Vector>& gradients) const override;
  Vector apply_with_cache(const std::vector<Vector>& gradients, NormCache& cache) const override;
  std::string name() const override { return "bulyan"; }
  std::size_t expected_inputs() const override { return n_; }

  /// The theta = n - 2f gradients picked by stage 1, in ascending index
  /// order.  Stage 2's coordinate-wise trimming mixes values from the
  /// selected set, so the selection stage is the meaningful accept set.
  std::vector<std::size_t> accepted_inputs(const std::vector<Vector>& gradients) const override;
  std::vector<std::size_t> accepted_inputs_with_cache(const std::vector<Vector>& gradients,
                                                      NormCache& cache) const override;

 private:
  /// Stage-1 iterative Krum selection, in pick order (shared by apply and
  /// accepted_inputs).  All theta rounds read the one pairwise-distance
  /// matrix owned by @p cache.
  std::vector<std::size_t> select_indices(const std::vector<Vector>& gradients,
                                          NormCache& cache) const;

  std::size_t n_;
  std::size_t f_;
};

}  // namespace redopt::filters
