#include "filters/registry.h"

#include "filters/bulyan.h"
#include "filters/centered_clip.h"
#include "filters/cge.h"
#include "filters/geometric_median.h"
#include "filters/gmom.h"
#include "filters/krum.h"
#include "filters/mda.h"
#include "filters/mean.h"
#include "filters/norm_clip.h"
#include "filters/trimmed_mean.h"
#include "util/error.h"

namespace redopt::filters {

std::unique_ptr<GradientFilter> make_filter(const std::string& name, const FilterParams& p) {
  REDOPT_REQUIRE(p.n >= 1, "FilterParams.n must be set");
  if (name == "mean") return std::make_unique<MeanFilter>(p.n);
  if (name == "sum") return std::make_unique<SumFilter>(p.n);
  if (name == "cge") return std::make_unique<CgeFilter>(p.n, p.f, /*normalize=*/false);
  if (name == "cge_avg") return std::make_unique<CgeFilter>(p.n, p.f, /*normalize=*/true);
  if (name == "cwtm") return std::make_unique<CwtmFilter>(p.n, p.f);
  if (name == "cwmed") return std::make_unique<CwMedianFilter>(p.n);
  if (name == "krum") return std::make_unique<KrumFilter>(p.n, p.f);
  if (name == "multikrum") return std::make_unique<MultiKrumFilter>(p.n, p.f, p.multikrum_m);
  if (name == "geomed") return std::make_unique<GeometricMedianFilter>(p.n);
  if (name == "gmom") return std::make_unique<GmomFilter>(p.n, p.f, p.gmom_buckets);
  if (name == "bulyan") return std::make_unique<BulyanFilter>(p.n, p.f);
  if (name == "cclip") return std::make_unique<CenteredClipFilter>(p.n, p.clip_tau);
  if (name == "mda") return std::make_unique<MdaFilter>(p.n, p.f);
  if (name == "normclip") return std::make_unique<NormClipFilter>(p.n, p.f, p.clip_tau, false);
  if (name == "normclip_adaptive")
    return std::make_unique<NormClipFilter>(p.n, p.f, p.clip_tau, true);
  REDOPT_REQUIRE(false, "unknown gradient filter: " + name);
  return nullptr;  // unreachable
}

std::vector<std::string> filter_names() {
  return {"mean",   "sum",    "cge",       "cge_avg", "cwtm",
          "cwmed",  "krum",   "multikrum", "geomed",  "gmom",
          "bulyan", "cclip",  "mda",       "normclip", "normclip_adaptive"};
}

std::vector<std::string> applicable_filter_names(std::size_t n, std::size_t f) {
  std::vector<std::string> out;
  for (const auto& name : filter_names()) {
    FilterParams p;
    p.n = n;
    p.f = f;
    try {
      (void)make_filter(name, p);
      out.push_back(name);
    } catch (const PreconditionError&) {
      // filter's (n, f) requirement not met; skip
    }
  }
  return out;
}

}  // namespace redopt::filters
