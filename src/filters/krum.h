// Krum and Multi-Krum (Blanchard et al., NeurIPS 2017) — distance-based
// selection filters used as comparison baselines in the filter ablation.
//
// Krum scores each gradient by the sum of squared distances to its
// n - f - 2 nearest other gradients and outputs the gradient with the
// smallest score.  Multi-Krum iteratively selects m gradients by the Krum
// rule and averages them.
#pragma once

#include "filters/gradient_filter.h"

namespace redopt::filters {

/// One Krum selection over the gradients whose @p active flag is set:
/// returns the index minimizing the sum of squared distances to its
/// nearest other active gradients.  Tolerates small pools (below f + 3 the
/// neighbourhood degrades to the single nearest gradient), which Bulyan's
/// iterative selection needs in its final rounds.  Requires at least two
/// active gradients.
std::size_t krum_select(const std::vector<Vector>& gradients, const std::vector<bool>& active,
                        std::size_t f);

/// Same selection, reading squared distances from the caller's flat n x n
/// matrix (see NormCache::pairwise_distances_squared) instead of
/// recomputing them — the O(n^2 d) distance pass is paid once however many
/// selection rounds run over the same gradients.
std::size_t krum_select_cached(const std::vector<Vector>& gradients,
                               const std::vector<bool>& active, std::size_t f,
                               const std::vector<double>& dist2);

/// Runs @p rounds successive Krum selections starting from the full pool,
/// deactivating each pick, and returns the picks in selection order.  Each
/// candidate's ascending-sorted distance array is maintained incrementally
/// across rounds (the selected gradient's distance is erased from every
/// survivor), so round r costs O(n^2) instead of the O(n^2 log n) rebuild —
/// the dominant cost of Bulyan's theta = n - 2f rounds.  Selections are
/// bit-identical to calling krum_select_cached round by round.
std::vector<std::size_t> krum_select_iterative(const std::vector<Vector>& gradients,
                                               std::size_t f, std::size_t rounds,
                                               const std::vector<double>& dist2);

class KrumFilter final : public GradientFilter {
 public:
  /// Requires n >= f + 3 so the neighbourhood size n - f - 2 is positive.
  KrumFilter(std::size_t n, std::size_t f);

  Vector apply(const std::vector<Vector>& gradients) const override;
  Vector apply_with_cache(const std::vector<Vector>& gradients, NormCache& cache) const override;
  std::string name() const override { return "krum"; }
  std::size_t expected_inputs() const override { return n_; }

  /// Index selected by the Krum rule (exposed for tests).
  std::size_t select(const std::vector<Vector>& gradients) const;

  /// The single selected gradient.
  std::vector<std::size_t> accepted_inputs(const std::vector<Vector>& gradients) const override {
    return {select(gradients)};
  }
  std::vector<std::size_t> accepted_inputs_with_cache(const std::vector<Vector>& gradients,
                                                      NormCache& cache) const override;

 private:
  std::size_t n_;
  std::size_t f_;
};

class MultiKrumFilter final : public GradientFilter {
 public:
  /// Selects @p m gradients (1 <= m <= n - f - 2 recommended) and averages.
  MultiKrumFilter(std::size_t n, std::size_t f, std::size_t m);

  Vector apply(const std::vector<Vector>& gradients) const override;
  Vector apply_with_cache(const std::vector<Vector>& gradients, NormCache& cache) const override;
  std::string name() const override { return "multikrum"; }
  std::size_t expected_inputs() const override { return n_; }

  /// The m iteratively-selected gradients, in ascending index order.
  std::vector<std::size_t> accepted_inputs(const std::vector<Vector>& gradients) const override;
  std::vector<std::size_t> accepted_inputs_with_cache(const std::vector<Vector>& gradients,
                                                      NormCache& cache) const override;

 private:
  std::size_t n_;
  std::size_t f_;
  std::size_t m_;
};

}  // namespace redopt::filters
