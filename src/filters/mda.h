// Minimum-Diameter Averaging (MDA), a.k.a. the brute-force core of Bulyan's
// analysis (El Mhamdi et al.): among all C(n, f) subsets of n - f
// gradients, pick the one with the smallest Euclidean diameter and output
// its average.
//
// MDA is combinatorial — O(C(n, f) * (n-f)^2) distance checks — so it only
// suits small n (it is the aggregation analogue of the exhaustive exact
// algorithm, and bench_filter_perf quantifies the blow-up).  Included
// because its diameter-selection rule is the tightest classical notion of
// "pick the mutually consistent majority".
#pragma once

#include "filters/gradient_filter.h"

namespace redopt::filters {

class MdaFilter final : public GradientFilter {
 public:
  /// Requires f < n.  @p max_subsets caps the enumeration as a safety rail
  /// against accidental huge instances (throws if C(n, f) exceeds it).
  MdaFilter(std::size_t n, std::size_t f, std::uint64_t max_subsets = 2'000'000);

  Vector apply(const std::vector<Vector>& gradients) const override;
  std::string name() const override { return "mda"; }
  std::size_t expected_inputs() const override { return n_; }

  /// The selected subset (ascending agent indices) for the given
  /// gradients; exposed for tests.
  std::vector<std::size_t> select(const std::vector<Vector>& gradients) const;

  /// The minimum-diameter subset — MDA averages exactly these inputs.
  std::vector<std::size_t> accepted_inputs(const std::vector<Vector>& gradients) const override {
    return select(gradients);
  }

 private:
  std::size_t n_;
  std::size_t f_;
};

}  // namespace redopt::filters
