// Telemetry shim shared by every gradient filter.
//
// instrument() wraps a filter in a decorator that records, per apply() call:
//   <scope>.filter.<name>.gradient_norm     histogram of input gradient norms
//   <scope>.filter.<name>.accepted_total    counter, sum of |accepted_inputs|
//   <scope>.filter.<name>.rejected_total    counter, n - |accepted_inputs|
//   <scope>.filter.<name>.accept.agent_<i>  counter per input slot i
// and then delegates to the wrapped filter unchanged.  The wrapper is a
// pure pass-through for name(), expected_inputs(), and accepted_inputs(),
// so instrumenting a filter never changes trainer behaviour.
//
// Metric handles are registered at wrap time (serial context), so apply()
// itself only performs record operations and stays safe inside the
// deterministic parallel runtime.
#pragma once

#include "filters/gradient_filter.h"

namespace redopt::filters {

/// Wraps @p inner with the telemetry decorator.  @p scope prefixes the
/// metric names (e.g. "dgd" -> "dgd.filter.cge.accepted_total") so the
/// same filter class can be distinguished across trainers.
FilterPtr instrument(FilterPtr inner, const std::string& scope);

}  // namespace redopt::filters
