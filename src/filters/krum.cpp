#include "filters/krum.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace redopt::filters {

/// Krum score of each still-active gradient: sum of its n_active - f - 2
/// smallest squared distances to other active gradients.
std::size_t krum_select(const std::vector<Vector>& gradients,
                        const std::vector<bool>& active, std::size_t f) {
  const std::size_t n = gradients.size();
  std::size_t n_active = 0;
  for (bool a : active) n_active += a ? 1 : 0;
  REDOPT_REQUIRE(n_active >= 1, "krum selection requires at least 1 active gradient");
  if (n_active == 1) {
    // Degenerate pool (Bulyan's final selection rounds at f = 0): the only
    // remaining gradient is the selection.
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i]) return i;
    }
  }
  // Bulyan's iterative selection legitimately shrinks the pool below
  // f + 3 in its final rounds (pool bottoms out at 2f + 1); degrade the
  // neighbourhood to the single nearest other gradient there.  The
  // standalone KrumFilter still enforces n >= f + 3 at construction.
  const std::size_t neighbourhood = n_active >= f + 3 ? n_active - f - 2 : 1;

  double best_score = std::numeric_limits<double>::infinity();
  std::size_t best = n;  // sentinel
  std::vector<double> dists;
  // Exact score ties are possible (two mutually-nearest gradients with
  // neighbourhood size 1 share the score d(i,j)^2), so ties are broken by
  // the gradients' values, keeping selection independent of input order
  // (permutation invariance).
  auto lex_less = [&](std::size_t a, std::size_t b) {
    return gradients[a].data() < gradients[b].data();
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    dists.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || !active[j]) continue;
      const double dij = linalg::distance(gradients[i], gradients[j]);
      dists.push_back(dij * dij);
    }
    std::nth_element(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(neighbourhood - 1),
                     dists.end());
    double score = 0.0;
    for (std::size_t k = 0; k < neighbourhood; ++k) score += dists[k];
    if (score < best_score || (score == best_score && best < n && lex_less(i, best))) {
      best_score = score;
      best = i;
    }
  }
  REDOPT_ASSERT(best < n, "krum selected no gradient");
  return best;
}

KrumFilter::KrumFilter(std::size_t n, std::size_t f) : n_(n), f_(f) {
  REDOPT_REQUIRE(n >= f + 3, "Krum requires n >= f + 3");
}

std::size_t KrumFilter::select(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "krum");
  return krum_select(gradients, std::vector<bool>(n_, true), f_);
}

Vector KrumFilter::apply(const std::vector<Vector>& gradients) const {
  return gradients[select(gradients)];
}

MultiKrumFilter::MultiKrumFilter(std::size_t n, std::size_t f, std::size_t m)
    : n_(n), f_(f), m_(m) {
  REDOPT_REQUIRE(m >= 1, "Multi-Krum requires m >= 1");
  // After removing m - 1 gradients a Krum selection must still be possible.
  REDOPT_REQUIRE(n >= f + 2 + m, "Multi-Krum requires n >= f + 2 + m");
}

Vector MultiKrumFilter::apply(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "multikrum");
  Vector acc(gradients.front().size());
  for (std::size_t pick : accepted_inputs(gradients)) acc += gradients[pick];
  return acc / static_cast<double>(m_);
}

std::vector<std::size_t> MultiKrumFilter::accepted_inputs(
    const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "multikrum");
  std::vector<bool> active(n_, true);
  std::vector<std::size_t> picks;
  picks.reserve(m_);
  for (std::size_t round = 0; round < m_; ++round) {
    const std::size_t pick = krum_select(gradients, active, f_);
    picks.push_back(pick);
    active[pick] = false;
  }
  std::sort(picks.begin(), picks.end());
  return picks;
}

}  // namespace redopt::filters
