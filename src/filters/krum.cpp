#include "filters/krum.h"

#include <algorithm>
#include <limits>

#include "filters/norm_cache.h"
#include "linalg/kernels.h"
#include "util/error.h"

namespace redopt::filters {

/// Krum score of each still-active gradient: sum of its n_active - f - 2
/// smallest squared distances to other active gradients.  Distances are
/// read from the caller-provided flat n x n matrix @p dist2, so iterative
/// callers (Multi-Krum, Bulyan) pay for the O(n^2 d) distance pass once
/// rather than once per selection round.
std::size_t krum_select_cached(const std::vector<Vector>& gradients,
                               const std::vector<bool>& active, std::size_t f,
                               const std::vector<double>& dist2) {
  const std::size_t n = gradients.size();
  REDOPT_REQUIRE(dist2.size() == n * n, "krum selection: distance matrix shape mismatch");
  std::size_t n_active = 0;
  for (bool a : active) n_active += a ? 1 : 0;
  REDOPT_REQUIRE(n_active >= 1, "krum selection requires at least 1 active gradient");
  if (n_active == 1) {
    // Degenerate pool (Bulyan's final selection rounds at f = 0): the only
    // remaining gradient is the selection.
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i]) return i;
    }
  }
  // Bulyan's iterative selection legitimately shrinks the pool below
  // f + 3 in its final rounds (pool bottoms out at 2f + 1); degrade the
  // neighbourhood to the single nearest other gradient there.  The
  // standalone KrumFilter still enforces n >= f + 3 at construction.
  const std::size_t neighbourhood = n_active >= f + 3 ? n_active - f - 2 : 1;

  double best_score = std::numeric_limits<double>::infinity();
  std::size_t best = n;  // sentinel
  std::vector<double> dists;
  // Exact score ties are possible (two mutually-nearest gradients with
  // neighbourhood size 1 share the score d(i,j)^2), so ties are broken by
  // the gradients' values, keeping selection independent of input order
  // (permutation invariance).
  auto lex_less = [&](std::size_t a, std::size_t b) {
    return gradients[a].data() < gradients[b].data();
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    dists.clear();
    const double* row = dist2.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || !active[j]) continue;
      dists.push_back(row[j]);
    }
    std::nth_element(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(neighbourhood - 1),
                     dists.end());
    // The neighbourhood sum runs in nth_element's partition order — the
    // historical single-shot behaviour (deterministic for a given input).
    // krum_select_iterative sums the same values in ascending order; see
    // docs/PERFORMANCE.md for why that last-ulp difference is acceptable.
    const double score = linalg::kernels::sum(dists.data(), neighbourhood);
    if (score < best_score || (score == best_score && best < n && lex_less(i, best))) {
      best_score = score;
      best = i;
    }
  }
  REDOPT_ASSERT(best < n, "krum selected no gradient");
  return best;
}

std::vector<std::size_t> krum_select_iterative(const std::vector<Vector>& gradients,
                                               std::size_t f, std::size_t rounds,
                                               const std::vector<double>& dist2) {
  const std::size_t n = gradients.size();
  REDOPT_REQUIRE(dist2.size() == n * n, "krum selection: distance matrix shape mismatch");
  REDOPT_REQUIRE(rounds >= 1 && rounds <= n, "krum selection: invalid round count");

  // Per-candidate ascending-sorted distances to the other active gradients.
  // Maintained incrementally: when a gradient is selected, its distance is
  // removed from every survivor's sorted array, which leaves exactly the
  // sorted multiset a from-scratch rebuild over the shrunken pool would
  // produce.  Scores are ascending prefix sums of these arrays, so every
  // round's selection is bit-identical to calling krum_select_cached on the
  // same pool — without the per-round O(a^2 log a) re-collection.
  std::vector<std::vector<double>> sorted(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = dist2.data() + i * n;
    sorted[i].reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) sorted[i].push_back(row[j]);
    }
    std::sort(sorted[i].begin(), sorted[i].end());
  }

  auto lex_less = [&](std::size_t a, std::size_t b) {
    return gradients[a].data() < gradients[b].data();
  };

  std::vector<bool> active(n, true);
  std::size_t n_active = n;
  std::vector<std::size_t> picks;
  picks.reserve(rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    REDOPT_ASSERT(n_active >= 1, "krum iterative selection exhausted the pool");
    const std::size_t neighbourhood = n_active >= f + 3 ? n_active - f - 2 : 1;
    double best_score = std::numeric_limits<double>::infinity();
    std::size_t best = n;  // sentinel
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      if (n_active == 1) {
        best = i;
        break;
      }
      const std::vector<double>& dists = sorted[i];
      const double score = linalg::kernels::sum(dists.data(), neighbourhood);
      if (score < best_score || (score == best_score && best < n && lex_less(i, best))) {
        best_score = score;
        best = i;
      }
    }
    REDOPT_ASSERT(best < n, "krum selected no gradient");
    picks.push_back(best);
    active[best] = false;
    --n_active;
    if (round + 1 == rounds) break;
    // Drop the selected gradient's distance from every survivor.  Equal
    // values may exist; erasing any one copy leaves the same multiset.
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      const double value = dist2[i * n + best];
      auto it = std::lower_bound(sorted[i].begin(), sorted[i].end(), value);
      REDOPT_ASSERT(it != sorted[i].end() && *it == value,
                    "krum iterative selection: stale distance array");
      sorted[i].erase(it);
    }
  }
  return picks;
}

std::size_t krum_select(const std::vector<Vector>& gradients,
                        const std::vector<bool>& active, std::size_t f) {
  NormCache cache(gradients);
  return krum_select_cached(gradients, active, f, cache.pairwise_distances_squared());
}

KrumFilter::KrumFilter(std::size_t n, std::size_t f) : n_(n), f_(f) {
  REDOPT_REQUIRE(n >= f + 3, "Krum requires n >= f + 3");
}

std::size_t KrumFilter::select(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "krum");
  return krum_select(gradients, std::vector<bool>(n_, true), f_);
}

Vector KrumFilter::apply(const std::vector<Vector>& gradients) const {
  return gradients[select(gradients)];
}

Vector KrumFilter::apply_with_cache(const std::vector<Vector>& gradients,
                                    NormCache& cache) const {
  detail::check_inputs(gradients, n_, "krum");
  return gradients[krum_select_cached(gradients, std::vector<bool>(n_, true), f_,
                                      cache.pairwise_distances_squared())];
}

std::vector<std::size_t> KrumFilter::accepted_inputs_with_cache(
    const std::vector<Vector>& gradients, NormCache& cache) const {
  detail::check_inputs(gradients, n_, "krum");
  return {krum_select_cached(gradients, std::vector<bool>(n_, true), f_,
                             cache.pairwise_distances_squared())};
}

MultiKrumFilter::MultiKrumFilter(std::size_t n, std::size_t f, std::size_t m)
    : n_(n), f_(f), m_(m) {
  REDOPT_REQUIRE(m >= 1, "Multi-Krum requires m >= 1");
  // After removing m - 1 gradients a Krum selection must still be possible.
  REDOPT_REQUIRE(n >= f + 2 + m, "Multi-Krum requires n >= f + 2 + m");
}

Vector MultiKrumFilter::apply(const std::vector<Vector>& gradients) const {
  NormCache cache(gradients);
  return apply_with_cache(gradients, cache);
}

Vector MultiKrumFilter::apply_with_cache(const std::vector<Vector>& gradients,
                                         NormCache& cache) const {
  detail::check_inputs(gradients, n_, "multikrum");
  Vector acc(gradients.front().size());
  for (std::size_t pick : accepted_inputs_with_cache(gradients, cache)) acc += gradients[pick];
  return acc / static_cast<double>(m_);
}

std::vector<std::size_t> MultiKrumFilter::accepted_inputs(
    const std::vector<Vector>& gradients) const {
  NormCache cache(gradients);
  return accepted_inputs_with_cache(gradients, cache);
}

std::vector<std::size_t> MultiKrumFilter::accepted_inputs_with_cache(
    const std::vector<Vector>& gradients, NormCache& cache) const {
  detail::check_inputs(gradients, n_, "multikrum");
  std::vector<std::size_t> picks =
      krum_select_iterative(gradients, f_, m_, cache.pairwise_distances_squared());
  std::sort(picks.begin(), picks.end());
  return picks;
}

}  // namespace redopt::filters
