#include "filters/mean.h"

#include <numeric>

#include "util/error.h"

namespace redopt::filters {

std::vector<std::size_t> GradientFilter::accepted_inputs(
    const std::vector<Vector>& gradients) const {
  std::vector<std::size_t> all(gradients.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  return all;
}

Vector GradientFilter::apply_with_cache(const std::vector<Vector>& gradients,
                                        NormCache& /*cache*/) const {
  return apply(gradients);
}

std::vector<std::size_t> GradientFilter::accepted_inputs_with_cache(
    const std::vector<Vector>& gradients, NormCache& /*cache*/) const {
  return accepted_inputs(gradients);
}

namespace detail {

void check_inputs(const std::vector<Vector>& gradients, std::size_t expected_n, const char* who) {
  REDOPT_REQUIRE(gradients.size() == expected_n,
                 std::string(who) + ": expected " + std::to_string(expected_n) +
                     " gradients, got " + std::to_string(gradients.size()));
  REDOPT_REQUIRE(!gradients.empty(), std::string(who) + ": no gradients");
  const std::size_t d = gradients.front().size();
  REDOPT_REQUIRE(d >= 1, std::string(who) + ": zero-dimensional gradients");
  for (const auto& g : gradients)
    REDOPT_REQUIRE(g.size() == d, std::string(who) + ": gradient dimension mismatch");
}

}  // namespace detail

MeanFilter::MeanFilter(std::size_t n) : n_(n) {
  REDOPT_REQUIRE(n >= 1, "mean filter requires n >= 1");
}

Vector MeanFilter::apply(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "mean");
  return linalg::mean(gradients);
}

SumFilter::SumFilter(std::size_t n) : n_(n) {
  REDOPT_REQUIRE(n >= 1, "sum filter requires n >= 1");
}

Vector SumFilter::apply(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "sum");
  return linalg::sum(gradients);
}

}  // namespace redopt::filters
