#include "filters/geometric_median.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "linalg/kernels.h"
#include "util/error.h"

namespace redopt::filters {

GeometricMedianFilter::GeometricMedianFilter(std::size_t n, double tol,
                                             std::size_t max_iterations, double smoothing)
    : n_(n), tol_(tol), max_iterations_(max_iterations), smoothing_(smoothing) {
  REDOPT_REQUIRE(n >= 1, "geometric median requires n >= 1");
  REDOPT_REQUIRE(tol > 0.0 && smoothing > 0.0, "tolerance and smoothing must be positive");
}

Vector GeometricMedianFilter::weiszfeld(const std::vector<Vector>& points, double tol,
                                        std::size_t max_iterations, double smoothing) {
  REDOPT_REQUIRE(!points.empty(), "weiszfeld on empty point set");
  Vector z = linalg::mean(points);  // mean is the classical starting point
  // Buffers are hoisted out of the iteration loop; axpy accumulates
  // w * p directly (bit-identical to `numerator += p * w` — IEEE
  // multiplication commutes) so the loop allocates nothing after warm-up.
  Vector numerator(z.size());
  Vector z_next(z.size());
  for (std::size_t it = 0; it < max_iterations; ++it) {
    std::fill(numerator.begin(), numerator.end(), 0.0);
    linalg::kernels::Sum denominator;
    for (const auto& p : points) {
      const double dist = std::max(linalg::distance(z, p), smoothing);
      const double w = 1.0 / dist;
      linalg::axpy(numerator, w, p);
      denominator.add(w);
    }
    const double denom = denominator.value();
    for (std::size_t i = 0; i < z.size(); ++i) z_next[i] = numerator[i] / denom;
    const double moved = linalg::distance(z, z_next);
    std::swap(z, z_next);
    if (moved < tol) break;
  }
  return z;
}

Vector GeometricMedianFilter::apply(const std::vector<Vector>& gradients) const {
  detail::check_inputs(gradients, n_, "geomed");
  return weiszfeld(gradients, tol_, max_iterations_, smoothing_);
}

}  // namespace redopt::filters
