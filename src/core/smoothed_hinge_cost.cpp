#include "core/smoothed_hinge_cost.h"

#include "linalg/kernels.h"
#include "util/error.h"

namespace redopt::core {

SmoothedHingeCost::SmoothedHingeCost(Matrix features, Vector labels, double reg, double smoothing)
    : features_(std::move(features)), labels_(std::move(labels)), reg_(reg), h_(smoothing) {
  REDOPT_REQUIRE(features_.rows() >= 1, "hinge cost needs at least one example");
  REDOPT_REQUIRE(features_.rows() == labels_.size(), "feature/label count mismatch");
  REDOPT_REQUIRE(reg_ >= 0.0, "regularization must be non-negative");
  REDOPT_REQUIRE(h_ > 0.0 && h_ <= 1.0, "smoothing must lie in (0, 1]");
  for (double y : labels_)
    REDOPT_REQUIRE(y == 1.0 || y == -1.0, "labels must be -1 or +1");
}

double SmoothedHingeCost::value(const Vector& w) const {
  REDOPT_REQUIRE(w.size() == dimension(), "hinge value dimension mismatch");
  const std::size_t m = features_.rows();
  const std::size_t d = dimension();
  linalg::kernels::Sum acc;
  for (std::size_t j = 0; j < m; ++j) {
    const double margin = linalg::kernels::dot(features_.row_data(j), w.data().data(), d);
    const double z = labels_[j] * margin;
    if (z >= 1.0) {
      // zero loss
    } else if (z > 1.0 - h_) {
      const double u = 1.0 - z;
      acc.add(u * u / (2.0 * h_));
    } else {
      acc.add(1.0 - z - h_ / 2.0);
    }
  }
  return acc.value() / static_cast<double>(m) + 0.5 * reg_ * w.norm_squared();
}

Vector SmoothedHingeCost::gradient(const Vector& w) const {
  REDOPT_REQUIRE(w.size() == dimension(), "hinge gradient dimension mismatch");
  const std::size_t m = features_.rows();
  const std::size_t d = dimension();
  Vector g(d);
  for (std::size_t j = 0; j < m; ++j) {
    const double margin = linalg::kernels::dot(features_.row_data(j), w.data().data(), d);
    const double z = labels_[j] * margin;
    double dloss_dz;
    if (z >= 1.0) {
      dloss_dz = 0.0;
    } else if (z > 1.0 - h_) {
      dloss_dz = -(1.0 - z) / h_;
    } else {
      dloss_dz = -1.0;
    }
    if (dloss_dz != 0.0) {
      const double coeff = dloss_dz * labels_[j];
      linalg::kernels::axpy(g.data().data(), coeff, features_.row_data(j), d);
    }
  }
  g /= static_cast<double>(m);
  g += w * reg_;
  return g;
}

std::unique_ptr<CostFunction> SmoothedHingeCost::clone() const {
  return std::make_unique<SmoothedHingeCost>(*this);
}

std::string SmoothedHingeCost::describe() const {
  return "smoothed_hinge(m=" + std::to_string(features_.rows()) +
         ", d=" + std::to_string(dimension()) + ", h=" + std::to_string(h_) + ")";
}

}  // namespace redopt::core
