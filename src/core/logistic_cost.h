// Regularized logistic-regression cost over a local dataset.
//
// Used by the distributed-learning experiments (the paper's learning
// evaluation is substituted with synthetic classification; see DESIGN.md).
// Q(w) = (1/m) sum_j log(1 + exp(-y_j <x_j, w>)) + (reg/2) ||w||^2,
// with labels y_j in {-1, +1}.  The regularizer makes honest aggregates
// strongly convex (Assumption 3 of the DGD theorems).
#pragma once

#include "core/cost_function.h"

namespace redopt::core {

class LogisticCost final : public CostFunction {
 public:
  /// @p features: m x d data matrix (row j = example j).
  /// @p labels:   m entries, each -1 or +1.
  /// @p reg:      L2 regularization strength, >= 0.
  LogisticCost(Matrix features, Vector labels, double reg = 0.0);

  std::size_t dimension() const override { return features_.cols(); }
  double value(const Vector& w) const override;
  Vector gradient(const Vector& w) const override;
  std::optional<Matrix> hessian(const Vector& w) const override;
  std::unique_ptr<CostFunction> clone() const override;
  std::string describe() const override;

  const Matrix& features() const { return features_; }
  const Vector& labels() const { return labels_; }
  double regularization() const { return reg_; }

  /// Fraction of examples in (@p features, @p labels) classified correctly
  /// by sign(<x, w>).  Ties (zero margin) count as errors.
  static double accuracy(const Matrix& features, const Vector& labels, const Vector& w);

 private:
  Matrix features_;
  Vector labels_;
  double reg_;
};

}  // namespace redopt::core
