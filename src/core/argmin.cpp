#include "core/argmin.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/absolute_cost.h"
#include "core/aggregate_cost.h"
#include "core/least_squares_cost.h"
#include "core/quadratic_cost.h"
#include "linalg/decompose.h"
#include "linalg/kernels.h"
#include "util/error.h"

namespace redopt::core {

namespace {

/// One leaf term of a (possibly nested) aggregate, with its total weight.
struct WeightedTerm {
  const CostFunction* cost;
  double weight;
};

/// Flattens nested AggregateCost structure into leaf terms.
void flatten(const CostFunction& cost, double weight, std::vector<WeightedTerm>& out) {
  if (const auto* agg = dynamic_cast<const AggregateCost*>(&cost)) {
    for (std::size_t i = 0; i < agg->terms().size(); ++i) {
      flatten(*agg->terms()[i], weight * agg->weights()[i], out);
    }
  } else {
    out.push_back({&cost, weight});
  }
}

/// Orthonormal kernel basis of a symmetric PSD matrix, from its
/// eigendecomposition, using a relative eigenvalue cutoff.
Matrix kernel_basis(const linalg::SymmetricEigen& eig, double rel_tol) {
  const std::size_t d = eig.eigenvalues.size();
  const double scale = std::max(std::abs(eig.eigenvalues[d - 1]), 1e-300);
  std::size_t k = 0;
  while (k < d && std::abs(eig.eigenvalues[k]) <= rel_tol * scale) ++k;
  Matrix basis(d, k);
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t r = 0; r < d; ++r) basis(r, c) = eig.eigenvectors(r, c);
  return basis;
}

/// Solves the stationarity system P x = rhs for symmetric PSD P via
/// pseudo-inverse, returning the affine argmin set.  Throws if the system is
/// inconsistent (cost unbounded below).
MinimizerSet solve_stationarity(const Matrix& p, const Vector& rhs, double rel_tol) {
  const auto eig = linalg::symmetric_eigen(p);
  const std::size_t d = rhs.size();
  const double scale = std::max(std::abs(eig.eigenvalues[d - 1]), 1e-300);

  // x0 = V diag(1/lambda_i on the non-kernel part) V^T rhs
  Vector coeffs(d);
  for (std::size_t k = 0; k < d; ++k) {
    const double proj = linalg::kernels::dot_strided(eig.eigenvectors.data().data() + k, d,
                                                     rhs.data().data(), 1, d);
    if (std::abs(eig.eigenvalues[k]) > rel_tol * scale) {
      coeffs[k] = proj / eig.eigenvalues[k];
    } else {
      // Kernel direction: rhs must have no component here, else no minimum.
      REDOPT_REQUIRE(std::abs(proj) <= 1e-7 * std::max(1.0, rhs.norm()),
                     "cost is unbounded below: stationarity system inconsistent "
                     "(violates Assumption 1)");
      coeffs[k] = 0.0;
    }
  }
  Vector x0(d);
  for (std::size_t k = 0; k < d; ++k)
    for (std::size_t r = 0; r < d; ++r) x0[r] += coeffs[k] * eig.eigenvectors(r, k);

  return MinimizerSet::affine(std::move(x0), kernel_basis(eig, rel_tol));
}

}  // namespace

Vector numeric_argmin(const CostFunction& cost, const NumericArgminOptions& opt) {
  const std::size_t d = cost.dimension();
  Vector x(d);
  double fx = cost.value(x);
  double step = opt.initial_step;
  for (std::size_t it = 0; it < opt.max_iterations; ++it) {
    const Vector g = cost.gradient(x);
    const double gnorm = g.norm();
    if (gnorm < opt.gradient_tolerance) break;
    // Armijo backtracking along -g.
    double trial_step = step;
    bool accepted = false;
    for (int bt = 0; bt < 60; ++bt) {
      const Vector x_new = x - g * trial_step;
      const double f_new = cost.value(x_new);
      if (f_new <= fx - opt.armijo_c * trial_step * gnorm * gnorm) {
        x = x_new;
        fx = f_new;
        // Gentle step growth so a conservative early step does not persist.
        step = trial_step * 2.0;
        accepted = true;
        break;
      }
      trial_step *= opt.backtrack;
    }
    if (!accepted) break;  // step underflow: at numerical stationarity
  }
  return x;
}

MinimizerSet argmin_set(const CostFunction& cost, const ArgminOptions& options) {
  std::vector<WeightedTerm> terms;
  flatten(cost, 1.0, terms);

  bool all_least_squares = true;
  bool all_quadratic = true;
  bool all_absolute = true;
  for (const auto& t : terms) {
    if (dynamic_cast<const LeastSquaresCost*>(t.cost) == nullptr) all_least_squares = false;
    if (dynamic_cast<const QuadraticCost*>(t.cost) == nullptr &&
        dynamic_cast<const LeastSquaresCost*>(t.cost) == nullptr) {
      all_quadratic = false;
    }
    if (dynamic_cast<const AbsoluteCost*>(t.cost) == nullptr) all_absolute = false;
    REDOPT_REQUIRE(t.weight >= 0.0, "argmin of an aggregate with negative weights");
  }

  const std::size_t d = cost.dimension();

  if (all_absolute) {
    // Weighted L1 aggregate: the argmin is the weighted-median set, a
    // point or a closed interval (the non-differentiable scalar family).
    std::vector<double> points;
    std::vector<double> weights;
    for (const auto& t : terms) {
      if (t.weight == 0.0) continue;  // zero-weight terms contribute nothing
      const auto* abs_cost = static_cast<const AbsoluteCost*>(t.cost);
      for (std::size_t j = 0; j < abs_cost->points().size(); ++j) {
        points.push_back(abs_cost->points()[j]);
        weights.push_back(t.weight * abs_cost->weights()[j]);
      }
    }
    const auto [lo, hi] = weighted_median_interval(points, weights);
    return MinimizerSet::interval(lo, hi);
  }

  if (all_least_squares) {
    // sum_i w_i ||A_i x - b_i||^2  =  ||A' x - b'||^2 with rows scaled by
    // sqrt(w_i); argmin set is the solution set of the normal equations.
    std::size_t total_rows = 0;
    for (const auto& t : terms)
      total_rows += static_cast<const LeastSquaresCost*>(t.cost)->a().rows();
    Matrix a(total_rows, d);
    Vector b(total_rows);
    std::size_t r = 0;
    for (const auto& t : terms) {
      const auto* ls = static_cast<const LeastSquaresCost*>(t.cost);
      const double s = std::sqrt(t.weight);
      for (std::size_t i = 0; i < ls->a().rows(); ++i, ++r) {
        for (std::size_t c = 0; c < d; ++c) a(r, c) = s * ls->a()(i, c);
        b[r] = s * ls->b()[i];
      }
    }
    // Least squares is always bounded below, so no consistency concern:
    // P = 2 A^T A, rhs = 2 A^T b, and A^T b is in range(A^T A).
    const Matrix gram = a.gram();
    const Vector atb = linalg::matvec_transposed(a, b);
    return solve_stationarity(gram, atb, options.rank_tolerance);
  }

  if (all_quadratic) {
    // Mixed quadratics / least-squares: accumulate P and q with
    // least-squares terms contributing P = 2 A^T A, q = -2 A^T b.
    Matrix p(d, d);
    Vector q(d);
    for (const auto& t : terms) {
      if (const auto* quad = dynamic_cast<const QuadraticCost*>(t.cost)) {
        Matrix pi = quad->p();
        pi *= t.weight;
        p += pi;
        q += quad->q() * t.weight;
      } else {
        const auto* ls = static_cast<const LeastSquaresCost*>(t.cost);
        Matrix pi = ls->a().gram();
        pi *= 2.0 * t.weight;
        p += pi;
        q -= linalg::matvec_transposed(ls->a(), ls->b()) * (2.0 * t.weight);
      }
    }
    REDOPT_REQUIRE(linalg::min_eigenvalue(p) >= -1e-8 * std::max(1.0, p.max_abs()),
                   "quadratic aggregate is not convex (negative curvature)");
    return solve_stationarity(p, -q, options.rank_tolerance);
  }

  // Generic differentiable cost: numeric minimizer, singleton result.
  return MinimizerSet::singleton(numeric_argmin(cost, options.numeric));
}

Vector argmin_point(const CostFunction& cost, const ArgminOptions& options) {
  return argmin_set(cost, options).representative();
}

SubsetArgminEvaluator::SubsetArgminEvaluator(const std::vector<CostPtr>& costs,
                                             const ArgminOptions& options)
    : costs_(&costs), options_(options) {
  REDOPT_REQUIRE(!costs.empty(), "subset argmin evaluator needs at least one cost");
  for (const auto& c : costs) REDOPT_REQUIRE(c != nullptr, "subset argmin evaluator: null cost");
  dimension_ = costs.front()->dimension();

  bool all_least_squares = true;
  bool all_quadratic = true;
  bool all_absolute = true;
  for (const auto& c : costs) {
    const bool is_ls = dynamic_cast<const LeastSquaresCost*>(c.get()) != nullptr;
    const bool is_quad = dynamic_cast<const QuadraticCost*>(c.get()) != nullptr;
    const bool is_abs = dynamic_cast<const AbsoluteCost*>(c.get()) != nullptr;
    if (!is_ls) all_least_squares = false;
    if (!is_ls && !is_quad) all_quadratic = false;
    if (!is_abs) all_absolute = false;
  }

  if (all_absolute) {
    mode_ = Mode::kAbsolute;
    abs_terms_.reserve(costs.size());
    for (const auto& c : costs) abs_terms_.push_back(static_cast<const AbsoluteCost*>(c.get()));
    return;
  }
  if (all_least_squares) {
    mode_ = Mode::kLeastSquares;
    ls_terms_.reserve(costs.size());
    std::size_t total_rows = 0;
    for (const auto& c : costs) {
      const auto* ls = static_cast<const LeastSquaresCost*>(c.get());
      ls_terms_.push_back(ls);
      total_rows += ls->a().rows();
    }
    a_rows_.reserve(total_rows * dimension_);
    b_rows_.reserve(total_rows);
    return;
  }
  if (all_quadratic) {
    mode_ = Mode::kQuadratic;
    // Per-cost stationarity contributions, computed exactly as the flatten
    // loop in argmin_set does for unit weights, so the per-subset sums
    // below reproduce its accumulation bit-for-bit.
    term_p_.reserve(costs.size());
    term_q_.reserve(costs.size());
    all_terms_psd_ = true;
    for (const auto& c : costs) {
      if (const auto* quad = dynamic_cast<const QuadraticCost*>(c.get())) {
        term_p_.push_back(quad->p());
        term_q_.push_back(quad->q());
      } else {
        const auto* ls = static_cast<const LeastSquaresCost*>(c.get());
        Matrix pi = ls->a().gram();
        pi *= 2.0;
        term_p_.push_back(std::move(pi));
        term_q_.push_back(-(linalg::matvec_transposed(ls->a(), ls->b()) * 2.0));
      }
      // PSD certificate: when every term's smallest eigenvalue is
      // non-negative, Weyl's inequality gives min_eig(sum P_i) >=
      // sum min_eig(P_i) >= 0, so the per-subset convexity check in
      // evaluate_quadratic() can be skipped.
      if (linalg::min_eigenvalue(term_p_.back()) < 0.0) all_terms_psd_ = false;
    }
    p_ws_ = Matrix(dimension_, dimension_);
    q_ws_ = Vector(dimension_);
    return;
  }
  mode_ = Mode::kGeneric;
}

MinimizerSet SubsetArgminEvaluator::evaluate(const std::vector<std::size_t>& subset) {
  REDOPT_REQUIRE(!subset.empty(), "subset argmin over an empty subset");
  for (std::size_t idx : subset)
    REDOPT_REQUIRE(idx < costs_->size(), "subset index out of range");
  switch (mode_) {
    case Mode::kLeastSquares:
      return evaluate_least_squares(subset);
    case Mode::kQuadratic:
      return evaluate_quadratic(subset);
    case Mode::kAbsolute:
      return evaluate_absolute(subset);
    case Mode::kGeneric:
      break;
  }
  return argmin_set(aggregate_subset(*costs_, subset), options_);
}

MinimizerSet SubsetArgminEvaluator::evaluate_least_squares(
    const std::vector<std::size_t>& subset) {
  const std::size_t d = dimension_;
  // Stack the subset's rows in subset order — the Gram accumulation below
  // runs over the stacked rows in this exact order, which is what keeps
  // the result bit-identical to the generic all-least-squares path (the
  // sum of per-cost Grams associates differently and is NOT used).
  a_rows_.clear();
  b_rows_.clear();
  for (std::size_t idx : subset) {
    const auto* ls = ls_terms_[idx];
    const auto& rows = ls->a().data();
    a_rows_.insert(a_rows_.end(), rows.begin(), rows.end());
    const auto& rhs = ls->b().data();
    b_rows_.insert(b_rows_.end(), rhs.begin(), rhs.end());
  }
  const std::size_t rows = b_rows_.size();

  // Gram of the stacked matrix, same loop structure as Matrix::gram.
  Matrix gram(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      const double acc =
          linalg::kernels::dot_strided(a_rows_.data() + i, d, a_rows_.data() + j, d, rows);
      gram(i, j) = acc;
      gram(j, i) = acc;
    }
  }
  Vector atb(d);
  linalg::kernels::matvec_transposed(a_rows_.data(), rows, d, b_rows_.data(), atb.data().data());
  return solve_stationarity(gram, atb, options_.rank_tolerance);
}

MinimizerSet SubsetArgminEvaluator::evaluate_quadratic(const std::vector<std::size_t>& subset) {
  std::fill(p_ws_.data().begin(), p_ws_.data().end(), 0.0);
  std::fill(q_ws_.begin(), q_ws_.end(), 0.0);
  for (std::size_t idx : subset) {
    p_ws_ += term_p_[idx];
    q_ws_ += term_q_[idx];
  }
  if (!all_terms_psd_) {
    REDOPT_REQUIRE(linalg::min_eigenvalue(p_ws_) >= -1e-8 * std::max(1.0, p_ws_.max_abs()),
                   "quadratic aggregate is not convex (negative curvature)");
  }
  return solve_stationarity(p_ws_, -q_ws_, options_.rank_tolerance);
}

MinimizerSet SubsetArgminEvaluator::evaluate_absolute(const std::vector<std::size_t>& subset) {
  abs_points_.clear();
  abs_weights_.clear();
  for (std::size_t idx : subset) {
    const auto* abs_cost = abs_terms_[idx];
    abs_points_.insert(abs_points_.end(), abs_cost->points().begin(), abs_cost->points().end());
    abs_weights_.insert(abs_weights_.end(), abs_cost->weights().begin(),
                        abs_cost->weights().end());
  }
  const auto [lo, hi] = weighted_median_interval(abs_points_, abs_weights_);
  return MinimizerSet::interval(lo, hi);
}

}  // namespace redopt::core
