#include "core/argmin.h"

#include <cmath>

#include "core/absolute_cost.h"
#include "core/aggregate_cost.h"
#include "core/least_squares_cost.h"
#include "core/quadratic_cost.h"
#include "linalg/decompose.h"
#include "util/error.h"

namespace redopt::core {

namespace {

/// One leaf term of a (possibly nested) aggregate, with its total weight.
struct WeightedTerm {
  const CostFunction* cost;
  double weight;
};

/// Flattens nested AggregateCost structure into leaf terms.
void flatten(const CostFunction& cost, double weight, std::vector<WeightedTerm>& out) {
  if (const auto* agg = dynamic_cast<const AggregateCost*>(&cost)) {
    for (std::size_t i = 0; i < agg->terms().size(); ++i) {
      flatten(*agg->terms()[i], weight * agg->weights()[i], out);
    }
  } else {
    out.push_back({&cost, weight});
  }
}

/// Orthonormal kernel basis of a symmetric PSD matrix, from its
/// eigendecomposition, using a relative eigenvalue cutoff.
Matrix kernel_basis(const linalg::SymmetricEigen& eig, double rel_tol) {
  const std::size_t d = eig.eigenvalues.size();
  const double scale = std::max(std::abs(eig.eigenvalues[d - 1]), 1e-300);
  std::size_t k = 0;
  while (k < d && std::abs(eig.eigenvalues[k]) <= rel_tol * scale) ++k;
  Matrix basis(d, k);
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t r = 0; r < d; ++r) basis(r, c) = eig.eigenvectors(r, c);
  return basis;
}

/// Solves the stationarity system P x = rhs for symmetric PSD P via
/// pseudo-inverse, returning the affine argmin set.  Throws if the system is
/// inconsistent (cost unbounded below).
MinimizerSet solve_stationarity(const Matrix& p, const Vector& rhs, double rel_tol) {
  const auto eig = linalg::symmetric_eigen(p);
  const std::size_t d = rhs.size();
  const double scale = std::max(std::abs(eig.eigenvalues[d - 1]), 1e-300);

  // x0 = V diag(1/lambda_i on the non-kernel part) V^T rhs
  Vector coeffs(d);
  for (std::size_t k = 0; k < d; ++k) {
    double proj = 0.0;
    for (std::size_t r = 0; r < d; ++r) proj += eig.eigenvectors(r, k) * rhs[r];
    if (std::abs(eig.eigenvalues[k]) > rel_tol * scale) {
      coeffs[k] = proj / eig.eigenvalues[k];
    } else {
      // Kernel direction: rhs must have no component here, else no minimum.
      REDOPT_REQUIRE(std::abs(proj) <= 1e-7 * std::max(1.0, rhs.norm()),
                     "cost is unbounded below: stationarity system inconsistent "
                     "(violates Assumption 1)");
      coeffs[k] = 0.0;
    }
  }
  Vector x0(d);
  for (std::size_t k = 0; k < d; ++k)
    for (std::size_t r = 0; r < d; ++r) x0[r] += coeffs[k] * eig.eigenvectors(r, k);

  return MinimizerSet::affine(std::move(x0), kernel_basis(eig, rel_tol));
}

}  // namespace

Vector numeric_argmin(const CostFunction& cost, const NumericArgminOptions& opt) {
  const std::size_t d = cost.dimension();
  Vector x(d);
  double fx = cost.value(x);
  double step = opt.initial_step;
  for (std::size_t it = 0; it < opt.max_iterations; ++it) {
    const Vector g = cost.gradient(x);
    const double gnorm = g.norm();
    if (gnorm < opt.gradient_tolerance) break;
    // Armijo backtracking along -g.
    double trial_step = step;
    bool accepted = false;
    for (int bt = 0; bt < 60; ++bt) {
      const Vector x_new = x - g * trial_step;
      const double f_new = cost.value(x_new);
      if (f_new <= fx - opt.armijo_c * trial_step * gnorm * gnorm) {
        x = x_new;
        fx = f_new;
        // Gentle step growth so a conservative early step does not persist.
        step = trial_step * 2.0;
        accepted = true;
        break;
      }
      trial_step *= opt.backtrack;
    }
    if (!accepted) break;  // step underflow: at numerical stationarity
  }
  return x;
}

MinimizerSet argmin_set(const CostFunction& cost, const ArgminOptions& options) {
  std::vector<WeightedTerm> terms;
  flatten(cost, 1.0, terms);

  bool all_least_squares = true;
  bool all_quadratic = true;
  bool all_absolute = true;
  for (const auto& t : terms) {
    if (dynamic_cast<const LeastSquaresCost*>(t.cost) == nullptr) all_least_squares = false;
    if (dynamic_cast<const QuadraticCost*>(t.cost) == nullptr &&
        dynamic_cast<const LeastSquaresCost*>(t.cost) == nullptr) {
      all_quadratic = false;
    }
    if (dynamic_cast<const AbsoluteCost*>(t.cost) == nullptr) all_absolute = false;
    REDOPT_REQUIRE(t.weight >= 0.0, "argmin of an aggregate with negative weights");
  }

  const std::size_t d = cost.dimension();

  if (all_absolute) {
    // Weighted L1 aggregate: the argmin is the weighted-median set, a
    // point or a closed interval (the non-differentiable scalar family).
    std::vector<double> points;
    std::vector<double> weights;
    for (const auto& t : terms) {
      if (t.weight == 0.0) continue;  // zero-weight terms contribute nothing
      const auto* abs_cost = static_cast<const AbsoluteCost*>(t.cost);
      for (std::size_t j = 0; j < abs_cost->points().size(); ++j) {
        points.push_back(abs_cost->points()[j]);
        weights.push_back(t.weight * abs_cost->weights()[j]);
      }
    }
    const auto [lo, hi] = weighted_median_interval(points, weights);
    return MinimizerSet::interval(lo, hi);
  }

  if (all_least_squares) {
    // sum_i w_i ||A_i x - b_i||^2  =  ||A' x - b'||^2 with rows scaled by
    // sqrt(w_i); argmin set is the solution set of the normal equations.
    std::size_t total_rows = 0;
    for (const auto& t : terms)
      total_rows += static_cast<const LeastSquaresCost*>(t.cost)->a().rows();
    Matrix a(total_rows, d);
    Vector b(total_rows);
    std::size_t r = 0;
    for (const auto& t : terms) {
      const auto* ls = static_cast<const LeastSquaresCost*>(t.cost);
      const double s = std::sqrt(t.weight);
      for (std::size_t i = 0; i < ls->a().rows(); ++i, ++r) {
        for (std::size_t c = 0; c < d; ++c) a(r, c) = s * ls->a()(i, c);
        b[r] = s * ls->b()[i];
      }
    }
    // Least squares is always bounded below, so no consistency concern:
    // P = 2 A^T A, rhs = 2 A^T b, and A^T b is in range(A^T A).
    const Matrix gram = a.gram();
    const Vector atb = linalg::matvec_transposed(a, b);
    return solve_stationarity(gram, atb, options.rank_tolerance);
  }

  if (all_quadratic) {
    // Mixed quadratics / least-squares: accumulate P and q with
    // least-squares terms contributing P = 2 A^T A, q = -2 A^T b.
    Matrix p(d, d);
    Vector q(d);
    for (const auto& t : terms) {
      if (const auto* quad = dynamic_cast<const QuadraticCost*>(t.cost)) {
        Matrix pi = quad->p();
        pi *= t.weight;
        p += pi;
        q += quad->q() * t.weight;
      } else {
        const auto* ls = static_cast<const LeastSquaresCost*>(t.cost);
        Matrix pi = ls->a().gram();
        pi *= 2.0 * t.weight;
        p += pi;
        q -= linalg::matvec_transposed(ls->a(), ls->b()) * (2.0 * t.weight);
      }
    }
    REDOPT_REQUIRE(linalg::min_eigenvalue(p) >= -1e-8 * std::max(1.0, p.max_abs()),
                   "quadratic aggregate is not convex (negative curvature)");
    return solve_stationarity(p, -q, options.rank_tolerance);
  }

  // Generic differentiable cost: numeric minimizer, singleton result.
  return MinimizerSet::singleton(numeric_argmin(cost, options.numeric));
}

Vector argmin_point(const CostFunction& cost, const ArgminOptions& options) {
  return argmin_set(cost, options).representative();
}

}  // namespace redopt::core
