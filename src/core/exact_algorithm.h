// The constructive full-information algorithm from the sufficiency proof.
//
// Each agent sends its entire cost function to the server (a Byzantine agent
// sends an arbitrary function).  The server then
//
//   Step 2: for every subset T with |T| = n - f, computes a minimum point
//           x_T of sum_{i in T} Q_i and the score
//             r_T = max over T-hat subset of T, |T-hat| = n - 2f, of
//                   dist(x_T, argmin sum_{i in T-hat} Q_i);
//   Step 3: outputs x_S for the subset S minimizing r_T.
//
// Under 2f-redundancy this achieves exact fault-tolerance; under
// (2f, eps)-redundancy it is (f, 2 eps)-resilient.  The algorithm is
// exponential in n (it exists to prove sufficiency, not to be practical);
// bench_exact_perf measures exactly how quickly it becomes infeasible.
#pragma once

#include <cstdint>
#include <vector>

#include "core/argmin.h"
#include "core/cost_function.h"

namespace redopt::core {

/// Outcome of the exhaustive algorithm.
struct ExactAlgorithmResult {
  Vector output;                        ///< x_S, the algorithm's output point
  std::vector<std::size_t> chosen_set;  ///< the minimizing subset S (|S| = n - f)
  double chosen_score = 0.0;            ///< r_S
  std::size_t subsets_evaluated = 0;    ///< number of (n-f)-subsets scored

  // Memoizer statistics for the inner (n-2f)-subset argmin evaluations.
  // These depend on the chunk-local pruning pattern, so they vary with the
  // configured runtime::threads() value (the output above never does);
  // compare them only between runs at the same lane count.
  std::uint64_t inner_evaluations = 0;   ///< inner argmin lookups issued
  std::uint64_t inner_cache_hits = 0;    ///< lookups served by the memoizer
  std::uint64_t inner_cache_misses = 0;  ///< lookups that computed an argmin
};

/// Runs the algorithm on the n received cost functions with fault budget f.
/// Requires n > 2f and f >= 1.
ExactAlgorithmResult run_exact_algorithm(const std::vector<CostPtr>& received_costs,
                                         std::size_t f, const ArgminOptions& options = {});

/// Sampling budget for the randomized variant below.
struct SampledExactOptions {
  std::size_t outer_samples = 64;  ///< (n - f)-subsets T scored
  std::size_t inner_samples = 64;  ///< (n - 2f)-subsets per T (exact when fewer exist)
  std::uint64_t seed = 1;          ///< subset-sampling stream

  /// Guided outer sampling: rank agents by the centrality of their own
  /// argmin representatives (median distance to the other agents') and
  /// always include the n - f most central agents as one candidate T,
  /// filling the rest of the budget with random subsets.  Uniform sampling
  /// provably fails at scale — when exactly f agents are faulty, only ONE
  /// of the C(n, f) outer subsets is fault-free, and a random (n-f)-subset
  /// contains ~f(n-f)/n faulty agents in expectation — so guidance is what
  /// makes the heuristic usable (bench_sampled_exact shows both modes).
  /// Requires agents' argmin representatives to be meaningful (unique-ish
  /// minimizers); for flat per-agent costs leave this off.
  bool guided = false;
};

/// Monte-Carlo variant of the exhaustive algorithm for n where full subset
/// enumeration is infeasible: scores a random sample of (n - f)-subsets,
/// estimating each r_T from a random sample of its (n - 2f)-subsets
/// (falling back to exact enumeration whenever the count fits the budget).
///
/// This is a HEURISTIC: sampled scores are lower bounds of the true r_T,
/// so the worst-case (f, 2*eps)-guarantee of Theorem 2 no longer holds —
/// what survives in practice is that under (2f, eps)-redundancy *every*
/// (n - f)-subset containing only honest agents scores <= eps, so any
/// sampled honest-leaning subset keeps the output near the honest argmin.
/// bench_sampled_exact measures accuracy against the exhaustive algorithm
/// where both can run, and scalability where only sampling can.
ExactAlgorithmResult run_sampled_exact_algorithm(const std::vector<CostPtr>& received_costs,
                                                 std::size_t f,
                                                 const SampledExactOptions& sampling = {},
                                                 const ArgminOptions& options = {});

}  // namespace redopt::core
