#include "core/batch_gradient.h"

#include "core/least_squares_cost.h"
#include "linalg/kernels.h"
#include "util/error.h"

namespace redopt::core {

bool BatchGradientEvaluator::all_least_squares(const std::vector<CostPtr>& costs,
                                               std::size_t* d) {
  if (costs.empty()) return false;
  std::size_t dim = 0;
  for (const auto& c : costs) {
    const auto* ls = dynamic_cast<const LeastSquaresCost*>(c.get());
    if (ls == nullptr) return false;
    if (dim == 0) {
      dim = ls->dimension();
    } else if (ls->dimension() != dim) {
      return false;
    }
  }
  if (d != nullptr) *d = dim;
  return true;
}

std::unique_ptr<BatchGradientEvaluator> BatchGradientEvaluator::try_create(
    const std::vector<CostPtr>& costs) {
  return try_create_grouped({costs});
}

std::unique_ptr<BatchGradientEvaluator> BatchGradientEvaluator::try_create_grouped(
    const std::vector<std::vector<CostPtr>>& groups) {
  if (groups.empty()) return nullptr;
  std::vector<const LeastSquaresCost*> terms;
  std::vector<std::size_t> group_offsets{0};
  for (const auto& costs : groups) {
    if (costs.empty()) return nullptr;
    for (const auto& c : costs) {
      const auto* ls = dynamic_cast<const LeastSquaresCost*>(c.get());
      if (ls == nullptr) return nullptr;
      terms.push_back(ls);
    }
    group_offsets.push_back(terms.size());
  }
  const std::size_t d = terms.front()->dimension();
  for (const auto* ls : terms) {
    if (ls->dimension() != d) return nullptr;
  }

  auto evaluator = std::unique_ptr<BatchGradientEvaluator>(new BatchGradientEvaluator());
  evaluator->d_ = d;
  evaluator->group_offsets_ = std::move(group_offsets);
  evaluator->row_offsets_.reserve(terms.size() + 1);
  evaluator->row_offsets_.push_back(0);
  std::size_t total_rows = 0;
  for (const auto* ls : terms) {
    total_rows += ls->a().rows();
    evaluator->row_offsets_.push_back(total_rows);
  }
  evaluator->rows_.reserve(total_rows * d);
  evaluator->rhs_.reserve(total_rows);
  for (const auto* ls : terms) {
    const auto& a = ls->a().data();
    evaluator->rows_.insert(evaluator->rows_.end(), a.begin(), a.end());
    const auto& b = ls->b().data();
    evaluator->rhs_.insert(evaluator->rhs_.end(), b.begin(), b.end());
  }
  return evaluator;
}

void BatchGradientEvaluator::evaluate_all(const Vector& x, std::vector<Vector>& out) {
  REDOPT_REQUIRE(x.size() == d_, "batch gradient dimension mismatch");
  const std::size_t n = num_agents();
  const std::size_t total_rows = row_offsets_.back();
  residual_.resize(total_rows);
  // r = R x - b over the whole stacked population.  Each row's dot product
  // is independent, so this equals the per-agent matvec bit-for-bit.
  linalg::kernels::matvec(rows_.data(), total_rows, d_, x.data().data(), residual_.data());
  linalg::kernels::sub(residual_.data(), rhs_.data(), total_rows);

  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = row_offsets_[i];
    const std::size_t rows = row_offsets_[i + 1] - lo;
    if (out[i].size() != d_) out[i] = Vector(d_);
    double* g = out[i].data().data();
    linalg::kernels::matvec_transposed(rows_.data() + lo * d_, rows, d_, residual_.data() + lo, g);
    linalg::kernels::scale(g, 2.0, d_);
  }
}

void BatchGradientEvaluator::evaluate_agent(std::size_t i, const Vector& x, Vector& residual_ws,
                                            Vector& out) const {
  REDOPT_REQUIRE(i < num_agents(), "batch gradient agent index out of range");
  REDOPT_REQUIRE(x.size() == d_, "batch gradient dimension mismatch");
  const std::size_t lo = row_offsets_[i];
  const std::size_t rows = row_offsets_[i + 1] - lo;
  if (residual_ws.size() != rows) residual_ws = Vector(rows);
  if (out.size() != d_) out = Vector(d_);
  const double* block = rows_.data() + lo * d_;
  double* r = residual_ws.data().data();
  linalg::kernels::matvec(block, rows, d_, x.data().data(), r);
  linalg::kernels::sub(r, rhs_.data() + lo, rows);
  double* g = out.data().data();
  linalg::kernels::matvec_transposed(block, rows, d_, r, g);
  linalg::kernels::scale(g, 2.0, d_);
}

void BatchGradientEvaluator::evaluate_groups(const std::vector<Vector>& xs,
                                             std::vector<std::vector<Vector>>& out) {
  REDOPT_REQUIRE(xs.size() == num_groups(), "batch gradient: one iterate per group required");
  const std::size_t total_rows = row_offsets_.back();
  residual_.resize(total_rows);
  // One residual arena for the whole batch: each group's row block
  // multiplies that group's iterate, then a single subtraction pass
  // covers every row.  Row independence keeps each group's bytes equal
  // to a per-group evaluate_all().
  for (std::size_t g = 0; g < num_groups(); ++g) {
    REDOPT_REQUIRE(xs[g].size() == d_, "batch gradient dimension mismatch");
    const std::size_t row_lo = row_offsets_[group_offsets_[g]];
    const std::size_t row_hi = row_offsets_[group_offsets_[g + 1]];
    linalg::kernels::matvec(rows_.data() + row_lo * d_, row_hi - row_lo, d_, xs[g].data().data(),
                            residual_.data() + row_lo);
  }
  linalg::kernels::sub(residual_.data(), rhs_.data(), total_rows);

  out.resize(num_groups());
  for (std::size_t g = 0; g < num_groups(); ++g) {
    const std::size_t agents = group_agents(g);
    out[g].resize(agents);
    for (std::size_t local = 0; local < agents; ++local) {
      const std::size_t i = group_offsets_[g] + local;
      const std::size_t lo = row_offsets_[i];
      const std::size_t rows = row_offsets_[i + 1] - lo;
      if (out[g][local].size() != d_) out[g][local] = Vector(d_);
      double* grad = out[g][local].data().data();
      linalg::kernels::matvec_transposed(rows_.data() + lo * d_, rows, d_, residual_.data() + lo,
                                         grad);
      linalg::kernels::scale(grad, 2.0, d_);
    }
  }
}

}  // namespace redopt::core
