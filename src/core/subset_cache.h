// Bounded memoizer for subset-argmin results, keyed by bitmask signature.
//
// The exact algorithm (core/exact_algorithm.h) evaluates the argmin set of
// sum_{i in T-hat} Q_i for many overlapping inner subsets T-hat; adjacent
// outer candidates share most of their inner subsets, so memoization
// removes the bulk of the argmin work.  Subsets are keyed by a uint64
// bitmask (bit i set <=> agent i in the subset), which makes lookups a
// single integer comparison instead of a lexicographic vector compare —
// and bounds the algorithm to n <= 64 agents, far beyond where exhaustive
// enumeration is feasible anyway.
//
// The cache is LRU-bounded: memoizing every subset of a large run would
// hold every MinimizerSet ever computed.  Eviction only ever causes
// recomputation (argmin is deterministic), never a different result, so
// capacity influences the hit/miss counters but not the algorithm output.
//
// Not thread-safe; the exact algorithm keeps one instance per ranking
// chunk (no cross-thread sharing by construction).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "core/minimizer_set.h"

namespace redopt::core {

class SubsetCache {
 public:
  /// @p capacity is the maximum number of retained entries (>= 1).
  explicit SubsetCache(std::size_t capacity = 4096);

  /// Bitmask signature of a subset; requires every index < 64.
  static std::uint64_t signature(const std::vector<std::size_t>& subset);

  /// Cached result for @p sig, or nullptr on a miss.  A hit refreshes the
  /// entry's LRU position.  The pointer is invalidated by the next insert().
  const MinimizerSet* find(std::uint64_t sig);

  /// Stores @p set under @p sig (which must not be present), evicting the
  /// least-recently-used entry when over capacity.  Returns the stored set.
  const MinimizerSet& insert(std::uint64_t sig, MinimizerSet set);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::uint64_t sig;
    MinimizerSet set;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace redopt::core
