// Least-squares cost Q(x) = ||A x - b||^2.
//
// This is the cost family of the paper's evaluation: in distributed linear
// regression agent i holds one observation row, Q_i(x) = (B_i - A_i x)^2.
// An aggregate of least-squares costs is again least-squares (stack rows),
// so argmin sets are computed exactly; the 2f-redundancy property reduces to
// a rank condition on row subsets of A.
#pragma once

#include "core/cost_function.h"

namespace redopt::core {

class LeastSquaresCost final : public CostFunction {
 public:
  /// Constructs ||A x - b||^2 (no 1/2 factor, matching the paper).
  /// Requires a.rows() == b.size() and a.rows() >= 1.
  LeastSquaresCost(Matrix a, Vector b);

  /// Single-observation convenience: (b - <a_row, x>)^2.
  static LeastSquaresCost single(const Vector& a_row, double b);

  std::size_t dimension() const override { return a_.cols(); }
  double value(const Vector& x) const override;
  Vector gradient(const Vector& x) const override;
  std::optional<Matrix> hessian(const Vector& x) const override;
  std::unique_ptr<CostFunction> clone() const override;
  std::string describe() const override;

  const Matrix& a() const { return a_; }
  const Vector& b() const { return b_; }

 private:
  Matrix a_;
  Vector b_;
};

}  // namespace redopt::core
