#include "core/aggregate_cost.h"

#include "linalg/kernels.h"
#include "util/error.h"

namespace redopt::core {

AggregateCost::AggregateCost(std::vector<CostPtr> terms)
    : AggregateCost(std::move(terms), {}) {}

AggregateCost::AggregateCost(std::vector<CostPtr> terms, std::vector<double> weights)
    : terms_(std::move(terms)), weights_(std::move(weights)) {
  REDOPT_REQUIRE(!terms_.empty(), "aggregate of zero cost functions");
  for (const auto& t : terms_) REDOPT_REQUIRE(t != nullptr, "aggregate term is null");
  if (weights_.empty()) weights_.assign(terms_.size(), 1.0);
  REDOPT_REQUIRE(weights_.size() == terms_.size(), "aggregate weight count mismatch");
  const std::size_t d = terms_.front()->dimension();
  for (const auto& t : terms_)
    REDOPT_REQUIRE(t->dimension() == d, "aggregate terms must share one dimension");
}

AggregateCost AggregateCost::average(std::vector<CostPtr> terms) {
  const double w = 1.0 / static_cast<double>(terms.size());
  std::vector<double> weights(terms.size(), w);
  return AggregateCost(std::move(terms), std::move(weights));
}

std::size_t AggregateCost::dimension() const { return terms_.front()->dimension(); }

double AggregateCost::value(const Vector& x) const {
  linalg::kernels::Sum acc;
  for (std::size_t i = 0; i < terms_.size(); ++i) acc.add(weights_[i] * terms_[i]->value(x));
  return acc.value();
}

Vector AggregateCost::gradient(const Vector& x) const {
  Vector g(dimension());
  for (std::size_t i = 0; i < terms_.size(); ++i) g += terms_[i]->gradient(x) * weights_[i];
  return g;
}

std::optional<Matrix> AggregateCost::hessian(const Vector& x) const {
  Matrix h(dimension(), dimension());
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    auto hi = terms_[i]->hessian(x);
    if (!hi) return std::nullopt;
    *hi *= weights_[i];
    h += *hi;
  }
  return h;
}

std::unique_ptr<CostFunction> AggregateCost::clone() const {
  return std::make_unique<AggregateCost>(*this);
}

std::string AggregateCost::describe() const {
  return "aggregate(" + std::to_string(terms_.size()) + " terms, d=" +
         std::to_string(dimension()) + ")";
}

AggregateCost aggregate_subset(const std::vector<CostPtr>& costs,
                               const std::vector<std::size_t>& subset) {
  REDOPT_REQUIRE(!subset.empty(), "aggregate over an empty subset");
  std::vector<CostPtr> terms;
  terms.reserve(subset.size());
  for (std::size_t idx : subset) {
    REDOPT_REQUIRE(idx < costs.size(), "subset index out of range");
    terms.push_back(costs[idx]);
  }
  return AggregateCost(std::move(terms));
}

double subset_value(const std::vector<CostPtr>& costs, const std::vector<std::size_t>& ids,
                    const Vector& at) {
  linalg::kernels::Sum acc;
  for (std::size_t id : ids) {
    REDOPT_REQUIRE(id < costs.size(), "subset index out of range");
    acc.add(costs[id]->value(at));
  }
  return acc.value();
}

}  // namespace redopt::core
