// Quadratic cost Q(x) = 0.5 x^T P x + q^T x + c with symmetric PSD P.
//
// Quadratics are the workhorse of the test-suite and of the robust-mean
// examples (Q_i(x) = ||x - x_i||^2 is a quadratic with P = 2I).  Their
// argmin sets are affine and computed exactly, which lets the redundancy
// checker measure (2f, eps)-redundancy without numeric optimization error.
#pragma once

#include "core/cost_function.h"

namespace redopt::core {

class QuadraticCost final : public CostFunction {
 public:
  /// Constructs 0.5 x^T P x + q^T x + c.  P must be square, symmetric (to
  /// 1e-9 relative tolerance) and match q's dimension.
  QuadraticCost(Matrix p, Vector q, double c = 0.0);

  /// Convenience: the squared-distance cost ||x - center||^2
  /// (P = 2I, q = -2 center, c = ||center||^2).
  static QuadraticCost squared_distance(const Vector& center);

  std::size_t dimension() const override { return q_.size(); }
  double value(const Vector& x) const override;
  Vector gradient(const Vector& x) const override;
  std::optional<Matrix> hessian(const Vector& x) const override;
  std::unique_ptr<CostFunction> clone() const override;
  std::string describe() const override;

  const Matrix& p() const { return p_; }
  const Vector& q() const { return q_; }
  double c() const { return c_; }

 private:
  Matrix p_;
  Vector q_;
  double c_;
};

}  // namespace redopt::core
