// Computation of argmin sets of cost functions.
//
// Dispatches on the analytic structure of the cost:
//   * pure least-squares aggregates  -> stack rows, solve normal equations;
//     the argmin set is affine (point + null space of the stacked matrix);
//   * pure quadratic aggregates      -> solve P x = -q via eigendecomposition;
//     the argmin set is affine (point + kernel of P);
//   * everything else                -> numeric gradient descent with Armijo
//     backtracking, returning a singleton set.
//
// Exactness of the analytic paths is what lets the redundancy checker and
// the exhaustive exact algorithm match the paper's definitions without
// numeric slack.
#pragma once

#include "core/cost_function.h"
#include "core/minimizer_set.h"

namespace redopt::core {

class AbsoluteCost;
class LeastSquaresCost;

/// Options for the numeric fallback minimizer.
struct NumericArgminOptions {
  std::size_t max_iterations = 50'000;  ///< hard iteration cap
  double gradient_tolerance = 1e-11;    ///< stop when ||grad|| falls below
  double initial_step = 1.0;            ///< first Armijo trial step
  double armijo_c = 1e-4;               ///< sufficient-decrease constant
  double backtrack = 0.5;               ///< step shrink factor
};

/// Options for argmin-set computation.
struct ArgminOptions {
  double rank_tolerance = 1e-9;   ///< relative eigenvalue cutoff for kernels
  NumericArgminOptions numeric;   ///< settings for the numeric fallback
};

/// Computes the argmin set of @p cost.
///
/// Throws PreconditionError if the cost is recognisably unbounded below
/// (a quadratic/least-squares family whose stationarity system is
/// inconsistent), violating Assumption 1.
MinimizerSet argmin_set(const CostFunction& cost, const ArgminOptions& options = {});

/// A single minimum point (the representative of argmin_set()).
Vector argmin_point(const CostFunction& cost, const ArgminOptions& options = {});

/// Numeric minimizer (exposed for tests): gradient descent with Armijo
/// backtracking started from the origin.
Vector numeric_argmin(const CostFunction& cost, const NumericArgminOptions& options = {});

/// Precomputed fast path for repeated subset-argmin evaluations over one
/// fixed cost list — the exact algorithm's inner loop evaluates
/// argmin_set(aggregate_subset(costs, subset)) for thousands of
/// overlapping subsets, and the generic path pays for an AggregateCost
/// construction, a dynamic-cast flatten, and fresh stacking/accumulation
/// buffers on every call.
///
/// The evaluator classifies the cost list once at construction:
///   * all least-squares  -> per-call row stacking into a reused workspace
///     (the Gram accumulation order over stacked rows is association-
///     sensitive, so rows are stacked exactly as the generic path does);
///   * all quadratic/least-squares -> per-cost (P_i, q_i) precomputed once
///     and summed per subset; per-cost PSD certification replaces the
///     per-subset convexity eigencheck (Weyl: min_eig(sum P_i) >=
///     sum min_eig(P_i) >= 0), falling back to the per-subset check when
///     any P_i fails to certify;
///   * all absolute       -> per-subset weighted-median accumulation;
///   * anything else      -> delegates to argmin_set(aggregate_subset(...)).
///
/// evaluate() is bit-identical to argmin_set(aggregate_subset(costs,
/// subset), options) in every mode.  Instances are copyable (one per
/// worker chunk) but not thread-safe: evaluate() mutates the workspaces.
class SubsetArgminEvaluator {
 public:
  SubsetArgminEvaluator(const std::vector<CostPtr>& costs, const ArgminOptions& options);

  /// Argmin set of sum_{i in subset} costs[i].
  MinimizerSet evaluate(const std::vector<std::size_t>& subset);

 private:
  enum class Mode { kLeastSquares, kQuadratic, kAbsolute, kGeneric };

  MinimizerSet evaluate_least_squares(const std::vector<std::size_t>& subset);
  MinimizerSet evaluate_quadratic(const std::vector<std::size_t>& subset);
  MinimizerSet evaluate_absolute(const std::vector<std::size_t>& subset);

  const std::vector<CostPtr>* costs_;
  ArgminOptions options_;
  Mode mode_ = Mode::kGeneric;
  std::size_t dimension_ = 0;

  // Leaf views established at construction (borrowed from costs_).
  std::vector<const LeastSquaresCost*> ls_terms_;
  std::vector<const AbsoluteCost*> abs_terms_;

  // kQuadratic: per-cost stationarity contributions and PSD certificates.
  std::vector<Matrix> term_p_;
  std::vector<Vector> term_q_;
  bool all_terms_psd_ = false;

  // Workspaces reused across evaluate() calls.
  std::vector<double> a_rows_;  // kLeastSquares: stacked subset rows
  std::vector<double> b_rows_;  // kLeastSquares: stacked subset rhs
  Matrix p_ws_;
  Vector q_ws_;
  std::vector<double> abs_points_;
  std::vector<double> abs_weights_;
};

}  // namespace redopt::core
