// Computation of argmin sets of cost functions.
//
// Dispatches on the analytic structure of the cost:
//   * pure least-squares aggregates  -> stack rows, solve normal equations;
//     the argmin set is affine (point + null space of the stacked matrix);
//   * pure quadratic aggregates      -> solve P x = -q via eigendecomposition;
//     the argmin set is affine (point + kernel of P);
//   * everything else                -> numeric gradient descent with Armijo
//     backtracking, returning a singleton set.
//
// Exactness of the analytic paths is what lets the redundancy checker and
// the exhaustive exact algorithm match the paper's definitions without
// numeric slack.
#pragma once

#include "core/cost_function.h"
#include "core/minimizer_set.h"

namespace redopt::core {

/// Options for the numeric fallback minimizer.
struct NumericArgminOptions {
  std::size_t max_iterations = 50'000;  ///< hard iteration cap
  double gradient_tolerance = 1e-11;    ///< stop when ||grad|| falls below
  double initial_step = 1.0;            ///< first Armijo trial step
  double armijo_c = 1e-4;               ///< sufficient-decrease constant
  double backtrack = 0.5;               ///< step shrink factor
};

/// Options for argmin-set computation.
struct ArgminOptions {
  double rank_tolerance = 1e-9;   ///< relative eigenvalue cutoff for kernels
  NumericArgminOptions numeric;   ///< settings for the numeric fallback
};

/// Computes the argmin set of @p cost.
///
/// Throws PreconditionError if the cost is recognisably unbounded below
/// (a quadratic/least-squares family whose stationarity system is
/// inconsistent), violating Assumption 1.
MinimizerSet argmin_set(const CostFunction& cost, const ArgminOptions& options = {});

/// A single minimum point (the representative of argmin_set()).
Vector argmin_point(const CostFunction& cost, const ArgminOptions& options = {});

/// Numeric minimizer (exposed for tests): gradient descent with Armijo
/// backtracking started from the origin.
Vector numeric_argmin(const CostFunction& cost, const NumericArgminOptions& options = {});

}  // namespace redopt::core
