// The multi-agent optimization problem: one cost per agent plus the
// Byzantine-fault parameters, and the smoothness/convexity constants
// (Assumptions 2 and 3) that the fault-tolerance theorems are stated in.
#pragma once

#include <vector>

#include "core/aggregate_cost.h"
#include "core/argmin.h"
#include "core/cost_function.h"

namespace redopt::core {

/// A system of n agents, agent i holding costs[i], of which up to f may be
/// Byzantine faulty.  The struct carries only the fault *budget* f; which
/// agents actually misbehave in an execution is chosen by the caller.
struct MultiAgentProblem {
  std::vector<CostPtr> costs;  ///< one cost per agent; index == agent id
  std::size_t f = 0;           ///< maximum number of Byzantine agents

  std::size_t num_agents() const { return costs.size(); }

  /// Decision-variable dimension d (agents must agree; validated by validate()).
  std::size_t dimension() const;

  /// Checks the structural invariants: non-empty, equal dimensions,
  /// n > 2f (Lemma: no resilience is possible for f >= n/2, and the
  /// machinery additionally needs non-empty (n-2f)-subsets).
  void validate() const;

  /// All agent ids 0..n-1.
  std::vector<std::size_t> all_agents() const;

  /// Plain-sum aggregate over a subset of agents.
  AggregateCost aggregate(const std::vector<std::size_t>& subset) const {
    return aggregate_subset(costs, subset);
  }
};

/// Per-agent Lipschitz-smoothness constant mu (Assumption 2): the largest
/// Hessian eigenvalue over the given agents.  Uses the Hessian at
/// @p reference; exact for quadratic families (constant Hessian).
/// Throws PreconditionError if some agent exposes no Hessian.
double lipschitz_constant(const MultiAgentProblem& problem,
                          const std::vector<std::size_t>& agents, const Vector& reference);

/// Strong-convexity constant gamma (Assumption 3): the smallest eigenvalue
/// of the *average* Hessian over every (n-f)-subset of @p honest_agents.
/// Throws PreconditionError if some agent exposes no Hessian.
double strong_convexity_constant(const MultiAgentProblem& problem,
                                 const std::vector<std::size_t>& honest_agents,
                                 const Vector& reference);

/// The CGE resilience margin  alpha = 1 - (f/n)(1 + 2 mu / gamma)
/// from Theorem 4; DGD+CGE is guaranteed to converge only when alpha > 0.
double cge_alpha(std::size_t n, std::size_t f, double mu, double gamma);

}  // namespace redopt::core
