#include "core/exact_algorithm.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "core/aggregate_cost.h"
#include "rng/rng.h"
#include "util/error.h"
#include "util/subsets.h"

namespace redopt::core {

ExactAlgorithmResult run_exact_algorithm(const std::vector<CostPtr>& received_costs,
                                         std::size_t f, const ArgminOptions& options) {
  const std::size_t n = received_costs.size();
  REDOPT_REQUIRE(f >= 1, "exact algorithm is trivial for f = 0; use argmin directly");
  REDOPT_REQUIRE(n > 2 * f, "exact algorithm requires n > 2f");
  for (const auto& c : received_costs)
    REDOPT_REQUIRE(c != nullptr, "received cost function is null");

  // The same (n-2f)-subset appears inside many (n-f)-subsets; memoize its
  // argmin set keyed by the sorted index list.
  std::map<std::vector<std::size_t>, MinimizerSet> inner_cache;
  auto inner_set = [&](const std::vector<std::size_t>& subset) -> const MinimizerSet& {
    auto it = inner_cache.find(subset);
    if (it == inner_cache.end()) {
      it = inner_cache
               .emplace(subset, argmin_set(aggregate_subset(received_costs, subset), options))
               .first;
    }
    return it->second;
  };

  ExactAlgorithmResult best;
  double best_score = std::numeric_limits<double>::infinity();

  util::for_each_subset(n, n - f, [&](const std::vector<std::size_t>& t) {
    const Vector x_t = argmin_point(aggregate_subset(received_costs, t), options);

    // r_T = max over (n-2f)-subsets of T of dist(x_T, argmin of the subset).
    double r_t = 0.0;
    util::for_each_subset_of(t, n - 2 * f, [&](const std::vector<std::size_t>& t_hat) {
      r_t = std::max(r_t, inner_set(t_hat).distance_to(x_t));
      // Early exit: this T already scores worse than the best seen.
      return r_t < best_score;
    });

    if (r_t < best_score) {
      best_score = r_t;
      best.output = x_t;
      best.chosen_set = t;
      best.chosen_score = r_t;
    }
    ++best.subsets_evaluated;
    return true;
  });

  REDOPT_ASSERT(!best.chosen_set.empty(), "exact algorithm evaluated no subsets");
  return best;
}

ExactAlgorithmResult run_sampled_exact_algorithm(const std::vector<CostPtr>& received_costs,
                                                 std::size_t f,
                                                 const SampledExactOptions& sampling,
                                                 const ArgminOptions& options) {
  const std::size_t n = received_costs.size();
  REDOPT_REQUIRE(f >= 1, "sampled exact algorithm is trivial for f = 0");
  REDOPT_REQUIRE(n > 2 * f, "sampled exact algorithm requires n > 2f");
  REDOPT_REQUIRE(sampling.outer_samples >= 1 && sampling.inner_samples >= 1,
                 "sampling budgets must be positive");
  for (const auto& c : received_costs)
    REDOPT_REQUIRE(c != nullptr, "received cost function is null");

  rng::Rng rng(sampling.seed);
  std::map<std::vector<std::size_t>, MinimizerSet> inner_cache;
  auto inner_set = [&](const std::vector<std::size_t>& subset) -> const MinimizerSet& {
    auto it = inner_cache.find(subset);
    if (it == inner_cache.end()) {
      it = inner_cache
               .emplace(subset, argmin_set(aggregate_subset(received_costs, subset), options))
               .first;
    }
    return it->second;
  };

  // Agent centrality (guided mode): rank agents by the median distance of
  // their own argmin representative to the other agents'.  Under
  // redundancy the honest minimizers cluster while adversarial ones sit
  // apart, so centrality both (a) nominates a strong honest-leaning outer
  // candidate and (b) nominates, per outer subset, the *revealing* inner
  // subset — the one that drops the most suspicious 2f members, which is
  // what exposes a contaminated T's true score (uniform inner sampling
  // almost never hits it).
  std::vector<double> centrality;
  if (sampling.guided) {
    std::vector<Vector> points;
    points.reserve(n);
    for (const auto& cost : received_costs) points.push_back(argmin_point(*cost, options));
    centrality.resize(n);
    std::vector<double> distances(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t k = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) distances[k++] = linalg::distance(points[i], points[j]);
      }
      std::nth_element(distances.begin(),
                       distances.begin() + static_cast<std::ptrdiff_t>(distances.size() / 2),
                       distances.end());
      centrality[i] = distances[distances.size() / 2];  // median distance
    }
  }

  // Distinct outer subsets: enumerate exactly when the count fits the
  // budget, otherwise draw without duplicates.
  std::vector<std::vector<std::size_t>> outers;
  if (sampling.guided) {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return centrality[a] < centrality[b]; });
    std::vector<std::size_t> central(order.begin(),
                                     order.begin() + static_cast<std::ptrdiff_t>(n - f));
    std::sort(central.begin(), central.end());
    outers.push_back(std::move(central));
  }
  if (util::binomial(n, f) <= sampling.outer_samples) {
    util::for_each_subset(n, n - f, [&](const std::vector<std::size_t>& t) {
      outers.push_back(t);
      return true;
    });
  } else {
    std::set<std::vector<std::size_t>> distinct;
    while (distinct.size() < sampling.outer_samples) {
      distinct.insert(rng.subset(n, n - f));
    }
    outers.insert(outers.end(), distinct.begin(), distinct.end());
  }

  ExactAlgorithmResult best;
  double best_score = std::numeric_limits<double>::infinity();
  for (const auto& t : outers) {
    const Vector x_t = argmin_point(aggregate_subset(received_costs, t), options);

    double r_t = 0.0;
    if (sampling.guided) {
      // Revealing inner candidate: drop the 2f least-central members of T.
      std::vector<std::size_t> by_centrality = t;
      std::sort(by_centrality.begin(), by_centrality.end(), [&](std::size_t a, std::size_t b) {
        return centrality[a] < centrality[b];
      });
      std::vector<std::size_t> revealing(by_centrality.begin(),
                                         by_centrality.end() -
                                             static_cast<std::ptrdiff_t>(2 * f));
      std::sort(revealing.begin(), revealing.end());
      r_t = std::max(r_t, inner_set(revealing).distance_to(x_t));
    }
    const std::uint64_t inner_count = util::binomial(t.size(), 2 * f);  // C(n-f, n-2f)
    if (inner_count <= sampling.inner_samples) {
      util::for_each_subset_of(t, n - 2 * f, [&](const std::vector<std::size_t>& t_hat) {
        r_t = std::max(r_t, inner_set(t_hat).distance_to(x_t));
        return r_t < best_score;
      });
    } else {
      for (std::size_t s = 0; s < sampling.inner_samples && r_t < best_score; ++s) {
        const auto positions = rng.subset(t.size(), n - 2 * f);
        std::vector<std::size_t> t_hat(positions.size());
        for (std::size_t i = 0; i < positions.size(); ++i) t_hat[i] = t[positions[i]];
        r_t = std::max(r_t, inner_set(t_hat).distance_to(x_t));
      }
    }

    if (r_t < best_score) {
      best_score = r_t;
      best.output = x_t;
      best.chosen_set = t;
      best.chosen_score = r_t;
    }
    ++best.subsets_evaluated;
  }
  REDOPT_ASSERT(!best.chosen_set.empty(), "sampled exact algorithm evaluated no subsets");
  return best;
}

}  // namespace redopt::core
