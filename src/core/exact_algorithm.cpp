#include "core/exact_algorithm.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <set>
#include <utility>

#include "core/aggregate_cost.h"
#include "core/subset_cache.h"
#include "rng/rng.h"
#include "runtime/runtime.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "util/error.h"
#include "util/subsets.h"

namespace redopt::core {

namespace {

/// Telemetry handles for one exact-algorithm run.  The inner-evaluation
/// and cache-miss counts depend on the chunk-local pruning pattern (how
/// early a candidate exits varies with the configured lane count), so
/// they are registered kUnstable; runs and outer_candidates are exact.
struct ExactMetrics {
  telemetry::Counter runs;
  telemetry::Counter outer_candidates;
  telemetry::Counter inner_evaluations;
  telemetry::Counter inner_cache_hits;
  telemetry::Counter inner_cache_misses;

  ExactMetrics() {
    auto& reg = telemetry::registry();
    runs = reg.counter("exact.runs");
    outer_candidates = reg.counter("exact.outer_candidates");
    inner_evaluations = reg.counter("exact.inner_evaluations", telemetry::Determinism::kUnstable);
    inner_cache_hits = reg.counter("exact.inner_cache_hits", telemetry::Determinism::kUnstable);
    inner_cache_misses = reg.counter("exact.inner_cache_misses", telemetry::Determinism::kUnstable);
  }
};

/// Run-local evaluation counts.  Kept in atomics (not registry counters)
/// while the parallel region is active because a run may itself execute
/// inside an outer parallel region (the resilience sweep invokes the whole
/// algorithm per worker), where reading registry counters back is illegal;
/// the totals are flushed into the registry after the reduce returns.
struct RunCounters {
  std::atomic<std::uint64_t> inner_evaluations{0};
  std::atomic<std::uint64_t> inner_cache_hits{0};
  std::atomic<std::uint64_t> inner_cache_misses{0};
};

/// Memoizing argmin-set lookup for inner subsets.  One instance per chunk
/// of outer candidates: lexicographically adjacent outers share most of
/// their inner subsets, so chunk-local caches retain nearly all the reuse
/// without any cross-thread sharing.  Lookups are LRU-bounded bitmask
/// probes (core/subset_cache.h); misses are computed by the precomputed
/// fast-path evaluator instead of rebuilding an AggregateCost per subset.
class InnerCache {
 public:
  InnerCache(const SubsetArgminEvaluator& evaluator, RunCounters& counters)
      : evaluator_(evaluator), counters_(counters) {}

  ~InnerCache() {
    counters_.inner_cache_hits.fetch_add(cache_.hits(), std::memory_order_relaxed);
    counters_.inner_cache_misses.fetch_add(cache_.misses(), std::memory_order_relaxed);
  }

  const MinimizerSet& set_for(const std::vector<std::size_t>& subset) {
    counters_.inner_evaluations.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t sig = SubsetCache::signature(subset);
    if (const MinimizerSet* cached = cache_.find(sig)) return *cached;
    return cache_.insert(sig, evaluator_.evaluate(subset));
  }

 private:
  SubsetArgminEvaluator evaluator_;  // chunk-private copy (mutable workspaces)
  RunCounters& counters_;
  SubsetCache cache_;
};

/// Best outer candidate found in a contiguous chunk of the candidate list.
struct RangeBest {
  double score = std::numeric_limits<double>::infinity();
  std::size_t outer_index = std::numeric_limits<std::size_t>::max();
  Vector output;
  std::vector<std::size_t> chosen;
};

/// Deterministic merge: strict lexicographic (score, candidate index), so
/// ties keep the earliest candidate — exactly what the sequential sweep's
/// strict `<` update rule does.
RangeBest better(const RangeBest& a, const RangeBest& b) {
  if (b.score < a.score) return b;
  if (a.score < b.score) return a;
  return b.outer_index < a.outer_index ? b : a;
}

/// [lo, hi) bounds of block c when count items split into `chunks` blocks.
std::pair<std::size_t, std::size_t> chunk_bounds(std::size_t count, std::size_t chunks,
                                                 std::size_t c) {
  const std::size_t base = count / chunks;
  const std::size_t rem = count % chunks;
  const std::size_t lo = c * base + std::min(c, rem);
  return {lo, lo + base + (c < rem ? 1 : 0)};
}

/// Number of chunks the candidate ranking splits into.  Depends only on
/// the configured lane count (never on nesting or pool state), so the
/// chunk-local pruning pattern — and therefore every intermediate value —
/// is reproducible for a given set_threads() value, while the *returned*
/// winner is identical for every value (pruning can only truncate the
/// inner enumeration of candidates that already lost: a pruned candidate's
/// partial score is >= the bound that pruned it, so it can never be
/// selected, and the winner is always fully evaluated).
std::size_t ranking_chunks(std::size_t candidates) {
  return std::max<std::size_t>(1, std::min(runtime::threads(), candidates));
}

}  // namespace

ExactAlgorithmResult run_exact_algorithm(const std::vector<CostPtr>& received_costs,
                                         std::size_t f, const ArgminOptions& options) {
  const std::size_t n = received_costs.size();
  REDOPT_REQUIRE(f >= 1, "exact algorithm is trivial for f = 0; use argmin directly");
  REDOPT_REQUIRE(n > 2 * f, "exact algorithm requires n > 2f");
  for (const auto& c : received_costs)
    REDOPT_REQUIRE(c != nullptr, "received cost function is null");

  // Materialize the outer candidates so they can be statically chunked
  // across the runtime's lanes; for any n where exhaustive enumeration is
  // viable at all, this list is small.
  std::vector<std::vector<std::size_t>> outers;
  outers.reserve(static_cast<std::size_t>(util::binomial(n, f)));
  util::for_each_subset(n, n - f, [&](const std::vector<std::size_t>& t) {
    outers.push_back(t);
    return true;
  });

  const ExactMetrics metrics;
  metrics.runs.inc();
  metrics.outer_candidates.inc(outers.size());
  RunCounters counters;

  // One classification/precompute pass serves every chunk (each takes a
  // private copy of the workspaces).
  const SubsetArgminEvaluator evaluator(received_costs, options);

  const std::size_t chunks = ranking_chunks(outers.size());
  const RangeBest best = runtime::parallel_reduce(
      std::size_t{0}, chunks, RangeBest{},
      [&](std::size_t c) {
        const auto [lo, hi] = chunk_bounds(outers.size(), chunks, c);
        InnerCache cache(evaluator, counters);
        SubsetArgminEvaluator outer_eval = evaluator;
        RangeBest local;
        for (std::size_t k = lo; k < hi; ++k) {
          const auto& t = outers[k];
          const Vector x_t = outer_eval.evaluate(t).representative();

          // r_T = max over (n-2f)-subsets of T of dist(x_T, argmin subset).
          double r_t = 0.0;
          util::for_each_subset_of(t, n - 2 * f, [&](const std::vector<std::size_t>& t_hat) {
            r_t = std::max(r_t, cache.set_for(t_hat).distance_to(x_t));
            // Early exit: this T already scores worse than the chunk best.
            return r_t < local.score;
          });

          if (r_t < local.score) local = RangeBest{r_t, k, x_t, t};
        }
        return local;
      },
      better);

  const std::uint64_t inner_evaluations =
      counters.inner_evaluations.load(std::memory_order_relaxed);
  const std::uint64_t inner_cache_hits =
      counters.inner_cache_hits.load(std::memory_order_relaxed);
  const std::uint64_t inner_cache_misses =
      counters.inner_cache_misses.load(std::memory_order_relaxed);
  metrics.inner_evaluations.inc(inner_evaluations);
  metrics.inner_cache_hits.inc(inner_cache_hits);
  metrics.inner_cache_misses.inc(inner_cache_misses);

  REDOPT_ASSERT(best.outer_index != std::numeric_limits<std::size_t>::max(),
                "exact algorithm evaluated no subsets");
  if (telemetry::tracing_enabled()) {
    telemetry::emit(telemetry::Event("exact.run")
                        .with("n", static_cast<std::uint64_t>(n))
                        .with("f", static_cast<std::uint64_t>(f))
                        .with("sampled", false)
                        .with("outer_candidates", static_cast<std::uint64_t>(outers.size()))
                        .with("chosen_rank", static_cast<std::uint64_t>(best.outer_index))
                        .with("chosen_score", best.score)
                        .with_nd("inner_evaluations", inner_evaluations));
  }
  ExactAlgorithmResult result;
  result.output = best.output;
  result.chosen_set = best.chosen;
  result.chosen_score = best.score;
  result.subsets_evaluated = outers.size();
  result.inner_evaluations = inner_evaluations;
  result.inner_cache_hits = inner_cache_hits;
  result.inner_cache_misses = inner_cache_misses;
  return result;
}

ExactAlgorithmResult run_sampled_exact_algorithm(const std::vector<CostPtr>& received_costs,
                                                 std::size_t f,
                                                 const SampledExactOptions& sampling,
                                                 const ArgminOptions& options) {
  const std::size_t n = received_costs.size();
  REDOPT_REQUIRE(f >= 1, "sampled exact algorithm is trivial for f = 0");
  REDOPT_REQUIRE(n > 2 * f, "sampled exact algorithm requires n > 2f");
  REDOPT_REQUIRE(sampling.outer_samples >= 1 && sampling.inner_samples >= 1,
                 "sampling budgets must be positive");
  for (const auto& c : received_costs)
    REDOPT_REQUIRE(c != nullptr, "received cost function is null");

  rng::Rng rng(sampling.seed);

  // Agent centrality (guided mode): rank agents by the median distance of
  // their own argmin representative to the other agents'.  Under
  // redundancy the honest minimizers cluster while adversarial ones sit
  // apart, so centrality both (a) nominates a strong honest-leaning outer
  // candidate and (b) nominates, per outer subset, the *revealing* inner
  // subset — the one that drops the most suspicious 2f members, which is
  // what exposes a contaminated T's true score (uniform inner sampling
  // almost never hits it).
  std::vector<double> centrality;
  if (sampling.guided) {
    std::vector<Vector> points(n);
    runtime::parallel_for(0, n, [&](std::size_t i) {
      points[i] = argmin_point(*received_costs[i], options);
    });
    centrality.resize(n);
    std::vector<double> distances(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t k = 0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) distances[k++] = linalg::distance(points[i], points[j]);
      }
      std::nth_element(distances.begin(),
                       distances.begin() + static_cast<std::ptrdiff_t>(distances.size() / 2),
                       distances.end());
      centrality[i] = distances[distances.size() / 2];  // median distance
    }
  }

  // Distinct outer subsets: enumerate exactly when the count fits the
  // budget, otherwise draw without duplicates.
  std::vector<std::vector<std::size_t>> outers;
  if (sampling.guided) {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return centrality[a] < centrality[b]; });
    std::vector<std::size_t> central(order.begin(),
                                     order.begin() + static_cast<std::ptrdiff_t>(n - f));
    std::sort(central.begin(), central.end());
    outers.push_back(std::move(central));
  }
  if (util::binomial(n, f) <= sampling.outer_samples) {
    util::for_each_subset(n, n - f, [&](const std::vector<std::size_t>& t) {
      outers.push_back(t);
      return true;
    });
  } else {
    std::set<std::vector<std::size_t>> distinct;
    while (distinct.size() < sampling.outer_samples) {
      distinct.insert(rng.subset(n, n - f));
    }
    outers.insert(outers.end(), distinct.begin(), distinct.end());
  }

  const ExactMetrics metrics;
  metrics.runs.inc();
  metrics.outer_candidates.inc(outers.size());
  RunCounters counters;

  const SubsetArgminEvaluator evaluator(received_costs, options);

  // Inner-sampling streams are forked per outer candidate, so the drawn
  // inner subsets depend only on (seed, candidate position) — never on
  // evaluation order, pruning depth, or thread count.
  const std::size_t chunks = ranking_chunks(outers.size());
  const RangeBest best = runtime::parallel_reduce(
      std::size_t{0}, chunks, RangeBest{},
      [&](std::size_t c) {
        const auto [lo, hi] = chunk_bounds(outers.size(), chunks, c);
        InnerCache cache(evaluator, counters);
        SubsetArgminEvaluator outer_eval = evaluator;
        RangeBest local;
        for (std::size_t k = lo; k < hi; ++k) {
          const auto& t = outers[k];
          const Vector x_t = outer_eval.evaluate(t).representative();

          double r_t = 0.0;
          if (sampling.guided) {
            // Revealing inner candidate: drop the 2f least-central members of T.
            std::vector<std::size_t> by_centrality = t;
            std::sort(by_centrality.begin(), by_centrality.end(),
                      [&](std::size_t a, std::size_t b) { return centrality[a] < centrality[b]; });
            std::vector<std::size_t> revealing(by_centrality.begin(),
                                               by_centrality.end() -
                                                   static_cast<std::ptrdiff_t>(2 * f));
            std::sort(revealing.begin(), revealing.end());
            r_t = std::max(r_t, cache.set_for(revealing).distance_to(x_t));
          }
          const std::uint64_t inner_count = util::binomial(t.size(), 2 * f);  // C(n-f, n-2f)
          if (inner_count <= sampling.inner_samples) {
            util::for_each_subset_of(t, n - 2 * f, [&](const std::vector<std::size_t>& t_hat) {
              r_t = std::max(r_t, cache.set_for(t_hat).distance_to(x_t));
              return r_t < local.score;
            });
          } else {
            rng::Rng inner_rng = rng.fork("inner-" + std::to_string(k));
            for (std::size_t s = 0; s < sampling.inner_samples && r_t < local.score; ++s) {
              const auto positions = inner_rng.subset(t.size(), n - 2 * f);
              std::vector<std::size_t> t_hat(positions.size());
              for (std::size_t i = 0; i < positions.size(); ++i) t_hat[i] = t[positions[i]];
              r_t = std::max(r_t, cache.set_for(t_hat).distance_to(x_t));
            }
          }

          if (r_t < local.score) local = RangeBest{r_t, k, x_t, t};
        }
        return local;
      },
      better);

  const std::uint64_t inner_evaluations =
      counters.inner_evaluations.load(std::memory_order_relaxed);
  const std::uint64_t inner_cache_hits =
      counters.inner_cache_hits.load(std::memory_order_relaxed);
  const std::uint64_t inner_cache_misses =
      counters.inner_cache_misses.load(std::memory_order_relaxed);
  metrics.inner_evaluations.inc(inner_evaluations);
  metrics.inner_cache_hits.inc(inner_cache_hits);
  metrics.inner_cache_misses.inc(inner_cache_misses);

  REDOPT_ASSERT(best.outer_index != std::numeric_limits<std::size_t>::max(),
                "sampled exact algorithm evaluated no subsets");
  if (telemetry::tracing_enabled()) {
    telemetry::emit(telemetry::Event("exact.run")
                        .with("n", static_cast<std::uint64_t>(n))
                        .with("f", static_cast<std::uint64_t>(f))
                        .with("sampled", true)
                        .with("outer_candidates", static_cast<std::uint64_t>(outers.size()))
                        .with("chosen_rank", static_cast<std::uint64_t>(best.outer_index))
                        .with("chosen_score", best.score)
                        .with_nd("inner_evaluations", inner_evaluations));
  }
  ExactAlgorithmResult result;
  result.output = best.output;
  result.chosen_set = best.chosen;
  result.chosen_score = best.score;
  result.subsets_evaluated = outers.size();
  result.inner_evaluations = inner_evaluations;
  result.inner_cache_hits = inner_cache_hits;
  result.inner_cache_misses = inner_cache_misses;
  return result;
}

}  // namespace redopt::core
