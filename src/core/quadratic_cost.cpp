#include "core/quadratic_cost.h"

#include <cmath>

#include "util/error.h"

namespace redopt::core {

QuadraticCost::QuadraticCost(Matrix p, Vector q, double c)
    : p_(std::move(p)), q_(std::move(q)), c_(c) {
  REDOPT_REQUIRE(p_.rows() == p_.cols(), "quadratic P must be square");
  REDOPT_REQUIRE(p_.rows() == q_.size(), "quadratic P and q dimension mismatch");
  const double scale = std::max(p_.max_abs(), 1e-300);
  for (std::size_t i = 0; i < p_.rows(); ++i)
    for (std::size_t j = i + 1; j < p_.cols(); ++j)
      REDOPT_REQUIRE(std::abs(p_(i, j) - p_(j, i)) <= 1e-9 * scale,
                     "quadratic P must be symmetric");
}

QuadraticCost QuadraticCost::squared_distance(const Vector& center) {
  const std::size_t d = center.size();
  Matrix p = Matrix::identity(d);
  p *= 2.0;
  Vector q = center * (-2.0);
  return QuadraticCost(std::move(p), std::move(q), center.norm_squared());
}

double QuadraticCost::value(const Vector& x) const {
  REDOPT_REQUIRE(x.size() == dimension(), "quadratic value dimension mismatch");
  return 0.5 * linalg::dot(x, linalg::matvec(p_, x)) + linalg::dot(q_, x) + c_;
}

Vector QuadraticCost::gradient(const Vector& x) const {
  REDOPT_REQUIRE(x.size() == dimension(), "quadratic gradient dimension mismatch");
  return linalg::matvec(p_, x) + q_;
}

std::optional<Matrix> QuadraticCost::hessian(const Vector&) const { return p_; }

std::unique_ptr<CostFunction> QuadraticCost::clone() const {
  return std::make_unique<QuadraticCost>(*this);
}

std::string QuadraticCost::describe() const {
  return "quadratic(d=" + std::to_string(dimension()) + ")";
}

}  // namespace redopt::core
