#include "core/problem.h"

#include <algorithm>
#include <limits>

#include "linalg/decompose.h"
#include "util/error.h"
#include "util/subsets.h"

namespace redopt::core {

std::size_t MultiAgentProblem::dimension() const {
  REDOPT_REQUIRE(!costs.empty(), "problem has no agents");
  return costs.front()->dimension();
}

void MultiAgentProblem::validate() const {
  REDOPT_REQUIRE(!costs.empty(), "problem has no agents");
  const std::size_t d = costs.front()->dimension();
  for (const auto& c : costs) {
    REDOPT_REQUIRE(c != nullptr, "agent cost is null");
    REDOPT_REQUIRE(c->dimension() == d, "agents disagree on problem dimension");
  }
  REDOPT_REQUIRE(costs.size() > 2 * f, "need n > 2f agents for fault-tolerance machinery");
}

std::vector<std::size_t> MultiAgentProblem::all_agents() const {
  std::vector<std::size_t> ids(costs.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  return ids;
}

double lipschitz_constant(const MultiAgentProblem& problem,
                          const std::vector<std::size_t>& agents, const Vector& reference) {
  REDOPT_REQUIRE(!agents.empty(), "lipschitz_constant over empty agent set");
  double mu = 0.0;
  for (std::size_t id : agents) {
    REDOPT_REQUIRE(id < problem.num_agents(), "agent id out of range");
    auto h = problem.costs[id]->hessian(reference);
    REDOPT_REQUIRE(h.has_value(), "agent cost exposes no Hessian; cannot compute mu");
    mu = std::max(mu, linalg::max_eigenvalue(*h));
  }
  return mu;
}

double strong_convexity_constant(const MultiAgentProblem& problem,
                                 const std::vector<std::size_t>& honest_agents,
                                 const Vector& reference) {
  const std::size_t n = problem.num_agents();
  const std::size_t f = problem.f;
  REDOPT_REQUIRE(honest_agents.size() >= n - f,
                 "need at least n-f honest agents for Assumption 3");

  // Cache per-agent Hessians once.
  std::vector<Matrix> hessians;
  hessians.reserve(honest_agents.size());
  for (std::size_t id : honest_agents) {
    REDOPT_REQUIRE(id < n, "agent id out of range");
    auto h = problem.costs[id]->hessian(reference);
    REDOPT_REQUIRE(h.has_value(), "agent cost exposes no Hessian; cannot compute gamma");
    hessians.push_back(std::move(*h));
  }

  double gamma = std::numeric_limits<double>::infinity();
  util::for_each_subset(honest_agents.size(), n - f,
                        [&](const std::vector<std::size_t>& positions) {
                          Matrix avg(problem.dimension(), problem.dimension());
                          for (std::size_t p : positions) avg += hessians[p];
                          avg *= 1.0 / static_cast<double>(positions.size());
                          gamma = std::min(gamma, linalg::min_eigenvalue(avg));
                          return true;
                        });
  return gamma;
}

double cge_alpha(std::size_t n, std::size_t f, double mu, double gamma) {
  REDOPT_REQUIRE(n > 0, "cge_alpha requires n > 0");
  REDOPT_REQUIRE(gamma > 0.0, "cge_alpha requires gamma > 0");
  return 1.0 - (static_cast<double>(f) / static_cast<double>(n)) * (1.0 + 2.0 * mu / gamma);
}

}  // namespace redopt::core
