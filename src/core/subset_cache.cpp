#include "core/subset_cache.h"

#include <utility>

#include "util/error.h"

namespace redopt::core {

SubsetCache::SubsetCache(std::size_t capacity) : capacity_(capacity) {
  REDOPT_REQUIRE(capacity >= 1, "subset cache capacity must be positive");
}

std::uint64_t SubsetCache::signature(const std::vector<std::size_t>& subset) {
  std::uint64_t sig = 0;
  for (std::size_t idx : subset) {
    REDOPT_REQUIRE(idx < 64, "subset signature requires agent indices < 64");
    sig |= std::uint64_t{1} << idx;
  }
  return sig;
}

const MinimizerSet* SubsetCache::find(std::uint64_t sig) {
  auto it = index_.find(sig);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->set;
}

const MinimizerSet& SubsetCache::insert(std::uint64_t sig, MinimizerSet set) {
  REDOPT_ASSERT(index_.find(sig) == index_.end(), "subset cache: duplicate insert");
  lru_.push_front(Entry{sig, std::move(set)});
  index_.emplace(sig, lru_.begin());
  if (index_.size() > capacity_) {
    index_.erase(lru_.back().sig);
    lru_.pop_back();
  }
  return lru_.front().set;
}

}  // namespace redopt::core
