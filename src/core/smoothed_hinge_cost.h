// Smoothed-hinge (quadratically smoothed SVM) cost over a local dataset.
//
// The paper's distributed-learning experiment trains a support-vector
// machine with gradient descent; the plain hinge is non-differentiable, so
// (as is standard) we use the quadratic smoothing with parameter h:
//
//   loss(z) = 0                     if z >= 1
//           = (1 - z)^2 / (2h)      if 1 - h < z < 1
//           = 1 - z - h/2           if z <= 1 - h
//
// where z = y <x, w>.  Q(w) = (1/m) sum_j loss(z_j) + (reg/2) ||w||^2.
// The gradient of this loss is Lipschitz with constant 1/h, so Assumption 2
// of the DGD theorems holds.
#pragma once

#include "core/cost_function.h"

namespace redopt::core {

class SmoothedHingeCost final : public CostFunction {
 public:
  /// @p features: m x d data matrix; @p labels: m entries in {-1, +1};
  /// @p reg >= 0; @p smoothing h in (0, 1].
  SmoothedHingeCost(Matrix features, Vector labels, double reg = 0.0, double smoothing = 0.5);

  std::size_t dimension() const override { return features_.cols(); }
  double value(const Vector& w) const override;
  Vector gradient(const Vector& w) const override;
  std::unique_ptr<CostFunction> clone() const override;
  std::string describe() const override;

  double regularization() const { return reg_; }
  double smoothing() const { return h_; }

 private:
  Matrix features_;
  Vector labels_;
  double reg_;
  double h_;
};

}  // namespace redopt::core
