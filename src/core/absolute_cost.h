// Scalar absolute-deviation (L1) cost: Q(x) = sum_j w_j |x - c_j|.
//
// The paper's Part-1 results (necessity and sufficiency of redundancy) are
// stated for generic costs "that need not even be differentiable"; the
// weighted absolute deviation is the canonical non-differentiable scalar
// example.  Its argmin set is the weighted-median set — a point or a
// closed interval — which exercises the interval branch of MinimizerSet,
// and lets the redundancy checker and the exhaustive exact algorithm run
// on non-smooth instances.  gradient() returns a subgradient (0 at kinks),
// which is what the projected subgradient method needs.
#pragma once

#include "core/cost_function.h"

namespace redopt::core {

class AbsoluteCost final : public CostFunction {
 public:
  /// Q(x) = sum_j weights[j] * |x - points[j]|, x scalar.
  /// Weights must be positive; at least one point.
  AbsoluteCost(std::vector<double> points, std::vector<double> weights);

  /// Unweighted convenience.
  explicit AbsoluteCost(std::vector<double> points);

  std::size_t dimension() const override { return 1; }
  double value(const Vector& x) const override;

  /// A subgradient: sum_j w_j * sign(x - c_j), with sign(0) = 0.
  Vector gradient(const Vector& x) const override;

  std::unique_ptr<CostFunction> clone() const override;
  std::string describe() const override;

  const std::vector<double>& points() const { return points_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> points_;
  std::vector<double> weights_;
};

/// The argmin set of sum_j w_j |x - c_j|: the weighted-median set, either
/// a single point or the closed interval between two adjacent points.
/// Requires positive weights and at least one point.
std::pair<double, double> weighted_median_interval(const std::vector<double>& points,
                                                   const std::vector<double>& weights);

}  // namespace redopt::core
