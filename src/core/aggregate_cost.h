// Aggregates of agent costs: sum_{i in S} w_i Q_i(x).
//
// Every theorem in the paper is a statement about minimum points of
// aggregates over agent subsets, so the aggregate is itself a CostFunction
// and can be fed back into any machinery that accepts one (numeric argmin,
// DGD in a centralized sanity check, redundancy measurement, ...).
#pragma once

#include <vector>

#include "core/cost_function.h"

namespace redopt::core {

/// Weighted sum of cost functions sharing one dimension.
class AggregateCost final : public CostFunction {
 public:
  /// Uniform weights (plain sum).  Requires at least one term and equal
  /// dimensions across all terms.
  explicit AggregateCost(std::vector<CostPtr> terms);

  /// Weighted sum; weights.size() must equal terms.size().
  AggregateCost(std::vector<CostPtr> terms, std::vector<double> weights);

  /// Average (weights 1/|terms|) — the Q_H of Assumption 3.
  static AggregateCost average(std::vector<CostPtr> terms);

  std::size_t dimension() const override;
  double value(const Vector& x) const override;
  Vector gradient(const Vector& x) const override;

  /// Sum of the terms' Hessians (weighted); nullopt if any term lacks one.
  std::optional<Matrix> hessian(const Vector& x) const override;

  std::unique_ptr<CostFunction> clone() const override;
  std::string describe() const override;

  const std::vector<CostPtr>& terms() const { return terms_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<CostPtr> terms_;
  std::vector<double> weights_;
};

/// Builds the plain-sum aggregate of the costs at the given indices.
AggregateCost aggregate_subset(const std::vector<CostPtr>& costs,
                               const std::vector<std::size_t>& subset);

/// sum_{i in ids} costs[i]->value(at) without building an AggregateCost.
/// Folds through linalg::kernels::Sum in @p ids order, so every caller that
/// evaluates a loss over an agent subset (trainer traces, protocol metrics)
/// shares one pinned accumulation order.
double subset_value(const std::vector<CostPtr>& costs, const std::vector<std::size_t>& ids,
                    const Vector& at);

}  // namespace redopt::core
