// Representation of argmin sets and distances between them.
//
// The redundancy definitions compare *sets* of minimum points: dist(x, X)
// for a point against a set, and the Hausdorff distance dist(X, Y) between
// two sets (Definition 3 / eq. (4) of the paper family).  The cost
// families in this library produce argmin sets of three shapes:
//
//   * a single point            (strongly convex costs, numeric argmin);
//   * an affine set x0 + span(B) (rank-deficient quadratic/least-squares
//     aggregates);
//   * a closed interval [lo, hi] in R^1 (weighted-median sets of the
//     non-differentiable absolute/L1 costs — the paper's Part-1 results
//     cover non-differentiable costs, and this is their canonical scalar
//     instance).
//
// MinimizerSet models exactly these shapes.
#pragma once

#include <optional>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace redopt::core {

using linalg::Matrix;
using linalg::Vector;

/// An argmin set: affine (point + orthonormal direction basis, possibly
/// zero-dimensional) or a 1-D closed interval.
class MinimizerSet {
 public:
  /// Single-point set {x}.
  static MinimizerSet singleton(Vector x);

  /// Affine set x0 + colspan(basis).  Basis columns must be orthonormal to
  /// 1e-8 tolerance; a 0-column basis yields a singleton.
  static MinimizerSet affine(Vector x0, Matrix basis);

  /// Closed interval [lo, hi] in R^1 (requires lo <= hi).  A degenerate
  /// interval (lo == hi) is a singleton.
  static MinimizerSet interval(double lo, double hi);

  std::size_t dimension() const { return point_.size(); }

  /// True if the set is one point.
  bool is_singleton() const;

  /// True if the set is a (possibly degenerate) 1-D interval.
  bool is_interval() const { return kind_ == Kind::kInterval; }

  /// Interval bounds; only valid when is_interval().
  double interval_lo() const;
  double interval_hi() const;

  /// Dimension of the direction space (0 for singletons and intervals;
  /// intervals are bounded, so translation along them is not free).
  std::size_t affine_dimension() const;

  /// Some point in the set (affine: the anchor; interval: the midpoint).
  const Vector& representative() const { return point_; }

  /// Orthonormal basis of the direction space (d x k; empty for intervals).
  const Matrix& basis() const { return basis_; }

  /// Orthogonal projection of @p x onto the set.
  Vector project(const Vector& x) const;

  /// dist(x, X) = inf_{y in X} ||x - y||   (eq. (3)).
  double distance_to(const Vector& x) const;

 private:
  enum class Kind { kAffine, kInterval };

  MinimizerSet(Kind kind, Vector point, Matrix basis, double lo, double hi)
      : kind_(kind), point_(std::move(point)), basis_(std::move(basis)), lo_(lo), hi_(hi) {}

  Kind kind_ = Kind::kAffine;
  Vector point_;   // a point in the set (interval: the midpoint)
  Matrix basis_;   // d x k orthonormal direction basis (affine only)
  double lo_ = 0.0, hi_ = 0.0;  // interval bounds (interval only)

  friend double hausdorff_distance(const MinimizerSet& x, const MinimizerSet& y, double tol);
};

/// Euclidean Hausdorff distance between two argmin sets (eq. (4)).
///
/// Finite iff the sets have matching "unbounded directions": two affine
/// sets need identical direction spaces; an interval against an affine set
/// of positive dimension (or vice versa) diverges; interval-vs-interval
/// and anything-vs-singleton are always finite.
double hausdorff_distance(const MinimizerSet& x, const MinimizerSet& y, double tol = 1e-8);

}  // namespace redopt::core
