#include "core/absolute_cost.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/kernels.h"
#include "util/error.h"

namespace redopt::core {

AbsoluteCost::AbsoluteCost(std::vector<double> points, std::vector<double> weights)
    : points_(std::move(points)), weights_(std::move(weights)) {
  REDOPT_REQUIRE(!points_.empty(), "absolute cost needs at least one point");
  REDOPT_REQUIRE(points_.size() == weights_.size(), "point/weight count mismatch");
  for (double w : weights_) REDOPT_REQUIRE(w > 0.0, "absolute-cost weights must be positive");
}

AbsoluteCost::AbsoluteCost(std::vector<double> points)
    : AbsoluteCost(points, std::vector<double>(points.size(), 1.0)) {}

double AbsoluteCost::value(const Vector& x) const {
  REDOPT_REQUIRE(x.size() == 1, "absolute cost is scalar");
  linalg::kernels::Sum acc;
  for (std::size_t j = 0; j < points_.size(); ++j) {
    acc.add(weights_[j] * std::abs(x[0] - points_[j]));
  }
  return acc.value();
}

Vector AbsoluteCost::gradient(const Vector& x) const {
  REDOPT_REQUIRE(x.size() == 1, "absolute cost is scalar");
  linalg::kernels::Sum g;
  for (std::size_t j = 0; j < points_.size(); ++j) {
    if (x[0] > points_[j]) {
      g.add(weights_[j]);
    } else if (x[0] < points_[j]) {
      g.add(-weights_[j]);
    }
    // At a kink the subgradient contribution is chosen as 0.
  }
  return Vector{g.value()};
}

std::unique_ptr<CostFunction> AbsoluteCost::clone() const {
  return std::make_unique<AbsoluteCost>(*this);
}

std::string AbsoluteCost::describe() const {
  return "absolute(points=" + std::to_string(points_.size()) + ")";
}

std::pair<double, double> weighted_median_interval(const std::vector<double>& points,
                                                   const std::vector<double>& weights) {
  REDOPT_REQUIRE(!points.empty(), "weighted median of no points");
  REDOPT_REQUIRE(points.size() == weights.size(), "point/weight count mismatch");
  linalg::kernels::Sum total_sum;
  for (double w : weights) {
    REDOPT_REQUIRE(w > 0.0, "weighted median needs positive weights");
    total_sum.add(w);
  }
  const double total = total_sum.value();

  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return points[a] < points[b]; });

  // The minimizers of sum w_j |x - c_j| are the x where the left weight
  // mass is >= total/2 and the right mass is >= total/2.  Scanning sorted
  // points: find the first k with prefix(k) >= total/2.  If the prefix hits
  // total/2 exactly, every x in [c_k, c_{k+1}] is optimal; otherwise c_k is
  // the unique minimizer.
  const double half = total / 2.0;
  linalg::kernels::Sum prefix;
  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    prefix.add(weights[order[idx]]);
    if (prefix.value() > half + 1e-15 * total) {
      const double c = points[order[idx]];
      return {c, c};
    }
    if (std::abs(prefix.value() - half) <= 1e-15 * total) {
      // Exactly half the mass at or left of this point: the optimum is the
      // whole segment to the next point.
      REDOPT_ASSERT(idx + 1 < order.size(), "weighted median scan overran");
      return {points[order[idx]], points[order[idx + 1]]};
    }
  }
  REDOPT_ASSERT(false, "weighted median scan failed");
  return {0.0, 0.0};  // unreachable
}

}  // namespace redopt::core
