// Batched gradient evaluation for least-squares agent populations.
//
// The DGD/SGD/async trainer hot loops evaluate every agent's gradient at
// the same iterate x each round.  For the paper's evaluation family —
// every agent holds a LeastSquaresCost Q_i(x) = ||A_i x - b_i||^2 — the
// virtual per-agent path allocates a residual and a gradient per call and
// re-reads x once per agent.  This evaluator stacks all agents' rows once
// at construction and exposes
//
//   * evaluate_all():  one stacked residual pass  r = R x - b  followed by
//     per-agent transposed products — a single matrix op over the whole
//     population; and
//   * evaluate_agent(): one agent against caller-owned workspaces, for the
//     trainers' parallel fan-out (each agent writes only its own slots, so
//     the loop is allocation-free after warm-up and bit-identical at any
//     lane count).
//
// Bit-identity contract: both entry points produce exactly the bytes of
// LeastSquaresCost::gradient(x) for every agent — the same kernels run
// over the same rows in the same order (the stacked matvec is row-
// independent, so stacking changes nothing).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/cost_function.h"

namespace redopt::core {

class BatchGradientEvaluator {
 public:
  /// Builds an evaluator when every cost is a LeastSquaresCost; returns
  /// nullptr otherwise (callers fall back to the virtual gradient path).
  static std::unique_ptr<BatchGradientEvaluator> try_create(const std::vector<CostPtr>& costs);

  /// Builds one evaluator over several same-dimension populations
  /// stacked along a new batching axis — the serving scheduler stacks
  /// concurrent jobs' agents into one machine this way.  Group g's
  /// agents occupy global indices [group_offset(g), group_offset(g+1));
  /// every per-agent entry point takes those global indices.  Returns
  /// nullptr when any cost is not a LeastSquaresCost or dimensions
  /// differ across groups.
  static std::unique_ptr<BatchGradientEvaluator> try_create_grouped(
      const std::vector<std::vector<CostPtr>>& groups);

  /// True when every cost is a LeastSquaresCost of one dimension
  /// (written to @p d when non-null) — the cheap compatibility probe
  /// callers run before paying for construction.
  static bool all_least_squares(const std::vector<CostPtr>& costs, std::size_t* d);

  std::size_t num_agents() const { return row_offsets_.size() - 1; }
  std::size_t dimension() const { return d_; }
  /// Observation rows held by agent @p i.
  std::size_t agent_rows(std::size_t i) const { return row_offsets_[i + 1] - row_offsets_[i]; }

  std::size_t num_groups() const { return group_offsets_.size() - 1; }
  /// First global agent index of group @p g (group_offset(num_groups())
  /// is the total agent count).
  std::size_t group_offset(std::size_t g) const { return group_offsets_[g]; }
  std::size_t group_agents(std::size_t g) const {
    return group_offsets_[g + 1] - group_offsets_[g];
  }

  /// Gradients of all agents at @p x.  @p out is resized to num_agents()
  /// vectors of dimension d and overwritten; no allocation once every
  /// buffer has reached steady-state size.  Not thread-safe (uses the
  /// internal stacked-residual workspace).
  void evaluate_all(const Vector& x, std::vector<Vector>& out);

  /// Gradient of agent @p i at @p x, written into @p out.  @p residual_ws
  /// is caller-owned scratch (resized to the agent's row count).  Safe to
  /// call concurrently for distinct agents with distinct workspaces.
  void evaluate_agent(std::size_t i, const Vector& x, Vector& residual_ws, Vector& out) const;

  /// Gradients of every group's agents, each group at its own iterate
  /// xs[g], in one stacked residual pass over all groups' rows.
  /// out[g] is resized to group_agents(g) vectors of dimension d.
  /// Bit-identical to evaluate_all() run per group (the stacked matvec
  /// is row-independent, so batching across groups changes nothing).
  /// Not thread-safe (shares the evaluate_all workspace).
  void evaluate_groups(const std::vector<Vector>& xs, std::vector<std::vector<Vector>>& out);

 private:
  BatchGradientEvaluator() = default;

  std::size_t d_ = 0;
  std::vector<double> rows_;                // stacked row-major A blocks
  std::vector<double> rhs_;                 // stacked b entries
  std::vector<std::size_t> row_offsets_;    // agent i owns rows [off_i, off_{i+1})
  std::vector<std::size_t> group_offsets_;  // group g owns agents [goff_g, goff_{g+1})
  std::vector<double> residual_;            // evaluate_all workspace
};

}  // namespace redopt::core
