#include "core/logistic_cost.h"

#include <cmath>

#include "linalg/kernels.h"
#include "util/error.h"

namespace redopt::core {

namespace {

/// log(1 + exp(z)) computed without overflow for large |z|.
double log1pexp(double z) {
  if (z > 30.0) return z;
  if (z < -30.0) return std::exp(z);
  return std::log1p(std::exp(z));
}

/// Logistic sigmoid 1 / (1 + exp(-z)).
double sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

LogisticCost::LogisticCost(Matrix features, Vector labels, double reg)
    : features_(std::move(features)), labels_(std::move(labels)), reg_(reg) {
  REDOPT_REQUIRE(features_.rows() >= 1, "logistic cost needs at least one example");
  REDOPT_REQUIRE(features_.rows() == labels_.size(), "feature/label count mismatch");
  REDOPT_REQUIRE(reg_ >= 0.0, "regularization must be non-negative");
  for (double y : labels_)
    REDOPT_REQUIRE(y == 1.0 || y == -1.0, "labels must be -1 or +1");
}

double LogisticCost::value(const Vector& w) const {
  REDOPT_REQUIRE(w.size() == dimension(), "logistic value dimension mismatch");
  const std::size_t m = features_.rows();
  const std::size_t d = dimension();
  linalg::kernels::Sum acc;
  for (std::size_t j = 0; j < m; ++j) {
    const double margin = linalg::kernels::dot(features_.row_data(j), w.data().data(), d);
    acc.add(log1pexp(-labels_[j] * margin));
  }
  return acc.value() / static_cast<double>(m) + 0.5 * reg_ * w.norm_squared();
}

Vector LogisticCost::gradient(const Vector& w) const {
  REDOPT_REQUIRE(w.size() == dimension(), "logistic gradient dimension mismatch");
  const std::size_t m = features_.rows();
  const std::size_t d = dimension();
  Vector g(d);
  for (std::size_t j = 0; j < m; ++j) {
    const double margin = linalg::kernels::dot(features_.row_data(j), w.data().data(), d);
    // d/dw log(1+exp(-y m)) = -y sigmoid(-y m) x
    const double coeff = -labels_[j] * sigmoid(-labels_[j] * margin);
    linalg::kernels::axpy(g.data().data(), coeff, features_.row_data(j), d);
  }
  g /= static_cast<double>(m);
  g += w * reg_;
  return g;
}

std::optional<Matrix> LogisticCost::hessian(const Vector& w) const {
  REDOPT_REQUIRE(w.size() == dimension(), "logistic hessian dimension mismatch");
  const std::size_t m = features_.rows();
  const std::size_t d = dimension();
  Matrix h(d, d);
  for (std::size_t j = 0; j < m; ++j) {
    const double margin = linalg::kernels::dot(features_.row_data(j), w.data().data(), d);
    const double s = sigmoid(margin);
    const double coeff = s * (1.0 - s) / static_cast<double>(m);
    for (std::size_t p = 0; p < d; ++p)
      for (std::size_t q = 0; q < d; ++q) h(p, q) += coeff * features_(j, p) * features_(j, q);
  }
  for (std::size_t p = 0; p < d; ++p) h(p, p) += reg_;
  return h;
}

std::unique_ptr<CostFunction> LogisticCost::clone() const {
  return std::make_unique<LogisticCost>(*this);
}

std::string LogisticCost::describe() const {
  return "logistic(m=" + std::to_string(features_.rows()) +
         ", d=" + std::to_string(dimension()) + ", reg=" + std::to_string(reg_) + ")";
}

double LogisticCost::accuracy(const Matrix& features, const Vector& labels, const Vector& w) {
  REDOPT_REQUIRE(features.rows() == labels.size(), "accuracy feature/label count mismatch");
  REDOPT_REQUIRE(features.cols() == w.size(), "accuracy dimension mismatch");
  if (features.rows() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t j = 0; j < features.rows(); ++j) {
    const double margin = linalg::kernels::dot(features.row_data(j), w.data().data(), w.size());
    if (margin * labels[j] > 0.0) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(features.rows());
}

}  // namespace redopt::core
