#include "core/least_squares_cost.h"

#include "util/error.h"

namespace redopt::core {

LeastSquaresCost::LeastSquaresCost(Matrix a, Vector b) : a_(std::move(a)), b_(std::move(b)) {
  REDOPT_REQUIRE(a_.rows() >= 1, "least-squares cost needs at least one observation row");
  REDOPT_REQUIRE(a_.rows() == b_.size(), "least-squares A and b row-count mismatch");
}

LeastSquaresCost LeastSquaresCost::single(const Vector& a_row, double b) {
  Matrix a(1, a_row.size());
  a.set_row(0, a_row);
  return LeastSquaresCost(std::move(a), Vector{b});
}

double LeastSquaresCost::value(const Vector& x) const {
  REDOPT_REQUIRE(x.size() == dimension(), "least-squares value dimension mismatch");
  const Vector r = linalg::matvec(a_, x) - b_;
  return r.norm_squared();
}

Vector LeastSquaresCost::gradient(const Vector& x) const {
  REDOPT_REQUIRE(x.size() == dimension(), "least-squares gradient dimension mismatch");
  const Vector r = linalg::matvec(a_, x) - b_;
  return linalg::matvec_transposed(a_, r) * 2.0;
}

std::optional<Matrix> LeastSquaresCost::hessian(const Vector&) const {
  Matrix h = a_.gram();
  h *= 2.0;
  return h;
}

std::unique_ptr<CostFunction> LeastSquaresCost::clone() const {
  return std::make_unique<LeastSquaresCost>(*this);
}

std::string LeastSquaresCost::describe() const {
  return "least_squares(rows=" + std::to_string(a_.rows()) +
         ", d=" + std::to_string(dimension()) + ")";
}

}  // namespace redopt::core
