#include "core/minimizer_set.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/kernels.h"
#include "util/error.h"

namespace redopt::core {

MinimizerSet MinimizerSet::singleton(Vector x) {
  const std::size_t d = x.size();
  return MinimizerSet(Kind::kAffine, std::move(x), Matrix(d, 0), 0.0, 0.0);
}

MinimizerSet MinimizerSet::affine(Vector x0, Matrix basis) {
  REDOPT_REQUIRE(basis.cols() == 0 || basis.rows() == x0.size(),
                 "affine basis row count must match the point dimension");
  // Verify orthonormality of the basis columns.
  for (std::size_t i = 0; i < basis.cols(); ++i) {
    for (std::size_t j = i; j < basis.cols(); ++j) {
      const double dotij = linalg::kernels::dot_strided(
          basis.data().data() + i, basis.cols(), basis.data().data() + j, basis.cols(),
          basis.rows());
      const double expected = (i == j) ? 1.0 : 0.0;
      REDOPT_REQUIRE(std::abs(dotij - expected) <= 1e-8,
                     "affine basis columns must be orthonormal");
    }
  }
  return MinimizerSet(Kind::kAffine, std::move(x0), std::move(basis), 0.0, 0.0);
}

MinimizerSet MinimizerSet::interval(double lo, double hi) {
  REDOPT_REQUIRE(lo <= hi, "interval requires lo <= hi");
  return MinimizerSet(Kind::kInterval, Vector{0.5 * (lo + hi)}, Matrix(1, 0), lo, hi);
}

bool MinimizerSet::is_singleton() const {
  if (kind_ == Kind::kInterval) return lo_ == hi_;
  return basis_.cols() == 0;
}

double MinimizerSet::interval_lo() const {
  REDOPT_REQUIRE(kind_ == Kind::kInterval, "not an interval set");
  return lo_;
}

double MinimizerSet::interval_hi() const {
  REDOPT_REQUIRE(kind_ == Kind::kInterval, "not an interval set");
  return hi_;
}

std::size_t MinimizerSet::affine_dimension() const {
  return kind_ == Kind::kAffine ? basis_.cols() : 0;
}

Vector MinimizerSet::project(const Vector& x) const {
  REDOPT_REQUIRE(x.size() == dimension(), "projection dimension mismatch");
  if (kind_ == Kind::kInterval) {
    return Vector{std::clamp(x[0], lo_, hi_)};
  }
  Vector p = point_;
  const Vector delta = x - point_;
  for (std::size_t k = 0; k < basis_.cols(); ++k) {
    const double coeff = linalg::kernels::dot_strided(basis_.data().data() + k, basis_.cols(),
                                                      delta.data().data(), 1, basis_.rows());
    for (std::size_t r = 0; r < basis_.rows(); ++r) p[r] += coeff * basis_(r, k);
  }
  return p;
}

double MinimizerSet::distance_to(const Vector& x) const {
  return linalg::distance(x, project(x));
}

namespace {

/// True if every column of @p b lies in colspan(@p a) (a's columns orthonormal).
bool subspace_contains(const Matrix& a, const Matrix& b, double tol) {
  for (std::size_t k = 0; k < b.cols(); ++k) {
    // Residual of b_k after projecting onto colspan(a).
    Vector col = b.col(k);
    Vector residual = col;
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double coeff = linalg::kernels::dot_strided(a.data().data() + j, a.cols(),
                                                        col.data().data(), 1, a.rows());
      for (std::size_t r = 0; r < a.rows(); ++r) residual[r] -= coeff * a(r, j);
    }
    if (residual.norm() > tol) return false;
  }
  return true;
}

}  // namespace

double hausdorff_distance(const MinimizerSet& x, const MinimizerSet& y, double tol) {
  REDOPT_REQUIRE(x.dimension() == y.dimension(), "hausdorff dimension mismatch");

  // Interval cases (1-D).  A degenerate interval behaves like a singleton.
  if (x.is_interval() || y.is_interval()) {
    auto bounds = [](const MinimizerSet& s) {
      if (s.is_interval()) return std::pair<double, double>{s.interval_lo(), s.interval_hi()};
      return std::pair<double, double>{s.representative()[0], s.representative()[0]};
    };
    // Against an affine set of positive dimension (a full line in 1-D),
    // the sup over the line diverges.
    if ((x.is_interval() ? y.affine_dimension() : x.affine_dimension()) > 0) {
      return std::numeric_limits<double>::infinity();
    }
    const auto [xlo, xhi] = bounds(x);
    const auto [ylo, yhi] = bounds(y);
    return std::max(std::abs(xlo - ylo), std::abs(xhi - yhi));
  }

  // Finite Hausdorff distance between affine sets requires identical
  // direction spaces: otherwise the sup over the richer set diverges.
  const bool same_space = x.affine_dimension() == y.affine_dimension() &&
                          subspace_contains(x.basis(), y.basis(), tol) &&
                          subspace_contains(y.basis(), x.basis(), tol);
  if (!same_space) return std::numeric_limits<double>::infinity();
  // With equal direction spaces, the Hausdorff distance is the distance from
  // any point of one set to the other set (translation along the common
  // direction space is free).
  return y.distance_to(x.representative());
}

}  // namespace redopt::core
