// The agent cost-function abstraction.
//
// In the paper each agent i holds a local cost Q_i : R^d -> R; all results
// are statements about aggregates of these costs over agent subsets.
// CostFunction is the library's representation of one Q_i.  Analytic
// structure (known Hessian / known minimizer) is optional and used by the
// redundancy machinery to compute argmin sets exactly for quadratic
// families; everything else falls back to the numeric minimizer in argmin.h.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace redopt::core {

using linalg::Matrix;
using linalg::Vector;

/// A differentiable cost function Q : R^d -> R owned by one agent.
class CostFunction {
 public:
  virtual ~CostFunction() = default;

  /// Dimension d of the decision variable.
  virtual std::size_t dimension() const = 0;

  /// Q(x).  Requires x.size() == dimension().
  virtual double value(const Vector& x) const = 0;

  /// The gradient (nabla Q)(x).  Requires x.size() == dimension().
  virtual Vector gradient(const Vector& x) const = 0;

  /// Hessian at x, if the cost exposes one analytically.
  virtual std::optional<Matrix> hessian(const Vector& /*x*/) const { return std::nullopt; }

  /// Deep copy.
  virtual std::unique_ptr<CostFunction> clone() const = 0;

  /// Short human-readable description for logs and test diagnostics.
  virtual std::string describe() const = 0;
};

/// Shared-ownership handle used throughout the library; cost functions are
/// immutable after construction so sharing is safe.
using CostPtr = std::shared_ptr<const CostFunction>;

}  // namespace redopt::core
