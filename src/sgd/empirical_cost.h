// Empirical-risk costs with mini-batch stochastic gradients.
//
// The paper's companion line of work (Gupta, Liu, Vaidya 2021 — reference
// [21], "Byzantine Fault-Tolerant Distributed Machine Learning Using
// Stochastic Gradient Descent and Norm-Based Comparative Gradient
// Elimination") extends the DGD results to the stochastic setting: agents
// hold datasets and reply with *mini-batch* gradients.  EmpiricalCost is
// the data-holding agent cost: a pluggable per-example loss over a local
// dataset, exposing both the exact empirical gradient (CostFunction
// contract) and an unbiased mini-batch estimate.
#pragma once

#include <string>

#include "core/cost_function.h"
#include "rng/rng.h"

namespace redopt::sgd {

using core::Matrix;
using core::Vector;

/// Per-example loss families supported by EmpiricalCost.
enum class Loss {
  kSquare,    ///< (y - <x, w>)^2            (regression)
  kLogistic,  ///< log(1 + exp(-y <x, w>))   (classification, y in {-1,1})
  kHinge,     ///< smoothed hinge, h = 0.5   (classification, y in {-1,1})
};

/// Parses "square" / "logistic" / "hinge"; throws on other strings.
Loss parse_loss(const std::string& name);

/// Empirical risk  Q(w) = (1/m) sum_j loss(x_j, y_j; w) + (reg/2)||w||^2
/// with mini-batch gradient sampling.
class EmpiricalCost final : public core::CostFunction {
 public:
  /// @p features: m x d examples; @p targets: m values (labels in {-1, +1}
  /// for classification losses, arbitrary reals for kSquare).
  EmpiricalCost(Matrix features, Vector targets, Loss loss, double reg = 0.0);

  std::size_t dimension() const override { return features_.cols(); }
  double value(const Vector& w) const override;
  Vector gradient(const Vector& w) const override;
  std::unique_ptr<core::CostFunction> clone() const override;
  std::string describe() const override;

  /// Unbiased mini-batch gradient: averages @p batch_size per-example
  /// gradients drawn uniformly with replacement via @p rng, plus the
  /// regularizer.  batch_size >= num_examples() falls back to the exact
  /// gradient (and consumes no randomness).
  Vector stochastic_gradient(const Vector& w, std::size_t batch_size, rng::Rng& rng) const;

  std::size_t num_examples() const { return features_.rows(); }
  Loss loss() const { return loss_; }

 private:
  /// d loss(z)/dz at margin/residual z for one example (chain rule core).
  double dloss(double z, double target) const;
  /// loss value for one example.
  double loss_value(double z, double target) const;
  /// Gradient of example @p j at @p w accumulated into @p out with weight.
  void accumulate_example_gradient(std::size_t j, const Vector& w, double weight,
                                   Vector& out) const;

  Matrix features_;
  Vector targets_;
  Loss loss_;
  double reg_;
};

}  // namespace redopt::sgd
