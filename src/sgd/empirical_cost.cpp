#include "sgd/empirical_cost.h"

#include <cmath>

#include "linalg/kernels.h"
#include "util/error.h"

namespace redopt::sgd {

namespace {
constexpr double kHingeSmoothing = 0.5;

double sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double log1pexp(double z) {
  if (z > 30.0) return z;
  if (z < -30.0) return std::exp(z);
  return std::log1p(std::exp(z));
}
}  // namespace

Loss parse_loss(const std::string& name) {
  if (name == "square") return Loss::kSquare;
  if (name == "logistic") return Loss::kLogistic;
  if (name == "hinge") return Loss::kHinge;
  REDOPT_REQUIRE(false, "unknown loss: " + name);
  return Loss::kSquare;  // unreachable
}

EmpiricalCost::EmpiricalCost(Matrix features, Vector targets, Loss loss, double reg)
    : features_(std::move(features)), targets_(std::move(targets)), loss_(loss), reg_(reg) {
  REDOPT_REQUIRE(features_.rows() >= 1, "empirical cost needs at least one example");
  REDOPT_REQUIRE(features_.rows() == targets_.size(), "feature/target count mismatch");
  REDOPT_REQUIRE(reg_ >= 0.0, "regularization must be non-negative");
  if (loss_ != Loss::kSquare) {
    for (double y : targets_)
      REDOPT_REQUIRE(y == 1.0 || y == -1.0, "classification targets must be -1 or +1");
  }
}

double EmpiricalCost::loss_value(double prediction, double target) const {
  switch (loss_) {
    case Loss::kSquare: {
      const double r = target - prediction;
      return r * r;
    }
    case Loss::kLogistic:
      return log1pexp(-target * prediction);
    case Loss::kHinge: {
      const double z = target * prediction;
      if (z >= 1.0) return 0.0;
      if (z > 1.0 - kHingeSmoothing) {
        const double u = 1.0 - z;
        return u * u / (2.0 * kHingeSmoothing);
      }
      return 1.0 - z - kHingeSmoothing / 2.0;
    }
  }
  return 0.0;  // unreachable
}

double EmpiricalCost::dloss(double prediction, double target) const {
  // Derivative of the per-example loss with respect to the prediction
  // <x_j, w>.
  switch (loss_) {
    case Loss::kSquare:
      return -2.0 * (target - prediction);
    case Loss::kLogistic:
      return -target * sigmoid(-target * prediction);
    case Loss::kHinge: {
      const double z = target * prediction;
      if (z >= 1.0) return 0.0;
      if (z > 1.0 - kHingeSmoothing) return -target * (1.0 - z) / kHingeSmoothing;
      return -target;
    }
  }
  return 0.0;  // unreachable
}

void EmpiricalCost::accumulate_example_gradient(std::size_t j, const Vector& w, double weight,
                                                Vector& out) const {
  const std::size_t d = dimension();
  const double prediction = linalg::kernels::dot(features_.row_data(j), w.data().data(), d);
  const double coeff = weight * dloss(prediction, targets_[j]);
  if (coeff == 0.0) return;
  linalg::kernels::axpy(out.data().data(), coeff, features_.row_data(j), d);
}

double EmpiricalCost::value(const Vector& w) const {
  REDOPT_REQUIRE(w.size() == dimension(), "empirical value dimension mismatch");
  const std::size_t d = dimension();
  linalg::kernels::Sum acc;
  for (std::size_t j = 0; j < num_examples(); ++j) {
    const double prediction = linalg::kernels::dot(features_.row_data(j), w.data().data(), d);
    acc.add(loss_value(prediction, targets_[j]));
  }
  return acc.value() / static_cast<double>(num_examples()) + 0.5 * reg_ * w.norm_squared();
}

Vector EmpiricalCost::gradient(const Vector& w) const {
  REDOPT_REQUIRE(w.size() == dimension(), "empirical gradient dimension mismatch");
  Vector g(dimension());
  const double weight = 1.0 / static_cast<double>(num_examples());
  for (std::size_t j = 0; j < num_examples(); ++j) {
    accumulate_example_gradient(j, w, weight, g);
  }
  g += w * reg_;
  return g;
}

Vector EmpiricalCost::stochastic_gradient(const Vector& w, std::size_t batch_size,
                                          rng::Rng& rng) const {
  REDOPT_REQUIRE(w.size() == dimension(), "stochastic gradient dimension mismatch");
  REDOPT_REQUIRE(batch_size >= 1, "batch size must be at least 1");
  if (batch_size >= num_examples()) return gradient(w);
  Vector g(dimension());
  const double weight = 1.0 / static_cast<double>(batch_size);
  for (std::size_t b = 0; b < batch_size; ++b) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_examples()) - 1));
    accumulate_example_gradient(j, w, weight, g);
  }
  g += w * reg_;
  return g;
}

std::unique_ptr<core::CostFunction> EmpiricalCost::clone() const {
  return std::make_unique<EmpiricalCost>(*this);
}

std::string EmpiricalCost::describe() const {
  const char* loss_name = loss_ == Loss::kSquare     ? "square"
                          : loss_ == Loss::kLogistic ? "logistic"
                                                     : "hinge";
  return std::string("empirical(") + loss_name + ", m=" + std::to_string(num_examples()) +
         ", d=" + std::to_string(dimension()) + ")";
}

}  // namespace redopt::sgd
