// Byzantine fault-tolerant distributed *stochastic* gradient descent.
//
// The stochastic counterpart of dgd::train, following the paper's
// companion work on CGE with SGD (reference [21]): data-holding agents
// reply with mini-batch gradients instead of exact ones, so the server
// aggregates noisy honest gradients — the regime where gradient-filters
// must separate Byzantine values from sampling noise.  Optionally applies
// server-side heavy-ball momentum to the filtered direction (the
// history-based variance reduction that the related work [26] argues is
// essential for Byzantine SGD).
#pragma once

#include <optional>

#include "dgd/trainer.h"

namespace redopt::sgd {

/// Configuration of one SGD execution.
struct SgdConfig {
  dgd::TrainerConfig base;     ///< filter, schedule, projection, iterations, x0, seed
  std::size_t batch_size = 1;  ///< mini-batch size per agent per iteration
  double momentum = 0.0;       ///< server-side heavy-ball coefficient in [0, 1)
};

/// Runs fault-tolerant distributed SGD.  Same contract as dgd::train;
/// agents whose cost is an sgd::EmpiricalCost reply with mini-batch
/// gradients (from per-agent deterministic streams), all other costs reply
/// with their exact gradient.
dgd::TrainResult train_sgd(const core::MultiAgentProblem& problem,
                           const std::vector<std::size_t>& byzantine_ids,
                           const attacks::Attack* attack, const SgdConfig& config,
                           const std::optional<linalg::Vector>& reference = std::nullopt);

}  // namespace redopt::sgd
