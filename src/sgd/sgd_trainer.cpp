#include "sgd/sgd_trainer.h"

#include <cmath>
#include <limits>

#include "core/aggregate_cost.h"
#include "filters/instrumented.h"
#include "filters/norm_cache.h"
#include "runtime/runtime.h"
#include "sgd/empirical_cost.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "util/error.h"

namespace redopt::sgd {

dgd::TrainResult train_sgd(const core::MultiAgentProblem& problem,
                           const std::vector<std::size_t>& byzantine_ids,
                           const attacks::Attack* attack, const SgdConfig& config,
                           const std::optional<linalg::Vector>& reference) {
  problem.validate();
  const auto& base = config.base;
  REDOPT_REQUIRE(base.filter != nullptr, "sgd config needs a gradient filter");
  REDOPT_REQUIRE(base.schedule != nullptr, "sgd config needs a step schedule");
  REDOPT_REQUIRE(base.projection != nullptr, "sgd config needs a projection set");
  REDOPT_REQUIRE(byzantine_ids.size() <= problem.f, "more byzantine agents than fault budget");
  REDOPT_REQUIRE(byzantine_ids.empty() || attack != nullptr,
                 "byzantine agents present but no attack supplied");
  REDOPT_REQUIRE(base.filter->expected_inputs() == problem.num_agents(),
                 "filter was constructed for a different number of agents");
  REDOPT_REQUIRE(config.batch_size >= 1, "batch size must be at least 1");
  REDOPT_REQUIRE(config.momentum >= 0.0 && config.momentum < 1.0,
                 "momentum must lie in [0, 1)");

  const std::size_t n = problem.num_agents();
  const std::size_t d = problem.dimension();
  const auto honest = dgd::honest_ids(n, byzantine_ids);
  if (reference) REDOPT_REQUIRE(reference->size() == d, "reference dimension mismatch");

  std::vector<bool> is_byzantine(n, false);
  for (std::size_t id : byzantine_ids) is_byzantine[id] = true;

  linalg::Vector x = base.x0.empty() ? linalg::Vector(d) : base.x0;
  REDOPT_REQUIRE(x.size() == d, "x0 dimension mismatch");
  x = base.projection->project(x);

  // Per-agent streams: sampling noise for honest agents, attack noise for
  // Byzantine ones; both independent of iteration order.
  const rng::Rng root(base.seed);
  std::vector<rng::Rng> sample_rngs;
  std::vector<rng::Rng> attack_rngs;
  sample_rngs.reserve(n);
  attack_rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sample_rngs.push_back(root.fork("sgd-sample-agent-" + std::to_string(i)));
    attack_rngs.push_back(root.fork("byzantine-agent-" + std::to_string(i)));
  }

  auto honest_loss = [&](const linalg::Vector& at) {
    return core::subset_value(problem.costs, honest, at);
  };

  auto agent_gradient = [&](std::size_t i, const linalg::Vector& at) {
    if (const auto* empirical = dynamic_cast<const EmpiricalCost*>(problem.costs[i].get())) {
      return empirical->stochastic_gradient(at, config.batch_size, sample_rngs[i]);
    }
    return problem.costs[i]->gradient(at);
  };

  filters::FilterPtr filter = base.filter;
  if (telemetry::enabled()) filter = filters::instrument(filter, "sgd");
  auto& reg = telemetry::registry();
  const auto metric_iterations = reg.counter("sgd.iterations");
  const auto norm_layout = telemetry::BucketLayout::exponential(1e-6, 10.0, 12);
  const auto metric_direction_norm = reg.histogram("sgd.direction_norm", norm_layout);
  const auto metric_step_norm = reg.histogram("sgd.step_norm", norm_layout);

  dgd::TrainResult result;
  auto record = [&](std::size_t t) {
    if (base.trace_stride == 0) return;
    if (t % base.trace_stride != 0 && t != base.iterations) return;
    result.trace.iteration.push_back(t);
    result.trace.loss.push_back(honest_loss(x));
    result.trace.distance.push_back(
        reference ? linalg::distance(x, *reference) : std::numeric_limits<double>::quiet_NaN());
    if (base.trace_estimates) result.trace.estimates.push_back(x);
  };

  record(0);
  std::vector<linalg::Vector> gradients(n);
  std::vector<linalg::Vector> honest_gradients;
  linalg::Vector velocity(d);
  filters::NormCache round_cache;
  for (std::size_t t = 0; t < base.iterations; ++t) {
    // Honest mini-batch fan-out: each agent samples from its own stream
    // and writes its own gradient slot, so the parallel evaluation is
    // bit-identical at any runtime::threads() setting.
    runtime::parallel_for(0, honest.size(), [&](std::size_t j) {
      const std::size_t i = honest[j];
      gradients[i] = agent_gradient(i, x);
    });
    honest_gradients.clear();
    honest_gradients.reserve(honest.size());
    for (std::size_t id : honest) honest_gradients.push_back(gradients[id]);
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_byzantine[i]) continue;
      const linalg::Vector true_gradient = agent_gradient(i, x);
      attacks::AttackContext ctx;
      ctx.iteration = t;
      ctx.agent_id = i;
      ctx.n = n;
      ctx.f = problem.f;
      ctx.estimate = &x;
      ctx.honest_gradient = &true_gradient;
      ctx.honest_gradients = &honest_gradients;
      ctx.rng = &attack_rngs[i];
      gradients[i] = attack->craft(ctx);
      REDOPT_REQUIRE(gradients[i].size() == d, "attack crafted a wrong-dimension vector");
    }

    round_cache.reset(gradients);
    const linalg::Vector direction = filter->apply_with_cache(gradients, round_cache);
    const linalg::Vector previous = x;
    if (config.momentum > 0.0) {
      velocity = velocity * config.momentum + direction;
      x = base.projection->project(x - velocity * base.schedule->step(t));
    } else {
      x = base.projection->project(x - direction * base.schedule->step(t));
    }

    metric_iterations.inc();
    const double direction_norm = direction.norm();
    const double step_norm = linalg::distance(x, previous);
    metric_direction_norm.observe(direction_norm);
    metric_step_norm.observe(step_norm);
    if (telemetry::tracing_enabled()) {
      telemetry::emit(telemetry::Event("sgd.iteration")
                          .with("t", static_cast<std::int64_t>(t))
                          .with("loss", honest_loss(x))
                          .with("direction_norm", direction_norm)
                          .with("step_norm", step_norm));
    }
    record(t + 1);
  }

  result.estimate = x;
  result.final_loss = honest_loss(x);
  if (reference) result.final_distance = linalg::distance(x, *reference);
  return result;
}

}  // namespace redopt::sgd
