// Minimal CSV emission used by bench harnesses to dump series for plotting.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace redopt::util {

/// Streams rows of comma-separated values to a file.
///
/// Values containing commas, quotes or newlines are quoted per RFC 4180.
/// The writer owns the stream; the file is flushed and closed on destruction.
class CsvWriter {
 public:
  /// Opens @p path for writing and emits @p header as the first row.
  /// Throws redopt::PreconditionError if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one row.  Must have the same arity as the header.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience overload formatting doubles with full precision.
  void write_row(const std::vector<double>& cells);

  /// Number of data rows written so far (excluding the header).
  std::size_t rows_written() const { return rows_; }

  /// Escapes one cell per RFC 4180 (exposed for testing).
  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
  std::size_t arity_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace redopt::util
