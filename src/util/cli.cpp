#include "util/cli.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "util/error.h"

namespace redopt::util {

Cli::Cli(int argc, const char* const* argv, const std::vector<std::string>& known) {
  auto is_known = [&](const std::string& k) {
    return std::find(known.begin(), known.end(), k) != known.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    REDOPT_REQUIRE(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg = arg.substr(2);
    std::string key, value;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      key = arg;
      // `--key value` form: consume the next token unless it is another flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }
    REDOPT_REQUIRE(is_known(key), "unknown flag: --" + key);
    values_[key] = value;
  }
}

std::optional<std::string> Cli::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_string(const std::string& key, const std::string& def) const {
  return get(key).value_or(def);
}

namespace {

/// Whole-token decimal parse; std::nullopt when @p text is not an integer.
std::optional<std::int64_t> parse_int(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return std::nullopt;
  return value;
}

}  // namespace

std::int64_t Cli::get_int(const std::string& key, std::int64_t def) const {
  auto v = get(key);
  if (!v) return def;
  auto parsed = parse_int(*v);
  REDOPT_REQUIRE(parsed.has_value(), "flag --" + key + " expects an integer, got: " + *v);
  return *parsed;
}

std::int64_t Cli::get_int_env(const std::string& key, const char* env_var,
                              std::int64_t def) const {
  if (get(key)) return get_int(key, def);
  if (const char* env = std::getenv(env_var)) {
    if (auto parsed = parse_int(env)) return *parsed;
  }
  return def;
}

double Cli::get_double(const std::string& key, double def) const {
  auto v = get(key);
  if (!v) return def;
  return std::strtod(v->c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool def) const {
  auto v = get(key);
  if (!v) return def;
  return *v == "true" || *v == "1" || *v == "yes";
}

std::size_t parse_choice(const std::string& what, const std::string& value,
                         const std::vector<std::string>& choices) {
  REDOPT_REQUIRE(!choices.empty(), "parse_choice: empty choice list for " + what);
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (choices[i] == value) return i;
  }
  std::string valid;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i > 0) valid += ", ";
    valid += choices[i];
  }
  REDOPT_REQUIRE(false, "unknown " + what + " '" + value + "': valid values are " + valid);
  return 0;  // unreachable
}

}  // namespace redopt::util
