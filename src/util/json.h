// Minimal JSON support shared by the telemetry JSONL sink, the bench
// harnesses' BENCH_JSON summaries, and the chaos scenario files.
//
// Emission helpers produce deterministic output (fixed escaping, fixed
// number formatting), which the telemetry determinism contract relies on:
// two runs that record the same values produce byte-identical JSON.
//
// json_parse() is the reading side: a small strict recursive-descent
// parser used to load chaos scenario reproducers and golden trace files.
// It preserves object member order (no hash containers — parsed documents
// re-serialize deterministically) and reports every malformed input as a
// typed PreconditionError, never by crashing or silently misparsing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace redopt::util {

/// Escapes @p s for embedding inside a JSON string literal.  Quotes and
/// backslashes are backslash-escaped; control characters below 0x20 are
/// emitted as \uXXXX (with the conventional short forms \n, \t, \r, \b,
/// \f), so no input byte is ever lost.
std::string json_escape(const std::string& s);

/// Formats @p v as a JSON number token.  Uses 17 significant digits (enough
/// to round-trip any double) and prints integral values without an
/// exponent where possible.  JSON has no NaN/Infinity, so non-finite
/// values are emitted as `null`.
std::string json_number(double v);

/// Prints the machine-readable single-line summary every bench harness
/// emits alongside its human-readable table:
///
///   BENCH_JSON {"bench":"R-T4","threads":1,"params":{...},"wall_s":0.42}
///
/// The BENCH_JSON prefix makes the line greppable (scripts/collect_bench.sh
/// gathers the lines across runs into BENCH_<date>.json files).
void json_summary(const std::string& name, std::size_t threads,
                  const std::map<std::string, std::string>& params, double wall_seconds);

/// A parsed JSON document node.  Objects keep their members in source
/// order so a parse → serialize round-trip is deterministic.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Exact value for integer tokens that fit in int64 (doubles lose
  /// precision past 2^53 — chaos scenario seeds are full 63-bit values).
  bool has_integer = false;
  std::int64_t integer = 0;
  std::string string;
  std::vector<JsonValue> items;                             ///< kArray elements
  std::vector<std::pair<std::string, JsonValue>> members;   ///< kObject, source order

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* find(const std::string& key) const;

  /// Checked accessors; throw PreconditionError on a kind mismatch or (for
  /// at()) a missing member.
  const JsonValue& at(const std::string& key) const;
  bool as_bool() const;
  double as_number() const;
  /// as_number() additionally checked to be an integer in [lo, hi].
  std::int64_t as_int(std::int64_t lo, std::int64_t hi) const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
};

/// Parses @p text as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected).  Strict: rejects unterminated constructs,
/// bad escapes, lone surrogates, numbers that overflow double, and nesting
/// deeper than 64 levels.  Throws PreconditionError on any violation.
JsonValue json_parse(const std::string& text);

/// Serializes @p value compactly and deterministically: object members in
/// stored order, integer tokens printed exactly, doubles via json_number.
/// parse → serialize is a canonicalization (whitespace and number
/// spellings normalize), which the telemetry stable-projection checks use
/// to compare documents byte-for-byte.
std::string json_serialize(const JsonValue& value);

}  // namespace redopt::util
