// Minimal JSON emission helpers shared by the telemetry JSONL sink and the
// bench harnesses' BENCH_JSON summaries.
//
// This is a *writer* only — redopt never parses JSON.  The helpers produce
// deterministic output (fixed escaping, fixed number formatting), which the
// telemetry determinism contract relies on: two runs that record the same
// values produce byte-identical JSON.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace redopt::util {

/// Escapes @p s for embedding inside a JSON string literal.  Quotes and
/// backslashes are backslash-escaped; control characters below 0x20 are
/// emitted as \uXXXX (with the conventional short forms \n, \t, \r, \b,
/// \f), so no input byte is ever lost.
std::string json_escape(const std::string& s);

/// Formats @p v as a JSON number token.  Uses 17 significant digits (enough
/// to round-trip any double) and prints integral values without an
/// exponent where possible.  JSON has no NaN/Infinity, so non-finite
/// values are emitted as `null`.
std::string json_number(double v);

/// Prints the machine-readable single-line summary every bench harness
/// emits alongside its human-readable table:
///
///   BENCH_JSON {"bench":"R-T4","threads":1,"params":{...},"wall_s":0.42}
///
/// The BENCH_JSON prefix makes the line greppable (scripts/collect_bench.sh
/// gathers the lines across runs into BENCH_<date>.json files).
void json_summary(const std::string& name, std::size_t threads,
                  const std::map<std::string, std::string>& params, double wall_seconds);

}  // namespace redopt::util
