// Wall-clock stopwatch for coarse timing in benches and examples.
//
// This is the one sanctioned std::chrono user in src/ (redopt-lint rule
// D1 carves this file out by path): every elapsed-time measurement goes
// through Stopwatch, and everything derived from its values is flagged
// Determinism::kUnstable in telemetry so sinks can mask it from
// bit-identity checks.  Timing code anywhere else in src/ is a lint
// error by design — add it here or justify an explicit allow(D1).
#pragma once

#include <chrono>

namespace redopt::util {

/// Measures elapsed wall-clock time since construction or the last reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last reset().
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace redopt::util
