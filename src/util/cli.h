// Tiny command-line flag parser for bench and example binaries.
//
// Supports `--key=value` and `--key value` forms plus boolean `--flag`.
// Unknown flags are rejected so typos surface immediately.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace redopt::util {

/// Parses argv into a key/value map with typed accessors and defaults.
class Cli {
 public:
  /// Parses @p argv; @p known lists the accepted flag names (without "--").
  /// Throws redopt::PreconditionError on unknown or malformed flags.
  Cli(int argc, const char* const* argv, const std::vector<std::string>& known);

  /// Returns the raw value of @p key, if provided.
  std::optional<std::string> get(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& def) const;

  /// Integer flag value.  Throws redopt::PreconditionError when the
  /// provided value is not a (possibly signed) decimal integer.
  std::int64_t get_int(const std::string& key, std::int64_t def) const;

  /// Integer flag with environment fallback: the flag wins, then the
  /// @p env_var environment variable (when set to a valid integer), then
  /// @p def.  Used for knobs like --threads / REDOPT_THREADS that every
  /// bench binary accepts uniformly.
  std::int64_t get_int_env(const std::string& key, const char* env_var, std::int64_t def) const;

  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// All parsed flag/value pairs (for machine-readable run summaries).
  const std::map<std::string, std::string>& items() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

/// Strict choice parse: returns the index of @p value in @p choices.
/// Throws redopt::PreconditionError naming @p what and listing every
/// valid spelling when @p value is not among them.  Enum flag parsers
/// (--backend, --topology, serving job states) all route through this
/// helper so "unknown X" errors read identically everywhere.
std::size_t parse_choice(const std::string& what, const std::string& value,
                         const std::vector<std::string>& choices);

}  // namespace redopt::util
