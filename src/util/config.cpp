#include "util/config.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace redopt::util {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config config;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto eq = trimmed.find('=');
    REDOPT_REQUIRE(eq != std::string::npos,
                   "config line " + std::to_string(line_number) + " has no '=': " + trimmed);
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    REDOPT_REQUIRE(!key.empty(),
                   "config line " + std::to_string(line_number) + " has an empty key");
    config.values_[key] = value;
  }
  return config;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  REDOPT_REQUIRE(in.good(), "cannot read config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, const std::string& def) const {
  return get(key).value_or(def);
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  const auto v = get(key);
  if (!v) return def;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(v->c_str(), &end, 10);
  REDOPT_REQUIRE(!v->empty() && errno == 0 && end == v->c_str() + v->size(),
                 "config key '" + key + "' expects an integer, got: " + *v);
  return value;
}

double Config::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  if (!v) return def;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(v->c_str(), &end);
  REDOPT_REQUIRE(!v->empty() && errno == 0 && end == v->c_str() + v->size(),
                 "config key '" + key + "' expects a number, got: " + *v);
  REDOPT_REQUIRE(std::isfinite(value),
                 "config key '" + key + "' expects a finite number, got: " + *v);
  return value;
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  REDOPT_REQUIRE(false, "config key '" + key + "' expects a boolean, got: " + *v);
  return def;  // unreachable
}

}  // namespace redopt::util
