#include "util/config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace redopt::util {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config config;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto eq = trimmed.find('=');
    REDOPT_REQUIRE(eq != std::string::npos,
                   "config line " + std::to_string(line_number) + " has no '=': " + trimmed);
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    REDOPT_REQUIRE(!key.empty(),
                   "config line " + std::to_string(line_number) + " has an empty key");
    config.values_[key] = value;
  }
  return config;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  REDOPT_REQUIRE(in.good(), "cannot read config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, const std::string& def) const {
  return get(key).value_or(def);
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  const auto v = get(key);
  if (!v) return def;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Config::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  if (!v) return def;
  return std::strtod(v->c_str(), nullptr);
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  return *v == "true" || *v == "1" || *v == "yes";
}

}  // namespace redopt::util
