// Minimal key = value configuration-file parser for the experiment runner.
//
// Format: one `key = value` pair per line; blank lines and lines starting
// with '#' are ignored; whitespace around keys and values is trimmed.
// Later assignments override earlier ones.  Deliberately tiny — enough to
// describe an experiment (instance, filter, attack, schedule) in a file
// that can be checked into a repo next to its results.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace redopt::util {

/// Parsed configuration with typed accessors.
class Config {
 public:
  /// Parses file contents (the text, not a path).
  /// Throws redopt::PreconditionError on malformed lines.
  static Config parse(const std::string& text);

  /// Reads and parses the file at @p path.
  /// Throws redopt::PreconditionError if the file cannot be read.
  static Config load(const std::string& path);

  std::optional<std::string> get(const std::string& key) const;
  std::string get_string(const std::string& key, const std::string& def) const;

  /// Typed accessors return @p def when the key is absent and throw
  /// redopt::PreconditionError when the stored value does not parse as the
  /// requested type in full ("12abc" is an error, not 12; booleans accept
  /// exactly true/false/1/0/yes/no; doubles must be finite).
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Number of distinct keys.
  std::size_t size() const { return values_.size(); }

  /// All key/value pairs (sorted by key).
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace redopt::util
