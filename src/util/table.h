// Aligned plain-text table printing for bench harness output.
//
// Benches regenerate the paper's tables as text; TablePrinter keeps the
// columns aligned so the output is directly readable in a terminal or log.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace redopt::util {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; shorter rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Renders header, separator and all rows to @p os.
  void print(std::ostream& os) const;

  /// Renders to a string (used by tests).
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

  /// Formats a double with @p digits significant digits (helper for rows).
  static std::string num(double v, int digits = 6);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace redopt::util
