// Enumeration of fixed-size index subsets.
//
// The redundancy definitions and the exhaustive exact algorithm quantify
// over all agent subsets of sizes n-f and n-2f; this header provides the
// shared combinatorial machinery (lexicographic k-subset enumeration).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace redopt::util {

/// Binomial coefficient C(n, k) in unsigned 64-bit arithmetic.
/// Intended for the small n used by exhaustive enumeration; overflow for
/// astronomically large inputs is the caller's responsibility.
inline std::uint64_t binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (std::size_t i = 0; i < k; ++i) {
    result = result * (n - i) / (i + 1);
  }
  return result;
}

/// Invokes @p fn once for each k-subset of {0, ..., n-1}, in lexicographic
/// order.  The span passed to fn is sorted ascending and only valid for the
/// duration of the call.  fn may return false to stop early (return true to
/// continue); the function returns false iff enumeration was stopped.
inline bool for_each_subset(std::size_t n, std::size_t k,
                            const std::function<bool(const std::vector<std::size_t>&)>& fn) {
  if (k > n) return true;  // no subsets; vacuously complete
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  if (k == 0) return fn(idx);
  while (true) {
    if (!fn(idx)) return false;
    // Advance to the next lexicographic combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return true;  // exhausted
    }
  }
}

/// All k-subsets of {0, ..., n-1} materialized (for tests and small n).
inline std::vector<std::vector<std::size_t>> all_subsets(std::size_t n, std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  for_each_subset(n, k, [&](const std::vector<std::size_t>& s) {
    out.push_back(s);
    return true;
  });
  return out;
}

/// k-subsets of an arbitrary (sorted or unsorted) index pool, enumerated by
/// position.  Each emitted subset preserves the pool's element order.
inline bool for_each_subset_of(const std::vector<std::size_t>& pool, std::size_t k,
                               const std::function<bool(const std::vector<std::size_t>&)>& fn) {
  return for_each_subset(pool.size(), k, [&](const std::vector<std::size_t>& positions) {
    std::vector<std::size_t> subset(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) subset[i] = pool[positions[i]];
    return fn(subset);
  });
}

/// Sorted complement of @p subset within {0, ..., n-1}.
/// @p subset must be sorted ascending with unique in-range entries.
inline std::vector<std::size_t> complement(std::size_t n, const std::vector<std::size_t>& subset) {
  std::vector<std::size_t> out;
  out.reserve(n - subset.size());
  std::size_t j = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (j < subset.size() && subset[j] == i) {
      ++j;
    } else {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace redopt::util
