// Wire codec for transport frames: the length-prefixed, checksummed
// binary format the multi-process gradient transport speaks.
//
// Layout (all integers little-endian, encoded with explicit byte shifts
// so the codec is byte-order independent without touching htons/ntohs):
//
//   u32  body_length          (length prefix; bytes after this field)
//   u8   magic[2] = "RF"
//   u8   version  = 1
//   u8   type                 (FrameType)
//   u32  agent
//   u64  round                (delivery round)
//   u64  emitted              (round the payload was computed in)
//   u32  hops                 (topology edges traversed so far)
//   u32  count                (number of payload doubles)
//   f64  payload[count]       (IEEE-754 bits, little-endian)
//   u32  crc                  (CRC-32 of the body bytes before this field)
//
// Every field is validated on decode; any corruption — bad magic, bad
// version, truncated body, trailing bytes, payload overflow, checksum
// mismatch — raises PreconditionError, never undefined behaviour.  The
// fuzz corpus in tests/test_fuzz_io.cpp drives mutated bytes through
// decode_frame under asan/ubsan to hold that contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace redopt::util {

/// Protocol frame kinds.  kEstimate flows root -> leaves, kGradient flows
/// leaves -> root, kRoundDone / kShutdown are socket-backend flow control,
/// kTelemetry carries a blob-packed telemetry snapshot (request downward
/// from the coordinator, per-agent snapshot blobs upward).
enum class FrameType : std::uint8_t {
  kEstimate = 1,
  kGradient = 2,
  kRoundDone = 3,
  kShutdown = 4,
  kTelemetry = 5,
};

/// Sender id used on coordinator-originated frames (estimate, shutdown).
inline constexpr std::uint32_t kCoordinatorAgent = 0xffffffffu;

/// One transport frame.
struct Frame {
  FrameType type = FrameType::kGradient;
  std::uint32_t agent = 0;    ///< emitting agent, or kCoordinatorAgent
  std::uint64_t round = 0;    ///< delivery round
  std::uint64_t emitted = 0;  ///< round the payload was computed in
  std::uint32_t hops = 0;     ///< topology edges traversed so far
  std::vector<double> payload;
};

/// CRC-32 (IEEE 802.3, reflected) of @p size bytes at @p data.
std::uint32_t crc32(const unsigned char* data, std::size_t size);

/// Serializes @p frame, length prefix included.  The result is exactly
/// frame_wire_size(frame) bytes.
std::string encode_frame(const Frame& frame);

/// Parses one frame from @p bytes, which must hold exactly one
/// length-prefixed frame (prefix included, no trailing bytes).  Throws
/// PreconditionError on any malformation.
Frame decode_frame(const std::string& bytes);

/// Parses a frame body (the bytes after the length prefix).
Frame decode_frame_body(const unsigned char* body, std::size_t size);

/// Bytes @p frame occupies on the wire, length prefix included.
std::size_t frame_wire_size(const Frame& frame);

/// Wire size of a frame carrying @p payload_doubles doubles.
std::size_t frame_wire_size_for(std::size_t payload_doubles);

/// Packs raw bytes into a frame payload: entry 0 carries the byte count,
/// the remaining entries carry the bytes verbatim, 8 per double (the
/// doubles are never used arithmetically — memcpy in, memcpy out, so the
/// bits survive the codec exactly).  Used by kTelemetry frames and by the
/// inproc transport's frame-in-message envelope.
std::vector<double> pack_blob(const std::string& bytes);

/// Inverse of pack_blob.  Throws PreconditionError when the declared
/// byte count is absent, non-integral, out of range, or leaves more than
/// seven bytes of padding (a well-formed packing is minimal).
std::string unpack_blob(const std::vector<double>& payload);

/// Validation of unpack_blob without materializing the bytes; decode
/// applies it to every kTelemetry frame so a declared length that
/// disagrees with the payload size is rejected at the codec boundary.
void validate_blob_payload(const std::vector<double>& payload);

}  // namespace redopt::util
