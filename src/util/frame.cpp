#include "util/frame.h"

#include <cmath>
#include <cstring>

#include "util/error.h"

namespace redopt::util {

namespace {

constexpr unsigned char kMagic0 = 'R';
constexpr unsigned char kMagic1 = 'F';
constexpr unsigned char kVersion = 1;

/// Body bytes before the payload doubles.
constexpr std::size_t kHeaderSize = 2 + 1 + 1 + 4 + 8 + 8 + 4 + 4;
constexpr std::size_t kCrcSize = 4;

/// Caps the payload a decoder will allocate for; a corrupted count field
/// must not turn into a multi-gigabyte allocation.
constexpr std::size_t kMaxPayloadDoubles = std::size_t{1} << 22;

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xffu));
  out.push_back(static_cast<char>((v >> 8) & 0xffu));
  out.push_back(static_cast<char>((v >> 16) & 0xffu));
  out.push_back(static_cast<char>((v >> 24) & 0xffu));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xffu));
  }
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int k = 7; k >= 0; --k) v = (v << 8) | static_cast<std::uint64_t>(p[k]);
  return v;
}

const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

bool known_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(FrameType::kEstimate) &&
         raw <= static_cast<std::uint8_t>(FrameType::kTelemetry);
}

}  // namespace

std::uint32_t crc32(const unsigned char* data, std::size_t size) {
  const std::uint32_t* table = crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::size_t frame_wire_size_for(std::size_t payload_doubles) {
  return 4 + kHeaderSize + 8 * payload_doubles + kCrcSize;
}

std::size_t frame_wire_size(const Frame& frame) {
  return frame_wire_size_for(frame.payload.size());
}

std::string encode_frame(const Frame& frame) {
  REDOPT_REQUIRE(frame.payload.size() <= kMaxPayloadDoubles, "frame: payload too large to encode");
  std::string out;
  out.reserve(frame_wire_size(frame));
  const std::size_t body_length = kHeaderSize + 8 * frame.payload.size() + kCrcSize;
  put_u32(out, static_cast<std::uint32_t>(body_length));
  out.push_back(static_cast<char>(kMagic0));
  out.push_back(static_cast<char>(kMagic1));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(frame.type));
  put_u32(out, frame.agent);
  put_u64(out, frame.round);
  put_u64(out, frame.emitted);
  put_u32(out, frame.hops);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  for (double v : frame.payload) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(out, bits);
  }
  const auto* body = reinterpret_cast<const unsigned char*>(out.data()) + 4;
  put_u32(out, crc32(body, body_length - kCrcSize));
  return out;
}

Frame decode_frame_body(const unsigned char* body, std::size_t size) {
  REDOPT_REQUIRE(size >= kHeaderSize + kCrcSize, "frame: body shorter than the fixed header");
  REDOPT_REQUIRE(body[0] == kMagic0 && body[1] == kMagic1, "frame: bad magic");
  REDOPT_REQUIRE(body[2] == kVersion, "frame: unsupported version");
  REDOPT_REQUIRE(known_type(body[3]), "frame: unknown frame type");

  Frame frame;
  frame.type = static_cast<FrameType>(body[3]);
  frame.agent = get_u32(body + 4);
  frame.round = get_u64(body + 8);
  frame.emitted = get_u64(body + 16);
  frame.hops = get_u32(body + 24);
  const std::uint32_t count = get_u32(body + 28);
  REDOPT_REQUIRE(count <= kMaxPayloadDoubles, "frame: payload count exceeds the codec cap");
  REDOPT_REQUIRE(size == kHeaderSize + 8 * static_cast<std::size_t>(count) + kCrcSize,
                 "frame: body length disagrees with the payload count");

  const std::uint32_t stored_crc = get_u32(body + size - kCrcSize);
  REDOPT_REQUIRE(stored_crc == crc32(body, size - kCrcSize), "frame: checksum mismatch");

  frame.payload.resize(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    const std::uint64_t bits = get_u64(body + kHeaderSize + 8 * static_cast<std::size_t>(k));
    std::memcpy(&frame.payload[k], &bits, sizeof(double));
  }
  // A telemetry frame's payload is a packed blob; its self-declared byte
  // count must agree with the payload size, or the frame is corrupt even
  // though the checksum matched (e.g. a re-checksummed hostile frame).
  if (frame.type == FrameType::kTelemetry && count > 0) validate_blob_payload(frame.payload);
  return frame;
}

Frame decode_frame(const std::string& bytes) {
  REDOPT_REQUIRE(bytes.size() >= 4, "frame: shorter than the length prefix");
  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::uint32_t body_length = get_u32(data);
  REDOPT_REQUIRE(bytes.size() == 4 + static_cast<std::size_t>(body_length),
                 "frame: length prefix disagrees with the buffer size");
  return decode_frame_body(data + 4, body_length);
}

std::vector<double> pack_blob(const std::string& bytes) {
  std::vector<double> packed(1 + (bytes.size() + 7) / 8, 0.0);
  packed[0] = static_cast<double>(bytes.size());
  if (!bytes.empty()) std::memcpy(packed.data() + 1, bytes.data(), bytes.size());
  return packed;
}

void validate_blob_payload(const std::vector<double>& payload) {
  REDOPT_REQUIRE(!payload.empty(), "blob: empty payload");
  const double declared = payload[0];
  // The declared length is a small non-negative integer stored in a
  // double; anything else (NaN, fractional, negative) is corruption.
  REDOPT_REQUIRE(declared >= 0.0 && declared == std::floor(declared) &&
                     declared <= 8.0 * static_cast<double>(kMaxPayloadDoubles),
                 "blob: declared byte count is not a valid length");
  const auto size = static_cast<std::size_t>(declared);
  const std::size_t room = 8 * (payload.size() - 1);
  REDOPT_REQUIRE(size <= room, "blob: declared byte count exceeds the payload");
  REDOPT_REQUIRE(room - size < 8, "blob: declared byte count disagrees with the payload size");
}

std::string unpack_blob(const std::vector<double>& payload) {
  validate_blob_payload(payload);
  const auto size = static_cast<std::size_t>(payload[0]);
  std::string bytes(size, '\0');
  if (size > 0) std::memcpy(bytes.data(), payload.data() + 1, size);
  return bytes;
}

}  // namespace redopt::util
