// Precondition checking for the redopt library.
//
// All public entry points validate their arguments with REDOPT_REQUIRE and
// throw redopt::PreconditionError on violation.  Internal invariants that
// indicate a bug in redopt itself (rather than bad caller input) use
// REDOPT_ASSERT, which throws redopt::InternalError.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace redopt {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  explicit PreconditionError(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when an internal invariant of the library is violated (a bug).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* cond, const char* file, int line,
                                            const std::string& msg) {
  std::ostringstream os;
  os << "redopt precondition failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_internal(const char* cond, const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << "redopt internal invariant failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace redopt

/// Validate a caller-supplied precondition; throws redopt::PreconditionError.
#define REDOPT_REQUIRE(cond, msg)                                             \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::redopt::detail::throw_precondition(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                         \
  } while (false)

/// Validate an internal invariant; throws redopt::InternalError.
#define REDOPT_ASSERT(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::redopt::detail::throw_internal(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (false)
