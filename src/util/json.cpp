#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace redopt::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const auto byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values within the exactly-representable range print as plain
  // integers; everything else uses 17 significant digits, which round-trips
  // any double bit pattern.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void json_summary(const std::string& name, std::size_t threads,
                  const std::map<std::string, std::string>& params, double wall_seconds) {
  std::ostringstream os;
  os << "BENCH_JSON {\"bench\":\"" << json_escape(name) << "\",\"threads\":" << threads
     << ",\"params\":{";
  bool first = true;
  for (const auto& [key, value] : params) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(key) << "\":\"" << json_escape(value) << "\"";
  }
  os << "},\"wall_s\":" << wall_seconds << "}";
  std::cout << os.str() << "\n";
}

}  // namespace redopt::util
