#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/error.h"

namespace redopt::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const auto byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values within the exactly-representable range print as plain
  // integers; everything else uses 17 significant digits, which round-trips
  // any double bit pattern.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void json_summary(const std::string& name, std::size_t threads,
                  const std::map<std::string, std::string>& params, double wall_seconds) {
  std::ostringstream os;
  os << "BENCH_JSON {\"bench\":\"" << json_escape(name) << "\",\"threads\":" << threads
     << ",\"params\":{";
  bool first = true;
  for (const auto& [key, value] : params) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(key) << "\":\"" << json_escape(value) << "\"";
  }
  os << "},\"wall_s\":" << wall_seconds << "}";
  std::cout << os.str() << "\n";
}

// ---------------------------------------------------------------- JsonValue

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  REDOPT_REQUIRE(kind == Kind::kObject, "json: member access on a non-object value");
  const JsonValue* value = find(key);
  REDOPT_REQUIRE(value != nullptr, "json: missing member: " + key);
  return *value;
}

bool JsonValue::as_bool() const {
  REDOPT_REQUIRE(kind == Kind::kBool, "json: expected a boolean value");
  return boolean;
}

double JsonValue::as_number() const {
  REDOPT_REQUIRE(kind == Kind::kNumber, "json: expected a number value");
  return number;
}

std::int64_t JsonValue::as_int(std::int64_t lo, std::int64_t hi) const {
  REDOPT_REQUIRE(kind == Kind::kNumber, "json: expected a number value");
  if (has_integer) {
    REDOPT_REQUIRE(integer >= lo && integer <= hi, "json: integer out of range");
    return integer;
  }
  const double v = number;
  REDOPT_REQUIRE(v == std::floor(v), "json: expected an integer value");
  REDOPT_REQUIRE(v >= static_cast<double>(lo) && v <= static_cast<double>(hi),
                 "json: integer out of range");
  return static_cast<std::int64_t>(v);
}

const std::string& JsonValue::as_string() const {
  REDOPT_REQUIRE(kind == Kind::kString, "json: expected a string value");
  return string;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  REDOPT_REQUIRE(kind == Kind::kArray, "json: expected an array value");
  return items;
}

// ---------------------------------------------------------------- serialize

namespace {

void serialize_into(const JsonValue& value, std::string& out) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += value.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      if (value.has_integer) {
        out += std::to_string(value.integer);
      } else {
        out += json_number(value.number);
      }
      return;
    case JsonValue::Kind::kString:
      out += '"';
      out += json_escape(value.string);
      out += '"';
      return;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : value.items) {
        if (!first) out += ',';
        first = false;
        serialize_into(item, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(key);
        out += "\":";
        serialize_into(member, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string json_serialize(const JsonValue& value) {
  std::string out;
  serialize_into(value, out);
  return out;
}

// ---------------------------------------------------------------- parser

namespace {

/// Strict recursive-descent JSON parser over a bounded character range.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    REDOPT_REQUIRE(pos_ == text_.size(), "json: trailing characters after the document");
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  void fail(const std::string& what) const {
    throw PreconditionError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    skip_whitespace();
    const char c = peek();
    JsonValue value;
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.string = parse_string();
        return value;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = false;
        return value;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        value.kind = JsonValue::Kind::kNull;
        return value;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      value.members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return value;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(std::size_t depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.items.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return value;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t code = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = peek();
      ++pos_;
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          std::uint32_t code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              fail("lone high surrogate");
            }
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool number_char = (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
                               c == '+' || c == '-';
      if (!number_char) break;
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("invalid number token: " + token);
    }
    if (errno == ERANGE || !std::isfinite(v)) {
      pos_ = start;
      fail("number out of double range: " + token);
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = v;
    // Keep integer tokens exact: doubles round past 2^53, but scenario
    // seeds and counters are full-width integers.
    if (token.find_first_of(".eE") == std::string::npos) {
      errno = 0;
      char* int_end = nullptr;
      const long long exact = std::strtoll(token.c_str(), &int_end, 10);
      if (errno != ERANGE && int_end == token.c_str() + token.size()) {
        value.has_integer = true;
        value.integer = static_cast<std::int64_t>(exact);
      }
    }
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) { return JsonParser(text).parse_document(); }

}  // namespace redopt::util
