#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace redopt::util {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
  REDOPT_REQUIRE(!header_.empty(), "table header must be non-empty");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int digits) {
  std::ostringstream os;
  os << std::setprecision(digits) << v;
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? "" : "  ");
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 == width.size() ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace redopt::util
