#include "util/csv.h"

#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace redopt::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  REDOPT_REQUIRE(out_.good(), "cannot open CSV output file: " + path);
  REDOPT_REQUIRE(!header.empty(), "CSV header must be non-empty");
  rows_ = 1;  // count the header so write_row() can reuse the row emitter
  write_row(header);
  rows_ = 0;
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  REDOPT_REQUIRE(cells.size() == arity_, "CSV row arity mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os << std::setprecision(17) << v;
    text.push_back(os.str());
  }
  write_row(text);
}

}  // namespace redopt::util
