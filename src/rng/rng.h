// Deterministic, platform-independent random number generation.
//
// The standard library's distributions (std::normal_distribution etc.) are
// implementation-defined, so two builds of the same experiment could produce
// different traces.  redopt therefore ships its own generator (xoshiro256**)
// and its own samplers, guaranteeing bit-identical experiment streams for a
// given seed on every platform.
//
// Streams can be forked by name: `rng.fork("agent-3")` yields an independent
// generator whose sequence depends only on the parent seed and the label,
// so per-agent noise does not depend on the order in which agents draw.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace redopt::rng {

/// SplitMix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// 64-bit FNV-1a hash of a string label (for named stream forking).
std::uint64_t hash_label(const std::string& label);

/// xoshiro256** generator with deterministic samplers.
class Rng {
 public:
  /// Seeds the generator; all four lanes are derived via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).  Requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via the polar Box–Muller method (deterministic).
  double gaussian();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double gaussian(double mean, double sigma);

  /// Vector of iid standard normals of the given length.
  std::vector<double> gaussian_vector(std::size_t length);

  /// Uniformly random point on the unit sphere in R^d (d >= 1).
  std::vector<double> unit_sphere(std::size_t d);

  /// Fisher–Yates shuffle of indices 0..n-1.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Random subset of size k drawn from {0, ..., n-1}, sorted ascending.
  std::vector<std::size_t> subset(std::size_t n, std::size_t k);

  /// Independent generator derived from this seed and @p label.
  /// Forking does not advance this generator's sequence.
  Rng fork(const std::string& label) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace redopt::rng
