#include "rng/rng.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace redopt::rng {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(const std::string& label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // xoshiro's all-zero state is a fixed point; SplitMix64 cannot produce four
  // zero outputs in a row, but guard anyway for safety.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  REDOPT_REQUIRE(lo < hi, "uniform(lo, hi) requires lo < hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  REDOPT_REQUIRE(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Polar Box–Muller: deterministic given the uniform stream.
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double sigma) {
  REDOPT_REQUIRE(sigma >= 0.0, "gaussian sigma must be non-negative");
  return mean + sigma * gaussian();
}

std::vector<double> Rng::gaussian_vector(std::size_t length) {
  std::vector<double> out(length);
  for (auto& x : out) x = gaussian();
  return out;
}

std::vector<double> Rng::unit_sphere(std::size_t d) {
  REDOPT_REQUIRE(d >= 1, "unit_sphere requires d >= 1");
  std::vector<double> v;
  double norm2 = 0.0;
  do {
    v = gaussian_vector(d);
    norm2 = 0.0;
    for (double x : v) norm2 += x * x;
  } while (norm2 == 0.0);
  const double inv = 1.0 / std::sqrt(norm2);
  for (auto& x : v) x *= inv;
  return v;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

std::vector<std::size_t> Rng::subset(std::size_t n, std::size_t k) {
  REDOPT_REQUIRE(k <= n, "subset size k must satisfy k <= n");
  // Floyd's algorithm keeps the draw count at k regardless of n.
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(j)));
    bool present = false;
    for (std::size_t c : chosen) {
      if (c == t) {
        present = true;
        break;
      }
    }
    chosen.push_back(present ? j : t);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

Rng Rng::fork(const std::string& label) const {
  std::uint64_t mix = seed_ ^ hash_label(label);
  // One extra SplitMix64 round decorrelates labels that differ in few bits.
  return Rng(splitmix64(mix));
}

}  // namespace redopt::rng
