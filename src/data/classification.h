// Synthetic distributed-learning data (substitution for the paper's
// MNIST/SVM experiment — see DESIGN.md).
//
// Two-class Gaussian mixture: class y in {-1, +1} has mean y * separation *
// direction.  Each agent draws its own local dataset; a heterogeneity
// parameter shifts each agent's class means by an agent-specific random
// offset, playing the role of inter-agent data correlation (the paper's
// discussion: the more similar the agents' data distributions, the closer
// the instance is to 2f-redundancy and the better the achievable
// fault-tolerance).
#pragma once

#include <string>

#include "core/problem.h"
#include "linalg/matrix.h"
#include "rng/rng.h"

namespace redopt::data {

using linalg::Matrix;
using linalg::Vector;

/// Parameters of the synthetic learning task.
struct ClassificationConfig {
  std::size_t n = 10;              ///< number of agents
  std::size_t f = 2;               ///< fault budget
  std::size_t d = 10;              ///< feature dimension
  std::size_t samples_per_agent = 50;
  std::size_t test_samples = 1000;
  double separation = 2.0;         ///< distance of each class mean from origin
  double heterogeneity = 0.0;      ///< stddev of per-agent mean offsets
  double regularization = 0.01;    ///< L2 term (makes aggregates strongly convex)
  std::string loss = "logistic";   ///< "logistic" or "hinge"
  double hinge_smoothing = 0.5;
};

/// A generated learning instance.
struct ClassificationInstance {
  core::MultiAgentProblem problem;  ///< agent i holds its local empirical risk
  Matrix test_features;             ///< held-out test set
  Vector test_labels;
  Vector class_direction;           ///< unit vector along which classes separate
};

/// Draws the instance.  All randomness flows through @p rng.
ClassificationInstance make_classification(const ClassificationConfig& config, rng::Rng& rng);

/// Test accuracy of the linear classifier sign(<x, w>).
double test_accuracy(const ClassificationInstance& instance, const Vector& w);

}  // namespace redopt::data
