#include "data/replicated_regression.h"

#include "core/least_squares_cost.h"
#include "linalg/decompose.h"
#include "util/error.h"

namespace redopt::data {

ReplicatedRegressionInstance make_replicated_regression(std::size_t num_shards, std::size_t d,
                                                        std::size_t n, std::size_t f,
                                                        std::size_t replication,
                                                        double noise_sigma,
                                                        const Vector& x_star, rng::Rng& rng) {
  REDOPT_REQUIRE(num_shards >= d, "need at least d shards for identifiability");
  REDOPT_REQUIRE(x_star.size() == d, "x_star dimension mismatch");
  REDOPT_REQUIRE(noise_sigma >= 0.0, "noise sigma must be non-negative");
  REDOPT_REQUIRE(n > 2 * f, "replicated regression requires n > 2f");

  ReplicatedRegressionInstance inst;
  inst.x_star = x_star;
  inst.design = cyclic_replication(num_shards, n, replication);

  // Unit-norm base rows with full column rank.
  for (int attempt = 0;; ++attempt) {
    REDOPT_REQUIRE(attempt < 100, "failed to draw full-rank shard rows");
    Matrix rows(num_shards, d);
    for (std::size_t j = 0; j < num_shards; ++j) {
      const auto row = rng.unit_sphere(d);
      for (std::size_t c = 0; c < d; ++c) rows(j, c) = row[c];
    }
    if (linalg::rank(rows) == d) {
      inst.shard_rows = std::move(rows);
      break;
    }
  }
  inst.shard_observations = linalg::matvec(inst.shard_rows, x_star);
  for (std::size_t j = 0; j < num_shards; ++j) {
    inst.shard_observations[j] += rng.gaussian(0.0, noise_sigma);
  }

  inst.problem.f = f;
  inst.problem.costs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& shards = inst.design.agent_shards[i];
    // An agent with no shards contributes a constant-zero cost; represent
    // it with a zero observation row (gradient identically zero).
    if (shards.empty()) {
      inst.problem.costs.push_back(std::make_shared<core::LeastSquaresCost>(
          core::LeastSquaresCost::single(Vector(d), 0.0)));
      continue;
    }
    Matrix a(shards.size(), d);
    Vector b(shards.size());
    for (std::size_t k = 0; k < shards.size(); ++k) {
      for (std::size_t c = 0; c < d; ++c) a(k, c) = inst.shard_rows(shards[k], c);
      b[k] = inst.shard_observations[shards[k]];
    }
    inst.problem.costs.push_back(
        std::make_shared<core::LeastSquaresCost>(std::move(a), std::move(b)));
  }
  inst.problem.validate();
  return inst;
}

Vector replicated_regression_argmin(const ReplicatedRegressionInstance& instance,
                                    const std::vector<std::size_t>& honest) {
  REDOPT_REQUIRE(!honest.empty(), "argmin over empty agent set");
  // Stack every honest agent's shard rows (with multiplicity, matching the
  // honest aggregate cost).
  std::size_t total = 0;
  for (std::size_t id : honest) {
    REDOPT_REQUIRE(id < instance.design.agent_shards.size(), "agent id out of range");
    total += std::max<std::size_t>(instance.design.agent_shards[id].size(), 1);
  }
  const std::size_t d = instance.x_star.size();
  Matrix a(total, d);
  Vector b(total);
  std::size_t r = 0;
  for (std::size_t id : honest) {
    const auto& shards = instance.design.agent_shards[id];
    if (shards.empty()) {
      ++r;  // zero row, zero observation
      continue;
    }
    for (std::size_t shard : shards) {
      for (std::size_t c = 0; c < d; ++c) a(r, c) = instance.shard_rows(shard, c);
      b[r] = instance.shard_observations[shard];
      ++r;
    }
  }
  linalg::QrDecomposition qr(a);
  REDOPT_REQUIRE(qr.rank() == d, "honest shard union is rank-deficient; argmin not unique");
  return qr.solve_least_squares(b);
}

}  // namespace redopt::data
