#include "data/classification.h"

#include "core/logistic_cost.h"
#include "core/smoothed_hinge_cost.h"
#include "util/error.h"

namespace redopt::data {

namespace {

/// Draws @p count labelled samples around the two class means.
void draw_samples(Matrix& features, Vector& labels, const Vector& pos_mean,
                  const Vector& neg_mean, rng::Rng& rng) {
  const std::size_t count = features.rows();
  const std::size_t d = features.cols();
  for (std::size_t j = 0; j < count; ++j) {
    const bool positive = rng.uniform() < 0.5;
    const Vector& mean = positive ? pos_mean : neg_mean;
    labels[j] = positive ? 1.0 : -1.0;
    for (std::size_t k = 0; k < d; ++k) features(j, k) = mean[k] + rng.gaussian();
  }
}

}  // namespace

ClassificationInstance make_classification(const ClassificationConfig& cfg, rng::Rng& rng) {
  REDOPT_REQUIRE(cfg.n > 2 * cfg.f, "classification config requires n > 2f");
  REDOPT_REQUIRE(cfg.d >= 1 && cfg.samples_per_agent >= 1, "empty classification config");
  REDOPT_REQUIRE(cfg.loss == "logistic" || cfg.loss == "hinge",
                 "loss must be 'logistic' or 'hinge'");
  REDOPT_REQUIRE(cfg.separation > 0.0, "class separation must be positive");
  REDOPT_REQUIRE(cfg.heterogeneity >= 0.0, "heterogeneity must be non-negative");

  ClassificationInstance inst;
  inst.class_direction = Vector(rng.unit_sphere(cfg.d));
  const Vector global_pos = inst.class_direction * cfg.separation;
  const Vector global_neg = inst.class_direction * (-cfg.separation);

  inst.problem.f = cfg.f;
  inst.problem.costs.reserve(cfg.n);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    // Agent-specific offset models non-identical data distributions.
    Vector offset(cfg.d);
    if (cfg.heterogeneity > 0.0) {
      for (auto& c : offset) c = rng.gaussian(0.0, cfg.heterogeneity);
    }
    Matrix features(cfg.samples_per_agent, cfg.d);
    Vector labels(cfg.samples_per_agent);
    draw_samples(features, labels, global_pos + offset, global_neg + offset, rng);

    if (cfg.loss == "logistic") {
      inst.problem.costs.push_back(std::make_shared<core::LogisticCost>(
          std::move(features), std::move(labels), cfg.regularization));
    } else {
      inst.problem.costs.push_back(std::make_shared<core::SmoothedHingeCost>(
          std::move(features), std::move(labels), cfg.regularization, cfg.hinge_smoothing));
    }
  }
  inst.problem.validate();

  // Held-out test data from the *global* (offset-free) distribution.
  inst.test_features = Matrix(cfg.test_samples, cfg.d);
  inst.test_labels = Vector(cfg.test_samples);
  draw_samples(inst.test_features, inst.test_labels, global_pos, global_neg, rng);
  return inst;
}

double test_accuracy(const ClassificationInstance& instance, const Vector& w) {
  return core::LogisticCost::accuracy(instance.test_features, instance.test_labels, w);
}

}  // namespace redopt::data
