#include "data/instance_io.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "core/least_squares_cost.h"
#include "util/error.h"

namespace redopt::data {

std::string regression_to_string(const RegressionInstance& instance) {
  const std::size_t n = instance.a.rows();
  const std::size_t d = instance.a.cols();
  REDOPT_REQUIRE(instance.b.size() == n, "instance observations inconsistent with matrix");
  REDOPT_REQUIRE(instance.x_star.size() == d, "instance x_star inconsistent with matrix");

  std::ostringstream out;
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "redopt-regression v1\n";
  out << "n " << n << " d " << d << " f " << instance.problem.f << "\n";
  out << "x_star";
  for (std::size_t k = 0; k < d; ++k) out << ' ' << instance.x_star[k];
  out << "\n";
  for (std::size_t i = 0; i < n; ++i) {
    out << "row";
    for (std::size_t k = 0; k < d; ++k) out << ' ' << instance.a(i, k);
    out << " obs " << instance.b[i] << "\n";
  }
  return out.str();
}

void save_regression(const RegressionInstance& instance, const std::string& path) {
  std::ofstream out(path);
  REDOPT_REQUIRE(out.good(), "cannot write instance file: " + path);
  out << regression_to_string(instance);
  REDOPT_REQUIRE(out.good(), "write failed for instance file: " + path);
}

namespace {

// Byte-mutated or adversarial files must fail with a typed error before
// any data-dependent allocation, so claimed sizes are parsed strictly
// (operator>> into size_t silently wraps negatives) and sanity-capped.
constexpr long long kMaxAgents = 1'000'000;
constexpr long long kMaxDimensions = 10'000;

std::size_t parse_size(const std::string& token, long long cap, const char* what) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  REDOPT_REQUIRE(!token.empty() && errno == 0 && end == token.c_str() + token.size(),
                 std::string("instance: ") + what + " is not an integer: " + token);
  REDOPT_REQUIRE(value >= 0 && value <= cap,
                 std::string("instance: ") + what + " out of range: " + token);
  return static_cast<std::size_t>(value);
}

double parse_finite(std::istringstream& fields, const std::string& line, const char* what) {
  double value = 0.0;
  REDOPT_REQUIRE(static_cast<bool>(fields >> value),
                 std::string("instance: missing or malformed ") + what + ": " + line);
  REDOPT_REQUIRE(std::isfinite(value),
                 std::string("instance: non-finite ") + what + ": " + line);
  return value;
}

void reject_trailing(std::istringstream& fields, const std::string& line) {
  std::string extra;
  REDOPT_REQUIRE(!(fields >> extra), "instance: trailing tokens on line: " + line);
}

}  // namespace

RegressionInstance regression_from_string(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  REDOPT_REQUIRE(std::getline(in, line) && line == "redopt-regression v1",
                 "bad instance header (expected 'redopt-regression v1')");

  std::string token;
  std::size_t n = 0, d = 0, f = 0;
  {
    REDOPT_REQUIRE(static_cast<bool>(std::getline(in, line)), "missing dimensions line");
    std::istringstream fields(line);
    std::string kn, vn, kd, vd, kf, vf;
    REDOPT_REQUIRE(static_cast<bool>(fields >> kn >> vn >> kd >> vd >> kf >> vf) &&
                       kn == "n" && kd == "d" && kf == "f",
                   "malformed dimensions line: " + line);
    reject_trailing(fields, line);
    n = parse_size(vn, kMaxAgents, "n");
    d = parse_size(vd, kMaxDimensions, "d");
    f = parse_size(vf, kMaxAgents, "f");
    REDOPT_REQUIRE(n >= 1 && d >= 1, "instance must have n >= 1, d >= 1");
    REDOPT_REQUIRE(f <= n, "instance must have f <= n");
  }

  // A claimed size far beyond what the text can hold means a corrupted
  // header; check before allocating n x d.  Every row line carries at
  // least d + 1 numeric tokens, so it is longer than d + 1 bytes.
  const auto consumed = in.tellg();
  const std::size_t remaining =
      consumed < 0 ? 0 : text.size() - static_cast<std::size_t>(consumed);
  REDOPT_REQUIRE(n * (d + 1) <= remaining,
                 "instance: claimed dimensions exceed file contents");

  RegressionInstance instance;
  instance.problem.f = f;
  instance.x_star = linalg::Vector(d);
  {
    REDOPT_REQUIRE(static_cast<bool>(std::getline(in, line)), "missing x_star line");
    std::istringstream fields(line);
    REDOPT_REQUIRE(static_cast<bool>(fields >> token) && token == "x_star",
                   "malformed x_star line: " + line);
    for (std::size_t k = 0; k < d; ++k) {
      instance.x_star[k] = parse_finite(fields, line, "x_star value");
    }
    reject_trailing(fields, line);
  }

  instance.a = linalg::Matrix(n, d);
  instance.b = linalg::Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    REDOPT_REQUIRE(static_cast<bool>(std::getline(in, line)),
                   "missing row line " + std::to_string(i));
    std::istringstream fields(line);
    REDOPT_REQUIRE(static_cast<bool>(fields >> token) && token == "row",
                   "malformed row line: " + line);
    for (std::size_t k = 0; k < d; ++k) {
      instance.a(i, k) = parse_finite(fields, line, "row value");
    }
    REDOPT_REQUIRE(static_cast<bool>(fields >> token) && token == "obs",
                   "row line missing 'obs': " + line);
    instance.b[i] = parse_finite(fields, line, "observation");
    reject_trailing(fields, line);
  }
  while (std::getline(in, line)) {
    REDOPT_REQUIRE(line.find_first_not_of(" \t\r") == std::string::npos,
                   "instance: trailing content after last row: " + line);
  }

  instance.problem.costs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    instance.problem.costs.push_back(std::make_shared<core::LeastSquaresCost>(
        core::LeastSquaresCost::single(instance.a.row(i), instance.b[i])));
  }
  instance.problem.validate();
  return instance;
}

RegressionInstance load_regression(const std::string& path) {
  std::ifstream in(path);
  REDOPT_REQUIRE(in.good(), "cannot read instance file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return regression_from_string(buffer.str());
}

}  // namespace redopt::data
