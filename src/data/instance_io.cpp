#include "data/instance_io.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "core/least_squares_cost.h"
#include "util/error.h"

namespace redopt::data {

std::string regression_to_string(const RegressionInstance& instance) {
  const std::size_t n = instance.a.rows();
  const std::size_t d = instance.a.cols();
  REDOPT_REQUIRE(instance.b.size() == n, "instance observations inconsistent with matrix");
  REDOPT_REQUIRE(instance.x_star.size() == d, "instance x_star inconsistent with matrix");

  std::ostringstream out;
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "redopt-regression v1\n";
  out << "n " << n << " d " << d << " f " << instance.problem.f << "\n";
  out << "x_star";
  for (std::size_t k = 0; k < d; ++k) out << ' ' << instance.x_star[k];
  out << "\n";
  for (std::size_t i = 0; i < n; ++i) {
    out << "row";
    for (std::size_t k = 0; k < d; ++k) out << ' ' << instance.a(i, k);
    out << " obs " << instance.b[i] << "\n";
  }
  return out.str();
}

void save_regression(const RegressionInstance& instance, const std::string& path) {
  std::ofstream out(path);
  REDOPT_REQUIRE(out.good(), "cannot write instance file: " + path);
  out << regression_to_string(instance);
  REDOPT_REQUIRE(out.good(), "write failed for instance file: " + path);
}

RegressionInstance regression_from_string(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  REDOPT_REQUIRE(std::getline(in, line) && line == "redopt-regression v1",
                 "bad instance header (expected 'redopt-regression v1')");

  std::string token;
  std::size_t n = 0, d = 0, f = 0;
  {
    REDOPT_REQUIRE(static_cast<bool>(std::getline(in, line)), "missing dimensions line");
    std::istringstream fields(line);
    std::string kn, kd, kf;
    REDOPT_REQUIRE(static_cast<bool>(fields >> kn >> n >> kd >> d >> kf >> f) &&
                       kn == "n" && kd == "d" && kf == "f",
                   "malformed dimensions line: " + line);
    REDOPT_REQUIRE(n >= 1 && d >= 1, "instance must have n >= 1, d >= 1");
  }

  RegressionInstance instance;
  instance.problem.f = f;
  instance.x_star = linalg::Vector(d);
  {
    REDOPT_REQUIRE(static_cast<bool>(std::getline(in, line)), "missing x_star line");
    std::istringstream fields(line);
    REDOPT_REQUIRE(static_cast<bool>(fields >> token) && token == "x_star",
                   "malformed x_star line: " + line);
    for (std::size_t k = 0; k < d; ++k) {
      REDOPT_REQUIRE(static_cast<bool>(fields >> instance.x_star[k]),
                     "x_star line has too few values");
    }
  }

  instance.a = linalg::Matrix(n, d);
  instance.b = linalg::Vector(n);
  for (std::size_t i = 0; i < n; ++i) {
    REDOPT_REQUIRE(static_cast<bool>(std::getline(in, line)),
                   "missing row line " + std::to_string(i));
    std::istringstream fields(line);
    REDOPT_REQUIRE(static_cast<bool>(fields >> token) && token == "row",
                   "malformed row line: " + line);
    for (std::size_t k = 0; k < d; ++k) {
      REDOPT_REQUIRE(static_cast<bool>(fields >> instance.a(i, k)),
                     "row line has too few values: " + line);
    }
    REDOPT_REQUIRE(static_cast<bool>(fields >> token) && token == "obs",
                   "row line missing 'obs': " + line);
    REDOPT_REQUIRE(static_cast<bool>(fields >> instance.b[i]),
                   "row line missing observation: " + line);
  }

  instance.problem.costs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    instance.problem.costs.push_back(std::make_shared<core::LeastSquaresCost>(
        core::LeastSquaresCost::single(instance.a.row(i), instance.b[i])));
  }
  instance.problem.validate();
  return instance;
}

RegressionInstance load_regression(const std::string& path) {
  std::ifstream in(path);
  REDOPT_REQUIRE(in.good(), "cannot read instance file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return regression_from_string(buffer.str());
}

}  // namespace redopt::data
