#include "data/regression.h"

#include <cmath>
#include <limits>

#include "linalg/decompose.h"
#include "util/error.h"
#include "util/subsets.h"

namespace redopt::data {

Matrix paper_matrix() {
  // Unit-norm rows at angles k * 30 degrees.  No two rows are parallel, so
  // any four of them span R^2 — exactly the 2f-redundancy rank condition
  // for n = 6, f = 1, d = 2.  Unit rows give every agent the same
  // Lipschitz constant mu = 2 (the paper reports mu = 2 for its instance)
  // and the best achievable gamma for single-row agents at this (n, f).
  const double s3 = std::sqrt(3.0) / 2.0;
  return Matrix{{1.0, 0.0}, {s3, 0.5}, {0.5, s3}, {0.0, 1.0}, {-0.5, s3}, {-s3, 0.5}};
}

Matrix redundant_matrix(std::size_t n, std::size_t d, std::size_t f, rng::Rng& rng,
                        std::size_t max_attempts) {
  REDOPT_REQUIRE(n > 2 * f, "redundant_matrix requires n > 2f");
  REDOPT_REQUIRE(n - 2 * f >= d, "rank condition needs n - 2f >= d rows per subset");
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    Matrix a(n, d);
    for (std::size_t r = 0; r < n; ++r) {
      // Unit-norm rows (uniform on the sphere): the rank condition only
      // depends on directions, and unit rows give every agent the same
      // Lipschitz constant mu = 2, keeping instances well conditioned.
      const auto row = rng.unit_sphere(d);
      for (std::size_t c = 0; c < d; ++c) a(r, c) = row[c];
    }
    if (regression_rank_condition(a, f)) return a;
  }
  REDOPT_REQUIRE(false, "failed to draw a 2f-redundant matrix (should be measure-1)");
  return {};  // unreachable
}

bool regression_rank_condition(const linalg::Matrix& a, std::size_t f, double rel_tol) {
  const std::size_t n = a.rows();
  const std::size_t d = a.cols();
  REDOPT_REQUIRE(n > 2 * f, "rank condition requires n > 2f");
  if (n - 2 * f < d) return false;  // too few rows to ever reach rank d
  bool ok = true;
  util::for_each_subset(n, n - 2 * f, [&](const std::vector<std::size_t>& rows) {
    if (linalg::rank(a.select_rows(rows), rel_tol) < d) {
      ok = false;
      return false;  // stop early
    }
    return true;
  });
  return ok;
}

RegressionInstance make_regression(const Matrix& a, const Vector& x_star, double noise_sigma,
                                   std::size_t f, rng::Rng& rng) {
  REDOPT_REQUIRE(a.cols() == x_star.size(), "x_star dimension mismatch");
  REDOPT_REQUIRE(noise_sigma >= 0.0, "noise sigma must be non-negative");
  const std::size_t n = a.rows();

  RegressionInstance inst;
  inst.a = a;
  inst.x_star = x_star;
  inst.noise_sigma = noise_sigma;
  inst.b = linalg::matvec(a, x_star);
  for (std::size_t i = 0; i < n; ++i) inst.b[i] += rng.gaussian(0.0, noise_sigma);

  inst.problem.f = f;
  inst.problem.costs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    inst.problem.costs.push_back(std::make_shared<core::LeastSquaresCost>(
        core::LeastSquaresCost::single(a.row(i), inst.b[i])));
  }
  inst.problem.validate();
  return inst;
}

BlockRegressionInstance make_orthonormal_regression(std::size_t n, std::size_t d, std::size_t f,
                                                    double noise_sigma, const Vector& x_star,
                                                    rng::Rng& rng) {
  REDOPT_REQUIRE(n > 2 * f, "orthonormal regression requires n > 2f");
  REDOPT_REQUIRE(x_star.size() == d, "x_star dimension mismatch");
  REDOPT_REQUIRE(noise_sigma >= 0.0, "noise sigma must be non-negative");

  BlockRegressionInstance inst;
  inst.x_star = x_star;
  inst.problem.f = f;
  for (std::size_t i = 0; i < n; ++i) {
    // Random orthogonal block via Gram-Schmidt on Gaussian rows.
    Matrix a(d, d);
    for (std::size_t r = 0; r < d; ++r) {
      Vector row;
      double norm = 0.0;
      do {
        row = Vector(rng.gaussian_vector(d));
        for (std::size_t p = 0; p < r; ++p) {
          const Vector prev = a.row(p);
          row -= prev * linalg::dot(row, prev);
        }
        norm = row.norm();
      } while (norm < 1e-8);  // re-draw on (measure-zero) degeneracy
      a.set_row(r, row / norm);
    }
    Vector b = linalg::matvec(a, x_star);
    for (auto& c : b) c += rng.gaussian(0.0, noise_sigma);
    inst.problem.costs.push_back(std::make_shared<core::LeastSquaresCost>(a, b));
    inst.blocks.push_back(std::move(a));
    inst.observations.push_back(std::move(b));
  }
  inst.problem.validate();
  return inst;
}

Vector block_regression_argmin(const BlockRegressionInstance& instance,
                               const std::vector<std::size_t>& honest) {
  REDOPT_REQUIRE(!honest.empty(), "block regression argmin over empty agent set");
  const std::size_t d = instance.x_star.size();
  Matrix stacked(honest.size() * d, d);
  Vector b(honest.size() * d);
  std::size_t r = 0;
  for (std::size_t id : honest) {
    REDOPT_REQUIRE(id < instance.blocks.size(), "agent id out of range");
    for (std::size_t br = 0; br < d; ++br, ++r) {
      for (std::size_t c = 0; c < d; ++c) stacked(r, c) = instance.blocks[id](br, c);
      b[r] = instance.observations[id][br];
    }
  }
  return linalg::QrDecomposition(stacked).solve_least_squares(b);
}

Vector regression_argmin(const RegressionInstance& instance,
                         const std::vector<std::size_t>& honest) {
  REDOPT_REQUIRE(!honest.empty(), "regression argmin over empty agent set");
  const Matrix a_h = instance.a.select_rows(honest);
  Vector b_h(honest.size());
  for (std::size_t i = 0; i < honest.size(); ++i) b_h[i] = instance.b[honest[i]];
  linalg::QrDecomposition qr(a_h);
  REDOPT_REQUIRE(qr.rank() == instance.a.cols(),
                 "honest observation matrix is rank-deficient; x_H not unique");
  return qr.solve_least_squares(b_h);
}

RegressionConstants regression_constants(const RegressionInstance& instance,
                                         const std::vector<std::size_t>& honest) {
  const std::size_t n = instance.problem.num_agents();
  const std::size_t f = instance.problem.f;
  REDOPT_REQUIRE(honest.size() >= n - f, "need at least n - f honest agents");

  RegressionConstants out;
  // mu: per-agent Hessian is 2 A_i^T A_i (rank one); largest eigenvalue is
  // 2 ||A_i||^2.
  for (std::size_t id : honest) {
    const Vector row = instance.a.row(id);
    out.mu = std::max(out.mu, 2.0 * row.norm_squared());
  }
  // gamma: smallest eigenvalue of the average Hessian over every
  // (n - f)-subset of the honest agents.
  out.gamma = std::numeric_limits<double>::infinity();
  util::for_each_subset_of(honest, n - f, [&](const std::vector<std::size_t>& subset) {
    Matrix gram = instance.a.select_rows(subset).gram();
    gram *= 2.0 / static_cast<double>(subset.size());
    out.gamma = std::min(out.gamma, linalg::min_eigenvalue(gram));
    return true;
  });
  return out;
}

}  // namespace redopt::data
