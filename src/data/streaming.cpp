#include "data/streaming.h"

#include <sstream>

#include "linalg/decompose.h"
#include "util/error.h"

namespace redopt::data {

StreamingLeastSquaresCost::StreamingLeastSquaresCost(std::size_t d, const Vector& x_star,
                                                     double noise_sigma, rng::Rng rng)
    : basis_(d, d),
      x_star_(x_star),
      sigma_(noise_sigma),
      rng_(rng),
      gram_(d, d),
      moment_(d) {
  REDOPT_REQUIRE(d >= 1, "streaming cost needs dimension >= 1");
  REDOPT_REQUIRE(x_star.size() == d, "streaming cost: x_star dimension mismatch");
  REDOPT_REQUIRE(noise_sigma >= 0.0, "streaming cost: noise sigma must be non-negative");
  // Random orthonormal basis via Gram-Schmidt on Gaussian rows, the
  // block_regression construction (rows are then served one at a time).
  for (std::size_t r = 0; r < d; ++r) {
    Vector row;
    double norm = 0.0;
    do {
      row = Vector(rng_.gaussian_vector(d));
      for (std::size_t p = 0; p < r; ++p) {
        const Vector prev = basis_.row(p);
        row -= prev * linalg::dot(row, prev);
      }
      norm = row.norm();
    } while (norm < 1e-8);  // re-draw on (measure-zero) degeneracy
    basis_.set_row(r, row / norm);
  }
  absorb(d);  // the first full cycle: G = I, hess = 2 I
}

void StreamingLeastSquaresCost::absorb(std::size_t count) {
  REDOPT_REQUIRE(count >= 1, "streaming cost: absorb needs count >= 1");
  const std::size_t d = basis_.cols();
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t r = rows_ % d;
    const double* a = basis_.row_data(r);
    const double b =
        linalg::kernels::dot(a, x_star_.data().data(), d) + rng_.gaussian(0.0, sigma_);
    for (std::size_t rr = 0; rr < d; ++rr) {
      linalg::kernels::axpy(gram_.data().data() + rr * d, a[rr], a, d);
    }
    linalg::kernels::axpy(moment_.data().data(), b, a, d);
    energy_.add(b * b);
    ++rows_;
  }
}

double StreamingLeastSquaresCost::value(const Vector& x) const {
  REDOPT_REQUIRE(x.size() == dimension(), "streaming cost: dimension mismatch");
  const double scale = static_cast<double>(dimension()) / static_cast<double>(rows_);
  const double quad = linalg::dot(x, linalg::matvec(gram_, x));
  const double lin = linalg::dot(moment_, x);
  return scale * (quad - 2.0 * lin + energy_.value());
}

Vector StreamingLeastSquaresCost::gradient(const Vector& x) const {
  REDOPT_REQUIRE(x.size() == dimension(), "streaming cost: dimension mismatch");
  const double scale =
      2.0 * static_cast<double>(dimension()) / static_cast<double>(rows_);
  return (linalg::matvec(gram_, x) - moment_) * scale;
}

std::optional<Matrix> StreamingLeastSquaresCost::hessian(const Vector& x) const {
  REDOPT_REQUIRE(x.size() == dimension(), "streaming cost: dimension mismatch");
  const double scale =
      2.0 * static_cast<double>(dimension()) / static_cast<double>(rows_);
  Matrix h = gram_;
  linalg::kernels::scale(h.data().data(), scale, h.data().size());
  return h;
}

std::unique_ptr<core::CostFunction> StreamingLeastSquaresCost::clone() const {
  return std::make_unique<StreamingLeastSquaresCost>(*this);
}

std::string StreamingLeastSquaresCost::describe() const {
  std::ostringstream os;
  os << "streaming_least_squares(d=" << dimension() << ", rows=" << rows_ << ")";
  return os.str();
}

Vector streaming_argmin(
    const std::vector<std::shared_ptr<const StreamingLeastSquaresCost>>& costs) {
  REDOPT_REQUIRE(!costs.empty(), "streaming argmin over empty agent set");
  const std::size_t d = costs.front()->dimension();
  Matrix lhs(d, d);
  Vector rhs(d);
  for (const auto& cost : costs) {
    REDOPT_REQUIRE(cost != nullptr && cost->dimension() == d,
                   "streaming argmin: dimension mismatch");
    const double w =
        static_cast<double>(d) / static_cast<double>(cost->rows_absorbed());
    for (std::size_t r = 0; r < d; ++r) {
      linalg::kernels::axpy(lhs.data().data() + r * d, w, cost->gram().row_data(r), d);
    }
    linalg::kernels::axpy(rhs.data().data(), w, cost->moment().data().data(), d);
  }
  const auto solved = linalg::solve_spd(lhs, rhs);
  REDOPT_REQUIRE(solved.has_value(), "streaming argmin: singular aggregate system");
  return *solved;
}

}  // namespace redopt::data
