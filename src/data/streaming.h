// Streaming least-squares: incremental cost state for online workloads.
//
// In the online regime an agent's observations arrive over time instead of
// up front.  Re-stacking the full (A, b) history every round would make the
// per-round cost grow with the stream; instead the cost keeps the
// normal-equation sufficient statistics
//
//   G = sum_k a_k a_k^T,   h = sum_k b_k a_k,   c = sum_k b_k^2
//
// and folds each arriving row in with a rank-1 update.  Scaled by d / k
// (k = rows absorbed so far) the cost is
//
//   Q(x) = (d / k) (x^T G x - 2 h^T x + c),
//   grad Q(x) = (2 d / k) (G x - h),   hess Q(x) = (2 d / k) G,
//
// identical to ||A x - b||^2 over the stacked rows up to the d/k
// normalization.  Rows cycle a fixed per-agent orthonormal basis (the
// block_regression construction, one row at a time), so at every full
// cycle G = I exactly and the Hessian is 2 I: the instance stays inside
// the mu = gamma = 2 envelope Theorem 4 needs, no matter how long the
// stream runs.
//
// Determinism: every floating-point accumulation funnels through the
// linalg/kernels FP-order authority — rank-1 updates via kernels::axpy
// (element-wise, order-independent), the observation-energy scalar via
// kernels::Sum (strict call order) — and each instance carries its own
// forked rng, so absorbing the same stream schedule yields bit-identical
// statistics on every thread count and across process boundaries (copies
// carry the rng state and continue the identical row sequence).
#pragma once

#include <memory>

#include "core/cost_function.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "rng/rng.h"

namespace redopt::data {

using linalg::Matrix;
using linalg::Vector;

class StreamingLeastSquaresCost final : public core::CostFunction {
 public:
  /// Seeds the stream and absorbs one full basis cycle (d rows), so a
  /// fresh cost is exactly the orthonormal block instance: G = I and
  /// hess = 2 I before any stream event fires.  Observations are
  /// b_k = <a_k, x_star> + N(0, noise_sigma) drawn from @p rng, which the
  /// cost owns and advances; copies replay the identical future stream.
  StreamingLeastSquaresCost(std::size_t d, const Vector& x_star, double noise_sigma,
                            rng::Rng rng);

  /// Folds @p count fresh rows into the sufficient statistics (rank-1
  /// updates, strict stream order).  Requires count >= 1.
  void absorb(std::size_t count);

  /// Rows absorbed so far (>= d; the constructor absorbs the first cycle).
  std::size_t rows_absorbed() const { return rows_; }

  std::size_t dimension() const override { return basis_.cols(); }
  double value(const Vector& x) const override;
  Vector gradient(const Vector& x) const override;
  std::optional<Matrix> hessian(const Vector& x) const override;
  std::unique_ptr<CostFunction> clone() const override;
  std::string describe() const override;

  /// The raw sufficient statistics (unscaled sums over absorbed rows).
  const Matrix& gram() const { return gram_; }
  const Vector& moment() const { return moment_; }

 private:
  Matrix basis_;    ///< d x d orthonormal row source (rows cycle)
  Vector x_star_;   ///< planted parameter generating the observations
  double sigma_;    ///< observation noise level
  rng::Rng rng_;    ///< private stream randomness; copied with the cost
  Matrix gram_;     ///< G = sum a a^T
  Vector moment_;   ///< h = sum b a
  linalg::kernels::Sum energy_;  ///< c = sum b^2, strict stream order
  std::size_t rows_ = 0;
};

/// The exact minimizer of the aggregate sum_i Q_i over @p costs: solves
/// (sum_i w_i G_i) x = sum_i w_i h_i with w_i = d / k_i.  Throws
/// PreconditionError on an empty set or a singular system (cannot happen
/// while every cost has absorbed at least one full cycle).
Vector streaming_argmin(
    const std::vector<std::shared_ptr<const StreamingLeastSquaresCost>>& costs);

}  // namespace redopt::data
