// Redundancy by design: shard-replication layouts.
//
// The paper notes that 2f-redundancy "can be realized by design for many
// applications" (distributed sensing/learning) — typically by assigning
// each data shard to several agents.  This module provides the layout
// machinery: a cyclic (fractional-repetition) assignment of m shards to n
// agents with replication factor r, and the coverage check that makes the
// redundancy argument work:
//
//   if r >= 2f + 1, every subset of n - 2f agents jointly holds every
//   shard (at most 2f agents are excluded, fewer than any shard's r
//   holders), so for *consistent* shard costs (all minimized at a common
//   x*) every admissible aggregate has the same argmin — exact
//   2f-redundancy by construction.
//
// The layout lives in data/ (it is how instances are *constructed*; the
// redundancy/ module *measures* the property on finished cost families,
// one layer up).  data/replicated_regression.h instantiates this for
// linear regression; bench_replication sweeps r to show the r = 2f + 1
// threshold.
#pragma once

#include <cstddef>
#include <vector>

namespace redopt::data {

/// A shard-to-agent assignment.
struct ReplicationDesign {
  std::vector<std::vector<std::size_t>> shard_holders;  ///< per shard: its r agents (sorted)
  std::vector<std::vector<std::size_t>> agent_shards;   ///< per agent: its shard ids (sorted)
  std::size_t num_agents = 0;
  std::size_t replication = 0;
};

/// Cyclic assignment: shard j is held by agents j, j+1, ..., j+r-1 (mod n).
/// Requires 1 <= r <= n and m >= 1.
ReplicationDesign cyclic_replication(std::size_t num_shards, std::size_t num_agents,
                                     std::size_t replication);

/// True iff every subset of (n - 2f) agents jointly covers every shard —
/// the combinatorial core of the 2f-redundancy-by-design argument.
/// Exhaustive over subsets; intended for design-time validation.
bool covers_all_shards(const ReplicationDesign& design, std::size_t f);

/// The tight threshold: the largest f for which coverage holds
/// (scans f upward; returns 0 if even f = 1 fails... i.e. the maximum f
/// with covers_all_shards(design, f) true, 0 when none).
std::size_t max_covered_f(const ReplicationDesign& design);

}  // namespace redopt::data
