// Distributed linear-regression instance generation.
//
// The paper's evaluation (Section 5): n agents, agent i holds a row vector
// A_i in R^d and a scalar observation B_i = A_i x* + N_i.  Agent i's cost
// is Q_i(x) = (B_i - A_i x)^2.  The rows are chosen so the *noiseless*
// system has exact 2f-redundancy — every (n - 2f)-row submatrix has full
// column rank d — and observation noise then relaxes it to
// (2f, eps)-redundancy with a measurable eps.
//
// The paper withholds its concrete A/B values; paper_matrix() provides a
// fixed deterministic 6 x 2 instance satisfying the same rank condition,
// and redundant_matrix() draws verified random instances of any size.
#pragma once

#include <cstdint>

#include "core/least_squares_cost.h"
#include "core/problem.h"
#include "linalg/matrix.h"
#include "rng/rng.h"

namespace redopt::data {

using linalg::Matrix;
using linalg::Vector;

/// A fully specified regression instance.
struct RegressionInstance {
  core::MultiAgentProblem problem;  ///< agent i holds (B_i - A_i x)^2
  Matrix a;                         ///< n x d observation matrix
  Vector b;                         ///< n observations (with noise)
  Vector x_star;                    ///< ground-truth parameter
  double noise_sigma = 0.0;         ///< observation noise level used
};

/// The fixed 6 x 2 observation matrix used for the paper-shaped experiments
/// (n = 6, f = 1, d = 2; every 4-row submatrix has rank 2).
Matrix paper_matrix();

/// Draws an n x d matrix with iid unit-norm rows (uniform on the sphere),
/// retrying until the 2f-redundancy rank condition holds (every
/// (n - 2f)-row submatrix has rank d).  Requires n - 2f >= d.  Throws
/// after @p max_attempts failures.
Matrix redundant_matrix(std::size_t n, std::size_t d, std::size_t f, rng::Rng& rng,
                        std::size_t max_attempts = 100);

/// The constructive rank condition the generators above enforce: with
/// agent i holding observation row i of @p a, 2f-redundancy (noiseless)
/// holds iff every (n - 2f)-row submatrix has full column rank d.  Lives
/// here with the generators; redundancy::regression_rank_condition
/// (the measurement layer, one module up) delegates to this.
bool regression_rank_condition(const linalg::Matrix& a, std::size_t f, double rel_tol = 1e-10);

/// Builds the per-agent costs for observations B = A x* + noise, where the
/// noise is iid Gaussian with standard deviation @p noise_sigma.
RegressionInstance make_regression(const Matrix& a, const Vector& x_star, double noise_sigma,
                                   std::size_t f, rng::Rng& rng);

/// The honest aggregate's unique minimum point x_H: the least-squares
/// solution over the rows in @p honest (requires full column rank).
Vector regression_argmin(const RegressionInstance& instance,
                         const std::vector<std::size_t>& honest);

/// A regression instance whose agents each hold a d x d *orthonormal*
/// observation block A_i (so A_i^T A_i = I).  This puts the instance in the
/// regime where Theorem 4's sufficient condition holds: mu = 2, gamma = 2,
/// hence alpha = 1 - 3 f / n > 0 whenever f < n / 3.  Single-row agents
/// (the paper's own experiment) cannot reach alpha > 0 at n = 6, f = 1 —
/// see EXPERIMENTS.md — so this family is what the bound-checking tests
/// and the epsilon-sweep bench run on.
struct BlockRegressionInstance {
  core::MultiAgentProblem problem;   ///< agent i holds ||A_i x - b_i||^2
  std::vector<Matrix> blocks;        ///< per-agent d x d orthonormal A_i
  std::vector<Vector> observations;  ///< per-agent b_i = A_i x* + noise
  Vector x_star;                     ///< ground-truth parameter
};

/// Draws the orthonormal-block instance (Gram-Schmidt on Gaussian draws).
BlockRegressionInstance make_orthonormal_regression(std::size_t n, std::size_t d, std::size_t f,
                                                    double noise_sigma, const Vector& x_star,
                                                    rng::Rng& rng);

/// Least-squares solution over the honest agents' stacked blocks.
Vector block_regression_argmin(const BlockRegressionInstance& instance,
                               const std::vector<std::size_t>& honest);

/// Assumption-2/3 constants of a regression instance:
///   mu    = max_i 2 ||A_i||^2           (per-agent Lipschitz constant)
///   gamma = min over (n-f)-subsets H of honest agents of
///           lambda_min( (2 / |H|) A_H^T A_H )
struct RegressionConstants {
  double mu = 0.0;
  double gamma = 0.0;
};
RegressionConstants regression_constants(const RegressionInstance& instance,
                                         const std::vector<std::size_t>& honest);

}  // namespace redopt::data
