// Robust mean estimation cast as fault-tolerant distributed optimization
// (Section 2.3 of the paper family).
//
// Each honest agent i samples x_i ~ N(mu, sigma^2 I) and holds the cost
// Q_i(x) = ||x - x_i||^2; the minimum point of the honest aggregate is the
// honest sample mean.  A Byzantine agent may report an arbitrary cost —
// here, an adversarially placed sample.  This instance family is what the
// robust-mean example and several property tests run on.
#pragma once

#include "core/problem.h"
#include "linalg/vector.h"
#include "rng/rng.h"

namespace redopt::data {

using linalg::Vector;

/// A generated robust-mean instance.
struct MeanEstimationInstance {
  core::MultiAgentProblem problem;  ///< agent i holds ||x - sample_i||^2
  std::vector<Vector> samples;      ///< the per-agent data points
  Vector true_mean;                 ///< the distribution mean mu
};

/// Draws n samples from N(mu, sigma^2 I); each agent holds one.
MeanEstimationInstance make_mean_estimation(const Vector& mu, double sigma, std::size_t n,
                                            std::size_t f, rng::Rng& rng);

/// The honest aggregate's minimum point: the average of the honest samples.
Vector honest_sample_mean(const MeanEstimationInstance& instance,
                          const std::vector<std::size_t>& honest);

}  // namespace redopt::data
