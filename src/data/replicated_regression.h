// Replicated-shard distributed regression: 2f-redundancy by design.
//
// m observation rows ("shards") are assigned to n agents with a cyclic
// replication layout (data/design.h); agent i's cost is the
// least-squares cost over its shard set.  This is the constructive
// "realize 2f-redundancy by design" recipe the paper sketches for
// distributed sensing/learning.  Replication factor r >= 2f + 1 makes
// every admissible agent subset cover all shards (data/design.h),
// which is what keeps the layout redundant *robustly*: with noiseless
// observations any full-rank subset already minimizes at x*, but under
// observation noise subsets that share more shards have closer
// minimizers, so the measured (2f, eps)-redundancy tightens as r grows
// (exactly 0 at full replication).  bench_replication sweeps r and sigma
// to map the trade-off.
#pragma once

#include "core/problem.h"
#include "data/design.h"
#include "linalg/matrix.h"
#include "rng/rng.h"

namespace redopt::data {

using linalg::Matrix;
using linalg::Vector;

/// A replicated regression instance.
struct ReplicatedRegressionInstance {
  core::MultiAgentProblem problem;          ///< agent i holds its shard rows
  ReplicationDesign design;                 ///< the shard layout
  Matrix shard_rows;                        ///< m x d base observation rows
  Vector shard_observations;                ///< m noisy observations
  Vector x_star;                            ///< ground truth
};

/// Builds the instance: @p num_shards unit-norm random rows (full column
/// rank enforced), observations A x* + noise, cyclic layout with the given
/// replication factor.  Requires num_shards >= d and replication <= n.
ReplicatedRegressionInstance make_replicated_regression(std::size_t num_shards, std::size_t d,
                                                        std::size_t n, std::size_t f,
                                                        std::size_t replication,
                                                        double noise_sigma,
                                                        const Vector& x_star, rng::Rng& rng);

/// Least-squares solution over the union of the honest agents' shards
/// (deduplicated: each shard counted once per holding agent, matching the
/// aggregate cost the honest agents actually minimize).
Vector replicated_regression_argmin(const ReplicatedRegressionInstance& instance,
                                    const std::vector<std::size_t>& honest);

}  // namespace redopt::data
