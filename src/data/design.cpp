#include "data/design.h"

#include <algorithm>

#include "util/error.h"
#include "util/subsets.h"

namespace redopt::data {

ReplicationDesign cyclic_replication(std::size_t num_shards, std::size_t num_agents,
                                     std::size_t replication) {
  REDOPT_REQUIRE(num_shards >= 1, "need at least one shard");
  REDOPT_REQUIRE(num_agents >= 1, "need at least one agent");
  REDOPT_REQUIRE(replication >= 1 && replication <= num_agents,
                 "replication factor must lie in [1, n]");

  ReplicationDesign design;
  design.num_agents = num_agents;
  design.replication = replication;
  design.shard_holders.resize(num_shards);
  design.agent_shards.resize(num_agents);
  for (std::size_t j = 0; j < num_shards; ++j) {
    for (std::size_t k = 0; k < replication; ++k) {
      const std::size_t agent = (j + k) % num_agents;
      design.shard_holders[j].push_back(agent);
      design.agent_shards[agent].push_back(j);
    }
    std::sort(design.shard_holders[j].begin(), design.shard_holders[j].end());
  }
  for (auto& shards : design.agent_shards) std::sort(shards.begin(), shards.end());
  return design;
}

bool covers_all_shards(const ReplicationDesign& design, std::size_t f) {
  const std::size_t n = design.num_agents;
  REDOPT_REQUIRE(n > 2 * f, "coverage check requires n > 2f");
  const std::size_t subset_size = n - 2 * f;

  bool covered = true;
  util::for_each_subset(n, subset_size, [&](const std::vector<std::size_t>& agents) {
    // Does this agent subset hold every shard?
    std::vector<bool> in_subset(n, false);
    for (std::size_t a : agents) in_subset[a] = true;
    for (const auto& holders : design.shard_holders) {
      bool shard_covered = false;
      for (std::size_t h : holders) {
        if (in_subset[h]) {
          shard_covered = true;
          break;
        }
      }
      if (!shard_covered) {
        covered = false;
        return false;  // stop enumeration
      }
    }
    return true;
  });
  return covered;
}

std::size_t max_covered_f(const ReplicationDesign& design) {
  std::size_t best = 0;
  for (std::size_t f = 1; 2 * f < design.num_agents; ++f) {
    if (covers_all_shards(design, f)) {
      best = f;
    } else {
      break;  // coverage is monotone: failing at f fails at f + 1
    }
  }
  return best;
}

}  // namespace redopt::data
