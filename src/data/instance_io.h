// Serialization of regression instances to a plain-text format.
//
// Experiments should be reproducible from artifacts, not only from seeds:
// save_regression() writes the observation matrix, observations, ground
// truth and fault budget to a human-readable file; load_regression()
// reconstructs the identical MultiAgentProblem (bit-exact round-trip,
// checked by the tests).  The format is line-oriented:
//
//   redopt-regression v1
//   n <rows> d <cols> f <budget>
//   x_star <d values>
//   row <d values> obs <value>     (n lines)
//
// All numbers are printed with max_digits10 so the round-trip is exact.
#pragma once

#include <string>

#include "data/regression.h"

namespace redopt::data {

/// Serializes @p instance to @p path.
/// Throws redopt::PreconditionError if the file cannot be written.
void save_regression(const RegressionInstance& instance, const std::string& path);

/// Serializes to a string (exposed for tests and embedding).
std::string regression_to_string(const RegressionInstance& instance);

/// Reconstructs an instance from @p path.
/// Throws redopt::PreconditionError on missing file or malformed content.
RegressionInstance load_regression(const std::string& path);

/// Parses the serialized form (inverse of regression_to_string).
RegressionInstance regression_from_string(const std::string& text);

}  // namespace redopt::data
