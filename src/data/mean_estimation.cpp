#include "data/mean_estimation.h"

#include "core/quadratic_cost.h"
#include "util/error.h"

namespace redopt::data {

MeanEstimationInstance make_mean_estimation(const Vector& mu, double sigma, std::size_t n,
                                            std::size_t f, rng::Rng& rng) {
  REDOPT_REQUIRE(!mu.empty(), "mean must have dimension >= 1");
  REDOPT_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
  REDOPT_REQUIRE(n > 2 * f, "mean estimation requires n > 2f");

  MeanEstimationInstance inst;
  inst.true_mean = mu;
  inst.problem.f = f;
  inst.samples.reserve(n);
  inst.problem.costs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector sample = mu;
    for (auto& c : sample) c += rng.gaussian(0.0, sigma);
    inst.problem.costs.push_back(
        std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(sample)));
    inst.samples.push_back(std::move(sample));
  }
  inst.problem.validate();
  return inst;
}

Vector honest_sample_mean(const MeanEstimationInstance& instance,
                          const std::vector<std::size_t>& honest) {
  REDOPT_REQUIRE(!honest.empty(), "honest sample mean over empty set");
  Vector acc(instance.true_mean.size());
  for (std::size_t id : honest) {
    REDOPT_REQUIRE(id < instance.samples.size(), "agent id out of range");
    acc += instance.samples[id];
  }
  return acc / static_cast<double>(honest.size());
}

}  // namespace redopt::data
