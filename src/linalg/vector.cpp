#include "linalg/vector.h"

#include "linalg/kernels.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace redopt::linalg {

namespace {
void require_same_dim(const Vector& a, const Vector& b, const char* op) {
  REDOPT_REQUIRE(a.size() == b.size(),
                 std::string("vector dimension mismatch in ") + op + ": " +
                     std::to_string(a.size()) + " vs " + std::to_string(b.size()));
}
}  // namespace

double& Vector::at(std::size_t i) {
  REDOPT_REQUIRE(i < data_.size(), "vector index out of range");
  return data_[i];
}

double Vector::at(std::size_t i) const {
  REDOPT_REQUIRE(i < data_.size(), "vector index out of range");
  return data_[i];
}

Vector& Vector::operator+=(const Vector& rhs) {
  require_same_dim(*this, rhs, "operator+=");
  kernels::add(data_.data(), rhs.data_.data(), data_.size());
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  require_same_dim(*this, rhs, "operator-=");
  kernels::sub(data_.data(), rhs.data_.data(), data_.size());
  return *this;
}

Vector& Vector::operator*=(double s) {
  kernels::scale(data_.data(), s, data_.size());
  return *this;
}

Vector& Vector::operator/=(double s) {
  REDOPT_REQUIRE(s != 0.0, "division of vector by zero scalar");
  for (auto& x : data_) x /= s;
  return *this;
}

double Vector::norm() const { return std::sqrt(norm_squared()); }

double Vector::norm_squared() const {
  return kernels::norm_squared(data_.data(), data_.size());
}

double Vector::norm_l1() const {
  double acc = 0.0;
  for (double x : data_) acc += std::abs(x);
  return acc;
}

double Vector::norm_inf() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::abs(x));
  return acc;
}

bool Vector::is_zero(double tol) const {
  return std::all_of(data_.begin(), data_.end(),
                     [tol](double x) { return std::abs(x) <= tol; });
}

std::string Vector::to_string(int digits) const {
  std::ostringstream os;
  os.precision(digits);
  os << '(';
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  os << ')';
  return os.str();
}

Vector operator+(Vector lhs, const Vector& rhs) {
  lhs += rhs;
  return lhs;
}

Vector operator-(Vector lhs, const Vector& rhs) {
  lhs -= rhs;
  return lhs;
}

Vector operator-(Vector v) {
  for (auto& x : v) x = -x;
  return v;
}

Vector operator*(Vector v, double s) {
  v *= s;
  return v;
}

Vector operator*(double s, Vector v) {
  v *= s;
  return v;
}

Vector operator/(Vector v, double s) {
  v /= s;
  return v;
}

double dot(const Vector& a, const Vector& b) {
  require_same_dim(a, b, "dot");
  return kernels::dot(a.data().data(), b.data().data(), a.size());
}

double distance(const Vector& a, const Vector& b) {
  return std::sqrt(distance_squared(a, b));
}

double distance_squared(const Vector& a, const Vector& b) {
  require_same_dim(a, b, "distance_squared");
  return kernels::distance_squared(a.data().data(), b.data().data(), a.size());
}

void axpy(Vector& y, double alpha, const Vector& x) {
  require_same_dim(y, x, "axpy");
  kernels::axpy(y.data().data(), alpha, x.data().data(), y.size());
}

Vector cwise_min(const Vector& a, const Vector& b) {
  require_same_dim(a, b, "cwise_min");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::min(a[i], b[i]);
  return out;
}

Vector cwise_max(const Vector& a, const Vector& b) {
  require_same_dim(a, b, "cwise_max");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::max(a[i], b[i]);
  return out;
}

Vector sum(const std::vector<Vector>& vs) {
  REDOPT_REQUIRE(!vs.empty(), "sum of empty vector set");
  Vector acc(vs.front().size());
  for (const auto& v : vs) acc += v;
  return acc;
}

Vector mean(const std::vector<Vector>& vs) {
  Vector acc = sum(vs);
  acc /= static_cast<double>(vs.size());
  return acc;
}

std::ostream& operator<<(std::ostream& os, const Vector& v) { return os << v.to_string(); }

}  // namespace redopt::linalg
