// Dense real vector for the redopt library.
//
// The calibration note for this reproduction says the paper "needs a linear
// algebra lib"; redopt ships its own small dense one rather than depending on
// Eigen/BLAS.  Vector is a value type over double with the usual arithmetic,
// inner products and norms.  All binary operations validate dimensions.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace redopt::linalg {

/// Dense column vector in R^d with value semantics.
class Vector {
 public:
  /// Empty (zero-dimensional) vector.
  Vector() = default;

  /// Zero vector of the given dimension.
  explicit Vector(std::size_t dim) : data_(dim, 0.0) {}

  /// Vector with every coordinate equal to @p fill.
  Vector(std::size_t dim, double fill) : data_(dim, fill) {}

  /// Construction from a braced list: Vector{1.0, 2.0}.
  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Adopts an existing buffer.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked access; throws PreconditionError when out of range.
  double& at(std::size_t i);
  double at(std::size_t i) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  // In-place arithmetic (dimension-checked).
  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);
  Vector& operator/=(double s);

  /// Euclidean (L2) norm.
  double norm() const;
  /// Squared Euclidean norm.
  double norm_squared() const;
  /// L1 norm.
  double norm_l1() const;
  /// L-infinity norm.
  double norm_inf() const;

  /// All-zero vector predicate with absolute tolerance.
  bool is_zero(double tol = 0.0) const;

  /// Human-readable rendering "(a, b, c)" used by examples and benches.
  std::string to_string(int digits = 6) const;

  friend bool operator==(const Vector& a, const Vector& b) { return a.data_ == b.data_; }

 private:
  std::vector<double> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator-(Vector v);  // unary negation
Vector operator*(Vector v, double s);
Vector operator*(double s, Vector v);
Vector operator/(Vector v, double s);

/// Inner product <a, b>.  Dimensions must match.
double dot(const Vector& a, const Vector& b);

/// Euclidean distance ||a - b||.
double distance(const Vector& a, const Vector& b);

/// Squared Euclidean distance ||a - b||^2 (no square root).
double distance_squared(const Vector& a, const Vector& b);

/// y += alpha * x without allocating a temporary.  Dimensions must match.
void axpy(Vector& y, double alpha, const Vector& x);

/// Coordinate-wise minimum / maximum of two vectors.
Vector cwise_min(const Vector& a, const Vector& b);
Vector cwise_max(const Vector& a, const Vector& b);

/// Arithmetic mean of a non-empty set of equally sized vectors.
Vector mean(const std::vector<Vector>& vs);

/// Sum of a non-empty set of equally sized vectors.
Vector sum(const std::vector<Vector>& vs);

std::ostream& operator<<(std::ostream& os, const Vector& v);

}  // namespace redopt::linalg
