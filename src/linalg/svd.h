// Singular value decomposition (one-sided Jacobi) and LU factorization
// with partial pivoting.
//
// The SVD gives scale-independent rank decisions (cross-checking the
// pivoted-QR rank used by the redundancy machinery) and the spectral
// condition number sigma_max / sigma_min — the quantity behind the mu /
// gamma ratio that decides whether an instance sits inside Theorem 4's
// alpha > 0 regime.  LU provides determinants and a second linear-solve
// path used by the test-suite to cross-validate the QR solver.
#pragma once

#include <optional>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace redopt::linalg {

/// Thin SVD A = U diag(sigma) V^T for m x n with m >= n.
struct Svd {
  Matrix u;       ///< m x n, orthonormal columns
  Vector sigma;   ///< n singular values, descending, non-negative
  Matrix v;       ///< n x n orthogonal
};

/// One-sided Jacobi SVD.  Requires rows() >= cols() (transpose first for
/// wide matrices).  Deterministic; accuracy ~1e-12 relative.
Svd svd(const Matrix& a, std::size_t max_sweeps = 60);

/// Numerical rank from singular values: count of sigma_i > rel_tol * sigma_0.
std::size_t svd_rank(const Matrix& a, double rel_tol = 1e-10);

/// Spectral condition number sigma_max / sigma_min; +infinity when
/// numerically singular.
double condition_number(const Matrix& a);

/// LU factorization with partial pivoting: P A = L U.
class LuDecomposition {
 public:
  /// Factorizes the square matrix @p a (copied).
  explicit LuDecomposition(const Matrix& a);

  /// True if no zero pivot was hit (matrix nonsingular to working precision).
  bool invertible(double rel_tol = 1e-12) const;

  /// Solves A x = b.  Throws PreconditionError if singular.
  Vector solve(const Vector& b) const;

  /// det(A) (sign-corrected for row swaps).
  double determinant() const;

  /// A^{-1} (column-by-column solve).  Throws if singular.
  Matrix inverse() const;

 private:
  std::size_t n_;
  Matrix lu_;                       ///< L below diagonal (unit), U on/above
  std::vector<std::size_t> perm_;   ///< row permutation
  int sign_ = 1;                    ///< permutation parity
};

}  // namespace redopt::linalg
