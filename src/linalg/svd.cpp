#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.h"

namespace redopt::linalg {

Svd svd(const Matrix& a, std::size_t max_sweeps) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  REDOPT_REQUIRE(m >= n && n >= 1, "svd requires rows() >= cols() >= 1");

  // One-sided Jacobi: orthogonalize the columns of a working copy W = A V
  // by plane rotations accumulated into V; singular values are the final
  // column norms and U the normalized columns.
  Matrix w = a;
  Matrix v = Matrix::identity(n);

  const double eps = 1e-14;
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t r = 0; r < m; ++r) {
          app += w(r, p) * w(r, p);
          aqq += w(r, q) * w(r, q);
          apq += w(r, p) * w(r, q);
        }
        if (std::abs(apq) <= eps * std::sqrt(app * aqq) || apq == 0.0) continue;
        rotated = true;
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t r = 0; r < m; ++r) {
          const double wp = w(r, p);
          const double wq = w(r, q);
          w(r, p) = c * wp - s * wq;
          w(r, q) = s * wp + c * wq;
        }
        for (std::size_t r = 0; r < n; ++r) {
          const double vp = v(r, p);
          const double vq = v(r, q);
          v(r, p) = c * vp - s * vq;
          v(r, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) break;
  }

  // Column norms are the singular values; sort descending.
  std::vector<double> norms(n);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t r = 0; r < m; ++r) acc += w(r, j) * w(r, j);
    norms[j] = std::sqrt(acc);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return norms[i] > norms[j]; });

  Svd out;
  out.sigma = Vector(n);
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t j = order[k];
    out.sigma[k] = norms[j];
    // Zero singular value: leave the U column zero (not part of the range).
    const double inv = norms[j] > 0.0 ? 1.0 / norms[j] : 0.0;
    for (std::size_t r = 0; r < m; ++r) out.u(r, k) = w(r, j) * inv;
    for (std::size_t r = 0; r < n; ++r) out.v(r, k) = v(r, j);
  }
  return out;
}

std::size_t svd_rank(const Matrix& a, double rel_tol) {
  const bool wide = a.rows() < a.cols();
  const Svd decomposition = svd(wide ? a.transposed() : a);
  const double scale = decomposition.sigma[0];
  if (scale == 0.0) return 0;
  std::size_t rank = 0;
  for (std::size_t k = 0; k < decomposition.sigma.size(); ++k) {
    if (decomposition.sigma[k] > rel_tol * scale) ++rank;
  }
  return rank;
}

double condition_number(const Matrix& a) {
  const bool wide = a.rows() < a.cols();
  const Svd decomposition = svd(wide ? a.transposed() : a);
  const double smax = decomposition.sigma[0];
  const double smin = decomposition.sigma[decomposition.sigma.size() - 1];
  if (smin <= 0.0 || smax / smin > 1e15) return std::numeric_limits<double>::infinity();
  return smax / smin;
}

LuDecomposition::LuDecomposition(const Matrix& a) : n_(a.rows()), lu_(a), perm_(a.rows()) {
  REDOPT_REQUIRE(a.rows() == a.cols() && a.rows() >= 1, "LU requires a square matrix");
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivoting: largest magnitude in column k at/below the diagonal.
    std::size_t pivot = k;
    for (std::size_t r = k + 1; r < n_; ++r) {
      if (std::abs(lu_(r, k)) > std::abs(lu_(pivot, k))) pivot = r;
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n_; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      sign_ = -sign_;
    }
    const double diag = lu_(k, k);
    if (diag == 0.0) continue;  // singular; detected by invertible()
    for (std::size_t r = k + 1; r < n_; ++r) {
      lu_(r, k) /= diag;
      const double factor = lu_(r, k);
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n_; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

bool LuDecomposition::invertible(double rel_tol) const {
  double scale = 0.0;
  for (std::size_t k = 0; k < n_; ++k) scale = std::max(scale, std::abs(lu_(k, k)));
  if (scale == 0.0) return false;
  for (std::size_t k = 0; k < n_; ++k) {
    if (std::abs(lu_(k, k)) <= rel_tol * scale) return false;
  }
  return true;
}

Vector LuDecomposition::solve(const Vector& b) const {
  REDOPT_REQUIRE(b.size() == n_, "LU solve dimension mismatch");
  REDOPT_REQUIRE(invertible(), "LU solve on a singular matrix");
  // Forward substitution with permuted b (L has unit diagonal).
  Vector y(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t k = 0; k < i; ++k) acc -= lu_(i, k) * y[k];
    y[i] = acc;
  }
  // Back substitution.
  Vector x(n_);
  for (std::size_t ii = n_; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = y[i];
    for (std::size_t k = i + 1; k < n_; ++k) acc -= lu_(i, k) * x[k];
    x[i] = acc / lu_(i, i);
  }
  return x;
}

double LuDecomposition::determinant() const {
  double det = static_cast<double>(sign_);
  for (std::size_t k = 0; k < n_; ++k) det *= lu_(k, k);
  return det;
}

Matrix LuDecomposition::inverse() const {
  Matrix inv(n_, n_);
  Vector e(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    e[j] = 1.0;
    const Vector column = solve(e);
    for (std::size_t i = 0; i < n_; ++i) inv(i, j) = column[i];
    e[j] = 0.0;
  }
  return inv;
}

}  // namespace redopt::linalg
