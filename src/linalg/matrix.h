// Dense row-major real matrix.
//
// Sized for the problems in this reproduction (tens to a few hundred rows);
// operations are straightforward O(n^3)/O(n^2) loops with no blocking.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "linalg/vector.h"

namespace redopt::linalg {

/// Dense matrix in R^{m x n}, row-major, value semantics.
class Matrix {
 public:
  /// Empty (0 x 0) matrix.
  Matrix() = default;

  /// Zero matrix of the given shape.
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Matrix with every entry equal to @p fill.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construction from nested braces: Matrix{{1, 2}, {3, 4}}.
  /// All rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// d x d identity.
  static Matrix identity(std::size_t d);

  /// Builds a matrix by stacking the given equally sized row vectors.
  static Matrix from_rows(const std::vector<Vector>& rows);

  /// Diagonal matrix from a vector of diagonal entries.
  static Matrix diagonal(const Vector& diag);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Contiguous row-major storage (rows() * cols() entries).
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Raw pointer to row @p r inside the row-major storage (cols() entries);
  /// the fast path for handing a row to the linalg kernels without copying.
  const double* row_data(std::size_t r) const { return data_.data() + r * cols_; }

  /// Bounds-checked access.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Copy of row @p r as a Vector.
  Vector row(std::size_t r) const;
  /// Copy of column @p c as a Vector.
  Vector col(std::size_t c) const;
  /// Overwrites row @p r (dimension-checked).
  void set_row(std::size_t r, const Vector& v);

  /// Submatrix of the given rows, in the given order.
  Matrix select_rows(const std::vector<std::size_t>& row_indices) const;

  Matrix transposed() const;

  /// A^T A (Gram matrix), symmetric positive semi-definite.
  Matrix gram() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Largest absolute entry.
  double max_abs() const;

  // In-place arithmetic (shape-checked).
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  std::string to_string(int digits = 6) const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix m, double s);
Matrix operator*(double s, Matrix m);

/// Matrix product A * B; requires A.cols() == B.rows().
Matrix matmul(const Matrix& a, const Matrix& b);

/// Matrix-vector product A * x; requires A.cols() == x.size().
Vector matvec(const Matrix& a, const Vector& x);

/// Transposed product A^T * x; requires A.rows() == x.size().
Vector matvec_transposed(const Matrix& a, const Vector& x);

/// Outer product a * b^T.
Matrix outer(const Vector& a, const Vector& b);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace redopt::linalg
