// Matrix decompositions: Cholesky, column-pivoted Householder QR, and a
// cyclic Jacobi eigensolver for symmetric matrices.
//
// These cover everything the reproduction needs: solving normal equations
// (regression argmin), numerical rank (the 2f-redundancy condition is a rank
// condition on row subsets), and extreme eigenvalues of Hessians (the
// smoothness/convexity constants mu and gamma that appear in the theorems).
#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace redopt::linalg {

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Returns std::nullopt if A is not (numerically) positive definite.
std::optional<Matrix> cholesky(const Matrix& a);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// Returns std::nullopt if A is not positive definite.
std::optional<Vector> solve_spd(const Matrix& a, const Vector& b);

/// Column-pivoted Householder QR factorization  A P = Q R.
///
/// Supports any shape m x n.  The factor Q is kept in implicit Householder
/// form; apply_qt() replays it against a vector, which is all the solvers
/// need.  rank() reads the numerical rank off the diagonal of R.
class QrDecomposition {
 public:
  /// Factorizes @p a (copied).  @p pivot enables column pivoting, which is
  /// required for reliable rank revelation.
  explicit QrDecomposition(const Matrix& a, bool pivot = true);

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }

  /// Numerical rank: number of diagonal entries of R exceeding
  /// @p rel_tol * |R(0,0)|.  Uses a scale-relative threshold.
  std::size_t rank(double rel_tol = 1e-10) const;

  /// Computes Q^T b (length m).  Requires b.size() == rows().
  Vector apply_qt(const Vector& b) const;

  /// Minimum-norm-ish least-squares solution of min_x ||A x - b||.
  ///
  /// For full column rank this is the unique least-squares solution.  For
  /// rank-deficient A it returns the basic solution with the pivoted free
  /// variables set to zero.
  Vector solve_least_squares(const Vector& b, double rel_tol = 1e-10) const;

  /// Upper-triangular factor R (m x n, explicit copy).
  Matrix r() const;

  /// Column permutation: column j of A P is column perm()[j] of A.
  const std::vector<std::size_t>& perm() const { return perm_; }

 private:
  std::size_t m_ = 0, n_ = 0;
  Matrix qr_;                       // R in upper triangle, Householder vectors below
  std::vector<double> beta_;        // Householder scalars
  std::vector<std::size_t> perm_;   // column permutation
};

/// Solves a square nonsingular system A x = b via pivoted QR.
/// Throws PreconditionError if A is singular to working precision.
Vector solve(const Matrix& a, const Vector& b);

/// Numerical rank of a general matrix via pivoted QR.
std::size_t rank(const Matrix& a, double rel_tol = 1e-10);

/// Result of a symmetric eigendecomposition A = V diag(w) V^T.
struct SymmetricEigen {
  Vector eigenvalues;  ///< ascending order
  Matrix eigenvectors; ///< column k pairs with eigenvalues[k]
};

/// Cyclic Jacobi eigensolver for a symmetric matrix.
/// Throws PreconditionError if @p a is not square or not symmetric
/// (to tolerance @p sym_tol relative to max |a_ij|).
SymmetricEigen symmetric_eigen(const Matrix& a, double sym_tol = 1e-9);

/// Smallest and largest eigenvalues of a symmetric matrix (convenience).
double min_eigenvalue(const Matrix& a);
double max_eigenvalue(const Matrix& a);

}  // namespace redopt::linalg
