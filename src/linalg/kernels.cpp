#include "linalg/kernels.h"

#include <algorithm>

namespace redopt::linalg::kernels {

bool fast_mode() {
#ifdef REDOPT_FAST_KERNELS
  return true;
#else
  return false;
#endif
}

#ifdef REDOPT_FAST_KERNELS

// Reordered reductions: 4 independent partial sums, folded pairwise at the
// end.  Not bit-identical to the strict loops — gated behind the build
// flag precisely because of that (see kernels.h).
double dot(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += a[i] * b[i];
  return ((s0 + s1) + (s2 + s3)) + tail;
}

double norm_squared(const double* a, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * a[i];
    s1 += a[i + 1] * a[i + 1];
    s2 += a[i + 2] * a[i + 2];
    s3 += a[i + 3] * a[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += a[i] * a[i];
  return ((s0 + s1) + (s2 + s3)) + tail;
}

double distance_squared(const double* a, const double* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    const double d1 = a[i + 1] - b[i + 1];
    const double d2 = a[i + 2] - b[i + 2];
    const double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    tail += d * d;
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

double sum(const double* a, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i];
    s1 += a[i + 1];
    s2 += a[i + 2];
    s3 += a[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += a[i];
  return ((s0 + s1) + (s2 + s3)) + tail;
}

#else  // strict mode (default): single accumulator, ascending index order

double dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double norm_squared(const double* a, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * a[i];
  return acc;
}

double distance_squared(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double sum(const double* a, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i];
  return acc;
}

#endif  // REDOPT_FAST_KERNELS

double dot_strided(const double* a, std::size_t stride_a, const double* b, std::size_t stride_b,
                   std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i * stride_a] * b[i * stride_b];
  return acc;
}

void axpy(double* y, double alpha, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void add(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void sub(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= x[i];
}

void scale(double* y, double alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= alpha;
}

void matvec(const double* a, std::size_t rows, std::size_t cols, const double* x, double* out) {
  for (std::size_t i = 0; i < rows; ++i) out[i] = dot(a + i * cols, x, cols);
}

void matvec_transposed(const double* a, std::size_t rows, std::size_t cols, const double* x,
                       double* out) {
  std::fill(out, out + cols, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    axpy(out, xi, a + i * cols, cols);
  }
}

void gemm_add(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
              std::size_t n) {
  // Block the j (output-column) dimension so a tile of C and the matching
  // tile of each B row stay cache-resident across the k sweep.  For every
  // C(i,j) the k accumulation is still strictly ascending.
  constexpr std::size_t kBlock = 128;
  for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
    const std::size_t j1 = std::min(n, j0 + kBlock);
    for (std::size_t i = 0; i < m; ++i) {
      const double* ai = a + i * k;
      double* ci = c + i * n;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double aik = ai[kk];
        if (aik == 0.0) continue;
        const double* bk = b + kk * n;
        for (std::size_t j = j0; j < j1; ++j) ci[j] += aik * bk[j];
      }
    }
  }
}

}  // namespace redopt::linalg::kernels
