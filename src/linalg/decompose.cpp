#include "linalg/decompose.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace redopt::linalg {

std::optional<Matrix> cholesky(const Matrix& a) {
  REDOPT_REQUIRE(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return std::nullopt;
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / l(j, j);
    }
  }
  return l;
}

std::optional<Vector> solve_spd(const Matrix& a, const Vector& b) {
  REDOPT_REQUIRE(a.rows() == b.size(), "solve_spd dimension mismatch");
  auto l = cholesky(a);
  if (!l) return std::nullopt;
  const std::size_t n = a.rows();
  // Forward substitution L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= (*l)(i, k) * y[k];
    y[i] = acc / (*l)(i, i);
  }
  // Back substitution L^T x = y.
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = y[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= (*l)(k, i) * x[k];
    x[i] = acc / (*l)(i, i);
  }
  return x;
}

QrDecomposition::QrDecomposition(const Matrix& a, bool pivot)
    : m_(a.rows()), n_(a.cols()), qr_(a), beta_(std::min(a.rows(), a.cols()), 0.0), perm_(a.cols()) {
  REDOPT_REQUIRE(m_ > 0 && n_ > 0, "QR of an empty matrix");
  for (std::size_t j = 0; j < n_; ++j) perm_[j] = j;

  // Squared norms of the trailing part of each column, for pivot selection.
  std::vector<double> colnorm(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j)
    for (std::size_t i = 0; i < m_; ++i) colnorm[j] += qr_(i, j) * qr_(i, j);

  const std::size_t steps = std::min(m_, n_);
  for (std::size_t k = 0; k < steps; ++k) {
    if (pivot) {
      std::size_t best = k;
      for (std::size_t j = k + 1; j < n_; ++j)
        if (colnorm[j] > colnorm[best]) best = j;
      if (best != k) {
        for (std::size_t i = 0; i < m_; ++i) std::swap(qr_(i, k), qr_(i, best));
        std::swap(colnorm[k], colnorm[best]);
        std::swap(perm_[k], perm_[best]);
      }
    }

    // Householder vector for column k, rows k..m-1.
    double normx = 0.0;
    for (std::size_t i = k; i < m_; ++i) normx += qr_(i, k) * qr_(i, k);
    normx = std::sqrt(normx);
    if (normx == 0.0) {
      beta_[k] = 0.0;
      continue;  // column already zero below the diagonal
    }
    const double alpha = qr_(k, k) >= 0.0 ? -normx : normx;
    const double v0 = qr_(k, k) - alpha;
    qr_(k, k) = alpha;  // R diagonal entry
    // Store v (scaled so v[0] = 1) below the diagonal.
    for (std::size_t i = k + 1; i < m_; ++i) qr_(i, k) /= v0;
    beta_[k] = -v0 / alpha;  // = 2 / (v^T v) with the v[0] = 1 scaling

    // Apply the reflector to the trailing columns.
    for (std::size_t j = k + 1; j < n_; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < m_; ++i) s += qr_(i, k) * qr_(i, j);
      s *= beta_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < m_; ++i) qr_(i, j) -= s * qr_(i, k);
      // Downdate the trailing column norm for pivoting.
      colnorm[j] -= qr_(k, j) * qr_(k, j);
      if (colnorm[j] < 0.0) colnorm[j] = 0.0;
    }
    colnorm[k] = 0.0;
  }
}

std::size_t QrDecomposition::rank(double rel_tol) const {
  const std::size_t steps = std::min(m_, n_);
  const double scale = std::abs(qr_(0, 0));
  if (scale == 0.0) return 0;
  std::size_t r = 0;
  for (std::size_t k = 0; k < steps; ++k) {
    if (std::abs(qr_(k, k)) > rel_tol * scale) ++r;
  }
  return r;
}

Vector QrDecomposition::apply_qt(const Vector& b) const {
  REDOPT_REQUIRE(b.size() == m_, "apply_qt dimension mismatch");
  Vector y = b;
  const std::size_t steps = std::min(m_, n_);
  for (std::size_t k = 0; k < steps; ++k) {
    if (beta_[k] == 0.0) continue;
    double s = y[k];
    for (std::size_t i = k + 1; i < m_; ++i) s += qr_(i, k) * y[i];
    s *= beta_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < m_; ++i) y[i] -= s * qr_(i, k);
  }
  return y;
}

Vector QrDecomposition::solve_least_squares(const Vector& b, double rel_tol) const {
  const std::size_t r = rank(rel_tol);
  Vector y = apply_qt(b);
  // Back substitution on the leading r x r block of R.
  Vector z(n_);  // permuted solution, free variables zero
  for (std::size_t ii = r; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = y[i];
    for (std::size_t k = i + 1; k < r; ++k) acc -= qr_(i, k) * z[k];
    z[i] = acc / qr_(i, i);
  }
  // Undo the column permutation.
  Vector x(n_);
  for (std::size_t j = 0; j < n_; ++j) x[perm_[j]] = z[j];
  return x;
}

Matrix QrDecomposition::r() const {
  Matrix out(m_, n_);
  for (std::size_t i = 0; i < std::min(m_, n_); ++i)
    for (std::size_t j = i; j < n_; ++j) out(i, j) = qr_(i, j);
  return out;
}

Vector solve(const Matrix& a, const Vector& b) {
  REDOPT_REQUIRE(a.rows() == a.cols(), "solve requires a square matrix");
  REDOPT_REQUIRE(a.rows() == b.size(), "solve dimension mismatch");
  QrDecomposition qr(a);
  REDOPT_REQUIRE(qr.rank() == a.cols(), "solve: matrix is singular to working precision");
  return qr.solve_least_squares(b);
}

std::size_t rank(const Matrix& a, double rel_tol) {
  if (a.empty()) return 0;
  return QrDecomposition(a).rank(rel_tol);
}

SymmetricEigen symmetric_eigen(const Matrix& a, double sym_tol) {
  REDOPT_REQUIRE(a.rows() == a.cols(), "symmetric_eigen requires a square matrix");
  const std::size_t n = a.rows();
  const double scale = std::max(a.max_abs(), 1e-300);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      REDOPT_REQUIRE(std::abs(a(i, j) - a(j, i)) <= sym_tol * scale,
                     "symmetric_eigen requires a symmetric matrix");

  Matrix d = a;
  Matrix v = Matrix::identity(n);

  auto off_norm = [&]() {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) acc += d(i, j) * d(i, j);
    return std::sqrt(2.0 * acc);
  };

  const int max_sweeps = 100;
  const double tol = 1e-14 * scale * static_cast<double>(n);
  for (int sweep = 0; sweep < max_sweeps && off_norm() > tol; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation J(p, q, theta)^T D J(p, q, theta).
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue, permuting eigenvector columns along.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d(i, i) < d(j, j); });

  SymmetricEigen out;
  out.eigenvalues = Vector(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.eigenvalues[k] = d(order[k], order[k]);
    for (std::size_t i = 0; i < n; ++i) out.eigenvectors(i, k) = v(i, order[k]);
  }
  return out;
}

double min_eigenvalue(const Matrix& a) { return symmetric_eigen(a).eigenvalues[0]; }

double max_eigenvalue(const Matrix& a) {
  const auto eig = symmetric_eigen(a);
  return eig.eigenvalues[eig.eigenvalues.size() - 1];
}

}  // namespace redopt::linalg
