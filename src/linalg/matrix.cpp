#include "linalg/matrix.h"

#include "linalg/kernels.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace redopt::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    REDOPT_REQUIRE(row.size() == cols_, "all matrix rows must have equal length");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t d) {
  Matrix m(d, d);
  for (std::size_t i = 0; i < d; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  REDOPT_REQUIRE(!rows.empty(), "from_rows requires at least one row");
  const std::size_t cols = rows.front().size();
  Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    REDOPT_REQUIRE(rows[r].size() == cols, "all rows must have equal length");
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  REDOPT_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  REDOPT_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

Vector Matrix::row(std::size_t r) const {
  REDOPT_REQUIRE(r < rows_, "row index out of range");
  Vector v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::col(std::size_t c) const {
  REDOPT_REQUIRE(c < cols_, "column index out of range");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  REDOPT_REQUIRE(r < rows_, "row index out of range");
  REDOPT_REQUIRE(v.size() == cols_, "row dimension mismatch");
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& row_indices) const {
  Matrix m(row_indices.size(), cols_);
  for (std::size_t r = 0; r < row_indices.size(); ++r) {
    REDOPT_REQUIRE(row_indices[r] < rows_, "selected row index out of range");
    for (std::size_t c = 0; c < cols_; ++c) m(r, c) = (*this)(row_indices[r], c);
  }
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) acc += (*this)(r, i) * (*this)(r, j);
      g(i, j) = acc;
      g(j, i) = acc;
    }
  }
  return g;
}

double Matrix::frobenius_norm() const {
  return std::sqrt(kernels::norm_squared(data_.data(), data_.size()));
}

double Matrix::max_abs() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::abs(x));
  return acc;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  REDOPT_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix shape mismatch in +=");
  kernels::add(data_.data(), rhs.data_.data(), data_.size());
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  REDOPT_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix shape mismatch in -=");
  kernels::sub(data_.data(), rhs.data_.data(), data_.size());
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  kernels::scale(data_.data(), s, data_.size());
  return *this;
}

std::string Matrix::to_string(int digits) const {
  std::ostringstream os;
  os.precision(digits);
  os << '[';
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r > 0) os << "; ";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
  }
  os << ']';
  return os.str();
}

Matrix operator+(Matrix lhs, const Matrix& rhs) {
  lhs += rhs;
  return lhs;
}

Matrix operator-(Matrix lhs, const Matrix& rhs) {
  lhs -= rhs;
  return lhs;
}

Matrix operator*(Matrix m, double s) {
  m *= s;
  return m;
}

Matrix operator*(double s, Matrix m) {
  m *= s;
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  REDOPT_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix out(a.rows(), b.cols());
  kernels::gemm_add(a.data().data(), b.data().data(), out.data().data(), a.rows(), a.cols(),
                    b.cols());
  return out;
}

Vector matvec(const Matrix& a, const Vector& x) {
  REDOPT_REQUIRE(a.cols() == x.size(), "matvec shape mismatch");
  Vector out(a.rows());
  kernels::matvec(a.data().data(), a.rows(), a.cols(), x.data().data(), out.data().data());
  return out;
}

Vector matvec_transposed(const Matrix& a, const Vector& x) {
  REDOPT_REQUIRE(a.rows() == x.size(), "matvec_transposed shape mismatch");
  Vector out(a.cols());
  kernels::matvec_transposed(a.data().data(), a.rows(), a.cols(), x.data().data(),
                             out.data().data());
  return out;
}

Matrix outer(const Vector& a, const Vector& b) {
  Matrix out(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) out(i, j) = a[i] * b[j];
  return out;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) { return os << m.to_string(); }

}  // namespace redopt::linalg
