// Low-level dense kernels shared by Vector/Matrix and the hot paths.
//
// Every higher-level operation (dot, norms, axpy, matvec, gemm) funnels
// through these raw-pointer loops so the hot paths have exactly one place
// where floating-point evaluation order is decided.  The determinism
// contract (docs/PERFORMANCE.md, "Determinism vs. speed"):
//
//   * Default build: every reduction accumulates in ascending index order
//     with a single accumulator — bit-identical to the naive reference
//     loops the library used before the kernels existed, so golden traces
//     and the cross-thread-count manifests are unchanged.
//   * -DREDOPT_FAST_KERNELS=ON: dot / norm_squared / distance_squared
//     switch to 4-lane partial sums (vectorizable, ~2-4x on wide vectors).
//     This CHANGES the summation order, and therefore last-ulp results —
//     golden traces must be regenerated (scripts/update_golden.sh) and the
//     flag is never used for results that feed committed goldens.
//
// Element-wise kernels (axpy, add, sub, scale) have no reduction, so they
// are bit-identical in both modes and free to vectorize.
#pragma once

#include <cstddef>

namespace redopt::linalg::kernels {

/// True when the library was compiled with -DREDOPT_FAST_KERNELS=ON
/// (reordered multi-accumulator reductions).
bool fast_mode();

/// <a, b> over n entries.
double dot(const double* a, const double* b, std::size_t n);

/// sum a_i^2.
double norm_squared(const double* a, std::size_t n);

/// sum (a_i - b_i)^2.
double distance_squared(const double* a, const double* b, std::size_t n);

/// y += alpha * x (element-wise; order-independent, always vectorizable).
void axpy(double* y, double alpha, const double* x, std::size_t n);

/// y += x.
void add(double* y, const double* x, std::size_t n);

/// y -= x.
void sub(double* y, const double* x, std::size_t n);

/// y *= alpha.
void scale(double* y, double alpha, std::size_t n);

/// out = A x for row-major A (rows x cols): one strict-order dot per row.
void matvec(const double* a, std::size_t rows, std::size_t cols, const double* x, double* out);

/// out = A^T x for row-major A (rows x cols).  Accumulates row-by-row in
/// ascending row order (out[j] += a(i,j) * x[i]); rows whose x[i] is
/// exactly 0.0 are skipped, matching the historical sparse-friendly loop
/// bit for bit (adding a 0.0 product could flip a -0.0 sign).  @p out is
/// zero-initialised by the kernel.
void matvec_transposed(const double* a, std::size_t rows, std::size_t cols, const double* x,
                       double* out);

/// C += A B ("gemm-lite"): row-major A (m x k), B (k x n), C (m x n).
/// Blocked over the output for cache locality; the accumulation over k
/// stays in ascending order for every C(i,j), and rows of A with an
/// exactly-zero entry skip that term, so the result is bit-identical to
/// the naive triple loop (and to linalg::matmul).  @p c is NOT cleared —
/// callers wanting C = A B must zero it first.
void gemm_add(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
              std::size_t n);

/// sum a_i over n contiguous entries.  Strict mode: single accumulator in
/// ascending index order; fast mode: 4-lane partial sums (same reordering
/// contract as dot / norm_squared).
double sum(const double* a, std::size_t n);

/// <a, b> over n entries read with the given strides (a[i * stride_a],
/// b[i * stride_b]).  Always a single accumulator in ascending i order —
/// strided access does not vectorize profitably, so there is no fast-mode
/// variant and the result is bit-identical in both builds.  The column-dot
/// inside Gram-matrix assembly is the canonical caller.
double dot_strided(const double* a, std::size_t stride_a, const double* b, std::size_t stride_b,
                   std::size_t n);

/// Streamed reduction with pinned evaluation order, for accumulations
/// whose terms arrive one call at a time (per-agent cost values, per-shell
/// probe statistics) rather than as a contiguous array.  add() folds each
/// term into a single accumulator in call order in BOTH build modes: a
/// streaming sum cannot be reordered without buffering, so Sum is the one
/// kernel whose result never depends on REDOPT_FAST_KERNELS.  Every
/// floating-point accumulation loop outside this layer should either call
/// sum()/dot() on a staged buffer or fold through a Sum — that is what
/// keeps the FP-order authority in one place (redopt-analyze rule B1).
class Sum {
 public:
  /// Folds @p term into the running total (strict call order).
  void add(double term) { total_ += term; }
  /// The running total; identity (0.0) when nothing was added.
  double value() const { return total_; }

 private:
  double total_ = 0.0;
};

}  // namespace redopt::linalg::kernels
