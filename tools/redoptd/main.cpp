// redoptd: multi-tenant serving daemon for concurrent training jobs.
//
// One binary covers both sides of the wire.  Daemon side:
//
//   redoptd --serve --socket /tmp/redoptd.sock --state-dir /tmp/redoptd
//
// binds the Unix-domain socket, adopts any checkpoints left in the
// state directory (crash recovery — see docs/SERVING.md), and loops:
// accept one client request, run one scheduler slice, checkpoint.
// Admission control and budgets come from the scheduler flags below.
//
// Client side (each sends one framed JSON request and prints the JSON
// response):
//
//   redoptd --submit job.json --socket /tmp/redoptd.sock
//   redoptd --status JOB      --socket /tmp/redoptd.sock
//   redoptd --result JOB      --socket /tmp/redoptd.sock
//   redoptd --list            --socket /tmp/redoptd.sock
//   redoptd --shutdown        --socket /tmp/redoptd.sock
//
// And a generator for sample submissions (deterministic in --seed):
//
//   redoptd --generate 3 --seed 7
//
// Exit status: 0 on success ("ok":true responses), 1 when the daemon
// answered {"ok":false,...}, 2 on usage or I/O errors — so the binary
// slots into scripts/check_serving.sh and CI directly.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "chaos/generator.h"
#include "runtime/runtime.h"
#include "serving/client.h"
#include "serving/daemon.h"
#include "serving/job.h"
#include "telemetry/events.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/json.h"

namespace {

using namespace redopt;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  REDOPT_REQUIRE(in.good(), "cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  REDOPT_REQUIRE(in.good() || in.eof(), "failed reading file: " + path);
  return buffer.str();
}

/// Prints the daemon's JSON response; the process exit code mirrors its
/// "ok" member so shell scripts can branch without a JSON parser.
int finish(const std::string& response_json) {
  std::cout << response_json << "\n";
  const util::JsonValue doc = util::json_parse(response_json);
  return doc.at("ok").as_bool() ? 0 : 1;
}

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv,
                      {"serve", "socket", "state-dir", "max-jobs", "max-rounds", "max-dimension",
                       "slice-rounds", "trace-out", "threads", "submit", "status", "result",
                       "list", "shutdown", "generate", "seed", "help"});
  if (cli.get_bool("help", false)) {
    std::cout << "usage: redoptd --serve --socket PATH --state-dir DIR [--max-jobs N]\n"
              << "               [--max-rounds N] [--max-dimension N] [--slice-rounds N]\n"
              << "               [--trace-out FILE] [--threads N]\n"
              << "       redoptd --submit FILE --socket PATH   # FILE holds a job spec\n"
              << "       redoptd --status JOB --socket PATH\n"
              << "       redoptd --result JOB --socket PATH\n"
              << "       redoptd --list --socket PATH\n"
              << "       redoptd --shutdown --socket PATH\n"
              << "       redoptd --generate K [--seed S]       # print K sample job specs\n";
    return 0;
  }
  const std::int64_t threads = cli.get_int_env("threads", "REDOPT_THREADS", 0);
  if (threads > 0) runtime::set_threads(static_cast<std::size_t>(threads));

  const std::int64_t generate = cli.get_int("generate", 0);
  if (generate > 0) {
    chaos::GeneratorSpec generator_spec;
    chaos::Generator generator(generator_spec,
                               static_cast<std::uint64_t>(cli.get_int("seed", 1)));
    for (std::int64_t k = 0; k < generate; ++k) {
      serving::JobSpec spec;
      spec.job_id = "job-" + std::to_string(k);
      spec.scenario = generator.next();
      spec.validate();
      std::cout << spec.to_json() << "\n";
    }
    return 0;
  }

  const std::string socket_path = cli.get_string("socket", "");
  REDOPT_REQUIRE(!socket_path.empty(),
                 "pass --socket PATH (and --serve, --submit, ... — see --help)");

  if (cli.get_bool("serve", false)) {
    serving::DaemonOptions options;
    options.socket_path = socket_path;
    options.state_dir = cli.get_string("state-dir", "");
    REDOPT_REQUIRE(!options.state_dir.empty(), "serve: pass --state-dir DIR");
    options.scheduler.max_jobs = static_cast<std::size_t>(cli.get_int("max-jobs", 8));
    options.scheduler.max_rounds_per_job =
        static_cast<std::size_t>(cli.get_int("max-rounds", 100000));
    options.scheduler.max_dimension =
        static_cast<std::size_t>(cli.get_int("max-dimension", 4096));
    options.scheduler.slice_rounds = static_cast<std::size_t>(cli.get_int("slice-rounds", 16));
    options.trace_out = cli.get_string("trace-out", "");
    if (!options.trace_out.empty()) telemetry::set_enabled(true);

    serving::Daemon daemon(std::move(options));
    const std::size_t resumed = daemon.recover();
    // One status line before the loop so launch scripts can wait on it.
    std::cout << "redoptd: serving on " << socket_path << " (resumed " << resumed << " jobs)"
              << std::endl;
    daemon.serve();
    return 0;
  }

  serving::Client client(socket_path);
  if (const auto path = cli.get("submit")) {
    return finish(client.submit(serving::job_spec_from_json(read_file(*path))));
  }
  if (const auto job_id = cli.get("status")) return finish(client.status(*job_id));
  if (const auto job_id = cli.get("result")) return finish(client.result(*job_id));
  if (cli.get_bool("list", false)) return finish(client.list());
  if (cli.get_bool("shutdown", false)) {
    client.shutdown_daemon();
    std::cout << "{\"ok\":true,\"shutting_down\":true}\n";
    return 0;
  }
  REDOPT_REQUIRE(false, "pick a mode: --serve, --submit, --status, --result, --list, "
                        "--shutdown, or --generate (see --help)");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "redoptd: " << e.what() << "\n";
    return 2;
  }
}
