// redopt-trace: validate and summarize the Chrome trace-event files that
// chaos-replay --trace-out (and session_trace_json) produce.
//
//   redopt-trace --validate trace.json          # structural check + summary
//   redopt-trace --validate trace.json --json   # machine-readable summary
//   redopt-trace --stable trace.json            # print the stable projection
//
// --validate parses the file with the strict util::json_parse and checks
// the trace-event contract the exporter promises: a top-level object with
// a traceEvents array, every event an object carrying ph/pid/tid/name,
// complete events ("X") with numeric ts + dur, instants ("i") with ts and
// scope, metadata ("M") naming its process.  CI points Perfetto-bound
// artifacts through this gate so a malformed export fails the build, not
// the person who loads the trace.
//
// --stable prints telemetry::stable_json_projection of the file — the
// byte-comparable form with wall-clock members stripped and
// timing-dependent records dropped — for determinism diffs in scripts.
//
// Exit status: 0 valid, 1 contract violation, 2 I/O or parse error.
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "telemetry/ship.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/json.h"

namespace {

using namespace redopt;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  REDOPT_REQUIRE(in.good(), "cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct TraceSummary {
  std::size_t events = 0;
  std::size_t metadata = 0;
  std::size_t spans = 0;
  std::size_t instants = 0;
  std::set<std::int64_t> pids;
  std::vector<std::string> violations;
};

void check(TraceSummary& summary, bool condition, std::size_t index, const std::string& what) {
  if (condition) return;
  if (summary.violations.size() < 10) {
    summary.violations.push_back("event " + std::to_string(index) + ": " + what);
  }
}

bool is_number(const util::JsonValue* v) {
  return v != nullptr && v->kind == util::JsonValue::Kind::kNumber;
}

bool is_string(const util::JsonValue* v) {
  return v != nullptr && v->kind == util::JsonValue::Kind::kString;
}

TraceSummary summarize(const util::JsonValue& doc) {
  TraceSummary summary;
  REDOPT_REQUIRE(doc.kind == util::JsonValue::Kind::kObject,
                 "trace: top level must be an object");
  const util::JsonValue* events = doc.find("traceEvents");
  REDOPT_REQUIRE(events != nullptr && events->kind == util::JsonValue::Kind::kArray,
                 "trace: missing traceEvents array");
  summary.events = events->items.size();
  for (std::size_t i = 0; i < events->items.size(); ++i) {
    const util::JsonValue& event = events->items[i];
    if (event.kind != util::JsonValue::Kind::kObject) {
      check(summary, false, i, "not an object");
      continue;
    }
    const util::JsonValue* ph = event.find("ph");
    if (!is_string(ph)) {
      check(summary, false, i, "missing ph");
      continue;
    }
    check(summary, is_number(event.find("pid")), i, "missing pid");
    check(summary, is_number(event.find("tid")), i, "missing tid");
    check(summary, is_string(event.find("name")), i, "missing name");
    if (const util::JsonValue* pid = event.find("pid"); is_number(pid)) {
      summary.pids.insert(static_cast<std::int64_t>(pid->number));
    }
    const std::string& kind = ph->string;
    if (kind == "M") {
      ++summary.metadata;
      check(summary, event.find("args") != nullptr, i, "metadata without args");
    } else if (kind == "X") {
      ++summary.spans;
      check(summary, is_number(event.find("ts")), i, "complete event without ts");
      check(summary, is_number(event.find("dur")), i, "complete event without dur");
    } else if (kind == "i") {
      ++summary.instants;
      check(summary, is_number(event.find("ts")), i, "instant without ts");
      check(summary, is_string(event.find("s")), i, "instant without scope");
    } else {
      check(summary, false, i, "unknown ph '" + kind + "'");
    }
  }
  return summary;
}

int validate(const std::string& path, bool as_json) {
  const TraceSummary summary = summarize(util::json_parse(read_file(path)));
  const bool ok = summary.violations.empty();
  if (as_json) {
    std::cout << "{\"ok\":" << (ok ? "true" : "false") << ",\"events\":" << summary.events
              << ",\"metadata\":" << summary.metadata << ",\"spans\":" << summary.spans
              << ",\"instants\":" << summary.instants << ",\"processes\":" << summary.pids.size()
              << ",\"violations\":[";
    for (std::size_t i = 0; i < summary.violations.size(); ++i) {
      if (i > 0) std::cout << ",";
      std::cout << "\"" << util::json_escape(summary.violations[i]) << "\"";
    }
    std::cout << "]}\n";
  } else {
    std::cout << "trace: " << summary.events << " events (" << summary.metadata << " metadata, "
              << summary.spans << " spans, " << summary.instants << " instants) across "
              << summary.pids.size() << " processes\n";
    for (const std::string& violation : summary.violations) {
      std::cout << "violation: " << violation << "\n";
    }
    std::cout << (ok ? "ok" : "INVALID") << "\n";
  }
  return ok ? 0 : 1;
}

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"validate", "stable", "json", "help"});
  if (cli.get_bool("help", false)) {
    std::cout << "usage: redopt-trace --validate FILE [--json]\n"
              << "       redopt-trace --stable FILE\n";
    return 0;
  }
  const std::string stable = cli.get_string("stable", "");
  if (!stable.empty()) {
    std::cout << telemetry::stable_json_projection(read_file(stable)) << "\n";
    return 0;
  }
  const std::string path = cli.get_string("validate", "");
  REDOPT_REQUIRE(!path.empty(), "pass --validate FILE or --stable FILE (see --help)");
  return validate(path, cli.get_bool("json", false));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "redopt-trace: " << e.what() << "\n";
    return 2;
  }
}
