// perf-report: compares two BENCH_*.json files (JSON-lines emitted by the
// perf bench binaries and gathered by scripts/collect_bench.sh) and prints
// a per-benchmark speedup table.
//
//   perf-report BASELINE.json CANDIDATE.json [--tolerance 0.10]
//               [--require bench_filter_perf=2.0,bench_exact_perf=1.5]
//
// Entries are matched by (bench, name); speedup = baseline_ns /
// candidate_ns on real time, so > 1 means the candidate got faster.  The
// report ends with two aggregates per bench binary:
//   geomean    — the average per-entry speedup (every entry weighs the
//                same, however fast it is)
//   wall-clock — sum(baseline real_ns) / sum(candidate real_ns), i.e. how
//                much faster one pass over the whole bench runs; big
//                entries dominate, exactly as they dominate real runtime
//
// Exit status (what scripts/check_perf.sh and the CI perf-smoke job key
// on):
//   0  no entry regressed beyond --tolerance and every --require held
//   1  at least one regression beyond tolerance, or a --require unmet
//   2  usage / unreadable / unparseable input
//
// --tolerance is a fraction: 0.10 tolerates entries up to 10% slower than
// baseline before they count as regressions.  --require asserts a minimum
// wall-clock speedup per bench binary (the PR acceptance gates are
// phrased as wall-clock factors).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"

namespace {

struct Entry {
  std::string bench;  // binary name, e.g. "bench_filter_perf"
  std::string name;   // benchmark entry, e.g. "filter/cge/32/10"
  double real_ns = 0.0;
};

// Reads one BENCH_*.json file: one JSON object per non-empty line, with
// optional "BENCH_JSON " prefixes tolerated so raw logs work too.
std::vector<Entry> load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "perf-report: cannot read " << path << "\n";
    std::exit(2);
  }
  std::vector<Entry> entries;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.rfind("BENCH_JSON ", 0) == 0) line = line.substr(11);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      const redopt::util::JsonValue doc = redopt::util::json_parse(line);
      Entry e;
      e.bench = doc.at("bench").as_string();
      e.name = doc.at("name").as_string();
      e.real_ns = doc.at("real_ns").as_number();
      entries.push_back(std::move(e));
    } catch (const std::exception& err) {
      std::cerr << "perf-report: " << path << ":" << line_no << ": " << err.what() << "\n";
      std::exit(2);
    }
  }
  return entries;
}

std::string format_ns(double ns) {
  char buf[64];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ns", ns);
  }
  return buf;
}

struct Requirement {
  std::string bench;
  double min_speedup = 1.0;
};

// Parses "benchA=2.0,benchB=1.5".
std::vector<Requirement> parse_requirements(const std::string& spec) {
  std::vector<Requirement> reqs;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::cerr << "perf-report: bad --require item '" << item << "' (want bench=factor)\n";
      std::exit(2);
    }
    Requirement r;
    r.bench = item.substr(0, eq);
    try {
      r.min_speedup = std::stod(item.substr(eq + 1));
    } catch (...) {
      std::cerr << "perf-report: bad --require factor in '" << item << "'\n";
      std::exit(2);
    }
    reqs.push_back(std::move(r));
  }
  return reqs;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double tolerance = 0.10;
  std::string require_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (i + 1 >= argc) {
        std::cerr << "perf-report: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tolerance" || arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::stod(value_of("--tolerance"));
    } else if (arg == "--require" || arg.rfind("--require=", 0) == 0) {
      require_spec = value_of("--require");
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: perf-report BASELINE.json CANDIDATE.json"
                   " [--tolerance FRAC] [--require bench=factor,...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "perf-report: unknown flag " << arg << "\n";
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::cerr << "usage: perf-report BASELINE.json CANDIDATE.json"
                 " [--tolerance FRAC] [--require bench=factor,...]\n";
    return 2;
  }
  const std::vector<Requirement> requirements = parse_requirements(require_spec);

  const std::vector<Entry> baseline = load(positional[0]);
  const std::vector<Entry> candidate = load(positional[1]);

  // Last record wins when a file accumulated several runs of one entry.
  std::map<std::pair<std::string, std::string>, double> base_ns;
  for (const Entry& e : baseline) base_ns[{e.bench, e.name}] = e.real_ns;

  struct Row {
    Entry entry;
    double baseline_ns = 0.0;
    double speedup = 0.0;
  };
  std::vector<Row> rows;
  std::map<std::pair<std::string, std::string>, double> seen;
  for (const Entry& e : candidate) seen[{e.bench, e.name}] = e.real_ns;
  std::size_t unmatched_candidate = 0;
  for (const auto& [key, cand_ns] : seen) {
    const auto it = base_ns.find(key);
    if (it == base_ns.end()) {
      ++unmatched_candidate;
      continue;
    }
    Row row;
    row.entry.bench = key.first;
    row.entry.name = key.second;
    row.entry.real_ns = cand_ns;
    row.baseline_ns = it->second;
    row.speedup = cand_ns > 0.0 ? it->second / cand_ns : 0.0;
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    std::cerr << "perf-report: no common (bench, name) entries between the two files\n";
    return 2;
  }

  std::size_t width = 0;
  for (const Row& r : rows) width = std::max(width, r.entry.name.size());

  std::string current_bench;
  std::map<std::string, std::pair<double, std::size_t>> log_speedups;  // bench -> (sum log, n)
  std::map<std::string, std::pair<double, double>> totals;  // bench -> (sum base ns, sum cand ns)
  std::vector<Row> regressions;
  for (const Row& r : rows) {
    if (r.entry.bench != current_bench) {
      current_bench = r.entry.bench;
      std::printf("\n%s  (speedup = baseline / candidate, >1 is faster)\n",
                  current_bench.c_str());
      std::printf("  %-*s  %12s  %12s  %8s\n", static_cast<int>(width), "name", "baseline",
                  "candidate", "speedup");
    }
    const bool regressed = r.speedup < 1.0 - tolerance;
    if (regressed) regressions.push_back(r);
    std::printf("  %-*s  %12s  %12s  %7.2fx%s\n", static_cast<int>(width), r.entry.name.c_str(),
                format_ns(r.baseline_ns).c_str(), format_ns(r.entry.real_ns).c_str(), r.speedup,
                regressed ? "  <-- REGRESSION" : "");
    auto& [sum_log, n] = log_speedups[r.entry.bench];
    sum_log += std::log(r.speedup > 0.0 ? r.speedup : 1e-12);
    ++n;
    auto& [base_sum, cand_sum] = totals[r.entry.bench];
    base_sum += r.baseline_ns;
    cand_sum += r.entry.real_ns;
  }

  std::printf("\nsummary  (wall-clock = sum of baseline times / sum of candidate times)\n");
  double total_log = 0.0;
  std::size_t total_n = 0;
  double grand_base = 0.0;
  double grand_cand = 0.0;
  std::map<std::string, double> wall_speedups;
  for (const auto& [bench, acc] : log_speedups) {
    const double geomean = std::exp(acc.first / static_cast<double>(acc.second));
    const auto& [base_sum, cand_sum] = totals[bench];
    const double wall = cand_sum > 0.0 ? base_sum / cand_sum : 0.0;
    wall_speedups[bench] = wall;
    std::printf("  %-24s  %3zu entr%s  geomean %6.2fx  wall-clock %6.2fx  (%s -> %s)\n",
                bench.c_str(), acc.second, acc.second == 1 ? "y " : "ies", geomean, wall,
                format_ns(base_sum).c_str(), format_ns(cand_sum).c_str());
    total_log += acc.first;
    total_n += acc.second;
    grand_base += base_sum;
    grand_cand += cand_sum;
  }
  std::printf("  %-24s  %3zu entries  geomean %6.2fx  wall-clock %6.2fx  (%s -> %s)\n", "overall",
              total_n, std::exp(total_log / static_cast<double>(total_n)),
              grand_cand > 0.0 ? grand_base / grand_cand : 0.0, format_ns(grand_base).c_str(),
              format_ns(grand_cand).c_str());
  if (unmatched_candidate > 0) {
    std::printf("  (%zu candidate entr%s had no baseline counterpart and were skipped)\n",
                unmatched_candidate, unmatched_candidate == 1 ? "y" : "ies");
  }

  int status = 0;
  if (!regressions.empty()) {
    std::printf("\n%zu regression(s) beyond tolerance %.0f%%:\n", regressions.size(),
                tolerance * 100.0);
    for (const Row& r : regressions) {
      std::printf("  %s %s: %.2fx\n", r.entry.bench.c_str(), r.entry.name.c_str(), r.speedup);
    }
    status = 1;
  }
  for (const Requirement& req : requirements) {
    const auto it = wall_speedups.find(req.bench);
    if (it == wall_speedups.end()) {
      std::printf("\nrequirement FAILED: no entries for %s\n", req.bench.c_str());
      status = 1;
    } else if (it->second < req.min_speedup) {
      std::printf("\nrequirement FAILED: %s wall-clock speedup %.2fx < required %.2fx\n",
                  req.bench.c_str(), it->second, req.min_speedup);
      status = 1;
    } else {
      std::printf("\nrequirement met: %s wall-clock speedup %.2fx >= %.2fx\n", req.bench.c_str(),
                  it->second, req.min_speedup);
    }
  }
  return status;
}
