#include "lint.h"

#include <algorithm>
#include <regex>
#include <sstream>

#include "analysis-common/scan.h"

namespace redopt::lint {

using analysis::ScannedLine;

namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"D1", "banned nondeterminism source in src/",
     "executions must be bit-reproducible; all randomness flows through rng::Rng, all timing "
     "through util::Stopwatch (whose values telemetry marks kUnstable)"},
    {"D2", "unordered container in snapshot/serialization code",
     "hash-table iteration order depends on layout; serialized bytes must be a pure function of "
     "the computation, so fold through std::map or sorted keys instead"},
    {"D3", "pointer-keyed ordering or address-dependent hashing",
     "addresses differ run to run, so any order or hash derived from them is nondeterministic"},
    {"H1", "header hygiene: #pragma once required, `using namespace` forbidden in headers",
     "missing guards break the one-definition rule; namespace dumps leak into every includer"},
    {"N1", "raw socket / byte-order call outside src/transport/",
     "process boundaries belong to the transport subsystem; a scattered socket or endianness "
     "call bypasses its framing, checksums, timeout handling, and the cross-backend "
     "determinism contract"},
    {"T1", "telemetry metric name must be lowercase dotted snake_case; wall-clock metrics "
     "must be registered Determinism::kUnstable",
     "sinks key the bit-identity mask on names and the kUnstable flag; an unflagged wall-clock "
     "metric silently breaks manifest byte-identity"},
    {"T2", "duration-valued telemetry must ride the nd channel: event fields via with_nd, "
     "never as span attributes, and duration-unit metrics registered Determinism::kUnstable",
     "stable event fields and span attributes are part of the cross-backend byte-identity "
     "contract; a wall-clock duration smuggled into a stable slot diverges every manifest and "
     "trace diff"},
};

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header(const std::string& path) { return ends_with(path, ".h"); }

bool in_src(const std::string& path) { return starts_with(path, "src/"); }

/// D1 carve-out: the one sanctioned wall-clock wrapper.  Everything that
/// needs elapsed time goes through util::Stopwatch, and telemetry flags
/// the resulting values kUnstable so sinks can mask them.
bool is_clock_carveout(const std::string& path) { return path == "src/util/stopwatch.h"; }

/// D2 surface: code whose output bytes must be reproducible.  The
/// telemetry directory (snapshots, sinks, Prometheus rendering) and the
/// serialization utilities; plus any src/ file that mentions `snapshot`
/// in code (content-level detection handled by the caller).
bool is_serialization_path(const std::string& path) {
  if (starts_with(path, "src/telemetry/")) return true;
  return in_src(path) &&
         (path.find("instance_io") != std::string::npos ||
          path.find("/json.") != std::string::npos || path.find("/csv.") != std::string::npos);
}

// ---------------------------------------------------------------------------
// Suppression directives
// ---------------------------------------------------------------------------

/// redopt-lint's directive namespace over the shared parser.
std::vector<std::string> parse_allows(const std::string& comment, bool* file_scope) {
  return analysis::parse_allows("redopt-lint", comment, file_scope);
}

bool allows_rule(const std::vector<std::string>& ids, const std::string& rule) {
  return analysis::allows_rule(ids, rule);
}

// ---------------------------------------------------------------------------
// Rule patterns
// ---------------------------------------------------------------------------

struct Pattern {
  std::regex re;
  const char* what;  ///< message fragment naming the banned construct
};

const std::vector<Pattern>& d1_patterns() {
  static const std::vector<Pattern> patterns = {
      {std::regex(R"(\bstd::random_device\b)"), "std::random_device"},
      {std::regex(R"((^|[^\w.])(std::)?s?rand\s*\()"), "rand()/srand()"},
      {std::regex(R"((^|[^:\w_])(std::)?time\s*\(\s*(nullptr|NULL|0)?\s*\))"), "time()"},
      {std::regex(R"((^|[^:\w_])clock\s*\(\s*\))"), "clock()"},
      {std::regex(R"(\bgettimeofday\b)"), "gettimeofday()"},
      {std::regex(R"(\bstd::chrono::\w*_clock\b)"), "std::chrono clock"},
      {std::regex(R"(\bstd::this_thread::get_id\b)"), "std::this_thread::get_id"},
      {std::regex(R"(\bgetpid\s*\()"), "getpid()"},
  };
  return patterns;
}

const std::regex& d2_pattern() {
  static const std::regex re(R"(\bstd::unordered_(map|set)\b)");
  return re;
}

const std::vector<Pattern>& d3_patterns() {
  // Key type of std::map/std::set/std::hash/std::less containing a
  // pointer: everything between '<' and the first ',' or the matching
  // '>' (single-level approximation) that ends in '*'.
  static const std::vector<Pattern> patterns = {
      {std::regex(R"(\bstd::(map|set|multimap|multiset)\s*<\s*[\w:\s<>]*\*)"),
       "pointer-keyed std::map/std::set"},
      {std::regex(R"(\bstd::hash\s*<\s*[\w:\s<>]*\*)"), "std::hash over a pointer type"},
      {std::regex(R"(\bstd::less\s*<\s*[\w:\s<>]*\*)"), "std::less over a pointer type"},
      {std::regex(R"(\buintptr_t\b)"), "address-as-integer (uintptr_t)"},
  };
  return patterns;
}

const std::vector<Pattern>& n1_patterns() {
  // The leading guard excludes identifiers merely containing the token
  // (websocket, my_send) and member calls (queue.send, channel->recv):
  // the rule targets the raw OS-level calls and includes only.
  static const std::vector<Pattern> patterns = {
      {std::regex(R"((^|[^:\w_.>])(::)?socket(pair)?\s*\()"), "socket()/socketpair()"},
      {std::regex(R"((^|[^:\w_.>])(::)?(send|recv)(to|from|msg)?\s*\()"),
       "send()/recv() family call"},
      {std::regex(R"((^|[^:\w_.>])(::)?(set|get)sockopt\s*\()"), "setsockopt()/getsockopt()"},
      {std::regex(R"(\b(htons|htonl|ntohs|ntohl|htobe\d+|betoh\d+|htole\d+|letoh\d+)\b)"),
       "byte-order conversion"},
      {std::regex(R"(#\s*include\s*<(sys/socket\.h|sys/un\.h|netinet/[^>]*|arpa/inet\.h)>)"),
       "socket header include"},
  };
  return patterns;
}

const std::regex& h1_using_namespace() {
  static const std::regex re(R"(^\s*using\s+namespace\b)");
  return re;
}

const std::regex& t1_name_ok() {
  static const std::regex re(R"(^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$)");
  return re;
}

/// Wall-clock suffixes whose registrations must carry kUnstable.
bool is_wallclock_name(const std::string& name) {
  return ends_with(name, ".seconds") || ends_with(name, "_seconds") || ends_with(name, ".wall_s");
}

/// T2's duration-ish key predicate: the T1 wall-clock suffixes plus the
/// sub-second units and the explicit duration/elapsed tokens.  Any key
/// matching this names a value only a wall clock can produce.
bool is_duration_key(const std::string& name) {
  if (is_wallclock_name(name)) return true;
  static const char* const kSuffixes[] = {"_ms",     "_us",     "_ns",    "_millis", "_micros",
                                          "_nanos",  ".millis", ".micros", ".nanos"};
  for (const char* suffix : kSuffixes) {
    if (ends_with(name, suffix)) return true;
  }
  return name.find("duration") != std::string::npos || name.find("elapsed") != std::string::npos;
}

// ---------------------------------------------------------------------------
// The scanner
// ---------------------------------------------------------------------------

struct Context {
  const std::string& path;
  const std::vector<std::string>& raw;
  const std::vector<ScannedLine>& scanned;
  std::vector<std::string> file_allows;
  std::vector<Finding>* findings;

  bool suppressed(std::size_t index, const char* rule) const {
    if (allows_rule(file_allows, rule)) return true;
    bool file_scope = false;
    if (allows_rule(parse_allows(scanned[index].comment, &file_scope), rule)) return true;
    if (index > 0 && allows_rule(parse_allows(scanned[index - 1].comment, &file_scope), rule)) {
      return true;
    }
    return false;
  }

  void report(std::size_t index, const char* rule, std::string message) const {
    if (suppressed(index, rule)) return;
    findings->push_back(Finding{path, index + 1, rule, std::move(message), {}});
  }
};

void check_d1(const Context& ctx) {
  if (!in_src(ctx.path) || is_clock_carveout(ctx.path)) return;
  for (std::size_t i = 0; i < ctx.scanned.size(); ++i) {
    for (const Pattern& p : d1_patterns()) {
      if (std::regex_search(ctx.scanned[i].code, p.re)) {
        ctx.report(i, "D1",
                   std::string(p.what) +
                       " is a nondeterminism source; use rng::Rng seeded streams / util::Stopwatch");
      }
    }
  }
}

void check_d2(const Context& ctx) {
  if (!in_src(ctx.path)) return;
  bool surface = is_serialization_path(ctx.path);
  if (!surface) {
    // Content-level detection: a src/ file that produces snapshots or
    // JSON is a serialization surface wherever it lives.
    static const std::regex kSurface(R"(\b(snapshot|to_json|serialize)\s*\()");
    for (const ScannedLine& sl : ctx.scanned) {
      if (std::regex_search(sl.code, kSurface)) {
        surface = true;
        break;
      }
    }
  }
  if (!surface) return;
  for (std::size_t i = 0; i < ctx.scanned.size(); ++i) {
    if (std::regex_search(ctx.scanned[i].code, d2_pattern())) {
      ctx.report(i, "D2",
                 "unordered container in snapshot/serialization code; iteration order depends on "
                 "hash layout — use std::map or fold sorted keys");
    }
  }
}

void check_d3(const Context& ctx) {
  if (!in_src(ctx.path)) return;
  for (std::size_t i = 0; i < ctx.scanned.size(); ++i) {
    for (const Pattern& p : d3_patterns()) {
      if (std::regex_search(ctx.scanned[i].code, p.re)) {
        ctx.report(i, "D3",
                   std::string(p.what) + "; addresses vary run to run, key by a stable id instead");
      }
    }
  }
}

void check_h1(const Context& ctx) {
  if (!is_header(ctx.path)) return;
  bool has_guard = false;
  for (std::size_t i = 0; i < ctx.raw.size(); ++i) {
    if (ctx.raw[i].find("#pragma once") != std::string::npos ||
        ctx.raw[i].find("#ifndef") != std::string::npos) {
      has_guard = true;
      break;
    }
  }
  if (!has_guard && !ctx.raw.empty()) {
    ctx.report(0, "H1", "header lacks #pragma once (or an include guard)");
  }
  for (std::size_t i = 0; i < ctx.scanned.size(); ++i) {
    if (std::regex_search(ctx.scanned[i].code, h1_using_namespace())) {
      ctx.report(i, "H1", "`using namespace` in a header leaks into every includer");
    }
  }
}

void check_n1(const Context& ctx) {
  if (!in_src(ctx.path) || starts_with(ctx.path, "src/transport/")) return;
  for (std::size_t i = 0; i < ctx.scanned.size(); ++i) {
    for (const Pattern& p : n1_patterns()) {
      if (std::regex_search(ctx.scanned[i].code, p.re)) {
        ctx.report(i, "N1",
                   std::string(p.what) +
                       " outside src/transport/; go through the Transport interface (framing, "
                       "checksums, timeouts live there)");
      }
    }
  }
}

void check_t1(const Context& ctx) {
  if (!in_src(ctx.path)) return;
  for (std::size_t i = 0; i < ctx.scanned.size(); ++i) {
    // The name literal lives in the *raw* line (the code view blanks
    // string bodies), so re-find the call there.
    static const std::regex kCall(R"rx(\b(counter|gauge|histogram)\s*\(\s*"([^"]*)")rx");
    const std::string& raw = ctx.raw[i];
    for (auto it = std::sregex_iterator(raw.begin(), raw.end(), kCall);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[2].str();
      if (!std::regex_match(name, t1_name_ok())) {
        ctx.report(i, "T1",
                   "metric name '" + name +
                       "' violates the subsystem.noun_unit convention "
                       "(lowercase dotted snake_case with a subsystem prefix)");
      }
    }
    // Statement-level wall-clock check: any registration statement whose
    // name (literal or concatenated suffix) ends in a wall-clock unit
    // must say kUnstable before the closing ';'.
    static const std::regex kWallLiteral(R"rx(\b(counter|gauge|histogram)\s*\([^;]*"([^"]*)")rx");
    std::smatch wm;
    if (std::regex_search(raw, wm, kWallLiteral) && is_wallclock_name(wm[2].str())) {
      std::string stmt = ctx.scanned[i].code;
      for (std::size_t j = i + 1; j < ctx.scanned.size() && j < i + 4; ++j) {
        if (stmt.find(';') != std::string::npos) break;
        stmt += ctx.scanned[j].code;
      }
      if (stmt.find("kUnstable") == std::string::npos) {
        ctx.report(i, "T1",
                   "wall-clock metric '" + wm[2].str() +
                       "' must be registered Determinism::kUnstable so sinks can mask it");
      }
    }
  }
}

void check_t2(const Context& ctx) {
  if (!in_src(ctx.path)) return;
  for (std::size_t i = 0; i < ctx.scanned.size(); ++i) {
    const std::string& raw = ctx.raw[i];
    // Event fields: .with("key", v) lands in the stable part of the
    // record; a duration there must go through .with_nd instead.  The
    // regex cannot match with_nd — '(' follows 'with' directly.
    static const std::regex kWith(R"rx(\.with\s*\(\s*"([^"]*)")rx");
    for (auto it = std::sregex_iterator(raw.begin(), raw.end(), kWith);
         it != std::sregex_iterator(); ++it) {
      const std::string key = (*it)[1].str();
      if (is_duration_key(key)) {
        ctx.report(i, "T2",
                   "duration-valued event field '" + key +
                       "' in a stable slot; use with_nd so sinks strip it from the manifest");
      }
    }
    // Span attributes are stable-only by design: the span record already
    // carries its wall-clock timing in nd members the projection strips.
    static const std::regex kAttr(R"rx(\.attr\s*\(\s*"([^"]*)")rx");
    for (auto it = std::sregex_iterator(raw.begin(), raw.end(), kAttr);
         it != std::sregex_iterator(); ++it) {
      const std::string key = (*it)[1].str();
      if (is_duration_key(key)) {
        ctx.report(i, "T2",
                   "duration-valued span attribute '" + key +
                       "'; span attributes are deterministic-only — the span's nd fields already "
                       "record wall-clock timing");
      }
    }
    // Sub-second duration-unit registrations need kUnstable exactly like
    // T1's wall-clock suffixes (which T1 itself owns; no double report).
    static const std::regex kCall(R"rx(\b(counter|gauge|histogram)\s*\([^;]*"([^"]*)")rx");
    std::smatch m;
    if (std::regex_search(raw, m, kCall)) {
      const std::string name = m[2].str();
      if (is_duration_key(name) && !is_wallclock_name(name)) {
        std::string stmt = ctx.scanned[i].code;
        for (std::size_t j = i + 1; j < ctx.scanned.size() && j < i + 4; ++j) {
          if (stmt.find(';') != std::string::npos) break;
          stmt += ctx.scanned[j].code;
        }
        if (stmt.find("kUnstable") == std::string::npos) {
          ctx.report(i, "T2",
                     "duration-unit metric '" + name +
                         "' must be registered Determinism::kUnstable so sinks can mask it");
        }
      }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

std::vector<Finding> lint_lines(const std::string& path, const std::vector<std::string>& lines) {
  const std::vector<ScannedLine> scanned = analysis::scan_lines(lines);
  std::vector<Finding> findings;
  Context ctx{path, lines, scanned, {}, &findings};
  for (const ScannedLine& sl : scanned) {
    bool file_scope = false;
    const auto ids = parse_allows(sl.comment, &file_scope);
    if (file_scope) ctx.file_allows.insert(ctx.file_allows.end(), ids.begin(), ids.end());
  }
  check_d1(ctx);
  check_d2(ctx);
  check_d3(ctx);
  check_h1(ctx);
  check_n1(ctx);
  check_t1(ctx);
  check_t2(ctx);
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

std::vector<Finding> lint_file(const std::string& file_path, const std::string& display_path) {
  return lint_lines(display_path, analysis::read_lines(file_path));
}

std::string format_finding(const Finding& finding) { return analysis::format_finding(finding); }

}  // namespace redopt::lint
