// redopt-lint: a project-specific static-analysis pass enforcing the
// determinism and hygiene invariants the runtime tests rely on.
//
// The headline guarantee of this codebase — CGE/DGD executions under
// 2f-redundancy are bit-identical at every REDOPT_THREADS value — is
// enforced at runtime by tests, which cannot see a latent
// std::unordered_map iteration or an unseeded clock until it happens to
// flip a bit.  This linter makes the known nondeterminism sources a
// compile gate instead of a debugging session.
//
// Design: a token/regex scanner over the raw sources (no libclang
// dependency, so it builds anywhere the library builds).  Each line is
// first reduced to a "code view" with comments and string/char literals
// blanked out, so banned tokens in doc comments or test fixtures never
// fire; suppression directives are read from the comment text that the
// code view discards.
//
// Rules (stable IDs, one line each; `redopt-lint --list-rules` prints
// the same table):
//
//   D1  banned nondeterminism sources in src/ (std::random_device,
//       rand()/srand(), time()/clock()/gettimeofday(), std::chrono
//       clocks outside util/stopwatch.h, std::this_thread::get_id)
//   D2  unordered containers in snapshot/serialization code — folding a
//       hash table into an output stream bakes hash-layout order into
//       bytes that must be reproducible
//   D3  pointer-keyed ordering or address-dependent hashing — addresses
//       differ run to run, so any order derived from them does too
//   H1  include hygiene: headers carry #pragma once (or a guard) and
//       never `using namespace` at file scope
//   N1  raw socket / byte-order calls (socket, socketpair, send/recv,
//       htons, ...) outside src/transport/ — process boundaries go
//       through the Transport interface, which owns framing, checksums,
//       and timeout handling
//   T1  telemetry metric names are lowercase dotted snake_case
//       (`subsystem.noun_unit`), and wall-clock metrics (".seconds",
//       "_seconds", ".wall_s") are registered Determinism::kUnstable
//
// Suppression: `// redopt-lint: allow(D1)` (comma-separated list) on the
// offending line or the line directly above silences those rules for
// that line; `// redopt-lint: allow-file(D2)` anywhere in a file
// silences a rule for the whole file.  Every suppression should carry a
// justification in the surrounding comment.
#pragma once

#include <string>
#include <vector>

#include "analysis-common/finding.h"

namespace redopt::lint {

/// Finding/rule types are shared with redopt-analyze (analysis-common)
/// so both gates render the same text and JSON formats.
using Finding = redopt::analysis::Finding;
using RuleInfo = redopt::analysis::RuleInfo;

/// The rule table, in ID order.
const std::vector<RuleInfo>& rules();

/// Lints in-memory content under a pseudo-path.  @p path decides which
/// rules apply (D1/D3 fire under src/, D2 on serialization surfaces,
/// H1 on headers); the fixture tests drive this directly.
std::vector<Finding> lint_lines(const std::string& path, const std::vector<std::string>& lines);

/// Reads @p file_path and lints it; @p display_path is the (usually
/// repo-relative) path used for rule applicability and reporting.
std::vector<Finding> lint_file(const std::string& file_path, const std::string& display_path);

/// Renders @p finding as "file:line: [RULE] message".
std::string format_finding(const Finding& finding);

}  // namespace redopt::lint
