// CLI driver for redopt-lint.
//
//   redopt-lint [--root <dir>] [--list-rules] [--json] [paths...]
//
// Paths are interpreted relative to --root (default: the current
// directory) and default to the directories the repo's invariants cover:
// src bench tests examples tools.  Exits nonzero when any finding
// survives suppression, printing one "file:line: [RULE] message" per
// finding (or, with --json, one JSON array of findings) — the same
// formats redopt-analyze emits, so CI annotates both gates identically.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "analysis-common/finding.h"
#include "analysis-common/walker.h"
#include "lint.h"

namespace fs = std::filesystem;

namespace {

int list_rules() {
  for (const auto& rule : redopt::lint::rules()) {
    std::cout << rule.id << "  " << rule.summary << "\n      why: " << rule.rationale << "\n";
  }
  std::cout << "\nsuppress with `// redopt-lint: allow(<rule>[,<rule>...])` on the offending\n"
               "line or the line above, or `// redopt-lint: allow-file(<rule>)` for a file;\n"
               "every suppression should carry a justification in the surrounding comment.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> targets;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return list_rules();
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "redopt-lint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: redopt-lint [--root <dir>] [--list-rules] [--json] [paths...]\n";
      return 0;
    }
    targets.push_back(arg);
  }
  if (targets.empty()) targets = {"src", "bench", "tests", "examples", "tools"};

  std::vector<std::string> files;
  for (const std::string& t : targets) {
    redopt::analysis::collect_sources(root, t, "redopt-lint", &files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<redopt::lint::Finding> all;
  for (const std::string& rel : files) {
    const auto findings = redopt::lint::lint_file((root / rel).string(), rel);
    all.insert(all.end(), findings.begin(), findings.end());
  }
  if (json) {
    std::cout << redopt::analysis::findings_json(all);
    return all.empty() ? 0 : 1;
  }
  for (const auto& f : all) std::cout << redopt::lint::format_finding(f) << "\n";
  if (!all.empty()) {
    std::cout << "redopt-lint: " << all.size() << " finding(s) in " << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "redopt-lint: clean (" << files.size() << " files)\n";
  return 0;
}
