// CLI driver for redopt-lint.
//
//   redopt-lint [--root <dir>] [--list-rules] [paths...]
//
// Paths are interpreted relative to --root (default: the current
// directory) and default to the directories the repo's invariants cover:
// src bench tests examples tools.  Exits nonzero when any finding
// survives suppression, printing one "file:line: [RULE] message" per
// finding — the format editors and CI annotate directly.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;

namespace {

bool is_cxx_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp";
}

void collect(const fs::path& root, const std::string& rel, std::vector<std::string>* out) {
  const fs::path target = root / rel;
  if (fs::is_regular_file(target)) {
    if (is_cxx_source(target)) out->push_back(rel);
    return;
  }
  if (!fs::is_directory(target)) {
    std::cerr << "redopt-lint: warning: no such path: " << target.string() << "\n";
    return;
  }
  for (const auto& entry : fs::recursive_directory_iterator(target)) {
    if (!entry.is_regular_file() || !is_cxx_source(entry.path())) continue;
    out->push_back(fs::relative(entry.path(), root).generic_string());
  }
}

int list_rules() {
  for (const auto& rule : redopt::lint::rules()) {
    std::cout << rule.id << "  " << rule.summary << "\n      why: " << rule.rationale << "\n";
  }
  std::cout << "\nsuppress with `// redopt-lint: allow(<rule>[,<rule>...])` on the offending\n"
               "line or the line above, or `// redopt-lint: allow-file(<rule>)` for a file;\n"
               "every suppression should carry a justification in the surrounding comment.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return list_rules();
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "redopt-lint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: redopt-lint [--root <dir>] [--list-rules] [paths...]\n";
      return 0;
    }
    targets.push_back(arg);
  }
  if (targets.empty()) targets = {"src", "bench", "tests", "examples", "tools"};

  std::vector<std::string> files;
  for (const std::string& t : targets) collect(root, t, &files);
  std::sort(files.begin(), files.end());

  std::size_t total = 0;
  for (const std::string& rel : files) {
    const auto findings = redopt::lint::lint_file((root / rel).string(), rel);
    for (const auto& f : findings) std::cout << redopt::lint::format_finding(f) << "\n";
    total += findings.size();
  }
  if (total > 0) {
    std::cout << "redopt-lint: " << total << " finding(s) in " << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "redopt-lint: clean (" << files.size() << " files)\n";
  return 0;
}
