// chaos-replay: run a serialized chaos scenario and check its properties.
//
// The other half of the shrink-to-reproducer workflow: when the chaos
// suite fails, it prints a minimal scenario as JSON; save that to a file
// and replay it here — same seed, same trajectory, bit for bit — while
// iterating on a fix.
//
//   chaos-replay --scenario repro.json            # replay + property check
//   chaos-replay --scenario repro.json --json     # machine-readable result
//   chaos-replay --generate 5 --seed 7            # print sample scenarios
//
// Exit status: 0 when every property holds, 1 on a violation (so the
// binary slots into scripts and CI directly).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "chaos/executor.h"
#include "chaos/generator.h"
#include "chaos/properties.h"
#include "chaos/scenario.h"
#include "runtime/runtime.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/json.h"

namespace {

using namespace redopt;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  REDOPT_REQUIRE(in.good(), "cannot open scenario file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int replay(const chaos::Scenario& scenario, bool as_json) {
  const chaos::ScenarioResult result = chaos::run_scenario(scenario);
  const chaos::PropertyReport report = chaos::check_properties(scenario, result);
  if (as_json) {
    std::cout << "{\"name\":\"" << util::json_escape(scenario.name) << "\""
              << ",\"guaranteed\":" << (scenario.guaranteed() ? "true" : "false")
              << ",\"ok\":" << (report.ok ? "true" : "false") << ",\"violations\":\""
              << util::json_escape(report.summary()) << "\""
              << ",\"initial_distance\":" << util::json_number(result.initial_distance)
              << ",\"final_distance\":" << util::json_number(result.final_distance)
              << ",\"max_distance\":" << util::json_number(result.max_distance)
              << ",\"byzantine_replies\":" << result.byzantine_replies
              << ",\"crashed_absences\":" << result.crashed_absences
              << ",\"stale_replies\":" << result.stale_replies
              << ",\"dropped_replies\":" << result.dropped_replies
              << ",\"delayed_replies\":" << result.delayed_replies
              << ",\"duplicated_replies\":" << result.duplicated_replies << "}\n";
  } else {
    std::cout << "scenario:  " << scenario.name << (scenario.guaranteed() ? "  [guaranteed]" : "")
              << "\n"
              << "estimate:  " << result.estimate.to_string() << "\n"
              << "reference: " << result.reference.to_string() << "\n"
              << "distance:  " << result.initial_distance << " -> " << result.final_distance
              << " (max " << result.max_distance << ")\n"
              << "faults:    byz=" << result.byzantine_replies
              << " crash=" << result.crashed_absences << " stale=" << result.stale_replies
              << " drop=" << result.dropped_replies << " delay=" << result.delayed_replies
              << " dup=" << result.duplicated_replies << "\n"
              << "properties: " << report.summary() << "\n";
  }
  return report.ok ? 0 : 1;
}

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv,
                      {"scenario", "generate", "seed", "threads", "json", "help"});
  if (cli.get_bool("help", false)) {
    std::cout << "usage: chaos-replay --scenario FILE [--threads N] [--json]\n"
              << "       chaos-replay --generate K [--seed S] [--json]\n";
    return 0;
  }
  const std::int64_t threads = cli.get_int_env("threads", "REDOPT_THREADS", 0);
  if (threads > 0) runtime::set_threads(static_cast<std::size_t>(threads));
  const bool as_json = cli.get_bool("json", false);

  const std::int64_t generate = cli.get_int("generate", 0);
  if (generate > 0) {
    chaos::Generator generator(chaos::GeneratorSpec{},
                               static_cast<std::uint64_t>(cli.get_int("seed", 1)));
    for (std::int64_t k = 0; k < generate; ++k) std::cout << generator.next().to_json() << "\n";
    return 0;
  }

  const std::string path = cli.get_string("scenario", "");
  REDOPT_REQUIRE(!path.empty(), "pass --scenario FILE or --generate K (see --help)");
  return replay(chaos::scenario_from_json(read_file(path)), as_json);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "chaos-replay: " << e.what() << "\n";
    return 2;
  }
}
