// chaos-replay: run a serialized chaos scenario and check its properties.
//
// The other half of the shrink-to-reproducer workflow: when the chaos
// suite fails, it prints a minimal scenario as JSON; save that to a file
// and replay it here — same seed, same trajectory, bit for bit — while
// iterating on a fix.
//
//   chaos-replay --scenario repro.json            # replay + property check
//   chaos-replay --scenario repro.json --json     # machine-readable result
//   chaos-replay --generate 5 --seed 7            # print sample scenarios
//   chaos-replay --generate 5 --elastic 0.5       # ... with membership churn
//
// Scenarios carrying membership or stream events route automatically to
// the elastic session layer (elastic::run_elastic /
// run_elastic_transport); everything else runs the fixed-membership
// paths.  By default the scenario runs on the in-process executor.  Pass
// --backend (and optionally --topology) to run it as a transport session
// instead — the same round loop behind a src/transport/ backend:
//
//   chaos-replay --scenario repro.json --backend=socket --topology=tree
//
// Observability (any of these forces the transport path and switches
// telemetry on):
//
//   --trace-out=trace.json   write a Chrome trace-event file of the run
//                            (load it in Perfetto / chrome://tracing)
//   --attribution            print the fault-attribution report, whose
//                            per-agent/per-link totals must reconcile
//                            exactly with the transport counters
//   --dump-metrics           print the merged coordinator + per-agent
//                            metrics in Prometheus text format
//
// Exit status: 0 when every property holds (and, with --attribution, the
// report reconciles), 1 on a violation (so the binary slots into scripts
// and CI directly).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "chaos/executor.h"
#include "chaos/generator.h"
#include "chaos/properties.h"
#include "chaos/scenario.h"
#include "elastic/session.h"
#include "runtime/runtime.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/ship.h"
#include "transport/session.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/json.h"

namespace {

using namespace redopt;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  REDOPT_REQUIRE(in.good(), "cannot open scenario file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int report_result(const chaos::Scenario& scenario, const chaos::ScenarioResult& result,
                  bool as_json, const transport::TransportStats* transport_stats,
                  const elastic::ElasticSession* elastic_session = nullptr) {
  const chaos::PropertyReport report = chaos::check_properties(scenario, result);
  if (as_json) {
    std::cout << "{\"name\":\"" << util::json_escape(scenario.name) << "\""
              << ",\"guaranteed\":" << (scenario.guaranteed() ? "true" : "false")
              << ",\"ok\":" << (report.ok ? "true" : "false") << ",\"violations\":\""
              << util::json_escape(report.summary()) << "\""
              << ",\"initial_distance\":" << util::json_number(result.initial_distance)
              << ",\"final_distance\":" << util::json_number(result.final_distance)
              << ",\"max_distance\":" << util::json_number(result.max_distance)
              << ",\"byzantine_replies\":" << result.byzantine_replies
              << ",\"crashed_absences\":" << result.crashed_absences
              << ",\"stale_replies\":" << result.stale_replies
              << ",\"dropped_replies\":" << result.dropped_replies
              << ",\"delayed_replies\":" << result.delayed_replies
              << ",\"duplicated_replies\":" << result.duplicated_replies;
    if (elastic_session != nullptr) {
      std::cout << ",\"joins\":" << elastic_session->joins
                << ",\"leaves\":" << elastic_session->leaves
                << ",\"member_agent_rounds\":" << elastic_session->member_agent_rounds
                << ",\"absent_agent_rounds\":" << elastic_session->absent_agent_rounds
                << ",\"stream_rows\":" << elastic_session->stream_rows
                << ",\"f_rederivations\":" << elastic_session->f_rederivations
                << ",\"rounds_below_redundancy\":" << elastic_session->rounds_below_redundancy;
    }
    if (transport_stats != nullptr) {
      std::cout << ",\"frames_delivered\":" << transport_stats->frames_delivered
                << ",\"bytes_on_wire\":" << transport_stats->bytes_on_wire
                << ",\"reduce_rounds\":" << transport_stats->reduce_rounds
                << ",\"messages_retried\":" << transport_stats->messages_retried
                << ",\"agent_deaths\":" << transport_stats->agent_deaths;
    }
    std::cout << "}\n";
  } else {
    std::cout << "scenario:  " << scenario.name << (scenario.guaranteed() ? "  [guaranteed]" : "")
              << "\n"
              << "estimate:  " << result.estimate.to_string() << "\n"
              << "reference: " << result.reference.to_string() << "\n"
              << "distance:  " << result.initial_distance << " -> " << result.final_distance
              << " (max " << result.max_distance << ")\n"
              << "faults:    byz=" << result.byzantine_replies
              << " crash=" << result.crashed_absences << " stale=" << result.stale_replies
              << " drop=" << result.dropped_replies << " delay=" << result.delayed_replies
              << " dup=" << result.duplicated_replies << "\n";
    if (transport_stats != nullptr) {
      std::cout << "transport: frames=" << transport_stats->frames_delivered
                << " bytes=" << transport_stats->bytes_on_wire
                << " reduce_rounds=" << transport_stats->reduce_rounds
                << " retries=" << transport_stats->messages_retried
                << " deaths=" << transport_stats->agent_deaths << "\n";
    }
    if (elastic_session != nullptr) {
      std::cout << "elastic:   joins=" << elastic_session->joins
                << " leaves=" << elastic_session->leaves
                << " member_rounds=" << elastic_session->member_agent_rounds
                << " absent_rounds=" << elastic_session->absent_agent_rounds
                << " stream_rows=" << elastic_session->stream_rows
                << " f_rederivations=" << elastic_session->f_rederivations
                << " below_redundancy=" << elastic_session->rounds_below_redundancy << "\n";
    }
    std::cout << "properties: " << report.summary() << "\n";
  }
  return report.ok ? 0 : 1;
}

int replay(const chaos::Scenario& scenario, bool as_json) {
  if (scenario.elastic()) {
    const elastic::ElasticSession session = elastic::run_elastic(scenario);
    return report_result(scenario, session.result, as_json, nullptr, &session);
  }
  const chaos::ScenarioResult result = chaos::run_scenario(scenario);
  return report_result(scenario, result, as_json, nullptr);
}

/// Observability outputs riding along a transport replay.
struct ObservabilityOptions {
  std::string trace_out;     ///< write Chrome trace JSON here (empty = off)
  bool attribution = false;  ///< print + gate on the attribution report
  bool dump_metrics = false; ///< print the merged Prometheus manifest
  bool any() const { return !trace_out.empty() || attribution || dump_metrics; }
};

int replay_elastic_transport(const chaos::Scenario& scenario, bool as_json,
                             const transport::SessionOptions& options,
                             const ObservabilityOptions& observe) {
  REDOPT_REQUIRE(!observe.attribution,
                 "--attribution is not available for elastic scenarios yet");
  const elastic::ElasticSession session = elastic::run_elastic_transport(scenario, options);
  const int status = report_result(scenario, session.result, as_json, &session.transport, &session);

  if (!observe.trace_out.empty()) {
    std::ofstream out(observe.trace_out, std::ios::binary | std::ios::trunc);
    REDOPT_REQUIRE(out.good(), "cannot open trace output file: " + observe.trace_out);
    out << elastic::elastic_trace_json(session);
    REDOPT_REQUIRE(out.good(), "failed writing trace output file: " + observe.trace_out);
  }
  if (observe.dump_metrics) {
    std::cout << telemetry::render_prometheus(telemetry::merge_agent_snapshots(
        telemetry::registry().snapshot(), session.agents));
  }
  return status;
}

int replay_transport(const chaos::Scenario& scenario, bool as_json,
                     const transport::SessionOptions& options,
                     const ObservabilityOptions& observe) {
  if (scenario.elastic()) return replay_elastic_transport(scenario, as_json, options, observe);
  const transport::ScenarioSession session = transport::run_scenario_transport(scenario, options);
  int status = report_result(scenario, session.result, as_json, &session.transport);

  if (!observe.trace_out.empty()) {
    std::ofstream out(observe.trace_out, std::ios::binary | std::ios::trunc);
    REDOPT_REQUIRE(out.good(), "cannot open trace output file: " + observe.trace_out);
    out << transport::session_trace_json(session);
    REDOPT_REQUIRE(out.good(), "failed writing trace output file: " + observe.trace_out);
  }
  if (observe.dump_metrics) {
    std::cout << telemetry::render_prometheus(telemetry::merge_agent_snapshots(
        telemetry::registry().snapshot(), session.agents));
  }
  if (observe.attribution) {
    if (as_json) {
      std::cout << session.attribution.to_json() << "\n";
    } else {
      std::cout << session.attribution.to_text();
    }
    if (!session.attribution.ok() && status == 0) status = 1;
  }
  return status;
}

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"scenario", "generate", "seed", "threads", "json", "help",
                                   "backend", "topology", "trace-out", "attribution",
                                   "dump-metrics", "elastic"});
  if (cli.get_bool("help", false)) {
    std::cout << "usage: chaos-replay --scenario FILE [--threads N] [--json]\n"
              << "                    [--backend inproc|socket] [--topology star|chain|tree]\n"
              << "                    [--trace-out FILE] [--attribution] [--dump-metrics]\n"
              << "       chaos-replay --generate K [--seed S] [--elastic P] [--json]\n";
    return 0;
  }
  const std::int64_t threads = cli.get_int_env("threads", "REDOPT_THREADS", 0);
  if (threads > 0) runtime::set_threads(static_cast<std::size_t>(threads));
  const bool as_json = cli.get_bool("json", false);

  const std::int64_t generate = cli.get_int("generate", 0);
  if (generate > 0) {
    chaos::GeneratorSpec spec;
    spec.elastic_probability = cli.get_double("elastic", 0.0);
    chaos::Generator generator(spec, static_cast<std::uint64_t>(cli.get_int("seed", 1)));
    for (std::int64_t k = 0; k < generate; ++k) std::cout << generator.next().to_json() << "\n";
    return 0;
  }

  const std::string path = cli.get_string("scenario", "");
  REDOPT_REQUIRE(!path.empty(), "pass --scenario FILE or --generate K (see --help)");
  const chaos::Scenario scenario = chaos::scenario_from_json(read_file(path));

  ObservabilityOptions observe;
  observe.trace_out = cli.get_string("trace-out", "");
  observe.attribution = cli.get_bool("attribution", false);
  observe.dump_metrics = cli.get_bool("dump-metrics", false);

  // Either transport flag — or any observability flag — switches the
  // replay from the in-process chaos executor to a transport session;
  // the parses are strict and name the valid values on error.
  if (cli.get("backend") || cli.get("topology") || observe.any()) {
    // Switch telemetry on before the transport forks its agents: the
    // coordinator's spans and the session metrics need the switch, and
    // flipping it after the fork would not reach the agent processes
    // (their islands record unconditionally either way).
    if (observe.any()) telemetry::set_enabled(true);
    transport::SessionOptions options;
    options.backend = transport::backend_from_string(cli.get_string("backend", "inproc"));
    options.topology = transport::topology_from_string(cli.get_string("topology", "star"));
    return replay_transport(scenario, as_json, options, observe);
  }
  return replay(scenario, as_json);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "chaos-replay: " << e.what() << "\n";
    return 2;
  }
}
