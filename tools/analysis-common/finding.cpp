#include "analysis-common/finding.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace redopt::analysis {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string format_finding(const Finding& finding) {
  std::ostringstream os;
  os << finding.file << ":" << finding.line << ": [" << finding.rule << "] " << finding.message;
  return os.str();
}

std::string findings_json(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "  {\"file\": \"" << json_escape(f.file) << "\", \"line\": " << f.line
       << ", \"rule\": \"" << json_escape(f.rule) << "\", \"message\": \""
       << json_escape(f.message) << "\"";
    if (!f.key.empty()) os << ", \"key\": \"" << json_escape(f.key) << "\"";
    os << "}";
  }
  os << (findings.empty() ? "]\n" : "\n]\n");
  return os.str();
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
}

}  // namespace redopt::analysis
