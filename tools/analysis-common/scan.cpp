#include "analysis-common/scan.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

namespace redopt::analysis {

std::vector<ScannedLine> scan_lines(const std::vector<std::string>& lines) {
  std::vector<ScannedLine> out;
  out.reserve(lines.size());
  bool in_block_comment = false;
  for (const std::string& raw : lines) {
    ScannedLine sl;
    sl.code.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size();) {
      if (in_block_comment) {
        if (raw.compare(i, 2, "*/") == 0) {
          in_block_comment = false;
          sl.code += "  ";
          i += 2;
        } else {
          sl.comment += raw[i];
          sl.code += ' ';
          ++i;
        }
        continue;
      }
      const char c = raw[i];
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') {
        sl.comment.append(raw, i + 2, std::string::npos);
        sl.code.append(raw.size() - i, ' ');
        break;
      }
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
        in_block_comment = true;
        sl.code += "  ";
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        sl.code += quote;
        ++i;
        while (i < raw.size()) {
          if (raw[i] == '\\' && i + 1 < raw.size()) {
            sl.code += "  ";
            i += 2;
            continue;
          }
          if (raw[i] == quote) {
            sl.code += quote;
            ++i;
            break;
          }
          sl.code += ' ';
          ++i;
        }
        continue;
      }
      sl.code += c;
      ++i;
    }
    out.push_back(std::move(sl));
  }
  return out;
}

std::vector<std::string> parse_allows(const std::string& tool, const std::string& comment,
                                      bool* file_scope) {
  // One compiled regex per tool name; the scanners call this per line.
  static std::map<std::string, std::regex> cache;
  auto it = cache.find(tool);
  if (it == cache.end()) {
    it = cache.emplace(tool, std::regex(tool + R"(:\s*(allow|allow-file)\s*\(([^)]*)\))")).first;
  }
  std::vector<std::string> ids;
  std::smatch m;
  if (!std::regex_search(comment, m, it->second)) return ids;
  *file_scope = (m[1].str() == "allow-file");
  std::string list = m[2].str();
  std::stringstream ss(list);
  std::string id;
  while (std::getline(ss, id, ',')) {
    id.erase(
        std::remove_if(id.begin(), id.end(), [](unsigned char ch) { return std::isspace(ch); }),
        id.end());
    if (!id.empty()) ids.push_back(id);
  }
  return ids;
}

bool allows_rule(const std::vector<std::string>& ids, const std::string& rule) {
  return std::find(ids.begin(), ids.end(), rule) != ids.end();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace redopt::analysis
