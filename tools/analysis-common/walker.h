// Recursive C++ source walker shared by the static-analysis tools.
//
// One place owns the file-type filter and the exclude list (build
// trees, golden trace data), so the tools cannot drift apart on what
// "the tree" means.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace redopt::analysis {

/// True for the extensions the analysis tools scan (.h, .cpp).
bool is_cxx_source(const std::filesystem::path& p);

/// True for directory *names* the walk prunes wholesale: build trees
/// (any name starting with "build"), dot-directories (.git, .github),
/// and golden trace data ("golden" under tests/).
bool is_excluded_dir(const std::string& name);

/// Collects C++ sources under @p root / @p rel (or @p rel itself when it
/// names a file) into @p out as root-relative generic paths.  Prunes
/// excluded directories; warns to stderr (prefixed with @p tool) when the
/// path does not exist.  Appends — callers sort once at the end.
void collect_sources(const std::filesystem::path& root, const std::string& rel,
                     const std::string& tool, std::vector<std::string>* out);

}  // namespace redopt::analysis
