// Comment/string-aware line scanner shared by the static-analysis tools.
//
// Each raw source line is reduced to a "code view" with comments and
// string/char literal bodies blanked out (delimiters kept), plus a
// "comment view" carrying the comment text.  Rules match against the
// code view so banned tokens inside doc comments or test fixtures never
// fire; suppression directives are parsed from the comment view.
#pragma once

#include <string>
#include <vector>

namespace redopt::analysis {

/// Per-line scan product (see file comment).
struct ScannedLine {
  std::string code;
  std::string comment;
};

/// Reduces raw source lines to code + comment views.  Tracks block
/// comments across lines; handles escapes inside literals.  Raw string
/// literals are treated as ordinary strings (good enough for a scanner —
/// the repo style avoids multi-line raw literals in src/).
std::vector<ScannedLine> scan_lines(const std::vector<std::string>& lines);

/// Parses `<tool>: allow(D1,D2)` / `<tool>: allow-file(D1)` out of one
/// line's comment text (e.g. tool = "redopt-lint").  Returns rule IDs;
/// `file_scope` reports which directive form was seen.  Each tool has
/// its own directive namespace: a `redopt-lint: allow(...)` never
/// silences redopt-analyze and vice versa.
std::vector<std::string> parse_allows(const std::string& tool, const std::string& comment,
                                      bool* file_scope);

/// True iff @p rule appears in @p ids.
bool allows_rule(const std::vector<std::string>& ids, const std::string& rule);

/// Reads @p path into lines ("" on a missing file yields no lines).
std::vector<std::string> read_lines(const std::string& path);

}  // namespace redopt::analysis
