// Shared finding/report types for the project's static-analysis tools
// (redopt-lint, redopt-analyze).  Both tools emit the same
// "file:line: [RULE] message" text format and the same JSON shape, so
// editors and CI consume one format regardless of which gate fired.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace redopt::analysis {

/// One rule violation at a specific source location.
struct Finding {
  std::string file;     ///< path as given to the scanner
  std::size_t line;     ///< 1-based line number
  std::string rule;     ///< stable rule ID ("D1", "A1", ...)
  std::string message;  ///< what fired and why it matters
  /// Stable discriminator for baseline matching (no line numbers, so it
  /// survives unrelated edits).  Empty for tools without a baseline.
  std::string key;
};

/// Static description of one rule, for --list-rules and docs.
struct RuleInfo {
  const char* id;
  const char* summary;    ///< what the rule bans/requires
  const char* rationale;  ///< why violating it breaks the contract
};

/// Renders @p finding as "file:line: [RULE] message".
std::string format_finding(const Finding& finding);

/// Renders findings as a JSON array of {file, line, rule, message[, key]}
/// objects, one per finding, sorted as given.  Ends with a newline.
std::string findings_json(const std::vector<Finding>& findings);

/// Sorts by (file, line, rule) for stable output across filesystems.
void sort_findings(std::vector<Finding>& findings);

}  // namespace redopt::analysis
