#include "analysis-common/walker.h"

#include <iostream>

namespace fs = std::filesystem;

namespace redopt::analysis {

bool is_cxx_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp";
}

bool is_excluded_dir(const std::string& name) {
  if (name.rfind("build", 0) == 0) return true;
  if (!name.empty() && name[0] == '.') return true;
  return name == "golden";
}

void collect_sources(const fs::path& root, const std::string& rel, const std::string& tool,
                     std::vector<std::string>* out) {
  const fs::path target = root / rel;
  if (fs::is_regular_file(target)) {
    if (is_cxx_source(target)) out->push_back(rel);
    return;
  }
  if (!fs::is_directory(target)) {
    std::cerr << tool << ": warning: no such path: " << target.string() << "\n";
    return;
  }
  fs::recursive_directory_iterator it(target), end;
  while (it != end) {
    if (it->is_directory() && is_excluded_dir(it->path().filename().string())) {
      it.disable_recursion_pending();
    } else if (it->is_regular_file() && is_cxx_source(it->path())) {
      out->push_back(fs::relative(it->path(), root).generic_string());
    }
    ++it;
  }
}

}  // namespace redopt::analysis
