#include "model.h"

#include <algorithm>
#include <cctype>
#include <regex>

namespace redopt::analyze {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Lexically normalizes "a/b/../c" -> "a/c" (enough for quoted includes).
std::string normalize(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (part == "..") {
        if (!parts.empty()) parts.pop_back();
      } else if (!part.empty() && part != ".") {
        parts.push_back(part);
      }
      part.clear();
    } else {
      part += path[i];
    }
  }
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += '/';
    out += parts[i];
  }
  return out;
}

}  // namespace

std::string module_of(const std::string& path) {
  if (starts_with(path, "tools/")) return "tools";
  if (!starts_with(path, "src/")) return "";
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

int layer_rank(const std::string& module) {
  // The module dependency DAG (see CONTRIBUTING.md "Module layering"):
  // higher layers may include lower ones, never the reverse.
  static const std::map<std::string, int> kRanks = {
      {"util", 0},
      {"rng", 1},      {"runtime", 1}, {"telemetry", 1},
      {"linalg", 2},
      {"core", 3},     {"data", 3},
      {"filters", 4},  {"redundancy", 4}, {"attacks", 4},
      {"net", 5},      {"dgd", 5},     {"sgd", 5},
      {"chaos", 6},    {"transport", 6},
      {"elastic", 7},
      {"serving", 8},
      {"tools", 9},
  };
  const auto it = kRanks.find(module);
  return it == kRanks.end() ? -1 : it->second;
}

bool edge_allowed(const std::string& from_module, const std::string& to_module) {
  if (from_module == to_module) return true;
  if (from_module == "tools") return true;   // tools may depend on anything
  if (to_module == "tools") return false;    // nothing depends on tools
  const int from = layer_rank(from_module);
  const int to = layer_rank(to_module);
  if (from < 0 || to < 0) return true;  // unknown modules are not layered
  if (to < from) return true;
  // Same-rank allowances: construction uses the instance vocabulary
  // (data -> core), the protocol layers reuse the DGD trainer pieces
  // (net/sgd -> dgd), and the transport harness drives chaos schedules.
  static const std::set<std::pair<std::string, std::string>> kAllowed = {
      {"data", "core"}, {"net", "dgd"}, {"sgd", "dgd"}, {"transport", "chaos"}};
  return kAllowed.count({from_module, to_module}) > 0;
}

const SourceFile* ProjectModel::find(const std::string& path) const {
  const auto it = files.find(path);
  return it == files.end() ? nullptr : &it->second;
}

std::set<std::string> ProjectModel::include_closure(const std::string& path) const {
  std::set<std::string> closure;
  std::vector<std::string> stack{path};
  while (!stack.empty()) {
    const std::string current = stack.back();
    stack.pop_back();
    if (!closure.insert(current).second) continue;
    const SourceFile* file = find(current);
    if (!file) continue;
    for (const IncludeEdge& edge : file->includes) stack.push_back(edge.target);
  }
  return closure;
}

FlatCode flatten(const std::vector<analysis::ScannedLine>& scanned) {
  FlatCode flat;
  bool continued = false;  // previous line was a directive ending in backslash
  for (std::size_t i = 0; i < scanned.size(); ++i) {
    const std::string& code = scanned[i].code;
    // Preprocessor lines are blanked: they are not statements, and a
    // `#include` or `#define` folded into the next statement head would
    // confuse the brace classifier and the symbol indexer.  Multi-line
    // macros are blanked in full by tracking backslash continuations.
    // (Pass A reads the #include lines from the scanned views directly.)
    const std::size_t first = code.find_first_not_of(" \t");
    const bool preprocessor = continued || (first != std::string::npos && code[first] == '#');
    const std::size_t last = code.find_last_not_of(" \t");
    continued = preprocessor && last != std::string::npos && code[last] == '\\';
    for (char c : code) {
      flat.text += preprocessor ? ' ' : c;
      flat.line.push_back(i + 1);
    }
    flat.text += '\n';
    flat.line.push_back(i + 1);
  }
  return flat;
}

std::vector<BraceSpan> brace_spans(const FlatCode& code) {
  std::vector<BraceSpan> spans;
  std::vector<std::size_t> open_stack;  // indices into spans
  std::string head;
  static const std::regex kType(R"((^|[^\w])(class|struct|enum|union)\b)");
  for (std::size_t i = 0; i < code.text.size(); ++i) {
    const char c = code.text[i];
    if (c == '{') {
      BraceSpan span;
      span.open = i;
      span.close = code.text.size();
      span.head = head;
      if (head.find("namespace") != std::string::npos) {
        span.kind = BraceKind::kNamespace;
      } else if (std::regex_search(head, kType) && head.find('(') == std::string::npos) {
        span.kind = BraceKind::kType;
      } else if (head.find(')') != std::string::npos) {
        span.kind = BraceKind::kFunction;
      } else {
        span.kind = BraceKind::kOther;
      }
      open_stack.push_back(spans.size());
      spans.push_back(std::move(span));
      head.clear();
    } else if (c == '}') {
      if (!open_stack.empty()) {
        spans[open_stack.back()].close = i;
        open_stack.pop_back();
      }
      head.clear();
    } else if (c == ';') {
      head.clear();
    } else {
      head += c;
    }
  }
  return spans;
}

bool at_namespace_scope(const std::vector<BraceSpan>& spans, std::size_t offset) {
  for (const BraceSpan& span : spans) {
    if (span.open < offset && offset < span.close && span.kind != BraceKind::kNamespace) {
      return false;
    }
  }
  return true;
}

namespace {

const std::set<std::string>& identifier_blocklist() {
  static const std::set<std::string> kBlocked = {
      "if",     "for",    "while",   "switch",   "return", "sizeof",  "catch",
      "static_assert",    "alignas", "decltype", "noexcept", "operator", "throw"};
  return kBlocked;
}

/// Indexes the namespace-scope declarations of one header into the
/// model's symbol tables.  Statement heads are the text between
/// ';'/'{'/'}' separators; terminator says which separator ended the
/// statement ('{' marks a definition with a body).
void index_statement(const std::string& head, char terminator, const std::string& path,
                     const std::string& module, std::size_t line, ProjectModel* model) {
  static const std::regex kTypeDecl(R"((?:^|[^\w])(?:class|struct)\s+([A-Za-z_]\w*))");
  static const std::regex kEnumDecl(R"((?:^|[^\w])enum\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*))");
  static const std::regex kAlias(R"((?:^|[^\w])using\s+([A-Za-z_]\w*)\s*=)");
  static const std::regex kUsingDecl(R"((?:^|[^\w])using\s+(?:[A-Za-z_]\w*::)+([A-Za-z_]\w*)$)");
  static const std::regex kFunction(R"(([A-Za-z_]\w*)\s*\()");

  auto& module_symbols = model->symbols[module];
  auto note = [&](const std::string& name, bool definition) {
    model->declared[path].insert(name);
    auto& defs = module_symbols[name];
    for (const SymbolDef& def : defs) {
      if (def.file == path) return;  // one entry per (symbol, header)
    }
    // Real definitions go to the front so reports name a defining header.
    if (definition) {
      defs.insert(defs.begin(), SymbolDef{path, line});
    } else {
      defs.push_back(SymbolDef{path, line});
    }
  };

  std::smatch m;
  if (std::regex_search(head, m, kTypeDecl)) {
    // `class X {`, `class X : base {`, `class X final {` are definitions;
    // `class X;` is a forward declaration (indexed, but never preferred).
    note(m[1].str(), terminator == '{');
    return;
  }
  if (std::regex_search(head, m, kEnumDecl)) {
    note(m[1].str(), terminator == '{');
    return;
  }
  if (std::regex_search(head, m, kAlias)) {
    note(m[1].str(), true);
    return;
  }
  // `using linalg::Vector;` re-exports the name into this module: the
  // header carrying the using-declaration is its defining header here.
  if (std::regex_search(head, m, kUsingDecl)) {
    note(m[1].str(), true);
    return;
  }
  // Free function declaration/definition: the first `name(` whose name is
  // not a keyword.  Heads without parentheses (variables) are skipped —
  // pass D only resolves type and function references.
  for (auto it = std::sregex_iterator(head.begin(), head.end(), kFunction);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (identifier_blocklist().count(name) > 0) continue;
    note(name, terminator == '{');
    return;
  }
}

void index_header(const SourceFile& file, ProjectModel* model) {
  const FlatCode flat = flatten(file.scanned);
  const std::vector<BraceSpan> spans = brace_spans(flat);
  std::string head;
  std::size_t head_start = 0;
  bool head_open = false;
  for (std::size_t i = 0; i < flat.text.size(); ++i) {
    const char c = flat.text[i];
    if (c == ';' || c == '{' || c == '}') {
      if (c != '}' && head_open && at_namespace_scope(spans, i)) {
        index_statement(head, c, file.path, file.module, flat.line_at(head_start), model);
      }
      if (c == '{') {
        // Skip type/function bodies wholesale: nested declarations belong
        // to the enclosing type, not the namespace.  Namespace bodies ARE
        // namespace scope, so the walk descends into them.
        for (const BraceSpan& span : spans) {
          if (span.open == i) {
            if (span.kind != BraceKind::kNamespace) i = span.close;
            break;
          }
        }
      }
      head.clear();
      head_open = false;
    } else {
      if (!head_open && !std::isspace(static_cast<unsigned char>(c))) {
        head_open = true;
        head_start = i;
      }
      head += c;
    }
  }
}

}  // namespace

ProjectModel build_model(const std::map<std::string, std::vector<std::string>>& sources) {
  ProjectModel model;
  for (const auto& [path, lines] : sources) {
    SourceFile file;
    file.path = path;
    file.module = module_of(path);
    file.raw = lines;
    file.scanned = analysis::scan_lines(lines);
    model.files.emplace(path, std::move(file));
  }

  // Resolve quoted includes the way the build does: against src/ (the
  // library's include root), against the including file's directory
  // (the tools' local headers), against tools/ (analysis-common), and
  // verbatim.  Unresolved includes (system headers, gtest) are dropped.
  // The include TARGET lives in a string literal, which the code view
  // blanks; the code view still proves the line is a real directive (not
  // a commented-out one), and the raw line supplies the path.
  static const std::regex kDirective(R"(^\s*#\s*include\s*")");
  static const std::regex kInclude(R"(#\s*include\s*"([^"]+)\")");
  for (auto& [path, file] : model.files) {
    const std::string dir = dirname_of(path);
    for (std::size_t i = 0; i < file.scanned.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(file.scanned[i].code, kDirective)) continue;
      if (!std::regex_search(file.raw[i], m, kInclude)) continue;
      const std::string quoted = m[1].str();
      std::string resolved;
      for (const std::string& candidate :
           {std::string("src/") + quoted, dir.empty() ? quoted : dir + "/" + quoted,
            std::string("tools/") + quoted, quoted}) {
        const std::string norm = normalize(candidate);
        if (model.files.count(norm) > 0) {
          resolved = norm;
          break;
        }
      }
      if (!resolved.empty()) file.includes.push_back(IncludeEdge{i + 1, resolved});
    }
  }

  // Symbol index over src/ headers.
  for (const auto& [path, file] : model.files) {
    if (file.module.empty() || file.module == "tools") continue;
    if (path.size() < 2 || path.compare(path.size() - 2, 2, ".h") != 0) continue;
    index_header(file, &model);
  }
  return model;
}

}  // namespace redopt::analyze
