// redopt-analyze: a multi-pass semantic analyzer over the project model
// (see model.h).  Where redopt-lint matches single lines, this tool
// reasons about relationships: include edges against the module layer
// DAG, floating-point accumulation against the one sanctioned kernel
// layer, lambda captures at parallel call sites, and headers against
// the symbol index.
//
// Rules (stable IDs; `redopt-analyze --list-rules` prints the table):
//
//   A1  module layering: an #include edge that climbs the module DAG
//       (util/rng -> linalg -> core/data -> filters/redundancy ->
//       net/dgd/sgd -> chaos/transport; tools on top)
//   A2  include cycle: a file participates in a transitive #include loop
//   B1  floating-point accumulation (+=, *= on a double/float local
//       inside a loop, with loop-dependent terms) outside the FP-order
//       authority (src/linalg/kernels.* and the allowlisted linalg
//       implementation files) — summation order decides last-ulp bits,
//       so exactly one layer is allowed to choose it
//   C1  unsafe parallel capture: a parallel_for / parallel_reduce lambda
//       writes a by-reference capture without an index-disjoint
//       subscript — a data race the single-thread test runs never see
//   D1  non-self-contained header: a src/ header references a symbol
//       (module::Name) whose defining header is not in its transitive
//       include closure
//   D2  function definition at namespace scope in a header without
//       inline/constexpr/template — an ODR violation once two TUs
//       include it
//
// Suppression mirrors redopt-lint with a separate directive namespace:
// `// redopt-analyze: allow(B1)` on the line or the line above,
// `// redopt-analyze: allow-file(B1)` for the file.  Accepted findings
// live in tools/redopt-analyze/baseline.txt, keyed on stable
// discriminators (never line numbers) so the baseline survives drift.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis-common/finding.h"
#include "model.h"

namespace redopt::analyze {

using analysis::Finding;
using analysis::RuleInfo;

/// The rule table, in ID order.
const std::vector<RuleInfo>& rules();

/// Runs all passes over an already-built model.
std::vector<Finding> analyze_model(const ProjectModel& model);

/// Builds the model from in-memory sources and analyzes it (the fixture
/// tests' entry point).
std::vector<Finding> analyze_memory(const std::map<std::string, std::vector<std::string>>& sources);

/// Baseline entry: a finding accepted with justification.  Matching is
/// by (rule, file, key) — no line numbers.
struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string key;
  std::string justification;  ///< trailing "# ..." comment, if any
};

/// Parses baseline lines of the form `RULE<TAB>file<TAB>key[<TAB># why]`.
/// Blank lines and lines starting with '#' are skipped.
std::vector<BaselineEntry> parse_baseline(const std::vector<std::string>& lines);

/// Renders findings in baseline format (one line per finding).
std::string render_baseline(const std::vector<Finding>& findings);

/// Splits @p findings into new findings (returned) and baseline matches;
/// appends entries that matched nothing to @p stale (they name fixed
/// findings and should be pruned from the baseline file).
std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const std::vector<BaselineEntry>& baseline,
                                    std::vector<BaselineEntry>* stale);

}  // namespace redopt::analyze
